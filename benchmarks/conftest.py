"""Shared benchmark configuration.

Each ``test_figXX`` benchmark regenerates one figure of the paper's
evaluation (the series it plots), prints it as an ASCII table, and
asserts the paper's qualitative claims (who wins, ordering,
crossovers).  Parameter sweeps default to a moderate grid so the whole
suite finishes in minutes; set ``REPRO_BENCH_FULL=1`` for the full
paper-anchored sweeps.
"""

import os

import pytest

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="smoke mode: tiny configurations, correctness checks "
             "only, no speedup floors (used by CI)")

#: Tile-size sweeps (chain-dimension factor) per density.
SOR_Z = (4, 6, 8, 12, 16, 24, 32, 48) if FULL else (4, 8, 16, 32)
JACOBI_X = (1, 2, 3, 4, 6, 8, 12, 16) if FULL else (2, 4, 8, 16)
ADI_X = (1, 2, 3, 4, 6, 8, 12, 16) if FULL else (2, 4, 8, 16)

SOR_SPACES = ((100, 100), (100, 200), (200, 200), (200, 400)) if FULL \
    else ((100, 100), (100, 200), (150, 200), (200, 200))
JACOBI_SPACES = ((50, 100, 100), (50, 200, 200), (100, 200, 200),
                 (100, 300, 300)) if FULL \
    else ((50, 100, 100), (50, 150, 150), (80, 150, 150), (100, 200, 200))
ADI_SPACES = ((50, 128), (100, 128), (100, 256), (200, 256)) if FULL \
    else ((50, 128), (100, 128), (100, 192), (100, 256))


def print_figure(fig):
    from repro.experiments.report import format_table
    print()
    print(format_table(fig))


def run_once(benchmark, fn):
    """Run the figure generation exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
