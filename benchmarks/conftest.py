"""Shared benchmark configuration.

Each ``test_figXX`` benchmark regenerates one figure of the paper's
evaluation (the series it plots), prints it as an ASCII table, and
asserts the paper's qualitative claims (who wins, ordering,
crossovers).  Parameter sweeps default to a moderate grid so the whole
suite finishes in minutes; set ``REPRO_BENCH_FULL=1`` for the full
paper-anchored sweeps.

Timing discipline lives in :mod:`timing` (GC off,
``time.perf_counter_ns``, CV reporting).  Tests marked ``quick`` form
the CI smoke set (``pytest benchmarks -m quick --quick``); those that
accept the ``bench`` fixture additionally record their timings, and
when ``REPRO_BENCH_JSON`` names a path the session writes them as a
``BENCH_*.json`` report (schema in ``docs/BENCHMARKING.md``) that
``check_regression.py`` gates against the committed baseline.
"""

import json
import os
import platform
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from timing import TimingResult, gc_disabled, rss_mib, time_fn  # noqa: E402

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="smoke mode: tiny configurations, correctness checks "
             "only, no speedup floors (used by CI)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "quick: cheap, deterministic benchmark included in the CI "
        "bench-quick smoke job")


#: Tile-size sweeps (chain-dimension factor) per density.
SOR_Z = (4, 6, 8, 12, 16, 24, 32, 48) if FULL else (4, 8, 16, 32)
JACOBI_X = (1, 2, 3, 4, 6, 8, 12, 16) if FULL else (2, 4, 8, 16)
ADI_X = (1, 2, 3, 4, 6, 8, 12, 16) if FULL else (2, 4, 8, 16)

SOR_SPACES = ((100, 100), (100, 200), (200, 200), (200, 400)) if FULL \
    else ((100, 100), (100, 200), (150, 200), (200, 200))
JACOBI_SPACES = ((50, 100, 100), (50, 200, 200), (100, 200, 200),
                 (100, 300, 300)) if FULL \
    else ((50, 100, 100), (50, 150, 150), (80, 150, 150), (100, 200, 200))
ADI_SPACES = ((50, 128), (100, 128), (100, 256), (200, 256)) if FULL \
    else ((50, 128), (100, 128), (100, 192), (100, 256))


def print_figure(fig):
    from repro.experiments.report import format_table
    print()
    print(format_table(fig))


def run_once(benchmark, fn):
    """Run the figure generation exactly once under the benchmark
    timer, with the GC disabled so a stray collection cannot pollute
    the single sample."""
    with gc_disabled():
        return benchmark.pedantic(fn, rounds=1, iterations=1)


# -- BENCH_*.json recording ----------------------------------------------------


class BenchRecorder:
    """Collects named timings across the session for the JSON report."""

    def __init__(self):
        self.results = {}
        self.skipped = {}

    def measure(self, name, fn, repeats=2):
        """Time ``fn`` (min-of ``repeats``, GC off) and record it."""
        result = time_fn(name, fn, repeats=repeats)
        self.record(result)
        return result

    def record(self, result: TimingResult):
        self.results[result.name] = result

    def skip(self, name, reason):
        """Record that ``name`` was skipped on this host (e.g. too few
        CPUs for a parallel benchmark).  The entry lands in the JSON as
        ``{"skipped": reason}`` so the regression gate can tell a
        deliberate skip from a missing benchmark — and never gates on
        it (a 1-CPU runner timing a 2-worker run measures
        oversubscription noise, not the code)."""
        self.skipped[name] = str(reason)

    def to_report(self):
        benchmarks = {
            name: {
                "best_s": r.best_s,
                "median_s": r.median_s,
                "cv": r.cv,
                "samples": len(r.samples_ns),
                "rss_mib": r.rss_mib,
            }
            for name, r in sorted(self.results.items())
        }
        for name, reason in sorted(self.skipped.items()):
            if name not in benchmarks:
                benchmarks[name] = {"skipped": reason}
        return {
            "schema": 1,
            "host": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
            },
            "benchmarks": benchmarks,
        }


_RECORDER = BenchRecorder()


@pytest.fixture(scope="session")
def bench():
    """Session-wide recorder; quick benchmarks report through this so
    their numbers land in the ``REPRO_BENCH_JSON`` report."""
    return _RECORDER


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path or not (_RECORDER.results or _RECORDER.skipped):
        return
    with open(path, "w") as fh:
        json.dump(_RECORDER.to_report(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {len(_RECORDER.results)} benchmark entries to {path}")
