"""Ablation: closed-form tile-size rule vs exhaustive sweep.

DESIGN.md calls out tile-size selection as a design choice the paper
makes by hand ("we then varied factor z to test different tile sizes").
This bench measures how much speedup the comp~comm ratio rule of ref
[3] leaves on the table compared to the full simulated sweep.
"""

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.runtime import FAST_ETHERNET_CLUSTER
from repro.tiling import ratio_balanced_extent, sweep_best_extent

CANDIDATES = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48)


def _tune():
    x, y = sor_factors(100, 200)
    app = sor.app(100, 200)
    h_of = lambda z: sor.h_nonrectangular(x, y, z)
    balanced = ratio_balanced_extent(h_of, app.nest, app.mapping_dim,
                                     FAST_ETHERNET_CLUSTER,
                                     candidates=CANDIDATES)
    sweep = sweep_best_extent(h_of, app.nest, app.mapping_dim,
                              FAST_ETHERNET_CLUSTER, CANDIDATES)
    curve = dict(sweep.curve)
    return balanced, sweep, curve


def test_ablation_tile_selection(benchmark):
    balanced, sweep, curve = run_once(benchmark, _tune)
    print(f"\nratio-balanced extent: z={balanced} "
          f"(speedup {curve[balanced]:.3f})")
    print(f"sweep optimum:         z={sweep.best_extent} "
          f"(speedup {sweep.best_speedup:.3f})")
    loss = (sweep.best_speedup - curve[balanced]) / sweep.best_speedup
    print(f"closed-form rule loses {loss:.1%} vs exhaustive search")
    # the rule must be competitive: within 25% of the sweep optimum
    assert curve[balanced] >= 0.75 * sweep.best_speedup
