"""Gate a fresh ``BENCH_*.json`` report against the committed baseline.

CI runs the quick benchmark set with ``REPRO_BENCH_JSON=BENCH_PR4.json``
and then::

    python benchmarks/check_regression.py BENCH_PR4.json \
        --baseline benchmarks/baseline.json

The gate compares ``best_s`` (min-of-repeats — the contention-free
estimate) per benchmark and fails on any slowdown above the threshold
(default 25 %).  A benchmark that is *new* in the fresh run is
reported but never fails the gate: adding a benchmark must not
require touching the baseline in the same commit.  A *baseline*
benchmark that the fresh run did not produce at all, however, is a
failure naming the missing benchmark — a silently vanished entry is
how a deleted or import-broken benchmark would otherwise sail through
the gate.  The one exemption is an entry recorded as
``{"skipped": reason}`` (the recorder writes these when the host
cannot run the benchmark meaningfully, e.g. ``os.cpu_count() <
workers``): skips-with-reason on either side are reported and never
gated — a timing taken on an oversubscribed host measures scheduler
noise, not the code.

``--update-baseline`` rewrites the baseline from the current report
(used locally when a deliberate perf change moves the floor).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema") != 1 or "benchmarks" not in report:
        raise SystemExit(f"{path}: not a schema-1 bench report")
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="fresh BENCH_*.json report")
    ap.add_argument("--baseline", default="benchmarks/baseline.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated slowdown (fraction, default "
                         "0.25 = 25%%)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="copy the current report over the baseline "
                         "instead of gating")
    args = ap.parse_args(argv)

    if args.update_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated from {args.current}")
        return 0

    current = load(args.current)["benchmarks"]
    baseline = load(args.baseline)["benchmarks"]

    failures = []
    missing = []
    deltas = []  # (name, base_s, now_s, ratio, cv) for the table below
    for name in sorted(baseline):
        if name not in current:
            if "skipped" in baseline[name]:
                # Host-gated entry the recording host couldn't run
                # either; nothing has vanished.
                print(f"SKIP  {name}: baseline recorded a skip "
                      f"({baseline[name]['skipped']}); not run here")
            else:
                print(f"MISS  {name}: in baseline but absent from "
                      f"the fresh run")
                missing.append(name)
            continue
        if "skipped" in current[name]:
            print(f"SKIP  {name}: {current[name]['skipped']}")
            continue
        if "skipped" in baseline[name]:
            print(f"SKIP  {name}: baseline recorded a skip "
                  f"({baseline[name]['skipped']}); nothing to compare")
            continue
        base = baseline[name]["best_s"]
        now = current[name]["best_s"]
        ratio = now / base if base > 0 else float("inf")
        cv = current[name].get("cv", 0.0)
        deltas.append((name, base, now, ratio, cv))
        status = "OK   "
        if ratio > 1.0 + args.threshold:
            status = "FAIL "
            failures.append((name, base, now, ratio))
        print(f"{status}{name}: {base:.4f}s -> {now:.4f}s "
              f"({ratio:.2f}x baseline, CV {cv:.1%})")
    for name in sorted(set(current) - set(baseline)):
        if "skipped" in current[name]:
            print(f"NEW   {name}: skipped ({current[name]['skipped']})")
        else:
            print(f"NEW   {name}: {current[name]['best_s']:.4f}s "
                  f"(no baseline yet)")

    # Per-bench delta table, printed on success too so nightly logs
    # show the trend (worst first), not only the pass/fail verdict.
    if deltas:
        width = max(len(name) for name, *_ in deltas)
        print(f"\n{'benchmark':<{width}}  {'baseline':>10} "
              f"{'current':>10} {'delta':>8} {'CV':>6}")
        for name, base, now, ratio, cv in sorted(
                deltas, key=lambda d: -d[3]):
            print(f"{name:<{width}}  {base:>9.4f}s {now:>9.4f}s "
                  f"{(ratio - 1):>+7.1%} {cv:>6.1%}")

    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from "
              f"the fresh run (deleted or failed to record?):")
        for name in missing:
            print(f"  missing benchmark: {name}")
    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:")
        for name, base, now, ratio in failures:
            print(f"  {name}: {base:.4f}s -> {now:.4f}s "
                  f"({(ratio - 1):.1%} slower)")
    if failures or missing:
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
