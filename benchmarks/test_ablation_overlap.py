"""Ablation: blocking sends (the paper's scheme) vs computation/
communication overlap (the paper's future work, their ref [8]).

DESIGN.md calls this design choice out: the RECEIVE-compute-SEND cycle
serializes transfers into the critical path.  Overlap should help most
exactly where communication is heaviest (small tiles).
"""

from benchmarks.conftest import print_figure, run_once
from repro.apps import sor
from repro.experiments.harness import run_experiment
from repro.runtime import FAST_ETHERNET_CLUSTER


def _sweep():
    from repro.experiments.figures import sor_factors
    x, y = sor_factors(100, 200)
    app = sor.app(100, 200)
    rows = []
    for z in (4, 8, 16, 32):
        h = sor.h_nonrectangular(x, y, z)
        blocking = run_experiment(app, h, f"blocking-z{z}",
                                  FAST_ETHERNET_CLUSTER)
        overlap = run_experiment(app, h, f"overlap-z{z}",
                                 FAST_ETHERNET_CLUSTER.with_overlap())
        rows.append((z, blocking.speedup, overlap.speedup))
    return rows


def test_ablation_overlap(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\nz     blocking  overlap   gain")
    for z, b, o in rows:
        print(f"{z:<5} {b:>8.3f}  {o:>7.3f}  {100 * (o - b) / b:>5.1f}%")
    for _, b, o in rows:
        assert o >= b - 1e-9, "overlap must never hurt"
    assert any(o > b * 1.02 for _, b, o in rows), (
        "overlap should help somewhere in the sweep")
