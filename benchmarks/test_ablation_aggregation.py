"""Ablation: the §3.2 message-aggregation design choice at paper scale.

The paper's SEND packs all tile dependencies toward one successor
processor into a single message ("a tile will receive from tiles, while
it will send to processors").  This bench quantifies the design: the
naive per-dependence variant pays extra latencies (and duplicated
payload) every step.
"""

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.runtime import DistributedRun, FAST_ETHERNET_CLUSTER, TiledProgram


def _measure():
    x, y = sor_factors(100, 200)
    app = sor.app(100, 200)
    out = {}
    for z in (4, 8, 16):
        prog = TiledProgram(app.nest, sor.h_nonrectangular(x, y, z),
                            mapping_dim=2)
        run = DistributedRun(prog, FAST_ETHERNET_CLUSTER)
        agg = run.simulate()
        raw = run.simulate_unaggregated()
        t_seq = FAST_ETHERNET_CLUSTER.compute_time(prog.total_points())
        out[z] = (t_seq / agg.makespan, t_seq / raw.makespan,
                  agg.total_messages, raw.total_messages)
    return out


def test_ablation_aggregation(benchmark):
    rows = run_once(benchmark, _measure)
    print("\nz     aggregated  per-dep   msgs(agg)  msgs(per-dep)")
    for z, (s_agg, s_raw, m_agg, m_raw) in rows.items():
        print(f"{z:<5} {s_agg:>10.3f} {s_raw:>8.3f} {m_agg:>10} "
              f"{m_raw:>10}")
    for s_agg, s_raw, m_agg, m_raw in rows.values():
        assert m_raw > m_agg
        assert s_agg >= s_raw - 1e-9, "aggregation must not hurt"
    # somewhere in the sweep the aggregation visibly pays off
    assert any(s_agg > s_raw * 1.01
               for s_agg, s_raw, _, _ in rows.values())
