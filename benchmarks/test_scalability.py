"""Extension ablation: processor-count scaling (the paper fixes P=16).

Sweeps the processor mesh (2x2 -> 6x6) on the SOR anchor problem with
both tile shapes.  Expected shape: speedups grow with P but efficiency
falls (fixed problem = strong scaling); the non-rectangular advantage
persists at every P.
"""

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.experiments.harness import run_experiment
from repro.experiments.spaces import tile_count_extent
from repro.runtime import FAST_ETHERNET_CLUSTER

GRIDS = (2, 3, 4, 6)


def _sweep():
    app = sor.app(100, 200)
    rows = []
    for g in GRIDS:
        x = tile_count_extent(1, 100, g)
        y = tile_count_extent(2, 300, g)
        r_rect = run_experiment(app, sor.h_rectangular(x, y, 8),
                                f"rect-{g}x{g}", FAST_ETHERNET_CLUSTER)
        r_nr = run_experiment(app, sor.h_nonrectangular(x, y, 8),
                              f"nr-{g}x{g}", FAST_ETHERNET_CLUSTER)
        rows.append((g * g, r_rect, r_nr))
    return rows


def test_scalability(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\nP     rect-speedup  rect-eff   nr-speedup  nr-eff")
    for p, r, nr in rows:
        print(f"{p:<5} {r.speedup:>12.3f}  {r.efficiency:>7.1%} "
              f"{nr.speedup:>12.3f}  {nr.efficiency:>7.1%}")
    speedups_nr = [nr.speedup for _, _, nr in rows]
    # strong scaling: more processors, more speedup (monotone here)
    assert all(b > a for a, b in zip(speedups_nr, speedups_nr[1:]))
    # efficiency decays with P
    effs = [nr.efficiency for _, _, nr in rows]
    assert effs[-1] < effs[0]
    # the shape advantage persists at every processor count
    for _, r, nr in rows:
        assert nr.speedup > r.speedup
