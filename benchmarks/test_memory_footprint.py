"""§3.1 memory accounting at paper scale.

Measures, for the SOR anchor experiment, each processor's LDS size
against (a) the points it owns and (b) the enclosing-box allocation of
its data-space share — the quantitative version of the paper's §3.1
memory discussion.  See EXPERIMENTS.md for the interpretation.
"""

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.distribution import memory_report
from repro.experiments.figures import sor_factors
from repro.runtime import TiledProgram


def _measure():
    x, y = sor_factors(100, 200)
    app = sor.app(100, 200)
    out = {}
    for label, h in (("rect", sor.h_rectangular(x, y, 8)),
                     ("nonrect", sor.h_nonrectangular(x, y, 8))):
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        out[label] = memory_report(prog)
    return out


def test_memory_footprint(benchmark):
    reports = run_once(benchmark, _measure)
    print()
    for label, rep in reports.items():
        print(f"{label}: LDS/points = {rep.lds_overhead:.2f}, "
              f"naive-box/points = {rep.total_naive / rep.total_points:.2f}, "
              f"naive/LDS = {rep.compression:.2f}x")
    for rep in reports.values():
        # every processor can store what it computes
        assert all(f.lds_cells >= f.computed_points
                   for f in rep.per_processor)
        # the skewed share is non-rectangular (box strictly bigger)
        assert rep.total_naive > rep.total_points
        # LDS slack stays within a small factor at paper scale
        assert rep.lds_overhead < 3.0
