"""Native compiled-kernel backend speedup guard.

The native backend exists to take the per-level numpy dispatch out of
the dense engine's inner loop: one C call per tile walks every
wavefront level and statement over the same flat LDS buffers.  This
benchmark pins the claim end-to-end, always cross-checking **bitwise**
(tol=0.0) against the numpy dense engine first — a fast wrong kernel
is worthless.

Tiers:

* default — mid-size configs per app with per-app floors (the
  speedup grows with tile volume, so small configs bound it from
  below);
* the **gate** — the paper's large SOR space (200x400, the
  Figure 5/6 configuration): ``engine="native"`` must be >= 5x the
  numpy dense engine end-to-end, the ISSUE's headline number
  (~6x measured on the reference machine);
* ``--quick`` (CI smoke) — seconds-sized config, correctness plus a
  recorded ``native_sor_quick`` timing for the regression gate.
"""

import os
import tempfile
import time

import pytest

from repro.apps import adi, jacobi, sor
from repro.native.compile import (
    NativeCompileError,
    compile_shared_object,
    find_compiler,
)
from repro.native.engine import build_native_library
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    TiledProgram,
    arrays_match,
    dense_to_cells,
)

def _cc_usable():
    cc = find_compiler()
    if cc is None:
        return False
    try:
        with tempfile.TemporaryDirectory() as tmp:
            compile_shared_object(
                cc, "int repro_probe(void) { return 0; }\n",
                os.path.join(tmp, "probe.so"))
    except NativeCompileError:
        return False
    return True


requires_cc = pytest.mark.skipif(
    not _cc_usable(), reason="no working C compiler")

# (app, tiling, mapping_dim, floor) — floors from reference-machine
# measurements (sor 7.9x, jacobi 5.8x, adi 2.6x) with ~2x slack.
DEFAULT_CONFIGS = {
    "sor": (lambda: (sor.app(20, 40),
                     sor.h_nonrectangular(5, 8, 8), 2), 3.0),
    "jacobi": (lambda: (jacobi.app(10, 30, 30),
                        jacobi.h_rectangular(5, 6, 6), 0), 3.0),
    "adi": (lambda: (adi.app(12, 32),
                     adi.h_rectangular(4, 8, 8), 0), 1.5),
}

#: The gating configuration and floor from the ISSUE: paper-scale SOR.
GATE_CONFIG = lambda: (sor.app(200, 400),             # noqa: E731
                       sor.h_nonrectangular(26, 76, 8), 2)
GATE_FLOOR = 5.0

QUICK_CONFIG = lambda: (sor.app(6, 9),                # noqa: E731
                        sor.h_nonrectangular(2, 3, 4), 2)


def _timed_pair(app, h, mdim):
    """Dense-numpy vs dense-native end-to-end; bitwise cross-check."""
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    lib = build_native_library(prog)
    assert lib.available, lib.fallback_reason
    run = DistributedRun(prog, ClusterSpec())
    t0 = time.perf_counter()
    ref_fields, ref_stats = run.execute_dense(app.init_value)
    t_numpy = time.perf_counter() - t0
    t0 = time.perf_counter()
    fields, stats = run.execute_dense(app.init_value, native=lib)
    t_native = time.perf_counter() - t0
    assert arrays_match(dense_to_cells(fields),
                        dense_to_cells(ref_fields), tol=0.0)
    assert stats == ref_stats
    return prog, t_numpy, t_native


@requires_cc
@pytest.mark.parametrize("name", sorted(DEFAULT_CONFIGS))
def test_native_kernel_speedup(name, request):
    if request.config.getoption("--quick"):
        pytest.skip("default-size row; the quick set runs "
                    "test_native_sor_quick")
    build, floor = DEFAULT_CONFIGS[name]
    app, h, mdim = build()
    prog, t_numpy, t_native = _timed_pair(app, h, mdim)
    points = prog.total_points()
    speedup = t_numpy / t_native if t_native > 0 else float("inf")
    print(f"\n{name}: {points} points, numpy {t_numpy:.3f}s, native "
          f"{t_native:.3f}s -> speedup {speedup:.1f}x")
    assert speedup >= floor, (
        f"{name}: native kernels only {speedup:.1f}x faster than the "
        f"numpy dense engine (floor {floor}x)")


@requires_cc
def test_native_gate_sor_paper(request):
    """The ISSUE gate: >= 5x on the paper's large SOR configuration."""
    if request.config.getoption("--quick"):
        pytest.skip("paper-scale gate (minutes); run without --quick")
    app, h, mdim = GATE_CONFIG()
    prog, t_numpy, t_native = _timed_pair(app, h, mdim)
    points = prog.total_points()
    speedup = t_numpy / t_native if t_native > 0 else float("inf")
    print(f"\nsor 200x400 (gate): {points} points, numpy "
          f"{t_numpy:.1f}s, native {t_native:.1f}s -> speedup "
          f"{speedup:.1f}x (floor {GATE_FLOOR}x)")
    assert speedup >= GATE_FLOOR


@requires_cc
@pytest.mark.quick
def test_native_sor_quick(request, bench):
    app, h, mdim = QUICK_CONFIG()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    lib = build_native_library(prog)
    assert lib.available, lib.fallback_reason
    run = DistributedRun(prog, ClusterSpec())
    ref_fields, _ = run.execute_dense(app.init_value)
    fields, _ = run.execute_dense(app.init_value, native=lib)
    assert arrays_match(dense_to_cells(fields),
                        dense_to_cells(ref_fields), tol=0.0)
    if request.config.getoption("--quick"):
        bench.measure("native_sor_quick",
                      lambda: run.execute_dense(app.init_value,
                                                native=lib),
                      repeats=2)
