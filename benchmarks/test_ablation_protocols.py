"""Ablation: MPI message protocols — eager vs rendezvous vs overlap.

The paper's generated code uses plain blocking ``MPI_Send``; real MPI
switches to a synchronous rendezvous above an eager threshold, which
couples sender and receiver clocks and stretches the pipeline.  This
bench quantifies the protocol effect on the SOR anchor experiment —
context for how much the paper's measured speedups depended on MPICH's
eager limit.
"""

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.experiments.harness import run_experiment
from repro.runtime import ClusterSpec


def _sweep():
    x, y = sor_factors(100, 200)
    app = sor.app(100, 200)
    h = sor.h_nonrectangular(x, y, 8)
    specs = {
        "eager": ClusterSpec(),
        "rendezvous-16k": ClusterSpec(rendezvous_threshold=16 * 1024),
        "rendezvous-all": ClusterSpec(rendezvous_threshold=0),
        "overlap": ClusterSpec(overlap=True),
    }
    return {
        label: run_experiment(app, h, label, spec).speedup
        for label, spec in specs.items()
    }


def test_ablation_protocols(benchmark):
    speedups = run_once(benchmark, _sweep)
    print("\nprotocol         speedup")
    for label, s in speedups.items():
        print(f"{label:<16} {s:7.3f}")
    assert speedups["overlap"] >= speedups["eager"] - 1e-9
    assert speedups["eager"] >= speedups["rendezvous-all"] - 1e-9
    assert speedups["rendezvous-16k"] <= speedups["eager"] + 1e-9
