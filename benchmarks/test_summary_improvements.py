"""§4.4 headline numbers: average speedup improvement per application.

Paper: SOR 17.3 %, Jacobi 9.1 %, ADI 10.1 % (nr over rect, averaged
over its experiments).  Absolute percentages depend on the testbed and
on the tile-size range averaged over; the reproduction asserts the
robust shape: every application improves, and SOR's average lands near
the paper's (its sweep shape is the least cost-model-sensitive).
Jacobi's and ADI's averages come out larger here because our sweep
includes large chain extents where the rectangular pipeline collapses
while the cone-derived shapes stay flat (paper fig. 10 shows the same
divergence growing with tile size).
"""

from benchmarks.conftest import ADI_X, JACOBI_X, SOR_Z, run_once
from repro.experiments.summary import PAPER_IMPROVEMENTS, average_improvements


def test_summary_improvements(benchmark):
    summary = run_once(benchmark, lambda: average_improvements(
        sor_z=SOR_Z, jacobi_x=JACOBI_X, adi_x=ADI_X))
    print()
    print(summary.table())
    got = summary.measured
    assert all(v > 0 for v in got.values()), "nr must win on average"
    assert abs(got["sor"] - PAPER_IMPROVEMENTS["sor"]) < 10.0, (
        "SOR average improvement should land near the paper's 17.3%")
