"""Translation-validation overhead guard.

``generate_mpi_code(..., validate=True)`` parses the emitted program
back and re-proves it against the pipeline on every call, so its cost
must stay the same order as emission itself or nobody will leave the
flag on.  This benchmark pins that: across the three paper apps on
mid-size configurations, the full four-artifact ``transval_report``
must finish within a generous absolute budget, and the MPI-only
``validate=True`` guard must cost less than a fixed multiple of plain
emission.
"""

import time

import pytest

from repro.analysis.transval import transval_report
from repro.apps import adi, jacobi, sor
from repro.codegen.parallel import generate_mpi_code

#: Absolute ceiling for one full four-artifact validation run.
REPORT_BUDGET_S = 5.0

#: validate=True may cost at most this multiple of plain emission.
GUARD_MULTIPLE = 25.0

#: Timing rounds; the minimum is compared against the budget.
ROUNDS = 3

CONFIGS = [
    ("sor", sor.app(24, 36), sor.h_nonrectangular(4, 6, 6), 2),
    ("jacobi", jacobi.app(12, 16, 16), jacobi.h_nonrectangular(4, 4, 4), 0),
    ("adi", adi.app(12, 16), adi.h_nr1(4, 4, 4), 0),
]


@pytest.mark.parametrize("name,app,h,m", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
def test_bench_transval_report(benchmark, name, app, h, m):
    def run():
        times = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            report = transval_report(app.nest, h, mapping_dim=m)
            times.append(time.perf_counter() - t0)
            assert report.ok, report.render_text()
        return min(times)

    best = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{name}: full transval report best={best * 1e3:.1f}ms "
          f"(budget {REPORT_BUDGET_S:.1f}s)")
    assert best < REPORT_BUDGET_S


@pytest.mark.parametrize("name,app,h,m", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
def test_bench_validate_flag_overhead(benchmark, name, app, h, m):
    def run():
        plain, guarded = [], []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            generate_mpi_code(app.nest, h, mapping_dim=m)
            t1 = time.perf_counter()
            generate_mpi_code(app.nest, h, mapping_dim=m, validate=True)
            t2 = time.perf_counter()
            plain.append(t1 - t0)
            guarded.append(t2 - t1)
        return min(guarded) / min(plain), min(plain), min(guarded)

    ratio, best_p, best_g = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{name}: emit={best_p * 1e3:.1f}ms "
          f"emit+validate={best_g * 1e3:.1f}ms ratio={ratio:.1f}x "
          f"(budget {GUARD_MULTIPLE:.0f}x)")
    assert ratio < GUARD_MULTIPLE, (
        f"validate=True costs {ratio:.1f}x plain emission, over the "
        f"{GUARD_MULTIPLE:.0f}x budget")
