"""Figure 9: ADI maximum speedups for different iteration spaces,
four tilings (rect, nr1, nr2, nr3).

Paper shape: nr3 (cone-aligned) best; nr1 ~ nr2 in between; rect last.
"""

from benchmarks.conftest import ADI_SPACES, ADI_X, print_figure, run_once
from repro.experiments import figures


def test_fig09_adi_spaces(benchmark):
    fig = run_once(benchmark, lambda: figures.fig9(
        spaces=ADI_SPACES, x_values=ADI_X))
    print_figure(fig)
    m = fig.series_map()
    for space in m["rect"]:
        assert m["nr3"][space] > m["rect"][space]
        assert m["nr1"][space] > m["rect"][space]
        assert m["nr2"][space] > m["rect"][space]
        assert m["nr3"][space] >= m["nr1"][space] - 1e-9
        assert m["nr3"][space] >= m["nr2"][space] - 1e-9
        # nr1 and nr2 use equal y = z factors: near-identical speedups
        rel = abs(m["nr1"][space] - m["nr2"][space]) / m["nr1"][space]
        assert rel < 0.05
