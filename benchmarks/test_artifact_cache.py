"""Artifact cache speedup guard: warm load vs cold compile.

The tentpole claim of the artifact layer is amortized compilation —
loading a stored program must be at least :data:`SPEEDUP_FLOOR` times
faster than compiling it, on the paper-scale SOR space (200x400, tile
26x76x8: 2840 tiles, 50 processors), while producing a program whose
``simulate()`` RunStats compare equal to the fresh compile's.

Both sides measure the full user-facing path through
``ArtifactCache.get_or_compile``: the cold side pays compile +
precompile + store (what a miss actually costs), the warm side pays
read + verify + reconstruct (what a hit actually costs).  In ``--quick``
mode the measured times are additionally recorded for the CI
regression gate; the floor asserts in both modes — this is the
benchmark-gated acceptance criterion, so it must hold even on the
smoke path.
"""

import shutil
import tempfile
import time

import pytest

from repro.apps import sor
from repro.artifacts import ArtifactCache
from repro.runtime import ClusterSpec, DistributedRun

#: Minimum warm-load speedup over a cold compile of the same request.
SPEEDUP_FLOOR = 10.0


def _paper_sor():
    return sor.app(200, 400), sor.h_rectangular(26, 76, 8), 2


@pytest.mark.quick
def test_artifact_warm_load_speedup(bench, request):
    app, h, mdim = _paper_sor()
    root = tempfile.mkdtemp(prefix="repro-artifact-bench-")
    try:
        cache = ArtifactCache(root)

        t0 = time.perf_counter()
        cold_prog, status = cache.get_or_compile(app.nest, h, mdim)
        t_cold = time.perf_counter() - t0
        assert status == "miss"

        # Warm loads, best of three (first touch also warms the page
        # cache for the artifact file, which a served workload enjoys).
        t_warm = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            warm_prog, status = cache.get_or_compile(app.nest, h, mdim)
            t_warm = min(t_warm, time.perf_counter() - t0)
            assert status == "hit"

        speedup = t_cold / t_warm
        print(f"\nartifact cache (sor 200x400, t=26x76x8, "
              f"{len(cold_prog.dist.tiles)} tiles): cold "
              f"{t_cold * 1e3:.1f} ms, warm {t_warm * 1e3:.1f} ms "
              f"-> {speedup:.1f}x")

        spec = ClusterSpec()
        assert DistributedRun(cold_prog, spec).simulate() == \
            DistributedRun(warm_prog, spec).simulate()

        if request.config.getoption("--quick"):
            bench.measure("artifact_cold_compile_sor",
                          lambda: ArtifactCache(
                              tempfile.mkdtemp(dir=root)
                          ).get_or_compile(app.nest, h, mdim),
                          repeats=1)
            bench.measure("artifact_warm_load_sor",
                          lambda: cache.get_or_compile(app.nest, h,
                                                       mdim),
                          repeats=3)

        assert speedup >= SPEEDUP_FLOOR, (
            f"warm artifact load only {speedup:.1f}x faster than cold "
            f"compile (floor {SPEEDUP_FLOOR}x)")
    finally:
        shutil.rmtree(root, ignore_errors=True)
