"""Figure 5: SOR maximum speedups for different iteration spaces.

Paper shape: non-rectangular tiling beats rectangular in every
iteration space.
"""

from benchmarks.conftest import SOR_SPACES, SOR_Z, print_figure, run_once
from repro.experiments import figures


def test_fig05_sor_spaces(benchmark):
    fig = run_once(benchmark,
                   lambda: figures.fig5(spaces=SOR_SPACES, z_values=SOR_Z))
    print_figure(fig)
    m = fig.series_map()
    for space in m["rectangular"]:
        assert m["non-rectangular"][space] > m["rectangular"][space], (
            f"non-rect must beat rect on {space}")
    # speedups grow (weakly) with problem size within each family
    rect = [v for _, v in fig.series[0].points]
    assert max(rect) <= 16  # never super-linear on 16 processors
