"""Verifier overhead guard.

``TiledProgram(..., verify=True)`` promises a *cheap* construction-time
check.  This benchmark pins that promise: on the paper's largest
SOR / Jacobi / ADI configurations (the 16-node spaces of Figures 5, 7
and 9/10), running the full verifier over a freshly compiled program
must cost less than 20% of compiling the program in the first place.

Construction and verification are timed separately (best-of-N to shed
scheduler noise); their ratio is exactly the extra latency a
``verify=True`` caller pays, because the guard re-runs nothing the
compiler already did.
"""

import time

import pytest

from repro.analysis import verify_program
from repro.apps import adi, jacobi, sor
from repro.experiments.figures import (
    adi_factors,
    jacobi_factors,
    sor_factors,
)
from repro.runtime import TiledProgram

#: Maximum verifier time as a fraction of construction time.
OVERHEAD_BUDGET = 0.20

#: Maximum HB-certification time as a fraction of construction time.
#: The certificate walks every schedule event with vector clocks, so
#: it gets a slightly larger envelope than the channel-count passes.
HB_BUDGET = 0.30

#: Maximum cost-certification time as a fraction of construction time.
#: The certifier is closed-form plus one longest-path sweep; the plan
#: replay and point counts ride the program's caches.
COST_BUDGET = 0.20

#: Timing rounds per config; the minimum of each phase is compared.
ROUNDS = 5


def _sor_config():
    m, n = 200, 400                       # largest Figure 5 space
    x, y = sor_factors(m, n)
    return sor.app(m, n), sor.h_nonrectangular(x, y, 8), 2


def _jacobi_config():
    t, i, j = 100, 200, 200               # largest Figure 7 space
    y, z = jacobi_factors(t, i, j)
    return jacobi.app(t, i, j), jacobi.h_nonrectangular(8, y, z), 0


def _adi_config():
    t, n = 200, 256                       # largest Figure 9 space
    y, z = adi_factors(t, n)
    return adi.app(t, n), adi.h_nr1(16, y, z), 0


def _measure(make_config):
    app, h, mapping_dim = make_config()
    construct, verify = [], []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        program = TiledProgram(app.nest, h, mapping_dim)
        t1 = time.perf_counter()
        report = verify_program(program)
        t2 = time.perf_counter()
        assert report.ok
        construct.append(t1 - t0)
        verify.append(t2 - t1)
    best_c, best_v = min(construct), min(verify)
    return best_v / best_c, best_c, best_v


def _measure_hb(make_config):
    # A fresh program every round: certificates are cached per
    # program, and the cached path would measure a dict lookup.
    app, h, mapping_dim = make_config()
    construct, certify = [], []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        program = TiledProgram(app.nest, h, mapping_dim)
        t1 = time.perf_counter()
        cert = program.hb_certificate()
        t2 = time.perf_counter()
        assert cert.ok
        construct.append(t1 - t0)
        certify.append(t2 - t1)
    best_c, best_v = min(construct), min(certify)
    return best_v / best_c, best_c, best_v


def _measure_cost(make_config):
    # Fresh program per round for the same reason as ``_measure_hb``:
    # certificates are cached, and a cached call measures nothing.
    app, h, mapping_dim = make_config()
    construct, certify = [], []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        program = TiledProgram(app.nest, h, mapping_dim)
        t1 = time.perf_counter()
        cert = program.cost_certificate()
        t2 = time.perf_counter()
        assert cert.ok
        construct.append(t1 - t0)
        certify.append(t2 - t1)
    best_c, best_v = min(construct), min(certify)
    return best_v / best_c, best_c, best_v


@pytest.mark.parametrize("make_config", [
    _sor_config, _jacobi_config, _adi_config,
], ids=["sor-200x400-z8", "jacobi-100x200x200-x8", "adi-200x256-x16"])
def test_bench_verifier_overhead(benchmark, make_config):
    ratio, best_c, best_v = benchmark.pedantic(
        _measure, args=(make_config,), rounds=1, iterations=1)
    print(f"\nconstruct={best_c * 1e3:.1f}ms verify={best_v * 1e3:.1f}ms "
          f"overhead={ratio:.1%} (budget {OVERHEAD_BUDGET:.0%})")
    assert ratio < OVERHEAD_BUDGET, (
        f"verifier overhead {ratio:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(construct {best_c * 1e3:.1f}ms, verify {best_v * 1e3:.1f}ms)")


@pytest.mark.parametrize("make_config", [
    _sor_config, _jacobi_config, _adi_config,
], ids=["sor-200x400-z8", "jacobi-100x200x200-x8", "adi-200x256-x16"])
def test_bench_hb_certify_overhead(benchmark, make_config):
    ratio, best_c, best_v = benchmark.pedantic(
        _measure_hb, args=(make_config,), rounds=1, iterations=1)
    print(f"\nconstruct={best_c * 1e3:.1f}ms certify={best_v * 1e3:.1f}ms "
          f"overhead={ratio:.1%} (budget {HB_BUDGET:.0%})")
    assert ratio < HB_BUDGET, (
        f"HB certification overhead {ratio:.1%} exceeds the "
        f"{HB_BUDGET:.0%} budget "
        f"(construct {best_c * 1e3:.1f}ms, certify {best_v * 1e3:.1f}ms)")


def test_bench_cost_certify_overhead(benchmark):
    # The ISSUE's speed gate: static cost certification on the largest
    # SOR space must stay under 20% of TiledProgram construction.
    ratio, best_c, best_v = benchmark.pedantic(
        _measure_cost, args=(_sor_config,), rounds=1, iterations=1)
    print(f"\nconstruct={best_c * 1e3:.1f}ms certify={best_v * 1e3:.1f}ms "
          f"overhead={ratio:.1%} (budget {COST_BUDGET:.0%})")
    assert ratio < COST_BUDGET, (
        f"cost certification overhead {ratio:.1%} exceeds the "
        f"{COST_BUDGET:.0%} budget "
        f"(construct {best_c * 1e3:.1f}ms, certify {best_v * 1e3:.1f}ms)")
