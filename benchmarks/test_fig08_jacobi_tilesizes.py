"""Figure 8: Jacobi speedups for various tile sizes (T=50, I=J=100)."""

from benchmarks.conftest import JACOBI_X, print_figure, run_once
from repro.experiments import figures
from repro.experiments.report import improvement_percent


def test_fig08_jacobi_tilesizes(benchmark):
    fig = run_once(benchmark, lambda: figures.fig8(
        t=50, i=100, j=100, x_values=JACOBI_X))
    print_figure(fig)
    m = fig.series_map()
    for x in JACOBI_X:
        assert m["non-rectangular"][x] > m["rectangular"][x]
    imp = improvement_percent(fig, "rectangular", "non-rectangular")
    print(f"\nmean speedup improvement: {imp:.1f}% "
          f"(paper reports 9.1% average over its Jacobi experiments)")
    assert imp > 3.0
