"""Dense execution engine speedup guard.

The dense engine exists to make data-mode runs cheap; this benchmark
pins that claim end-to-end: on each app, ``execute_dense`` must beat
the sparse per-cell ``execute`` by at least :data:`SPEEDUP_FLOOR` while
producing **bitwise** identical arrays and identical simulated stats.

Sizing.  The sparse engine costs roughly half a millisecond per
iteration point, so the paper's largest configurations (tens of
millions of points — e.g. SOR 200x400x400) would take *hours* per
sparse run.  The default configurations here are the largest ones the
sparse baseline finishes in seconds; the measured speedup only grows
with size, so the >= 10x floor transfers a fortiori to the paper
scale.  With ``REPRO_BENCH_FULL=1`` the dense engine additionally runs
a paper-largest configuration end-to-end and reports the speedup
against a sparse baseline *extrapolated* from the measured per-point
rate (clearly labelled as such).  With ``--quick`` (CI smoke) the
configurations shrink to seconds-total and only correctness is
asserted.
"""

import os
import time

import pytest

from repro.apps import adi, jacobi, sor
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    TiledProgram,
    arrays_match,
    dense_to_cells,
)

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Minimum end-to-end dense-vs-sparse speedup on the default configs.
SPEEDUP_FLOOR = 10.0

# (app, tiling, mapping_dim) builders per mode.  Defaults are the
# largest configurations the sparse engine finishes in seconds.
DEFAULT_CONFIGS = {
    "sor": lambda: (sor.app(20, 40), sor.h_nonrectangular(5, 8, 8), 2),
    "jacobi": lambda: (jacobi.app(10, 30, 30),
                       jacobi.h_rectangular(5, 6, 6), 0),
    "adi": lambda: (adi.app(12, 32), adi.h_rectangular(4, 8, 8), 0),
}
QUICK_CONFIGS = {
    "sor": lambda: (sor.app(6, 9), sor.h_nonrectangular(2, 3, 4), 2),
    "jacobi": lambda: (jacobi.app(4, 6, 6),
                       jacobi.h_rectangular(2, 3, 3), 0),
    "adi": lambda: (adi.app(5, 8), adi.h_rectangular(2, 3, 3), 0),
}
# Paper-largest spaces (Figures 5, 7, 9) for the FULL extrapolation.
PAPER_CONFIGS = {
    "sor": lambda: (sor.app(200, 400),
                    sor.h_nonrectangular(26, 76, 8), 2),
    "jacobi": lambda: (jacobi.app(100, 200, 200),
                       jacobi.h_nonrectangular(8, 50, 50), 0),
    "adi": lambda: (adi.app(200, 256), adi.h_nr1(16, 64, 64), 0),
}


def _timed_pair(app, h, mdim):
    """Run both engines end-to-end; cross-check; return timings."""
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    t0 = time.perf_counter()
    arrays, sparse_stats = run.execute(app.init_value)
    t_sparse = time.perf_counter() - t0
    t0 = time.perf_counter()
    fields, dense_stats = run.execute_dense(app.init_value)
    t_dense = time.perf_counter() - t0
    # The dense engine is only a speedup if it is also *right*: bitwise
    # identical arrays and the identical simulated measurement.
    assert arrays_match(dense_to_cells(fields), arrays, tol=0.0)
    assert dense_stats == sparse_stats
    return prog, t_sparse, t_dense


@pytest.mark.quick
@pytest.mark.parametrize("name", sorted(DEFAULT_CONFIGS))
def test_dense_engine_speedup(name, request, bench):
    quick = request.config.getoption("--quick")
    configs = QUICK_CONFIGS if quick else DEFAULT_CONFIGS
    app, h, mdim = configs[name]()
    prog, t_sparse, t_dense = _timed_pair(app, h, mdim)
    points = prog.total_points()
    speedup = t_sparse / t_dense if t_dense > 0 else float("inf")
    print(f"\n{name}: {points} points, sparse {t_sparse:.3f}s "
          f"({t_sparse / points * 1e6:.1f} us/pt), dense "
          f"{t_dense:.3f}s -> speedup {speedup:.1f}x")
    if quick:
        # Record the dense-engine time for the CI regression gate
        # (quick configs only — the gate compares like with like).
        run = DistributedRun(prog, ClusterSpec())
        bench.measure(f"dense_engine_{name}_quick",
                      lambda: run.execute_dense(app.init_value),
                      repeats=2)
    else:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: dense engine only {speedup:.1f}x faster than "
            f"sparse (floor {SPEEDUP_FLOOR}x)")


@pytest.mark.skipif(not FULL, reason="paper-largest run; set "
                                     "REPRO_BENCH_FULL=1")
@pytest.mark.parametrize("name", sorted(PAPER_CONFIGS))
def test_dense_engine_paper_largest(name):
    # Calibrate the sparse per-point rate on the default config, where
    # a sparse run is affordable, then run the paper-largest
    # configuration on the dense engine only and compare against the
    # extrapolated sparse cost.  (A real sparse run at this size takes
    # hours; the rate is flat in size, so the extrapolation is fair —
    # and conservative, since dict pressure grows with the space.)
    app, h, mdim = DEFAULT_CONFIGS[name]()
    prog, t_sparse, _ = _timed_pair(app, h, mdim)
    rate = t_sparse / prog.total_points()

    app, h, mdim = PAPER_CONFIGS[name]()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    t0 = time.perf_counter()
    fields, _stats = run.execute_dense(app.init_value)
    t_dense = time.perf_counter() - t0
    points = prog.total_points()
    t_sparse_est = rate * points
    speedup = t_sparse_est / t_dense
    print(f"\n{name} (paper-largest): {points} points, dense "
          f"{t_dense:.1f}s, sparse EXTRAPOLATED {t_sparse_est:.0f}s "
          f"(measured {rate * 1e6:.1f} us/pt) -> est. speedup "
          f"{speedup:.0f}x")
    assert speedup >= SPEEDUP_FLOOR
