"""Extension ablation: one slow node in the mesh.

The paper assumes 16 identical nodes.  Real clusters degrade: this
bench slows a single rank by a factor f and measures how the pipeline
makespan responds.  Because the wavefront schedule chains every
processor through its neighbours, one slow node should drag the whole
machine towards its own speed — the interesting question is how much
of the slowdown the pipeline absorbs.
"""

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.runtime import (ClusterSpec, DistributedRun,
                           FAST_ETHERNET_CLUSTER, TiledProgram)

FACTORS = (1.0, 1.5, 2.0, 3.0)


def _measure():
    x, y = sor_factors(100, 200)
    app = sor.app(100, 200)
    prog = TiledProgram(app.nest, sor.h_nonrectangular(x, y, 8),
                        mapping_dim=2)
    t_seq = FAST_ETHERNET_CLUSTER.compute_time(prog.total_points())
    # slow the *critical* rank — the one that finishes last at nominal
    # speed; a non-critical rank can hide a large slowdown in its slack
    base = DistributedRun(prog, FAST_ETHERNET_CLUSTER).simulate()
    critical = max(base.clocks, key=base.clocks.get)
    rows = []
    for f in FACTORS:
        factors = [1.0] * prog.num_processors
        factors[critical] = f
        spec = ClusterSpec(node_speed_factors=tuple(factors))
        stats = DistributedRun(prog, spec).simulate()
        rows.append((f, t_seq / stats.makespan, stats.makespan))
    return rows


def test_ablation_heterogeneity(benchmark):
    rows = run_once(benchmark, _measure)
    base = rows[0][2]
    print("\nslow-node factor  speedup  makespan stretch")
    for f, s, mk in rows:
        print(f"{f:>16.1f}  {s:>7.3f}  {mk / base:>7.3f}x")
    speeds = [s for _, s, _ in rows]
    # monotone degradation
    assert all(b <= a + 1e-9 for a, b in zip(speeds, speeds[1:]))
    # one slow node cannot stretch the makespan by more than its own
    # factor, and the pipeline absorbs some of it
    for f, _, mk in rows[1:]:
        assert mk / base <= f + 1e-9
        assert mk / base > 1.0