"""Figure 6: SOR speedups for various tile sizes (M=100, N=200).

Paper shape: non-rectangular above rectangular at every tile size; both
curves unimodal (small tiles latency-bound, large tiles pipeline-bound).
"""

from benchmarks.conftest import SOR_Z, print_figure, run_once
from repro.experiments import figures
from repro.experiments.report import improvement_percent


def test_fig06_sor_tilesizes(benchmark):
    fig = run_once(benchmark,
                   lambda: figures.fig6(m=100, n=200, z_values=SOR_Z))
    print_figure(fig)
    m = fig.series_map()
    for z in SOR_Z:
        assert m["non-rectangular"][z] > m["rectangular"][z]
    imp = improvement_percent(fig, "rectangular", "non-rectangular")
    print(f"\nmean speedup improvement: {imp:.1f}% "
          f"(paper reports 17.3% average over its SOR experiments)")
    assert imp > 5.0
    # both series peak strictly inside the sweep or at its ends but vary
    rect_vals = [m["rectangular"][z] for z in SOR_Z]
    assert max(rect_vals) > min(rect_vals)
