"""Measured performance of the real multiprocess parallel backend.

Two layers:

* quick (CI smoke, ``-m quick --quick``): small configs, bitwise
  cross-check against the dense engine, and recorded wall-clock
  timings for the ``BENCH_*.json`` regression gate.
* scaling (multi-core hosts only): the acceptance claim — wall-clock
  speedup > 1.5x at 4 workers on a paper-scale configuration.  Gated
  on ``os.cpu_count() >= 4``; on a single-core container the parallel
  backend cannot (and should not pretend to) beat itself.
"""

import os

import pytest

from repro.apps import sor
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    TiledProgram,
    arrays_match,
    dense_to_cells,
)

#: Speedup floor at 4 workers (acceptance criterion: > 1.5x).
SPEEDUP_FLOOR = 1.5

QUICK_CONFIG = (lambda: sor.app(8, 12), lambda: sor.h_rectangular(2, 3, 4), 2)
#: Paper-scale-ish: enough compute per rank that process startup and
#: mailbox traffic amortise (~seconds of single-worker runtime).
SCALE_CONFIG = (lambda: sor.app(40, 60), lambda: sor.h_rectangular(8, 25, 10),
                2)


@pytest.mark.quick
def test_parallel_quick_bitwise_and_timed(request, bench):
    """CI smoke: parallel == dense bitwise, timings recorded."""
    app_fn, h_fn, mdim = QUICK_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    ref_fields, ref_stats = run.execute_dense(app.init_value)

    captured = {}

    def one_run():
        captured["result"] = run.execute_parallel(
            app.init_value, workers=2)

    result = bench.measure("parallel_sor_quick_w2", one_run, repeats=2)
    fields, stats = captured["result"]
    assert arrays_match(dense_to_cells(fields),
                        dense_to_cells(ref_fields), tol=0.0)
    assert stats.total_messages == ref_stats.total_messages
    assert stats.total_elements == ref_stats.total_elements
    print(f"\nparallel quick (w=2): best {result.best_s:.3f}s, "
          f"median {result.median_s:.3f}s, CV {result.cv:.1%}")


@pytest.mark.quick
def test_dense_reference_timed(bench):
    """The dense single-process run of the same config, for the ratio
    trend in the bench history."""
    app_fn, h_fn, mdim = QUICK_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    bench.measure("dense_sor_quick",
                  lambda: run.execute_dense(app.init_value), repeats=2)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup claim needs >= 4 cores")
def test_parallel_speedup_4workers():
    """Acceptance: > 1.5x wall-clock speedup at 4 workers.

    Baseline is the 1-worker run of the *same* backend (same mailboxes,
    same schedule, zero concurrency), so the ratio isolates real
    parallel overlap rather than engine differences.  Speedup compares
    makespans (max measured rank clock — process spawn excluded on both
    sides, and identically so).
    """
    app_fn, h_fn, mdim = SCALE_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    assert prog.num_processors >= 4

    def span(workers):
        best = float("inf")
        for _ in range(2):
            _, stats = run.execute_parallel(app.init_value,
                                            workers=workers)
            best = min(best, stats.makespan)
        return best

    t1 = span(1)
    t4 = span(4)
    speedup = t1 / t4
    print(f"\nparallel scaling on {prog.num_processors} processors: "
          f"1 worker {t1:.2f}s, 4 workers {t4:.2f}s -> "
          f"{speedup:.2f}x")
    assert speedup > SPEEDUP_FLOOR, (
        f"4-worker speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
        f"(t1={t1:.2f}s, t4={t4:.2f}s)")
