"""Measured performance of the real multiprocess parallel backend.

Two layers:

* quick (CI smoke, ``-m quick --quick``): small configs, bitwise
  cross-check against the dense engine, and recorded wall-clock
  timings for the ``BENCH_*.json`` regression gate.  Parallel timings
  are **host-gated**: when ``os.cpu_count() < workers`` the benchmark
  records a skip entry instead of a number — a 1-CPU runner timing a
  2-worker run measures oversubscription noise (the PR 4 baseline's
  ``parallel_sor_quick_w2`` CV of 0.14 was exactly that), and the
  regression gate must not fail on scheduler jitter.
* scaling (multi-core hosts only): the acceptance claims — wall-clock
  speedup > 1.5x at 4 workers on a paper-scale configuration, and the
  overlapped schedule never slower / >= 3% faster on the
  latency-bound small-tile config.  Gated on ``os.cpu_count() >= 4``;
  on a single-core container the parallel backend cannot (and should
  not pretend to) beat itself.
"""

import os

import pytest

from repro.apps import sor
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    TiledProgram,
    arrays_match,
    dense_to_cells,
)

#: Speedup floor at 4 workers (acceptance criterion: > 1.5x).
SPEEDUP_FLOOR = 1.5
#: Overlap acceptance: >= 3% faster than blocking on the small-tile
#: (latency-bound) SOR config at 4 workers.
OVERLAP_GAIN_FLOOR = 0.03

QUICK_CONFIG = (lambda: sor.app(8, 12), lambda: sor.h_rectangular(2, 3, 4), 2)
#: Paper-scale-ish: enough compute per rank that process startup and
#: mailbox traffic amortise (~seconds of single-worker runtime).
SCALE_CONFIG = (lambda: sor.app(40, 60), lambda: sor.h_rectangular(8, 25, 10),
                2)
#: Latency-bound: many small tiles, so per-message latency dominates
#: and hiding it behind interior compute has the most to win (the
#: region where the simulator ablation predicted the largest gain).
SMALL_TILE_CONFIG = (lambda: sor.app(24, 48),
                     lambda: sor.h_rectangular(2, 6, 4), 2)


def _enough_cpus(workers):
    return (os.cpu_count() or 1) >= workers


@pytest.mark.quick
def test_parallel_quick_bitwise_and_timed(request, bench):
    """CI smoke: parallel == dense bitwise; timings recorded only on
    hosts with enough CPUs to make them meaningful."""
    app_fn, h_fn, mdim = QUICK_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    ref_fields, ref_stats = run.execute_dense(app.init_value)

    captured = {}

    def one_run():
        captured["result"] = run.execute_parallel(
            app.init_value, workers=2)

    if _enough_cpus(2):
        result = bench.measure("parallel_sor_quick_w2", one_run,
                               repeats=2)
        print(f"\nparallel quick (w=2): best {result.best_s:.3f}s, "
              f"median {result.median_s:.3f}s, CV {result.cv:.1%}")
    else:
        bench.skip("parallel_sor_quick_w2",
                   f"os.cpu_count()={os.cpu_count()} < 2 workers "
                   f"(oversubscribed timing is noise)")
        one_run()       # still verify correctness, just don't time it
    fields, stats = captured["result"]
    assert arrays_match(dense_to_cells(fields),
                        dense_to_cells(ref_fields), tol=0.0)
    assert stats.total_messages == ref_stats.total_messages
    assert stats.total_elements == ref_stats.total_elements


@pytest.mark.quick
def test_overlap_quick_bitwise_and_timed(bench):
    """CI smoke for the overlapped schedule: bitwise identical to the
    dense engine; timing recorded as ``overlap_sor_quick`` (host-gated
    like every parallel benchmark)."""
    app_fn, h_fn, mdim = QUICK_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    ref_fields, ref_stats = run.execute_dense(app.init_value)

    captured = {}

    def one_run():
        captured["result"] = run.execute_parallel(
            app.init_value, workers=2, overlap=True)

    if _enough_cpus(2):
        result = bench.measure("overlap_sor_quick", one_run, repeats=2)
        print(f"\noverlap quick (w=2): best {result.best_s:.3f}s, "
              f"median {result.median_s:.3f}s, CV {result.cv:.1%}")
    else:
        bench.skip("overlap_sor_quick",
                   f"os.cpu_count()={os.cpu_count()} < 2 workers "
                   f"(oversubscribed timing is noise)")
        one_run()
    fields, stats = captured["result"]
    assert arrays_match(dense_to_cells(fields),
                        dense_to_cells(ref_fields), tol=0.0)
    assert stats.total_messages == ref_stats.total_messages
    assert stats.total_elements == ref_stats.total_elements


@pytest.mark.quick
def test_dense_reference_timed(bench):
    """The dense single-process run of the same config, for the ratio
    trend in the bench history."""
    app_fn, h_fn, mdim = QUICK_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    bench.measure("dense_sor_quick",
                  lambda: run.execute_dense(app.init_value), repeats=2)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup claim needs >= 4 cores")
def test_parallel_speedup_4workers():
    """Acceptance: > 1.5x wall-clock speedup at 4 workers.

    Baseline is the 1-worker run of the *same* backend (same mailboxes,
    same schedule, zero concurrency), so the ratio isolates real
    parallel overlap rather than engine differences.  Speedup compares
    makespans (max measured rank clock — process spawn excluded on both
    sides, and identically so).
    """
    app_fn, h_fn, mdim = SCALE_CONFIG
    app, h = app_fn(), h_fn()
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    run = DistributedRun(prog, ClusterSpec())
    assert prog.num_processors >= 4

    def span(workers):
        best = float("inf")
        for _ in range(2):
            _, stats = run.execute_parallel(app.init_value,
                                            workers=workers)
            best = min(best, stats.makespan)
        return best

    t1 = span(1)
    t4 = span(4)
    speedup = t1 / t4
    print(f"\nparallel scaling on {prog.num_processors} processors: "
          f"1 worker {t1:.2f}s, 4 workers {t4:.2f}s -> "
          f"{speedup:.2f}x")
    assert speedup > SPEEDUP_FLOOR, (
        f"4-worker speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
        f"(t1={t1:.2f}s, t4={t4:.2f}s)")


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="overlap claim needs >= 4 cores")
def test_overlap_vs_blocking_4workers():
    """Acceptance: the overlapped schedule is never slower than
    blocking, and >= 3% faster on the latency-bound small-tile SOR
    config at 4 workers (where per-message latency dominates and
    interior compute can hide it).

    Both sides take min-of-3 makespans of the identical program on the
    identical mailboxes, so the ratio isolates the schedule change.  A
    small tolerance (2%) guards the never-slower claim against timer
    jitter on the scale config.
    """
    def span(app, h, mdim, workers, overlap):
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        run = DistributedRun(prog, ClusterSpec())
        best = float("inf")
        for _ in range(3):
            _, stats = run.execute_parallel(
                app.init_value, workers=workers, overlap=overlap)
            best = min(best, stats.makespan)
        return best

    # Never slower (within jitter) on the compute-bound scale config.
    app_fn, h_fn, mdim = SCALE_CONFIG
    app, h = app_fn(), h_fn()
    t_block = span(app, h, mdim, 4, overlap=False)
    t_over = span(app, h, mdim, 4, overlap=True)
    print(f"\noverlap vs blocking (scale): {t_block:.3f}s -> "
          f"{t_over:.3f}s ({t_block / t_over:.3f}x)")
    assert t_over <= t_block * 1.02, (
        f"overlap slower on the scale config: {t_over:.3f}s vs "
        f"{t_block:.3f}s blocking")

    # >= 3% faster where latency dominates.
    app_fn, h_fn, mdim = SMALL_TILE_CONFIG
    app, h = app_fn(), h_fn()
    t_block = span(app, h, mdim, 4, overlap=False)
    t_over = span(app, h, mdim, 4, overlap=True)
    gain = 1.0 - t_over / t_block
    print(f"overlap vs blocking (small-tile): {t_block:.3f}s -> "
          f"{t_over:.3f}s (gain {gain:.1%})")
    assert gain >= OVERLAP_GAIN_FLOOR, (
        f"overlap gain {gain:.1%} below {OVERLAP_GAIN_FLOOR:.0%} on "
        f"the latency-bound config (blocking {t_block:.3f}s, "
        f"overlap {t_over:.3f}s)")
