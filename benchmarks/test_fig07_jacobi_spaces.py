"""Figure 7: Jacobi maximum speedups for different iteration spaces."""

from benchmarks.conftest import (JACOBI_SPACES, JACOBI_X, print_figure,
                                 run_once)
from repro.experiments import figures


def test_fig07_jacobi_spaces(benchmark):
    fig = run_once(benchmark, lambda: figures.fig7(
        spaces=JACOBI_SPACES, x_values=JACOBI_X))
    print_figure(fig)
    m = fig.series_map()
    for space in m["rectangular"]:
        assert m["non-rectangular"][space] > m["rectangular"][space]
