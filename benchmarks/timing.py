"""Trustworthy wall-clock timing for the benchmark suite.

The numbers that end up in ``BENCH_*.json`` gate CI, so they must be
reproducible run-to-run.  Three rules, applied by every helper here:

* the garbage collector is disabled around the timed region (a cycle
  collection inside a sample is pure noise);
* all clocks are ``time.perf_counter_ns`` — one monotonic, integer
  clock everywhere, no mixing of ``time.time``/``perf_counter`` floats;
* every measurement reports its coefficient of variation and warns
  above :data:`CV_WARN_THRESHOLD`, so a noisy host is visible in the
  run log instead of silently polluting the baseline.

Summary statistics follow the usual bench discipline: *min* as the
contention-free estimate (what the regression gate compares), *median*
as the typical-case number recorded alongside it.
"""

from __future__ import annotations

import gc
import resource
import statistics
import sys
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Tuple

#: Warn when run-to-run spread (CV = stdev/mean) exceeds this.
CV_WARN_THRESHOLD = 0.10

#: Adaptive resampling ceiling: a measurement whose CV exceeds the
#: threshold keeps sampling (min-of-2 escalates toward min-of-5) until
#: the spread settles or this many samples have been taken.
MAX_REPEATS = 5


@contextmanager
def gc_disabled() -> Iterator[None]:
    """Disable the cyclic GC for the duration (restores prior state)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def rss_mib() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass(frozen=True)
class TimingResult:
    """Samples of one benchmark, in nanoseconds."""

    name: str
    samples_ns: Tuple[int, ...]
    rss_mib: float

    @property
    def best_s(self) -> float:
        return min(self.samples_ns) / 1e9

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples_ns) / 1e9

    @property
    def cv(self) -> float:
        """Coefficient of variation (0.0 for a single sample)."""
        if len(self.samples_ns) < 2:
            return 0.0
        mean = statistics.fmean(self.samples_ns)
        if mean == 0:
            return 0.0
        return statistics.stdev(self.samples_ns) / mean

    def warn_if_noisy(self) -> None:
        if self.cv > CV_WARN_THRESHOLD:
            warnings.warn(
                f"benchmark {self.name!r}: CV {self.cv:.1%} exceeds "
                f"{CV_WARN_THRESHOLD:.0%} — timings on this host are "
                f"noisy; treat regressions with suspicion",
                stacklevel=2)


def time_fn(name: str, fn: Callable[[], object],
            repeats: int = 2) -> TimingResult:
    """Time ``fn`` ``repeats`` times (GC off, ``perf_counter_ns``).

    Warms nothing and discards nothing: with min-of summary the first,
    cache-cold sample can only lose, never bias the gate downward.

    Adaptive resampling: when the spread across the initial samples
    exceeds :data:`CV_WARN_THRESHOLD`, additional samples are taken
    (up to :data:`MAX_REPEATS` total) before summarising — min-of-2
    escalates to min-of-5 on a noisy host, so baseline entries stay
    stable enough for the regression gate instead of only warning.
    """
    samples = []

    def cv_of(vals) -> float:
        if len(vals) < 2:
            return 0.0
        mean = statistics.fmean(vals)
        if mean == 0:
            return 0.0
        return statistics.stdev(vals) / mean

    with gc_disabled():
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter_ns()
            fn()
            samples.append(time.perf_counter_ns() - t0)
        while (cv_of(samples) > CV_WARN_THRESHOLD
               and len(samples) < MAX_REPEATS):
            t0 = time.perf_counter_ns()
            fn()
            samples.append(time.perf_counter_ns() - t0)
    result = TimingResult(name=name, samples_ns=tuple(samples),
                          rss_mib=rss_mib())
    result.warn_if_noisy()
    return result
