"""Tuner pruning-ladder guard: cheap search, same winner.

The tuner's value proposition is that its pruning ladder — analytic
cost ranking, the COST04 lower-bound early stop, and the top-k shape
frontier — finds the paper-grade winner while paying for only a
fraction of the simulator runs an exhaustive sweep needs.  This bench
pins that claim: on the reference SOR config the pruned search must
use at least :data:`EVAL_FLOOR` times fewer simulator evaluations than
the exhaustive configuration *and* crown the identical ``H`` matrix.

The exhaustive side disables both pruning rungs explicitly:
``stop_ratio=0.0`` can never satisfy the stop test (the bound ratio is
strictly above 1 by construction), and a huge ``top_k`` widens the
frontier to every costed candidate.  Identical candidate space, so the
eval-count ratio isolates the ladder itself.

In ``--quick`` mode the pruned search's wall time is additionally
recorded as ``tune_sor_quick`` for the CI regression gate; the floor
asserts in both modes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import sor
from repro.runtime.machine import ClusterSpec
from repro.tuning import TuneConfig, tune_tile_shape

#: Minimum simulator-eval ratio, exhaustive over pruned.
EVAL_FLOOR = 5.0


def _reference():
    return sor.app(8, 12), sor.h_rectangular(2, 3, 4), ClusterSpec()


def _tune_pruned():
    app, h, spec = _reference()
    return tune_tile_shape(app.nest, app.mapping_dim, spec=spec,
                           config=TuneConfig(), baseline_h=h)


def _tune_exhaustive():
    app, h, spec = _reference()
    return tune_tile_shape(
        app.nest, app.mapping_dim, spec=spec,
        config=TuneConfig(stop_ratio=0.0, top_k=10 ** 6), baseline_h=h)


@pytest.mark.quick
def test_pruned_search_matches_exhaustive_winner(benchmark, bench,
                                                 request):
    pruned = run_once(benchmark, _tune_pruned)
    exhaustive = _tune_exhaustive()

    assert pruned.early_stop, "reference config must trip the stop rule"
    assert not exhaustive.early_stop
    assert pruned.simulator_evals > 0
    ratio = exhaustive.simulator_evals / pruned.simulator_evals
    print(f"\nsimulator evals: pruned {pruned.simulator_evals}, "
          f"exhaustive {exhaustive.simulator_evals} -> {ratio:.1f}x")
    print(f"pruned winner:     {pruned.winner.label} "
          f"({pruned.winner.simulated_makespan:.6f}s)")
    print(f"exhaustive winner: {exhaustive.winner.label} "
          f"({exhaustive.winner.simulated_makespan:.6f}s)")

    # Pinned winner: pruning may never change the answer, only its cost.
    assert pruned.winner_h == exhaustive.winner_h
    assert pruned.winner.simulated_makespan == \
        exhaustive.winner.simulated_makespan

    if request.config.getoption("--quick"):
        bench.measure("tune_sor_quick", _tune_pruned, repeats=2)

    assert ratio >= EVAL_FLOOR, (
        f"pruning ladder saved only {ratio:.1f}x simulator evals "
        f"(floor {EVAL_FLOOR}x)")
