"""Micro-benchmarks: code-emission speed.

The paper stresses "negligible compile-time overhead"; emission is the
last compiler stage, so it's measured alongside the analysis passes in
``test_compiler_passes``.
"""

import pytest

from repro.apps import jacobi
from repro.codegen import (
    generate_mpi_code,
    generate_python_node_programs,
    generate_python_sequential,
    generate_sequential_tiled_code,
)


@pytest.fixture(scope="module")
def setting():
    app = jacobi.app(12, 16, 16)
    return app, jacobi.h_nonrectangular(3, 4, 4)


def test_bench_emit_sequential_c(benchmark, setting):
    app, h = setting
    code = benchmark(generate_sequential_tiled_code, app.nest, h)
    assert "for (long jS0" in code


def test_bench_emit_mpi_c(benchmark, setting):
    app, h = setting
    code = benchmark(generate_mpi_code, app.nest, h, 0)
    assert "MPI_Send" in code


def test_bench_emit_python_sequential(benchmark, setting):
    app, h = setting
    code = benchmark(generate_python_sequential, app.nest, h)
    assert "def execute" in code


def test_bench_emit_python_schedule(benchmark, setting):
    app, h = setting

    def emit():
        return generate_python_node_programs(app.nest, h, mapping_dim=0)

    code = benchmark.pedantic(emit, rounds=3, iterations=1)
    assert "SCHEDULES" in code
