"""Micro-benchmarks of the compiler passes themselves.

These are real pytest-benchmark measurements (many rounds): HNF,
Fourier-Motzkin bound derivation, tile-space enumeration, TTIS lattice
generation, and full program compilation — the compile-time overhead
the paper claims is 'negligible'.
"""

import pytest

from repro.apps import sor
from repro.linalg import column_hnf
from repro.polyhedra import box, loop_bounds
from repro.runtime import TiledProgram
from repro.tiling import TilingTransformation


@pytest.fixture(scope="module")
def sor_app():
    return sor.app(50, 100)


def test_bench_column_hnf(benchmark):
    a = [[12, -7, 3], [0, 5, -2], [4, 4, 9]]
    b, u = benchmark(column_hnf, a)
    assert (b.to_int_rows()[0][1], b.to_int_rows()[0][2]) == (0, 0)


def test_bench_fourier_motzkin_bounds(benchmark, sor_app):
    h = sor.h_nonrectangular(10, 25, 20)
    tt = TilingTransformation(h, sor_app.nest.domain)
    bounds = benchmark(tt.tile_space_bounds)
    assert len(bounds) == 3


def test_bench_tile_enumeration(benchmark, sor_app):
    h = sor.h_nonrectangular(10, 25, 20)

    def enumerate_fresh():
        tt = TilingTransformation(h, sor_app.nest.domain)
        return tt.enumerate_tiles()

    tiles = benchmark(enumerate_fresh)
    assert len(tiles) > 0


def test_bench_ttis_lattice(benchmark):
    from repro.apps import jacobi
    h = jacobi.h_nonrectangular(8, 16, 16)

    def lattice_fresh():
        from repro.tiling import TTIS
        return TTIS(h).lattice_points_np()

    lat = benchmark(lattice_fresh)
    assert len(lat) == 8 * 16 * 16


def test_bench_full_compile(benchmark, sor_app):
    """End-to-end compilation (the paper's 'negligible compile time')."""
    h = sor.h_nonrectangular(10, 25, 20)

    def compile_program():
        return TiledProgram(sor_app.nest, h, mapping_dim=2)

    prog = benchmark(compile_program)
    assert prog.num_processors >= 1
