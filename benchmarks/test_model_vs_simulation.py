"""Ablation: closed-form completion-time model vs discrete-event sim.

The Hodzic-Shang-style prediction (steps x per-step time) ignores
boundary-tile clipping and pipeline fill/drain.  This bench quantifies
the gap across tile shapes — and checks the *ranking* agrees: the model
must predict the same winner the simulation crowns, which is the whole
point of shape selection theory.
"""

from benchmarks.conftest import run_once
from repro.apps import adi
from repro.runtime import DistributedRun, FAST_ETHERNET_CLUSTER, TiledProgram
from repro.schedule import predict_makespan


def _compare():
    app = adi.app(100, 256)
    from repro.experiments.figures import adi_factors
    y, z = adi_factors(100, 256)
    rows = []
    for label, hf in (("rect", adi.h_rectangular), ("nr1", adi.h_nr1),
                      ("nr2", adi.h_nr2), ("nr3", adi.h_nr3)):
        h = hf(4, y, z)
        prog = TiledProgram(app.nest, h, mapping_dim=0)
        sim = DistributedRun(prog, FAST_ETHERNET_CLUSTER).simulate()
        pred = predict_makespan(prog.tiling, app.nest.dependences, 0,
                                FAST_ETHERNET_CLUSTER,
                                arrays=len(prog.arrays))
        rows.append((label, pred.total, sim.makespan))
    return rows


def test_model_vs_simulation(benchmark):
    rows = run_once(benchmark, _compare)
    print("\ntiling  predicted(s)  simulated(s)  ratio")
    for label, pred, sim in rows:
        print(f"{label:<7} {pred:>11.4f}  {sim:>11.4f}  {pred / sim:>5.2f}")
    for _, pred, sim in rows:
        assert 0.25 < pred / sim < 4.0, "model should track the DES"
    pred_rank = [l for l, p, _ in sorted(rows, key=lambda r: r[1])]
    sim_rank = [l for l, _, s in sorted(rows, key=lambda r: r[2])]
    assert pred_rank[0] == sim_rank[0] == "nr3", (
        "model and simulation must crown the same (cone-aligned) winner")
    assert pred_rank[-1] == sim_rank[-1] == "rect"
