"""Figure 10: ADI speedups for various tile sizes (T=100, N=256)."""

from benchmarks.conftest import ADI_X, print_figure, run_once
from repro.experiments import figures


def test_fig10_adi_tilesizes(benchmark):
    fig = run_once(benchmark, lambda: figures.fig10(
        t=100, n=256, x_values=ADI_X))
    print_figure(fig)
    m = fig.series_map()
    for x in ADI_X:
        # §4.4 "gradual improvement from the rectangular tiling to the
        # non-rectangular one taken from the tiling cone"
        assert m["nr3"][x] > m["rect"][x]
        assert m["nr1"][x] > m["rect"][x]
        assert m["nr2"][x] > m["rect"][x]
        assert m["nr3"][x] >= m["nr1"][x] - 1e-9
        assert m["nr3"][x] >= m["nr2"][x] - 1e-9
