"""Unit tests for the §4.4 improvement summary (cheap paths only —
the full-scale aggregation runs in benchmarks/)."""

from repro.experiments.summary import (
    PAPER_IMPROVEMENTS,
    ImprovementSummary,
    average_improvements,
)
from repro.runtime import ClusterSpec


class TestTable:
    def test_contains_all_apps(self):
        s = ImprovementSummary(measured={"sor": 20.0, "jacobi": 10.0,
                                         "adi": 12.0})
        text = s.table()
        for app in ("sor", "jacobi", "adi"):
            assert app in text
        assert "17.3" in text  # paper column present

    def test_paper_constants(self):
        assert PAPER_IMPROVEMENTS == {"sor": 17.3, "jacobi": 9.1,
                                      "adi": 10.1}


class TestSmallScaleAggregation:
    def test_positive_on_tiny_sweeps(self):
        s = average_improvements(spec=ClusterSpec(),
                                 sor_z=(6,), jacobi_x=(4,), adi_x=(4,))
        assert set(s.measured) == {"sor", "jacobi", "adi"}
        for v in s.measured.values():
            assert v > 0
