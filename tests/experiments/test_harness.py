"""Unit tests for the experiment harness (small, fast instances)."""

import pytest

from repro.apps import sor
from repro.experiments import run_experiment
from repro.runtime import ClusterSpec


@pytest.fixture(scope="module")
def result(sor_tiny):
    return run_experiment(sor_tiny, sor.h_nonrectangular(2, 3, 4),
                          "nr-test", ClusterSpec())


@pytest.fixture(scope="module")
def sor_tiny():
    return sor.app(6, 8)


class TestExperimentResult:
    def test_speedup_definition(self, result):
        assert result.speedup == pytest.approx(result.t_seq / result.t_par)

    def test_t_seq_is_total_work(self, result):
        spec = ClusterSpec()
        assert result.t_seq == pytest.approx(
            spec.compute_time(result.total_points))

    def test_total_points(self, result):
        assert result.total_points == 6 * 8 * 8

    def test_efficiency_bounded(self, result):
        assert 0 < result.efficiency <= 1.0

    def test_speedup_bounded_by_processors(self, result):
        assert result.speedup <= result.processors

    def test_row_shape(self, result):
        row = result.row()
        assert row[1] == "nr-test"
        assert isinstance(row[-1], float)

    def test_messages_positive_with_multiple_pids(self, result):
        if result.processors > 1:
            assert result.messages > 0


class TestCustomSpec:
    def test_faster_network_helps(self, sor_tiny):
        h = sor.h_nonrectangular(2, 3, 4)
        slow = run_experiment(sor_tiny, h, "slow",
                              ClusterSpec(net_bandwidth=1e6))
        fast = run_experiment(sor_tiny, h, "fast",
                              ClusterSpec(net_bandwidth=1e9))
        assert fast.speedup > slow.speedup

    def test_default_spec_used_when_none(self, sor_tiny):
        r = run_experiment(sor_tiny, sor.h_nonrectangular(2, 3, 4), "d")
        assert r.t_par > 0
