"""Unit tests for the HTML/SVG experiment report."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.figures import FigureResult, FigureSeries
from repro.experiments.html_report import (
    figure_to_svg,
    report_html,
)


def _fig(nseries=2, nx=3):
    labels = ["rect", "nr1", "nr2", "nr3"][:nseries]
    series = tuple(
        FigureSeries(l, tuple((x, 1.0 + 0.5 * i + 0.2 * x)
                              for x in range(1, nx + 1)))
        for i, l in enumerate(labels)
    )
    return FigureResult(figure="t", title="Test figure",
                        xlabel="z", series=series, details=())


class TestSvg:
    def test_wellformed_xml(self):
        ET.fromstring(figure_to_svg(_fig()))

    def test_one_path_per_series(self):
        root = ET.fromstring(figure_to_svg(_fig(4)))
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        assert len(paths) == 4

    def test_markers_have_surface_ring(self):
        root = ET.fromstring(figure_to_svg(_fig()))
        for c in (e for e in root.iter() if e.tag.endswith("circle")):
            assert c.get("stroke") == "var(--surface-1)"
            assert c.get("stroke-width") == "2"
            assert float(c.get("r")) >= 4

    def test_lines_are_2px_round(self):
        root = ET.fromstring(figure_to_svg(_fig()))
        for p in (e for e in root.iter() if e.tag.endswith("path")):
            assert p.get("stroke-width") == "2"
            assert p.get("stroke-linecap") == "round"

    def test_fixed_series_color_order(self):
        svg = figure_to_svg(_fig(3))
        assert svg.index("var(--series-1)") < svg.index("var(--series-2)")
        assert "var(--series-4)" not in svg

    def test_tooltips_present(self):
        svg = figure_to_svg(_fig())
        assert svg.count("<title>") >= 6  # one per marker

    def test_text_never_wears_series_color(self):
        root = ET.fromstring(figure_to_svg(_fig(4)))
        for t in (e for e in root.iter() if e.tag.endswith("text")):
            assert t.get("fill") is None  # inherits text tokens via CSS

    def test_no_text_outside_viewbox(self):
        root = ET.fromstring(figure_to_svg(_fig(4)))
        vb = [float(x) for x in root.get("viewBox").split()]
        for t in (e for e in root.iter() if e.tag.endswith("text")):
            assert 0 <= float(t.get("x")) <= vb[2]
            assert 0 <= float(t.get("y")) <= vb[3] + 1

    def test_converging_end_labels_not_stacked(self):
        """Series ending at the same value: only one direct label; the
        legend carries the rest."""
        series = tuple(
            FigureSeries(l, ((1, 1.0), (2, 2.0)))
            for l in ("a", "b", "c")
        )
        fig = FigureResult(figure="t", title="conv", xlabel="x",
                           series=series, details=())
        root = ET.fromstring(figure_to_svg(fig))
        end_labels = [t for t in root.iter()
                      if t.tag.endswith("text") and t.text in "abc"]
        assert len(end_labels) == 1

    def test_empty_figure_rejected(self):
        fig = FigureResult(figure="t", title="x", xlabel="x",
                           series=(FigureSeries("a", ()),), details=())
        with pytest.raises(ValueError):
            figure_to_svg(fig)


class TestReport:
    def test_self_contained_html(self):
        html = report_html([_fig()])
        assert html.startswith("<!doctype html>")
        assert "<script" not in html  # no external deps
        assert "prefers-color-scheme: dark" in html

    def test_legend_present_for_multi_series(self):
        html = report_html([_fig(3)])
        assert html.count('class="key"') == 3

    def test_no_legend_for_single_series(self):
        html = report_html([_fig(1)])
        assert 'class="key"' not in html

    def test_table_view_present(self):
        """Relief rule: low-contrast hues require the data table."""
        html = report_html([_fig(4)])
        assert "<table>" in html
        assert html.count("<tr>") >= 3

    def test_real_figure_roundtrip(self):
        from repro.experiments import figures
        from repro.runtime import ClusterSpec
        fig = figures.fig6(m=20, n=30, z_values=(3, 6),
                           spec=ClusterSpec())
        html = report_html([fig])
        ET.fromstring(re.search(r"<svg.*?</svg>", html, re.S).group(0))
