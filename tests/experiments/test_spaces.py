"""Unit tests for processor-grid extent selection."""

import pytest

from repro.experiments import processor_grid_sizes, tile_count_extent


class TestTileCountExtent:
    def test_exact_division(self):
        # [0, 99] with s=25 -> tiles 0..3
        assert tile_count_extent(0, 99, 4) == 25

    def test_one_based_range(self):
        # [1, 100]: s=25 gives 5 tile rows (0..4); smallest with 4 is 26
        s = tile_count_extent(1, 100, 4)
        assert s == 26
        assert 100 // s - 1 // s + 1 == 4

    def test_single_tile(self):
        s = tile_count_extent(3, 9, 1)
        assert 9 // s == 3 // s

    def test_single_tile_needs_extent_past_hi(self):
        assert tile_count_extent(3, 9, 1) == 10

    def test_single_tile_impossible_across_zero(self):
        """lo < 0 <= hi always spans two tile rows (floor division)."""
        with pytest.raises(ValueError):
            tile_count_extent(-7, 8, 1)

    def test_count_equals_span(self):
        assert tile_count_extent(5, 8, 4) == 1

    def test_negative_lo(self):
        s = tile_count_extent(-7, 8, 4)
        assert 8 // s - (-7) // s + 1 == 4

    def test_impossible_count(self):
        with pytest.raises(ValueError):
            tile_count_extent(0, 3, 10)

    def test_empty_range(self):
        with pytest.raises(ValueError):
            tile_count_extent(5, 4, 1)

    @pytest.mark.parametrize("lo,hi,count", [
        (1, 100, 4), (2, 300, 4), (3, 400, 5), (1, 256, 4), (2, 150, 3),
    ])
    def test_postcondition(self, lo, hi, count):
        s = tile_count_extent(lo, hi, count)
        assert hi // s - lo // s + 1 == count


class TestProcessorGrid:
    def test_4x4(self):
        sizes = processor_grid_sizes([(1, 100), (2, 300)], [4, 4])
        assert len(sizes) == 2
        for (lo, hi), g, s in zip([(1, 100), (2, 300)], [4, 4], sizes):
            assert hi // s - lo // s + 1 == g

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            processor_grid_sizes([(0, 9)], [2, 2])
