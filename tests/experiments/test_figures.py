"""Unit tests for the figure drivers (reduced parameter sets).

These check structure and the paper's qualitative claims on *small*
instances; the full paper-scale sweeps live in benchmarks/.
"""

import pytest

from repro.experiments import figures
from repro.experiments.report import format_table, improvement_percent
from repro.runtime import ClusterSpec

SPEC = ClusterSpec()


@pytest.fixture(scope="module")
def fig6_small():
    return figures.fig6(m=20, n=30, z_values=(3, 6), spec=SPEC)


@pytest.fixture(scope="module")
def fig10_small():
    return figures.fig10(t=12, n=16, x_values=(2, 3), spec=SPEC)


class TestFig6:
    def test_series_labels(self, fig6_small):
        assert [s.label for s in fig6_small.series] == [
            "rectangular", "non-rectangular"]

    def test_x_values(self, fig6_small):
        assert [x for x, _ in fig6_small.series[0].points] == [3, 6]

    def test_nonrect_wins_everywhere(self, fig6_small):
        m = fig6_small.series_map()
        for z in (3, 6):
            assert m["non-rectangular"][z] > m["rectangular"][z]

    def test_best(self, fig6_small):
        m = fig6_small.series_map()
        assert fig6_small.best("rectangular") == max(
            m["rectangular"].values())

    def test_details_populated(self, fig6_small):
        assert len(fig6_small.details) == 4  # 2 tilings x 2 z-values


class TestFig5:
    def test_two_spaces(self):
        fig = figures.fig5(spaces=((16, 24), (20, 30)), z_values=(3, 6),
                           spec=SPEC)
        assert len(fig.series[0].points) == 2
        m = fig.series_map()
        for label in m["rectangular"]:
            assert m["non-rectangular"][label] >= m["rectangular"][label]


class TestFig8:
    def test_nonrect_wins(self):
        fig = figures.fig8(t=10, i=16, j=16, x_values=(2, 3), spec=SPEC)
        m = fig.series_map()
        for x in (2, 3):
            assert m["non-rectangular"][x] > m["rectangular"][x]


class TestFig10:
    def test_four_series(self, fig10_small):
        assert [s.label for s in fig10_small.series] == [
            "rect", "nr1", "nr2", "nr3"]

    def test_paper_ordering(self, fig10_small):
        """nr3 >= nr1, nr2 >= rect at every tile size (§4.4)."""
        m = fig10_small.series_map()
        for x in (2, 3):
            assert m["nr3"][x] > m["rect"][x]
            assert m["nr1"][x] > m["rect"][x]
            assert m["nr2"][x] > m["rect"][x]
            assert m["nr3"][x] >= m["nr1"][x] - 1e-9
            assert m["nr3"][x] >= m["nr2"][x] - 1e-9


class TestReport:
    def test_format_table(self, fig6_small):
        table = format_table(fig6_small)
        assert "rectangular" in table
        assert "non-rectangular" in table
        lines = table.splitlines()
        assert len(lines) == 3 + 2  # title, header, rule, 2 rows

    def test_improvement_percent_positive(self, fig6_small):
        imp = improvement_percent(fig6_small, "rectangular",
                                  "non-rectangular")
        assert imp > 0

    def test_improvement_requires_shared_x(self):
        from repro.experiments.figures import FigureResult, FigureSeries
        fig = FigureResult(
            figure="x", title="t", xlabel="x",
            series=(FigureSeries("a", ((1, 1.0),)),
                    FigureSeries("b", ((2, 2.0),))),
            details=())
        with pytest.raises(ValueError):
            improvement_percent(fig, "a", "b")


class TestCsv:
    def test_header_and_rows(self, fig6_small):
        from repro.experiments.report import to_csv
        csv = to_csv(fig6_small)
        lines = csv.strip().splitlines()
        assert lines[0] == "x,rectangular,non-rectangular"
        assert len(lines) == 3  # header + 2 z-values

    def test_values_parse(self, fig6_small):
        from repro.experiments.report import to_csv
        csv = to_csv(fig6_small)
        for line in csv.strip().splitlines()[1:]:
            x, *vals = line.split(",")
            assert all(float(v) > 0 for v in vals)


class TestFactorHelpers:
    def test_sor_factors_give_4x4_mesh(self):
        """The factors pin a 4x4 pid mesh; heavily skewed spaces leave
        the extreme corner pids without tiles (idle ranks, exactly as
        launching 16 MPI processes on the paper's cluster would)."""
        from repro.apps import sor as sor_app
        from repro.runtime import TiledProgram
        x, y = figures.sor_factors(20, 30)
        app = sor_app.app(20, 30)
        prog = TiledProgram(app.nest, sor_app.h_rectangular(x, y, 5),
                            mapping_dim=2)
        axes = [sorted({p[k] for p in prog.pids}) for k in range(2)]
        assert len(axes[0]) == 4 and len(axes[1]) == 4
        assert 12 <= prog.num_processors <= 16

    def test_jacobi_factors_even_y(self):
        y, z = figures.jacobi_factors(10, 16, 16)
        assert y % 2 == 0

    def test_adi_factors_give_16_processors(self):
        from repro.apps import adi as adi_app
        from repro.runtime import TiledProgram
        y, z = figures.adi_factors(12, 16)
        app = adi_app.app(12, 16)
        prog = TiledProgram(app.nest, adi_app.h_rectangular(3, y, z),
                            mapping_dim=0)
        assert prog.num_processors == 16
