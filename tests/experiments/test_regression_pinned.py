"""Pinned end-to-end regression values.

The virtual cluster is deterministic, so figure series are *exactly*
reproducible.  These values were produced by the current pipeline and
pin every layer at once (tiling, distribution, communication sizes,
DES timing, cost model).  If a change moves them, it changed observable
behaviour — either fix the change or re-pin deliberately and say why in
the commit.
"""

import pytest

from repro.experiments import figures
from repro.runtime import ClusterSpec

SPEC = ClusterSpec()  # default FastEthernet model

FIG6_PINNED = {
    "rectangular": {4: 2.024014676, 8: 2.239039494},
    "non-rectangular": {4: 2.522117791, 8: 2.703805395},
}

FIG10_PINNED = {
    "rect": {2: 1.617485907, 4: 1.936879603},
    "nr1": {2: 1.890439726, 4: 2.481058407},
    "nr2": {2: 1.759380895, 4: 2.217440145},
    "nr3": {2: 2.025717112, 4: 2.880450070},
}


class TestPinnedFigures:
    def test_fig6_small_instance(self):
        fig = figures.fig6(m=40, n=60, z_values=(4, 8), spec=SPEC)
        got = fig.series_map()
        for label, series in FIG6_PINNED.items():
            for x, v in series.items():
                assert got[label][x] == pytest.approx(v, abs=1e-6), (
                    label, x)

    def test_fig10_small_instance(self):
        fig = figures.fig10(t=20, n=32, x_values=(2, 4), spec=SPEC)
        got = fig.series_map()
        for label, series in FIG10_PINNED.items():
            for x, v in series.items():
                assert got[label][x] == pytest.approx(v, abs=1e-6), (
                    label, x)

    def test_rerun_is_bit_identical(self):
        a = figures.fig6(m=40, n=60, z_values=(4,), spec=SPEC)
        b = figures.fig6(m=40, n=60, z_values=(4,), spec=SPEC)
        assert a.series_map() == b.series_map()
