"""The predicted-vs-simulated-vs-measured validation experiment:
without measurement it is pure model — predicted must equal simulated
bitwise on every default config."""

from repro.experiments import costval


def test_default_configs_predict_exactly():
    rows = costval.run(measure=False)
    assert len(rows) == 3
    assert {r.app.split("-")[0] for r in rows} == \
        {"sor", "jacobi", "adi"}
    for r in rows:
        assert r.exact, (r.app, r.predicted, r.simulated)
        assert r.measured is None
        assert r.processors > 1


def test_format_rows_is_markdown():
    rows = costval.run(measure=False)
    table = costval.format_rows(rows)
    lines = table.splitlines()
    assert lines[0].startswith("| app |")
    assert len(lines) == 2 + len(rows)
    assert all(l.count("|") == 8 for l in lines)
