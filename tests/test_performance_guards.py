"""Compile-time guards: the paper claims negligible compilation overhead.

These are generous ceilings (CI machines vary) that still catch
accidental quadratic blowups in the hot compiler paths.
"""

import time

import pytest

from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram


class TestCompileTime:
    def test_paper_scale_compile_under_budget(self):
        x, y = sor_factors(100, 200)
        app = sor.app(100, 200)
        t0 = time.perf_counter()
        prog = TiledProgram(app.nest, sor.h_nonrectangular(x, y, 8),
                            mapping_dim=2)
        prog.dist.tiles  # force tile enumeration
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0, f"compilation took {elapsed:.1f}s"

    def test_paper_scale_simulation_under_budget(self):
        x, y = sor_factors(100, 200)
        app = sor.app(100, 200)
        prog = TiledProgram(app.nest, sor.h_nonrectangular(x, y, 8),
                            mapping_dim=2)
        t0 = time.perf_counter()
        DistributedRun(prog, ClusterSpec()).simulate()
        elapsed = time.perf_counter() - t0
        assert elapsed < 20.0, f"simulation took {elapsed:.1f}s"

    def test_mask_caching_effective(self):
        """Repeated point counts reuse cached per-tile masks."""
        app = sor.app(40, 60)
        prog = TiledProgram(app.nest, sor.h_nonrectangular(11, 26, 8),
                            mapping_dim=2)
        tiles = prog.dist.tiles
        a = [prog.tiling.tile_point_count(t) for t in tiles]
        # every partial tile's mask is now cached...
        partial = [t for t in tiles
                   if prog.tiling.classify_tile(t) == "partial"]
        assert partial
        cache = prog.tiling._mask_cache
        assert all(tuple(t) in cache for t in partial)
        # ...and a second pass returns identical counts
        assert a == [prog.tiling.tile_point_count(t) for t in tiles]
