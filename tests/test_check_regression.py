"""The benchmark regression gate's missing-benchmark policy: a
baseline entry absent from the fresh run fails with the benchmark's
name; skips-with-reason stay exempt."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks"
    / "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _write(tmp_path, name, benchmarks):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1,
                                "benchmarks": benchmarks}))
    return str(path)


def _gate(tmp_path, current, baseline):
    cur = _write(tmp_path, "current.json", current)
    base = _write(tmp_path, "baseline.json", baseline)
    return check_regression.main([cur, "--baseline", base])


BENCH = {"best_s": 1.0, "cv": 0.01}


class TestMissingBenchmark:
    def test_missing_baseline_benchmark_fails_named(self, tmp_path,
                                                    capsys):
        rc = _gate(tmp_path, {"kept": BENCH},
                   {"kept": BENCH, "vanished": BENCH})
        out = capsys.readouterr().out
        assert rc == 1
        assert "missing benchmark: vanished" in out

    def test_baseline_skip_with_reason_is_exempt(self, tmp_path,
                                                 capsys):
        rc = _gate(tmp_path, {"kept": BENCH},
                   {"kept": BENCH,
                    "gated": {"skipped": "needs 4 CPUs"}})
        out = capsys.readouterr().out
        assert rc == 0
        assert "needs 4 CPUs" in out

    def test_current_skip_with_reason_is_exempt(self, tmp_path):
        rc = _gate(tmp_path,
                   {"kept": BENCH,
                    "gated": {"skipped": "needs 4 CPUs"}},
                   {"kept": BENCH, "gated": BENCH})
        assert rc == 0

    def test_new_benchmark_never_fails(self, tmp_path):
        rc = _gate(tmp_path, {"kept": BENCH, "brand_new": BENCH},
                   {"kept": BENCH})
        assert rc == 0

    def test_regression_still_fails(self, tmp_path):
        rc = _gate(tmp_path, {"kept": {"best_s": 2.0, "cv": 0.01}},
                   {"kept": BENCH})
        assert rc == 1

    def test_clean_run_passes(self, tmp_path):
        rc = _gate(tmp_path, {"kept": BENCH}, {"kept": BENCH})
        assert rc == 0
