"""Unit tests for the computation distribution (tiles -> processors)."""

import pytest

from repro.distribution import ComputationDistribution
from repro.polyhedra import box
from repro.tiling import TilingTransformation
from repro.tiling.shapes import rectangular_tiling


@pytest.fixture(scope="module")
def dist():
    h = rectangular_tiling([2, 3, 4])
    tt = TilingTransformation(h, box([0, 0, 0], [5, 5, 19]))
    return ComputationDistribution(tt)


class TestMappingDim:
    def test_longest_dimension_chosen(self, dist):
        # dim 2 has 20/4 = 5 tiles vs 3 and 2
        assert dist.m == 2

    def test_override(self):
        h = rectangular_tiling([2, 3, 4])
        tt = TilingTransformation(h, box([0, 0, 0], [5, 5, 19]))
        d = ComputationDistribution(tt, mapping_dim=0)
        assert d.m == 0

    def test_override_out_of_range(self):
        h = rectangular_tiling([2, 2])
        tt = TilingTransformation(h, box([0, 0], [3, 3]))
        with pytest.raises(ValueError):
            ComputationDistribution(tt, mapping_dim=5)


class TestPids:
    def test_pid_drops_mapping_coord(self, dist):
        assert dist.pid_of((1, 0, 3)) == (1, 0)

    def test_tile_at_inverse(self, dist):
        for tile in dist.tiles:
            assert dist.tile_at(dist.pid_of(tile), tile[dist.m]) == tile

    def test_processor_count(self, dist):
        # dims 0,1: 3 x 2 tiles
        assert dist.num_processors == 6

    def test_chains_cover_all_tiles(self, dist):
        total = sum(len(dist.tiles_of(p)) for p in dist.processors)
        assert total == len(dist.tiles)

    def test_chains_sorted(self, dist):
        for p in dist.processors:
            chain = [t[dist.m] for t in dist.tiles_of(p)]
            assert chain == sorted(chain)


class TestChainIndex:
    def test_zero_based_at_global_min(self, dist):
        assert dist.l_s_m == 0
        first = min(dist.tiles, key=lambda t: t[dist.m])
        assert dist.chain_index(first) == 0

    def test_chain_length_is_tile_count(self, dist):
        for p in dist.processors:
            assert dist.chain_length(p) == len(dist.tiles_of(p))

    def test_chain_index_zero_based_per_pid(self, dist):
        for p in dist.processors:
            first = dist.tiles_of(p)[0]
            assert dist.chain_index(first) == 0

    def test_valid(self, dist):
        assert dist.valid(dist.tiles[0])
        assert not dist.valid((99, 99, 99))
