"""Unit tests for the LDS and Tables 1-2 address translation."""

import numpy as np
import pytest

from repro.distribution import (
    CommunicationSpec,
    ComputationDistribution,
    DistributedAddressing,
    LocalDataSpace,
)
from repro.polyhedra import box
from repro.tiling import TilingTransformation
from repro.tiling.shapes import parallelepiped_tiling

JACOBI_DEPS = [(1, 1, 1), (1, 2, 1), (1, 0, 1), (1, 1, 2), (1, 1, 0)]


@pytest.fixture(scope="module")
def setup():
    """A strided TTIS (c = (1,2,1)) exercising the phase logic."""
    h = parallelepiped_tiling(
        [["1/2", "-1/4", 0], [0, "1/4", 0], [0, 0, "1/3"]])
    tt = TilingTransformation(h, box([0, 0, 0], [7, 11, 8]))
    dist = ComputationDistribution(tt, mapping_dim=0)
    comm = CommunicationSpec(tt, JACOBI_DEPS, dist.m)
    return tt, dist, comm


class TestLDSGeometry:
    def test_shape_formula(self, setup):
        tt, _, comm = setup
        lds = LocalDataSpace(comm, 3)
        v, c = tt.ttis.v, tt.ttis.c
        for k in range(3):
            if k == comm.m:
                assert lds.shape[k] == comm.offsets[k] + 3 * v[k] // c[k]
            else:
                assert lds.shape[k] == comm.offsets[k] + v[k] // c[k]

    def test_allocate(self, setup):
        _, _, comm = setup
        lds = LocalDataSpace(comm, 2)
        arr = lds.allocate()
        assert arr.shape == lds.shape
        assert arr.dtype == np.float64
        assert not arr.any()

    def test_cells(self, setup):
        _, _, comm = setup
        lds = LocalDataSpace(comm, 2)
        assert lds.cells == int(np.prod(lds.shape))

    def test_nonpositive_tiles_rejected(self, setup):
        _, _, comm = setup
        with pytest.raises(ValueError):
            LocalDataSpace(comm, 0)


class TestMapRoundtrip:
    def test_exhaustive(self, setup):
        tt, _, comm = setup
        lds = LocalDataSpace(comm, 4)
        for jp in tt.ttis.lattice_points():
            for t in range(4):
                cell = lds.map(jp, t)
                assert lds.in_bounds(cell), (jp, t, cell)
                assert lds.map_inv(cell) == (tuple(jp), t)

    def test_computation_cells_disjoint(self, setup):
        tt, _, comm = setup
        lds = LocalDataSpace(comm, 3)
        seen = set()
        for jp in tt.ttis.lattice_points():
            for t in range(3):
                cell = lds.map(jp, t)
                assert cell not in seen
                seen.add(cell)

    def test_condensation_is_dense_per_tile(self, setup):
        """Within one tile, computation cells fill a full sub-box —
        the paper's 'no unused space after condensation' claim."""
        tt, _, comm = setup
        lds = LocalDataSpace(comm, 1)
        cells = {lds.map(jp, 0) for jp in tt.ttis.lattice_points()}
        assert len(cells) == tt.ttis.tile_volume
        rows = tt.ttis.rows_per_dim
        expect = 1
        for r in rows:
            expect *= r
        assert len(cells) == expect


class TestHaloSlot:
    def test_matches_read_address(self, setup):
        """halo_slot(pred point) == map(j' - d') for the crossing read."""
        tt, _, comm = setup
        lds = LocalDataSpace(comm, 3)
        v = tt.ttis.v
        for ds in comm.d_s:
            for dp in comm.d_prime:
                for jp in list(tt.ttis.lattice_points())[:8]:
                    read = tuple(a - b for a, b in zip(jp, dp))
                    pred = tuple(
                        r + v[k] * ds[k] for k, r in enumerate(read))
                    t = 1
                    assert lds.halo_slot(pred, ds, t) == lds.map(read, t)


class TestTables12:
    def test_loc_roundtrip_exhaustive(self, setup):
        tt, dist, comm = setup
        addr = DistributedAddressing(dist, comm)
        from itertools import product
        for j in product(range(8), range(12), range(9)):
            pid, cell = addr.loc(j)
            assert addr.loc_inv(cell, pid) == j

    def test_loc_assigns_to_owner(self, setup):
        tt, dist, comm = setup
        addr = DistributedAddressing(dist, comm)
        pid, _ = addr.loc((0, 0, 0))
        assert pid == dist.pid_of(tt.tile_of((0, 0, 0)))

    def test_mismatched_mapping_dim_rejected(self, setup):
        tt, dist, comm = setup
        other = CommunicationSpec(tt, JACOBI_DEPS, (dist.m + 1) % 3)
        with pytest.raises(ValueError):
            DistributedAddressing(dist, other)
