"""Property-based tests: Tables 1-2 are exact bijections (paper §3.1)."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.distribution import (
    CommunicationSpec,
    ComputationDistribution,
    DistributedAddressing,
    LocalDataSpace,
)
from repro.linalg import RatMat
from repro.polyhedra import box
from repro.tiling import TilingTransformation, is_legal_tiling


@st.composite
def legal_2d_setups(draw):
    """Random integer P (positive diagonal), box domain, and deps the
    tiling is legal for."""
    a = draw(st.integers(2, 4))
    d = draw(st.integers(2, 4))
    b = draw(st.integers(-2, 2))
    p = RatMat([[a, b], [0, d]])
    assume(p.det() != 0)
    h = p.inverse()
    deps = [(1, 0), (0, 1), (1, 1)]
    assume(is_legal_tiling(h, deps))
    lo = (draw(st.integers(-2, 0)), draw(st.integers(-2, 0)))
    hi = (lo[0] + draw(st.integers(3, 9)), lo[1] + draw(st.integers(3, 9)))
    return h, box(lo, hi), (lo, hi), deps


@given(legal_2d_setups())
@settings(max_examples=50, deadline=None)
def test_loc_inverse_identity(setup):
    h, domain, (lo, hi), deps = setup
    tt = TilingTransformation(h, domain)
    dist = ComputationDistribution(tt)
    comm = CommunicationSpec(tt, deps, dist.m)
    addr = DistributedAddressing(dist, comm)
    for x in range(lo[0], hi[0] + 1):
        for y in range(lo[1], hi[1] + 1):
            pid, cell = addr.loc((x, y))
            assert addr.loc_inv(cell, pid) == (x, y)


@given(legal_2d_setups())
@settings(max_examples=50, deadline=None)
def test_loc_is_injective_per_processor(setup):
    """Two different points never share (pid, cell) — owner-computes
    storage is collision-free."""
    h, domain, (lo, hi), deps = setup
    tt = TilingTransformation(h, domain)
    dist = ComputationDistribution(tt)
    comm = CommunicationSpec(tt, deps, dist.m)
    addr = DistributedAddressing(dist, comm)
    seen = {}
    for x in range(lo[0], hi[0] + 1):
        for y in range(lo[1], hi[1] + 1):
            key = addr.loc((x, y))
            assert key not in seen, f"collision at {key}"
            seen[key] = (x, y)


@given(legal_2d_setups(), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_map_bijective_on_lattice(setup, ntiles):
    h, domain, _, deps = setup
    tt = TilingTransformation(h, domain)
    dist = ComputationDistribution(tt)
    comm = CommunicationSpec(tt, deps, dist.m)
    lds = LocalDataSpace(comm, ntiles)
    cells = set()
    for jp in tt.ttis.lattice_points():
        for t in range(ntiles):
            cell = lds.map(jp, t)
            assert lds.in_bounds(cell)
            assert cell not in cells
            cells.add(cell)
            assert lds.map_inv(cell) == (tuple(jp), t)
