"""Unit tests for the §3.1 memory-compression accounting."""

import pytest

from repro.apps import sor
from repro.distribution import footprint_of, memory_report
from repro.runtime import TiledProgram


@pytest.fixture(scope="module")
def sor_prog():
    app = sor.app(8, 10)
    return TiledProgram(app.nest, sor.h_nonrectangular(2, 4, 5),
                        mapping_dim=2)


class TestFootprint:
    def test_points_partition(self, sor_prog):
        rep = memory_report(sor_prog)
        assert rep.total_points == 8 * 10 * 10

    def test_lds_holds_all_computed_points(self, sor_prog):
        """LDS cells >= computed points (it must store them all)."""
        for f in memory_report(sor_prog).per_processor:
            assert f.lds_cells >= f.computed_points

    def test_naive_box_holds_all_points(self, sor_prog):
        for f in memory_report(sor_prog).per_processor:
            assert f.naive_box_cells >= f.computed_points

    def test_skewed_share_is_nonrectangular(self, sor_prog):
        """§3.1's premise: the processor's data-space share is non-
        rectangular (its enclosing box strictly exceeds its points)."""
        rep = memory_report(sor_prog)
        assert rep.total_naive > 1.1 * rep.total_points

    def test_lds_overhead_bounded(self, sor_prog):
        """LDS = computation region + halo + boundary-chain slack; must
        stay within a small constant factor of the owned points even at
        toy sizes (it approaches ~halo-only overhead asymptotically)."""
        rep = memory_report(sor_prog)
        assert 1.0 <= rep.lds_overhead < 8.0

    def test_overhead_shrinks_with_problem_size(self):
        """Boundary slack amortizes: bigger instances, denser LDS."""
        from repro.apps import sor as sor_app
        small = TiledProgram(sor_app.app(8, 10).nest,
                             sor_app.h_nonrectangular(2, 4, 5),
                             mapping_dim=2)
        large = TiledProgram(sor_app.app(24, 30).nest,
                             sor_app.h_nonrectangular(6, 12, 5),
                             mapping_dim=2)
        assert memory_report(large).lds_overhead < \
            memory_report(small).lds_overhead

    def test_single_footprint_consistent_with_report(self, sor_prog):
        rep = memory_report(sor_prog)
        pid = sor_prog.pids[0]
        solo = footprint_of(sor_prog, pid)
        assert solo == rep.per_processor[0]


class TestTable:
    def test_table_lines(self, sor_prog):
        rep = memory_report(sor_prog)
        text = rep.table()
        assert "TOTAL" in text
        assert len(text.splitlines()) == len(rep.per_processor) + 2


class TestRectangularBaseline:
    def test_unskewed_rect_tiling_no_compression_win(self):
        """On an axis-aligned domain with rectangular tiles the naive
        box is already tight — compression ~ LDS halo overhead only."""
        from repro.apps import adi
        app = adi.app(6, 8)
        prog = TiledProgram(app.nest, adi.h_rectangular(2, 4, 4),
                            mapping_dim=0)
        rep = memory_report(prog)
        assert rep.compression < 1.2
