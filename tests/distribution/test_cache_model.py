"""Unit tests for the cache-locality model (§3.1's last claim)."""

import pytest

from repro.apps import sor
from repro.distribution.cache_model import (
    CacheSpec,
    LocalityComparison,
    SetAssociativeCache,
    compare_tile_locality,
)
from repro.runtime import TiledProgram


class TestCacheMechanics:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(CacheSpec())
        assert not c.access(0)
        assert c.access(0)
        assert c.misses == 1 and c.hits == 1

    def test_spatial_locality_within_line(self):
        spec = CacheSpec(line_bytes=32, element_bytes=8)
        c = SetAssociativeCache(spec)
        c.access(0)
        assert c.access(1) and c.access(2) and c.access(3)  # same line
        assert not c.access(4)                               # next line

    def test_lru_eviction(self):
        spec = CacheSpec(size_bytes=64, line_bytes=32, associativity=1)
        c = SetAssociativeCache(spec)  # 2 sets, 1 way
        step = spec.elements_per_line * spec.num_sets  # same-set stride
        c.access(0)
        c.access(step)      # evicts line 0 (same set, 1 way)
        assert not c.access(0)

    def test_lru_order_respected(self):
        spec = CacheSpec(size_bytes=128, line_bytes=32, associativity=2)
        c = SetAssociativeCache(spec)  # 2 sets, 2 ways
        stride = spec.elements_per_line * spec.num_sets
        c.access(0)
        c.access(stride)
        c.access(0)          # refresh line 0 to MRU
        c.access(2 * stride)  # evicts line `stride`, not line 0
        assert c.access(0)

    def test_miss_rate(self):
        c = SetAssociativeCache(CacheSpec())
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)


class TestComparison:
    @pytest.fixture(scope="class")
    def nr_cmp(self):
        app = sor.app(16, 24)
        prog = TiledProgram(app.nest, sor.h_nonrectangular(4, 10, 6),
                            mapping_dim=2)
        pid = prog.pids[len(prog.pids) // 2]
        return compare_tile_locality(prog, pid)

    def test_streams_have_equal_length(self, nr_cmp):
        """Both layouts replay the exact same access stream."""
        assert nr_cmp.accesses > 0
        assert nr_cmp.lds_misses <= nr_cmp.accesses
        assert nr_cmp.global_misses <= nr_cmp.accesses

    def test_lds_competitive_with_global_layout(self, nr_cmp):
        """The measurable form of the §3.1 locality claim: condensing a
        non-rectangular tile into the dense LDS does not cost locality
        relative to working in the global array (and slightly helps for
        skewed footprints)."""
        assert nr_cmp.lds_miss_rate <= nr_cmp.global_miss_rate * 1.15

    def test_miss_rates_sane(self, nr_cmp):
        assert 0 < nr_cmp.lds_miss_rate < 0.9
        assert 0 < nr_cmp.global_miss_rate < 0.9

    def test_improvement_property(self):
        c = LocalityComparison(accesses=100, lds_misses=10,
                               global_misses=20)
        assert c.improvement == pytest.approx(2.0)
        assert LocalityComparison(10, 0, 5).improvement == float("inf")
