"""Unit tests for communication sets (CC vector, D^m, pack bounds)."""

import pytest

from repro.distribution import CommunicationSpec, ComputationDistribution
from repro.polyhedra import box
from repro.tiling import TilingTransformation
from repro.tiling.shapes import parallelepiped_tiling, rectangular_tiling

SOR_DEPS = [(0, 1, 0), (0, 0, 1), (1, 0, 2), (1, 1, 1), (1, 1, 2)]


@pytest.fixture(scope="module")
def setup():
    h = parallelepiped_tiling(
        [["1/3", 0, 0], [0, "1/4", 0], ["-1/5", 0, "1/5"]])
    tt = TilingTransformation(h, box([1, 1, 1], [9, 12, 20]))
    dist = ComputationDistribution(tt)
    comm = CommunicationSpec(tt, SOR_DEPS, dist.m)
    return tt, dist, comm


class TestCCVector:
    def test_formula(self, setup):
        tt, _, comm = setup
        # cc_k = v_kk - max_l d'_kl
        v = tt.ttis.v
        for k in range(3):
            assert comm.cc[k] == v[k] - max(0, comm.max_dp[k])

    def test_communication_point_criterion(self, setup):
        tt, _, comm = setup
        v = tt.ttis.v
        # a point at the very top of a crossed dimension communicates
        probe = [0, 0, 0]
        crossed = [k for k in range(3) if comm.max_dp[k] > 0]
        assert crossed
        probe[crossed[0]] = v[crossed[0]] - 1
        assert comm.is_communication_point(probe)
        assert not comm.is_communication_point((0, 0, 0))

    def test_matches_bruteforce(self, setup):
        """CC criterion == 'some dependence leaves the TTIS box'."""
        tt, _, comm = setup
        v = tt.ttis.v
        dps = comm.d_prime
        for jp in tt.ttis.lattice_points():
            brute = any(
                jp[k] + dp[k] > v[k] - 1
                for dp in dps for k in range(3)
            )
            assert comm.is_communication_point(jp) == brute


class TestProjections:
    def test_dm_nonzero(self, setup):
        _, _, comm = setup
        for dm in comm.d_m:
            assert any(dm)

    def test_ds_of_dm_roundtrip(self, setup):
        _, _, comm = setup
        for dm in comm.d_m:
            for ds in comm.ds_of_dm(dm):
                assert comm.project(ds) == dm

    def test_intra_processor(self, setup):
        _, dist, comm = setup
        chain_only = tuple(
            1 if k == dist.m else 0 for k in range(3))
        if chain_only in comm.d_s:
            assert comm.is_intra_processor(chain_only)

    def test_every_ds_covered(self, setup):
        _, _, comm = setup
        covered = {ds for dm in comm.d_m for ds in comm.ds_of_dm(dm)}
        inter = {ds for ds in comm.d_s if not comm.is_intra_processor(ds)}
        assert covered == inter


class TestOffsets:
    def test_mapping_dim_offset_is_one_tile(self, setup):
        tt, dist, comm = setup
        m = dist.m
        assert comm.offsets[m] == tt.ttis.v[m] // tt.ttis.c[m]

    def test_spatial_offsets_cover_halo(self, setup):
        tt, dist, comm = setup
        import math
        for k in range(3):
            if k == dist.m:
                continue
            assert comm.offsets[k] == max(
                0, math.ceil(comm.max_dp[k] / tt.ttis.c[k]))


class TestPackBounds:
    def test_uncrossed_dims_full_range(self, setup):
        _, _, comm = setup
        lbs = comm.pack_lower_bounds((0, 0, 0))
        assert lbs == (0, 0, 0)

    def test_crossed_dim_starts_at_cc(self, setup):
        _, dist, comm = setup
        direction = tuple(
            0 if k == dist.m else 1 for k in range(3))
        lbs = comm.pack_lower_bounds(direction)
        for k in range(3):
            if k == dist.m:
                assert lbs[k] == 0
            else:
                assert lbs[k] == comm.cc[k]

    def test_mapping_dim_never_restricted(self, setup):
        _, dist, comm = setup
        direction = [1, 1, 1]
        assert comm.pack_lower_bounds(direction)[dist.m] == 0


class TestPreconditions:
    def test_dependence_larger_than_tile_rejected(self):
        """Regression (found by hypothesis): a dependence whose TTIS
        image exceeds the tile extent would skip whole tiles; the spec
        must refuse instead of miscommunicating."""
        from repro.linalg import from_rows
        h = from_rows([["2/3", "1/3"], ["1/3", "2/3"]])
        tt = TilingTransformation(h, box([0, 0], [4, 5]))
        with pytest.raises(ValueError, match="tile too small"):
            CommunicationSpec(tt, [(1, 0), (1, 2)], 1)

    def test_dependence_equal_to_tile_accepted(self):
        h = rectangular_tiling([2, 2])
        tt = TilingTransformation(h, box([0, 0], [7, 7]))
        spec = CommunicationSpec(tt, [(2, 0), (0, 2)], 0)
        assert spec.cc == (0, 0)  # whole tile is communication region


class TestMinsucc:
    def test_returns_dependent_tile(self, setup):
        _, dist, comm = setup
        tile = dist.tiles[len(dist.tiles) // 2]
        for dm in comm.d_m:
            succ = comm.minsucc(dist.valid, tile, dm)
            if succ is not None:
                assert dist.valid(succ)
                diff = tuple(a - b for a, b in zip(succ, tile))
                assert diff in comm.ds_of_dm(dm)

    def test_none_at_boundary(self, setup):
        _, dist, comm = setup
        last = max(dist.tiles)
        # a tile with no valid successors in some direction
        assert any(
            comm.minsucc(dist.valid, last, dm) is None
            for dm in comm.d_m
        )

    def test_minimum_among_valid(self, setup):
        _, dist, comm = setup
        for tile in dist.tiles[:20]:
            for dm in comm.d_m:
                succ = comm.minsucc(dist.valid, tile, dm)
                cands = [
                    tuple(a + b for a, b in zip(tile, ds))
                    for ds in comm.ds_of_dm(dm)
                ]
                valid_cands = [c for c in cands if dist.valid(c)]
                if valid_cands:
                    assert succ == min(valid_cands)
                else:
                    assert succ is None
