"""Integration sweep: correctness across many (size, tiling) combos.

Covers the awkward cases individual tests tend to miss: tile extents
that don't divide the space, extent-1 tiles, chains of length 1, and
processor meshes degenerating to a line.
"""

import pytest

from repro.apps import adi, jacobi, sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram

from tests.conftest import values_close

SPEC = ClusterSpec()


class TestSORSizes:
    @pytest.mark.parametrize("m,n,x,y,z", [
        (3, 4, 1, 1, 1),       # unit tiles: every point its own tile
        (3, 4, 3, 7, 10),      # tiles bigger than some extents
        (5, 5, 2, 2, 2),
        (4, 7, 3, 5, 4),       # nothing divides anything
        (6, 4, 2, 9, 3),
    ])
    def test_nonrect(self, m, n, x, y, z):
        app = sor.app(m, n)
        ref = sor.reference(m, n)
        prog = TiledProgram(app.nest, sor.h_nonrectangular(x, y, z),
                            mapping_dim=2)
        arrays, _ = DistributedRun(prog, SPEC).execute(app.init_value)
        assert values_close(arrays["A"], ref)

    @pytest.mark.parametrize("x,y,z", [(1, 2, 2), (4, 4, 4), (2, 5, 3)])
    def test_rect(self, x, y, z):
        app = sor.app(4, 6)
        ref = sor.reference(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(x, y, z),
                            mapping_dim=2)
        arrays, _ = DistributedRun(prog, SPEC).execute(app.init_value)
        assert values_close(arrays["A"], ref)


class TestJacobiSizes:
    @pytest.mark.parametrize("t,i,j,x,y,z", [
        (2, 4, 4, 1, 2, 2),
        (3, 5, 4, 2, 4, 3),
        (4, 3, 6, 3, 2, 4),
        (2, 6, 6, 2, 6, 5),
    ])
    def test_nonrect_strided(self, t, i, j, x, y, z):
        app = jacobi.app(t, i, j)
        ref = jacobi.reference(t, i, j)
        prog = TiledProgram(app.nest, jacobi.h_nonrectangular(x, y, z),
                            mapping_dim=0)
        arrays, _ = DistributedRun(prog, SPEC).execute(app.init_value)
        assert values_close(arrays["A"], ref)


class TestADISizes:
    @pytest.mark.parametrize("t,n,x,y,z", [
        (2, 4, 1, 2, 2),
        (5, 4, 2, 2, 3),
        (3, 6, 2, 4, 3),
    ])
    @pytest.mark.parametrize("hf", [adi.h_rectangular, adi.h_nr3])
    def test_multi_array(self, t, n, x, y, z, hf):
        app = adi.app(t, n)
        ref = adi.reference(t, n)
        prog = TiledProgram(app.nest, hf(x, y, z), mapping_dim=0)
        arrays, _ = DistributedRun(prog, SPEC).execute(app.init_value)
        assert values_close(arrays["X"], ref["X"])
        assert values_close(arrays["B"], ref["B"])


class TestMappingDimVariants:
    """Every mapping dimension must be correct, not just the paper's."""

    @pytest.mark.parametrize("m", [0, 1, 2])
    def test_sor_any_mapping(self, m):
        app = sor.app(4, 6)
        ref = sor.reference(4, 6)
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=m)
        arrays, _ = DistributedRun(prog, SPEC).execute(app.init_value)
        assert values_close(arrays["A"], ref)

    @pytest.mark.parametrize("m", [0, 1, 2])
    def test_adi_any_mapping(self, m):
        app = adi.app(3, 5)
        ref = adi.reference(3, 5)
        prog = TiledProgram(app.nest, adi.h_nr1(2, 3, 3), mapping_dim=m)
        arrays, _ = DistributedRun(prog, SPEC).execute(app.init_value)
        assert values_close(arrays["X"], ref["X"])
        assert values_close(arrays["B"], ref["B"])
