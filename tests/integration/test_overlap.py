"""Integration: the computation/communication overlap extension.

The paper lists overlap scheduling (their ref [8]) as future work; we
implement it as a cluster-spec flag.  Overlap must (a) preserve results
exactly, (b) never be slower than blocking sends, and (c) actually help
when transfers are expensive.
"""

import pytest

from repro.apps import adi, sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram

from tests.conftest import values_close


class TestOverlapCorrectness:
    def test_sor_results_identical(self, sor_small, sor_reference_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        spec = ClusterSpec(overlap=True)
        arrays, _ = DistributedRun(prog, spec).execute(sor_small.init_value)
        assert values_close(arrays["A"], sor_reference_small)

    def test_adi_results_identical(self, adi_small, adi_reference_small):
        prog = TiledProgram(adi_small.nest, adi.h_nr3(2, 3, 3),
                            mapping_dim=0)
        spec = ClusterSpec(overlap=True)
        arrays, _ = DistributedRun(prog, spec).execute(adi_small.init_value)
        assert values_close(arrays["X"], adi_reference_small["X"])


class TestOverlapTiming:
    def _makespans(self, app, h, m, **kw):
        base = ClusterSpec(**kw)
        prog = TiledProgram(app.nest, h, mapping_dim=m)
        t_block = DistributedRun(prog, base).simulate().makespan
        t_over = DistributedRun(prog, base.with_overlap()).simulate().makespan
        return t_block, t_over

    def test_never_slower(self, sor_small):
        t_block, t_over = self._makespans(
            sor_small, sor.h_nonrectangular(2, 3, 4), 2)
        assert t_over <= t_block + 1e-12

    def test_helps_on_slow_network(self, sor_small):
        t_block, t_over = self._makespans(
            sor_small, sor.h_nonrectangular(2, 3, 4), 2,
            net_bandwidth=1e6)  # 1 MB/s: transfers dominate
        assert t_over < t_block

    def test_message_counts_unchanged(self, sor_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        a = DistributedRun(prog, ClusterSpec()).simulate()
        b = DistributedRun(prog, ClusterSpec(overlap=True)).simulate()
        assert a.total_messages == b.total_messages
        assert a.total_elements == b.total_elements
