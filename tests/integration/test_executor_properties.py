"""Property-based end-to-end test: the whole compiler is correct on
random programs.

Generates random 2D stencils (random dependence sets, random domains,
random kernel coefficients) and random legal tilings (random integer
``P``), then requires the distributed message-passing execution to
equal the sequential interpreter cell-for-cell.  This is the strongest
single guarantee in the suite: a bug anywhere — HNF strides, LDS
addressing, CC sets, minsucc matching, pack/unpack order, the DES —
shows up as a numeric mismatch.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.linalg import RatMat
from repro.loops import ArrayRef, LoopNest, Statement
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.interpreter import run_sequential
from repro.tiling import is_legal_tiling

SPEC = ClusterSpec()


@st.composite
def random_cases(draw):
    # -- random dependence set (lexicographically positive, small) ----
    n_deps = draw(st.integers(1, 3))
    deps = []
    for _ in range(n_deps):
        d = (draw(st.integers(0, 2)), draw(st.integers(-2, 2)))
        if d[0] == 0:
            d = (0, abs(d[1]))
        if d == (0, 0):
            d = (1, 0)
        deps.append(d)
    deps = sorted(set(deps))
    # -- random legal tiling: integer P, H = P^-1 ----------------------
    a = draw(st.integers(2, 4))
    dd = draw(st.integers(2, 4))
    b = draw(st.integers(-2, 2))
    c = draw(st.integers(-2, 2))
    p = RatMat([[a, b], [c, dd]])
    assume(p.det() != 0)
    h = p.inverse()
    assume(is_legal_tiling(h, deps))
    # reject tilings violating framework preconditions (c_k | v_kk for
    # the LDS condensation; dependencies within one tile for the §3.2
    # communication scheme) — those raise cleanly, tested elsewhere.
    from repro.distribution.communication import CommunicationSpec
    from repro.polyhedra import box as _box
    from repro.tiling import TilingTransformation
    try:
        tt = TilingTransformation(h, _box((0, 0), (8, 8)))
        CommunicationSpec(tt, deps, 0)
        CommunicationSpec(tt, deps, 1)
    except ValueError:
        assume(False)
    # -- random domain and kernel ---------------------------------------
    lo = (draw(st.integers(-2, 0)), draw(st.integers(-2, 0)))
    hi = (lo[0] + draw(st.integers(3, 7)), lo[1] + draw(st.integers(3, 7)))
    coeffs = [draw(st.integers(1, 9)) / 16.0 for _ in range(len(deps))]
    return deps, h, lo, hi, tuple(coeffs)


def _build_nest(deps, lo, hi, coeffs):
    def kernel(_p, reads, _c=coeffs):
        return 0.5 + sum(c * v for c, v in zip(_c, reads))

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0)),
        [ArrayRef.of("A", tuple(-x for x in d)) for d in deps],
        kernel,
    )
    return LoopNest.rectangular("prop", list(lo), list(hi), [stmt],
                                list(deps))


def _init(_arr, cell):
    return 0.03 * cell[0] - 0.07 * cell[1] + 0.5


@given(random_cases())
@settings(max_examples=60, deadline=None)
def test_distributed_equals_sequential(case):
    deps, h, lo, hi, coeffs = case
    nest = _build_nest(deps, lo, hi, coeffs)
    prog = TiledProgram(nest, h)
    arrays, _ = DistributedRun(prog, SPEC).execute(_init)
    ref = run_sequential(nest, _init)
    assert set(arrays["A"]) == set(ref["A"])
    for k, v in ref["A"].items():
        assert abs(arrays["A"][k] - v) < 1e-11, (k, arrays["A"][k], v)


@given(random_cases(), st.sampled_from([0, 1]))
@settings(max_examples=40, deadline=None)
def test_correct_under_any_mapping_dim(case, mapping_dim):
    """The owner-computes machinery cannot depend on which dimension
    chains are mapped along."""
    deps, h, lo, hi, coeffs = case
    nest = _build_nest(deps, lo, hi, coeffs)
    prog = TiledProgram(nest, h, mapping_dim=mapping_dim)
    arrays, _ = DistributedRun(prog, SPEC).execute(_init)
    ref = run_sequential(nest, _init)
    for k, v in ref["A"].items():
        assert abs(arrays["A"][k] - v) < 1e-11


@given(random_cases())
@settings(max_examples=30, deadline=None)
def test_correct_under_rendezvous_protocol(case):
    deps, h, lo, hi, coeffs = case
    nest = _build_nest(deps, lo, hi, coeffs)
    prog = TiledProgram(nest, h)
    spec = ClusterSpec(rendezvous_threshold=0)
    arrays, _ = DistributedRun(prog, spec).execute(_init)
    ref = run_sequential(nest, _init)
    for k, v in ref["A"].items():
        assert abs(arrays["A"][k] - v) < 1e-11
