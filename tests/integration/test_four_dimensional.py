"""Dimension generality: the full pipeline on a 4D nest.

The paper's experiments are all 3D; nothing in the framework is
3D-specific.  A 4D nest (3D space + time) exercises: Fourier-Motzkin
over 8 joint variables, 4D TTIS/HNF, a *3-D* processor mesh, and 4D
LDS addressing.
"""

import pytest

from repro.linalg import from_rows
from repro.loops import ArrayRef, LoopNest, Statement
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.interpreter import run_sequential
from repro.tiling import rectangular_tiling

from tests.conftest import values_close

SPEC = ClusterSpec()


def _nest_4d(t_sz=3, n=4):
    def kernel(_p, v):
        return 0.2 * (v[0] + v[1] + v[2] + v[3]) + 0.1

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0, 0, 0)),
        [
            ArrayRef.of("A", (-1, 0, 0, 0)),
            ArrayRef.of("A", (-1, -1, 0, 0)),
            ArrayRef.of("A", (0, 0, -1, 0)),
            ArrayRef.of("A", (0, 0, 0, -1)),
        ],
        kernel,
    )
    return LoopNest.rectangular(
        "stencil4d", [1, 1, 1, 1], [t_sz, n, n, n], [stmt],
        [(1, 0, 0, 0), (1, 1, 0, 0), (0, 0, 1, 0), (0, 0, 0, 1)],
    )


def _init(_a, cell):
    t, i, j, k = cell
    return 0.01 * t - 0.02 * i + 0.03 * j - 0.04 * k


class TestFourDimensional:
    def test_rectangular_tiling(self):
        nest = _nest_4d()
        ref = run_sequential(nest, _init)
        prog = TiledProgram(nest, rectangular_tiling([2, 2, 2, 2]))
        assert len(prog.pids[0]) == 3  # 3-D processor mesh
        arrays, stats = DistributedRun(prog, SPEC).execute(_init)
        assert values_close(arrays["A"], ref["A"])

    def test_skewed_row_tiling(self):
        """One parallelepiped row in 4D."""
        nest = _nest_4d()
        ref = run_sequential(nest, _init)
        h = from_rows([
            ["1/2", 0, 0, 0],
            ["1/2", "-1/2", 0, 0],   # on the cone: orthogonal to (1,1,0,0)
            [0, 0, "1/2", 0],
            [0, 0, 0, "1/2"],
        ])
        prog = TiledProgram(nest, h)
        arrays, _ = DistributedRun(prog, SPEC).execute(_init)
        assert values_close(arrays["A"], ref["A"])

    def test_tile_space_partition_4d(self):
        nest = _nest_4d()
        prog = TiledProgram(nest, rectangular_tiling([2, 2, 2, 2]))
        total = sum(prog.tiling.tile_point_count(t)
                    for t in prog.dist.tiles)
        assert total == 3 * 4 * 4 * 4

    def test_generated_sequential_4d(self):
        from repro.codegen import run_generated_sequential
        nest = _nest_4d()
        ref = run_sequential(nest, _init)
        got = run_generated_sequential(nest, rectangular_tiling([2, 2, 2, 2]),
                                       _init)
        assert values_close(got["A"], ref["A"])
