"""Integration: full pipeline — compile, distribute, message-pass, verify.

For every app and every paper tiling, the distributed execution on the
virtual cluster (real LDS buffers, real pack/unpack, real messages) must
reproduce the naive sequential reference cell-for-cell.  This exercises
every module at once: skewing, H'/HNF, FM bounds, tile enumeration,
LDS/map/loc, CC/D^m, minsucc matching, and the DES engine.
"""

import pytest

from repro.apps import adi, jacobi, sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram

from tests.conftest import values_close

SPEC = ClusterSpec()


def _run(app, h):
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    arrays, stats = DistributedRun(prog, SPEC).execute(app.init_value)
    return prog, arrays, stats


class TestSOR:
    @pytest.mark.parametrize("hfun,label", [
        (sor.h_rectangular, "rect"),
        (sor.h_nonrectangular, "nonrect"),
    ])
    def test_matches_reference(self, sor_small, sor_reference_small,
                               hfun, label):
        _, arrays, _ = _run(sor_small, hfun(2, 3, 4))
        assert values_close(arrays["A"], sor_reference_small)

    def test_different_tile_sizes(self, sor_small, sor_reference_small):
        for size in [(1, 2, 3), (3, 2, 5), (4, 6, 2)]:
            _, arrays, _ = _run(sor_small, sor.h_nonrectangular(*size))
            assert values_close(arrays["A"], sor_reference_small)

    def test_single_processor_degenerate(self, sor_small,
                                         sor_reference_small):
        """Tiles covering the whole space: no communication at all."""
        prog, arrays, stats = _run(sor_small, sor.h_rectangular(8, 16, 24))
        assert prog.num_processors == 1
        assert stats.total_messages == 0
        assert values_close(arrays["A"], sor_reference_small)

    def test_mapping_dim_default_also_correct(self, sor_small,
                                              sor_reference_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4))
        arrays, _ = DistributedRun(prog, SPEC).execute(sor_small.init_value)
        assert values_close(arrays["A"], sor_reference_small)


class TestJacobi:
    @pytest.mark.parametrize("hfun", [jacobi.h_rectangular,
                                      jacobi.h_nonrectangular])
    def test_matches_reference(self, jacobi_small, jacobi_reference_small,
                               hfun):
        _, arrays, _ = _run(jacobi_small, hfun(2, 4, 3))
        assert values_close(arrays["A"], jacobi_reference_small)

    def test_strided_lattice_tiling(self, jacobi_small,
                                    jacobi_reference_small):
        """H' has det 2 here: the LDS condensation path with c=(1,2,1)."""
        _, arrays, _ = _run(jacobi_small, jacobi.h_nonrectangular(3, 2, 2))
        assert values_close(arrays["A"], jacobi_reference_small)


class TestADI:
    @pytest.mark.parametrize("hfun", [adi.h_rectangular, adi.h_nr1,
                                      adi.h_nr2, adi.h_nr3])
    def test_both_arrays_match(self, adi_small, adi_reference_small, hfun):
        _, arrays, _ = _run(adi_small, hfun(2, 3, 3))
        assert values_close(arrays["X"], adi_reference_small["X"])
        assert values_close(arrays["B"], adi_reference_small["B"])

    def test_equal_volume_claim(self, adi_small):
        """§4.3: all four tilings have the same tile volume."""
        vols = set()
        for hfun in (adi.h_rectangular, adi.h_nr1, adi.h_nr2, adi.h_nr3):
            prog = TiledProgram(adi_small.nest, hfun(2, 3, 3),
                                mapping_dim=0)
            vols.add(prog.tiling.tile_volume())
        assert len(vols) == 1

    def test_equal_processor_count_claim(self, adi_small):
        """§4.3: all four tilings need the same number of processors."""
        counts = set()
        for hfun in (adi.h_rectangular, adi.h_nr1, adi.h_nr2, adi.h_nr3):
            prog = TiledProgram(adi_small.nest, hfun(2, 3, 3),
                                mapping_dim=0)
            counts.add(prog.num_processors)
        assert len(counts) == 1


class TestCrossMode:
    """All three execution modes agree on all apps."""

    def test_sor_three_way(self, sor_small, sor_reference_small):
        from repro.runtime.interpreter import (
            run_sequential, run_tiled_sequential)
        h = sor.h_nonrectangular(2, 3, 4)
        seq = run_sequential(sor_small.nest, sor_small.init_value)
        tiled = run_tiled_sequential(sor_small.nest, h,
                                     sor_small.init_value)
        _, dist_arrays, _ = _run(sor_small, h)
        assert values_close(seq["A"], sor_reference_small)
        assert values_close(tiled["A"], sor_reference_small)
        assert values_close(dist_arrays["A"], sor_reference_small)
