"""Integration: the paper's equal-communication-volume claims (§4).

For SOR, ``H_r`` and ``H_nr`` share their first two rows; mapping along
dimension 3 means both decompose processors identically and exchange the
same data volume.  For ADI all four tilings share rows 2-3 and map along
dimension 1.  These are the claims that make the speedup comparison a
pure tile-shape experiment — worth pinning down.
"""

import pytest

from repro.apps import adi, jacobi, sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram

SPEC = ClusterSpec()


def _stats(app, h, m):
    prog = TiledProgram(app.nest, h, mapping_dim=m)
    return prog, DistributedRun(prog, SPEC).simulate()


class TestSORClaims:
    def test_same_processor_count(self, sor_small):
        p1, _ = _stats(sor_small, sor.h_rectangular(2, 3, 4), 2)
        p2, _ = _stats(sor_small, sor.h_nonrectangular(2, 3, 4), 2)
        assert p1.num_processors == p2.num_processors

    def test_same_processor_mesh(self, sor_small):
        p1, _ = _stats(sor_small, sor.h_rectangular(2, 3, 4), 2)
        p2, _ = _stats(sor_small, sor.h_nonrectangular(2, 3, 4), 2)
        assert set(p1.pids) == set(p2.pids)

    def test_same_tile_volume(self, sor_small):
        p1, _ = _stats(sor_small, sor.h_rectangular(2, 3, 4), 2)
        p2, _ = _stats(sor_small, sor.h_nonrectangular(2, 3, 4), 2)
        assert p1.tiling.tile_volume() == p2.tiling.tile_volume()

    def test_total_points_conserved(self, sor_small):
        p1, _ = _stats(sor_small, sor.h_rectangular(2, 3, 4), 2)
        p2, _ = _stats(sor_small, sor.h_nonrectangular(2, 3, 4), 2)
        assert p1.total_points() == p2.total_points() == 4 * 6 * 6


class TestADIClaims:
    def test_four_tilings_same_mesh_and_volume(self, adi_small):
        meshes, vols = [], []
        for hf in (adi.h_rectangular, adi.h_nr1, adi.h_nr2, adi.h_nr3):
            p, _ = _stats(adi_small, hf(2, 3, 3), 0)
            meshes.append(set(p.pids))
            vols.append(p.tiling.tile_volume())
        assert all(m == meshes[0] for m in meshes)
        assert all(v == vols[0] for v in vols)

    def test_nr1_nr2_symmetric_messages(self, adi_small):
        """§4.4: nr1 and nr2 behave the same for equal y = z factors."""
        _, s1 = _stats(adi_small, adi.h_nr1(2, 3, 3), 0)
        _, s2 = _stats(adi_small, adi.h_nr2(2, 3, 3), 0)
        assert s1.total_messages == s2.total_messages
        assert s1.total_elements == s2.total_elements
        # The tilings are mirror images; lexicographic tie-breaking in
        # minsucc makes the schedules differ by boundary noise only.
        assert abs(s1.makespan - s2.makespan) < 0.02 * s1.makespan


class TestEqualVolumeClaim:
    """§4.1/§4.3: with shared processor-dimension rows, rectangular and
    non-rectangular tilings move the *same* data volume — the
    experiments isolate the tile-shape (scheduling) effect."""

    def test_sor_identical_element_totals(self):
        from repro.apps import sor as sor_app
        app = sor_app.app(40, 60)
        totals = {}
        for label, h in (("rect", sor_app.h_rectangular(11, 26, 8)),
                         ("nr", sor_app.h_nonrectangular(11, 26, 8))):
            prog = TiledProgram(app.nest, h, mapping_dim=2)
            totals[label] = DistributedRun(prog, SPEC).simulate() \
                .total_elements
        assert totals["rect"] == totals["nr"]

    def test_adi_volumes_within_a_fraction(self):
        from repro.apps import adi as adi_app
        app = adi_app.app(24, 32)
        totals = {}
        for label, hf in (("rect", adi_app.h_rectangular),
                          ("nr1", adi_app.h_nr1),
                          ("nr3", adi_app.h_nr3)):
            prog = TiledProgram(app.nest, hf(4, 9, 9), mapping_dim=0)
            totals[label] = DistributedRun(prog, SPEC).simulate() \
                .total_elements
        base = totals["rect"]
        for v in totals.values():
            assert abs(v - base) <= 0.005 * base  # boundary clipping only


class TestConservation:
    """Received elements == sent elements, per run (no lost messages)."""

    @pytest.mark.parametrize("app_fix,hfun,m", [
        ("sor", sor.h_nonrectangular, 2),
        ("jacobi", jacobi.h_nonrectangular, 0),
        ("adi", adi.h_nr3, 0),
    ])
    def test_all_messages_consumed(self, request, app_fix, hfun, m):
        app = request.getfixturevalue(f"{app_fix}_small")
        size = (2, 4, 3) if app_fix == "jacobi" else (2, 3, 3)
        prog = TiledProgram(app.nest, hfun(*size), mapping_dim=m)
        # execute() asserts per-message size consistency internally; a
        # clean pass here means every send was matched and consumed.
        arrays, stats = DistributedRun(prog, SPEC).execute(app.init_value)
        assert stats.total_messages >= 0
