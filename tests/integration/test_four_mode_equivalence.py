"""All four execution paths agree on random programs.

1. sequential interpreter (reference semantics)
2. tiled-order interpreter (§2.3 reordering)
3. generated sequential tiled code (emitted Python, exec'd)
4. distributed message-passing execution (virtual cluster)

Property-tested over random stencils and random legal tilings — the
union of everything the compiler can get wrong.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codegen import run_generated_sequential
from repro.linalg import RatMat
from repro.loops import ArrayRef, LoopNest, Statement
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.dataspace import arrays_match
from repro.runtime.interpreter import run_sequential, run_tiled_sequential

SPEC = ClusterSpec()


@st.composite
def cases(draw):
    deps = []
    for _ in range(draw(st.integers(1, 3))):
        d = (draw(st.integers(0, 2)), draw(st.integers(-2, 2)))
        if d[0] == 0:
            d = (0, abs(d[1]))
        if d == (0, 0):
            d = (1, 0)
        deps.append(d)
    deps = sorted(set(deps))
    a = draw(st.integers(2, 4))
    dd = draw(st.integers(2, 4))
    b = draw(st.integers(-2, 2))
    c = draw(st.integers(-2, 2))
    p = RatMat([[a, b], [c, dd]])
    assume(p.det() != 0)
    h = p.inverse()
    from repro.polyhedra import box
    from repro.tiling import is_legal_tiling
    assume(is_legal_tiling(h, deps))
    lo = (draw(st.integers(-2, 0)), draw(st.integers(-2, 0)))
    hi = (lo[0] + draw(st.integers(3, 6)), lo[1] + draw(st.integers(3, 6)))
    # reject framework-precondition violations (tested elsewhere)
    from repro.distribution.communication import CommunicationSpec
    from repro.tiling import TilingTransformation
    try:
        tt = TilingTransformation(h, box(lo, hi))
        CommunicationSpec(tt, deps, 0)
    except ValueError:
        assume(False)
    coeffs = tuple(draw(st.integers(1, 7)) / 16.0 for _ in deps)
    return deps, h, lo, hi, coeffs


def _nest(deps, lo, hi, coeffs):
    def kernel(_p, reads, _c=coeffs):
        return 0.25 + sum(c * v for c, v in zip(_c, reads))

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0)),
        [ArrayRef.of("A", tuple(-x for x in d)) for d in deps],
        kernel,
    )
    return LoopNest.rectangular("four", list(lo), list(hi), [stmt],
                                list(deps))


def _init(_a, cell):
    return 0.05 * cell[0] + 0.11 * cell[1] - 0.3


@given(cases())
@settings(max_examples=40, deadline=None)
def test_four_modes_agree(case):
    deps, h, lo, hi, coeffs = case
    nest = _nest(deps, lo, hi, coeffs)

    seq = run_sequential(nest, _init)
    tiled = run_tiled_sequential(nest, h, _init)
    gen = run_generated_sequential(nest, h, _init)
    prog = TiledProgram(nest, h)
    dist, _ = DistributedRun(prog, SPEC).execute(_init)

    assert arrays_match(seq, tiled, tol=0.0)
    assert arrays_match(seq, gen, tol=0.0)
    assert arrays_match(seq, dist, tol=1e-11)
