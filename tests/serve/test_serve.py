"""`repro serve`: concurrency, hit/miss accounting, error handling.

The server runs in a daemon thread with its own event loop; clients are
the real synchronous :class:`ServeClient` over real TCP sockets, so
these tests exercise the full wire path including framing.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import CompileServer, ServeClient, ServeError

REQ = {"app": "sor", "sizes": [4, 6], "tile": [2, 3, 4],
       "shape": "rect"}


class ServerThread:
    """A CompileServer on a background event loop, for blocking tests."""

    def __init__(self, cache_dir):
        self.cache_dir = str(cache_dir)
        self.addr = None
        self.server = None
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._started.wait(timeout=30), "server failed to start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.server = CompileServer(self.cache_dir)
        self.addr = await self.server.start()
        self._started.set()
        await self.server.serve_forever()

    def client(self):
        return ServeClient(*self.addr)

    def join(self, timeout=30):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "server did not stop"


@pytest.fixture
def server(tmp_path):
    srv = ServerThread(tmp_path / "cache")
    yield srv
    try:
        with srv.client() as c:
            c.shutdown()
    except (ConnectionError, OSError):
        pass  # a test already shut it down
    srv.join()


class TestBasics:
    def test_ping(self, server):
        with server.client() as c:
            assert c.ping()

    def test_compile_then_memory_hit(self, server):
        with server.client() as c:
            r1 = c.compile(**REQ)
            r2 = c.compile(**REQ)
        assert r1["status"] == r2["status"] == "ok"
        assert r1["source"] == "compile"
        assert r2["source"] == "memory"
        assert r1["key"] == r2["key"]
        assert r1["tiles"] == r2["tiles"] > 0

    def test_simulate_returns_run_stats(self, server):
        with server.client() as c:
            r = c.simulate(**REQ)
        assert r["run"]["makespan"] > 0
        assert r["run"]["total_messages"] > 0
        assert len(r["run"]["compute_time"]) == r["processors"]

    def test_bad_requests_are_errors_not_disconnects(self, server):
        with server.client() as c:
            with pytest.raises(ServeError, match="unknown app"):
                c.compile(app="nope", sizes=[4, 6], tile=[2, 3, 4])
            with pytest.raises(ServeError):
                c.request("compile", app="sor")  # missing fields
            with pytest.raises(ServeError, match="unknown op"):
                c.request("frobnicate")
            # The connection survives all three errors.
            assert c.ping()
            stats = c.stats()
        assert stats["server"]["errors"] == 3


class TestConcurrencyAndAccounting:
    def test_two_concurrent_clients_single_compile(self, server):
        """Two clients racing the same cold key: the compile is
        single-flighted — exactly one pipeline run, the loser gets a
        memory hit, and the accounting adds up."""

        def one_client(_):
            with server.client() as c:
                return c.compile(**REQ)["source"]

        with ThreadPoolExecutor(2) as ex:
            sources = sorted(ex.map(one_client, range(2)))
        assert sources == ["compile", "memory"]

        with server.client() as c:
            stats = c.stats()
        assert stats["server"]["compiles"] == 1
        assert stats["server"]["hits_memory"] == 1
        assert stats["cache"]["stores"] == 1
        assert stats["cache"]["misses"] == 1

    def test_disk_hit_after_server_restart(self, tmp_path):
        """A second server over the same cache directory serves the
        program from disk — the pipeline ran once, ever."""
        srv1 = ServerThread(tmp_path / "cache")
        with srv1.client() as c:
            assert c.compile(**REQ)["source"] == "compile"
            c.shutdown()
        srv1.join()

        srv2 = ServerThread(tmp_path / "cache")
        try:
            with srv2.client() as c:
                r = c.compile(**REQ)
                stats = c.stats()
        finally:
            with srv2.client() as c:
                c.shutdown()
            srv2.join()
        assert r["source"] == "disk"
        assert stats["server"]["hits_disk"] == 1
        assert stats["server"]["compiles"] == 0
        assert stats["cache"]["hits"] == 1
