"""Smoke tests: every example script runs to completion.

Examples are imported and driven with reduced parameters so the whole
file stays fast; their internal assertions (result verification) do the
real checking.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "matches the sequential reference" in out

    def test_sor_cluster_small(self, capsys):
        _load("sor_cluster").main(20, 30, 4)
        out = capsys.readouterr().out
        assert "non-rectangular tiling is" in out
        assert "faster" in out

    def test_adi_tile_shapes_small(self, capsys):
        _load("adi_tile_shapes").main(16, 20, 2)
        out = capsys.readouterr().out
        assert "winner: nr3" in out

    def test_codegen_tour(self, capsys):
        _load("codegen_tour").main()
        out = capsys.readouterr().out
        assert "MPI_Send" in out
        assert "Sequential tiled code" in out

    def test_custom_stencil(self, capsys):
        _load("custom_stencil").main()
        out = capsys.readouterr().out
        assert "best shape" in out
        assert "max |distributed - sequential|" in out

    def test_tile_size_tuning_small(self, capsys):
        _load("tile_size_tuning").main(20, 24)
        out = capsys.readouterr().out
        assert "ratio-balanced" in out
        assert "best simulated extent" in out
