"""Unit tests for affine array references."""

import pytest

from repro.linalg import RatMat
from repro.loops import ArrayRef


class TestArrayRef:
    def test_identity_index(self):
        r = ArrayRef.of("A", (-1, 0, 1))
        assert r.index((5, 5, 5)) == (4, 5, 6)

    def test_matrix_index(self):
        proj = RatMat([[0, 1, 0], [0, 0, 1]])
        r = ArrayRef.of("A", (0, 0), proj)
        assert r.index((7, 2, 3)) == (2, 3)

    def test_matrix_with_offset(self):
        m = RatMat([[1, 1], [0, 1]])
        r = ArrayRef.of("A", (1, -1), m)
        assert r.index((2, 3)) == (6, 2)

    def test_uniform_translate_same_matrix(self):
        a = ArrayRef.of("A", (0, 0))
        b = ArrayRef.of("A", (-1, -2))
        assert b.is_uniform_translate_of(a)

    def test_not_translate_different_matrix(self):
        a = ArrayRef.of("A", (0, 0))
        b = ArrayRef.of("A", (0, 0), RatMat([[1, 1], [0, 1]]))
        assert not b.is_uniform_translate_of(a)

    def test_not_translate_different_array(self):
        a = ArrayRef.of("A", (0, 0))
        b = ArrayRef.of("B", (0, 0))
        assert not b.is_uniform_translate_of(a)

    def test_fractional_index_rejected(self):
        from repro.linalg import from_rows
        r = ArrayRef.of("A", (0,), from_rows([["1/2", 0]]))
        with pytest.raises(ValueError):
            r.index((1, 0))

    def test_dim(self):
        assert ArrayRef.of("A", (0, 0, 0)).dim == 3
