"""Unit tests for the loop-nest IR."""

import pytest

from repro.loops import ArrayRef, LoopNest, Statement


def _stmt(n=2):
    return Statement.of(
        ArrayRef.of("A", tuple([0] * n)),
        [ArrayRef.of("A", tuple([-1] + [0] * (n - 1)))],
    )


class TestLoopNest:
    def test_rectangular(self):
        nest = LoopNest.rectangular("t", [0, 0], [3, 4], [_stmt()],
                                    [(1, 0)])
        assert nest.depth == 2
        assert nest.domain.contains((3, 4))
        assert not nest.domain.contains((4, 0))

    def test_written_arrays(self):
        nest = LoopNest.rectangular("t", [0, 0], [1, 1], [_stmt()],
                                    [(1, 0)])
        assert nest.written_arrays == ("A",)

    def test_no_statements_rejected(self):
        with pytest.raises(ValueError):
            LoopNest.rectangular("t", [0], [1], [], [])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LoopNest.rectangular("t", [0, 0, 0], [1, 1, 1], [_stmt(2)],
                                 [(1, 0, 0)])

    def test_bad_dependence_dim_rejected(self):
        with pytest.raises(ValueError):
            LoopNest.rectangular("t", [0, 0], [1, 1], [_stmt()], [(1,)])

    def test_double_write_rejected(self):
        with pytest.raises(ValueError):
            LoopNest.rectangular("t", [0, 0], [1, 1],
                                 [_stmt(), _stmt()], [(1, 0)])

    def test_dependence_matrix_columns(self):
        nest = LoopNest.rectangular("t", [0, 0], [1, 1], [_stmt()],
                                    [(1, 0), (0, 1)])
        assert nest.dependence_matrix_columns() == ((1, 0), (0, 1))
