"""Unit tests for the loop-nest pretty printer."""

from repro.apps import adi, sor
from repro.loops.pretty import format_nest


class TestFormatNest:
    def test_sor_original(self):
        text = format_nest(sor.original_nest(4, 6))
        assert text.count("ENDFOR") == 3
        assert text.count("FOR") == 6  # 3 openers + 3 ENDFORs
        assert "A[j0 - 1][j1][j2]" in text

    def test_skewed_references_unskewed(self, sor_small):
        text = format_nest(sor_small.nest)
        # the paper's skewed SOR body indexes A[t', i'-t', j'-2t']
        assert "A[j0][-j0 + j1][-2*j0 + j2]" in text

    def test_adi_two_statements(self, adi_small):
        text = format_nest(adi_small.nest)
        assert text.count(":=") == 2
        assert "X[" in text and "B[" in text and "A[j1][j2]" in text

    def test_bounds_match_domain(self):
        nest = sor.original_nest(3, 5)
        text = format_nest(nest)
        assert "FOR j0 = 1 TO 3" in text
        assert "FOR j1 = 1 TO 5" in text
