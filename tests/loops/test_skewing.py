"""Unit tests for loop skewing."""

import pytest

from repro.linalg import RatMat
from repro.loops import (
    ArrayRef,
    LoopNest,
    Statement,
    find_skew_for_rectangular_tiling,
    is_legal_skew,
    skew_nest,
    skewed_dependences,
)
from repro.polyhedra import integer_points
from repro.runtime.interpreter import run_sequential


class TestSkewedDependences:
    def test_paper_sor(self):
        t = RatMat([[1, 0, 0], [1, 1, 0], [2, 0, 1]])
        deps = [(0, 1, 0), (0, 0, 1), (1, -1, 0), (1, 0, -1), (1, 0, 0)]
        got = set(skewed_dependences(t, deps))
        assert got == {(0, 1, 0), (0, 0, 1), (1, 0, 2), (1, 1, 1),
                       (1, 1, 2)}

    def test_paper_jacobi(self):
        t = RatMat([[1, 0, 0], [1, 1, 0], [1, 0, 1]])
        deps = [(1, 0, 0), (1, -1, 0), (1, 1, 0), (1, 0, -1), (1, 0, 1)]
        got = set(skewed_dependences(t, deps))
        assert got == {(1, 1, 1), (1, 0, 1), (1, 2, 1), (1, 1, 0),
                       (1, 1, 2)}


class TestLegality:
    def test_legal(self):
        t = RatMat([[1, 0], [1, 1]])
        assert is_legal_skew(t, [(1, -1), (1, 0)])

    def test_still_negative(self):
        t = RatMat([[1, 0], [1, 1]])
        assert not is_legal_skew(t, [(1, -2)])

    def test_non_unimodular_rejected(self):
        assert not is_legal_skew(RatMat([[2, 0], [0, 1]]), [(1, 0)])


class TestSkewNest:
    def _nest(self):
        stmt = Statement.of(
            ArrayRef.of("A", (0, 0)),
            [ArrayRef.of("A", (-1, 1)), ArrayRef.of("A", (-1, 0))],
            lambda j, v: 0.5 * v[0] + 0.5 * v[1],
        )
        return LoopNest.rectangular("w", [0, 0], [4, 4], [stmt],
                                    [(1, -1), (1, 0)])

    def test_domain_is_image(self):
        nest = self._nest()
        t = RatMat([[1, 0], [1, 1]])
        sk = skew_nest(nest, t)
        pts = set(integer_points(nest.domain))
        spts = set(integer_points(sk.domain))
        assert spts == {tuple(int(x) for x in t.matvec(p)) for p in pts}

    def test_dependences_skewed(self):
        sk = skew_nest(self._nest(), RatMat([[1, 0], [1, 1]]))
        assert set(sk.dependences) == {(1, 0), (1, 1)}

    def test_references_rewritten(self):
        sk = skew_nest(self._nest(), RatMat([[1, 0], [1, 1]]))
        w = sk.statements[0].write
        # at skewed point (i, i+j) the write must hit cell (i, j)
        assert w.index((2, 5)) == (2, 3)

    def test_semantics_preserved(self):
        """The skewed nest computes the same cells with the same values."""
        nest = self._nest()
        sk = skew_nest(nest, RatMat([[1, 0], [1, 1]]))

        def init(arr, cell):
            return float(cell[0] - 2 * cell[1])

        assert run_sequential(nest, init) == run_sequential(sk, init)

    def test_non_unimodular_rejected(self):
        with pytest.raises(ValueError):
            skew_nest(self._nest(), RatMat([[2, 0], [0, 1]]))


class TestAutoSkew:
    def test_finds_paper_class_skew_for_jacobi_deps(self):
        deps = [(1, 0, 0), (1, -1, 0), (1, 1, 0), (1, 0, -1), (1, 0, 1)]
        t = find_skew_for_rectangular_tiling(deps)
        assert t is not None
        assert is_legal_skew(t, deps)

    def test_minimal_for_simple_case(self):
        t = find_skew_for_rectangular_tiling([(1, -1)])
        assert t == RatMat([[1, 0], [1, 1]])

    def test_none_when_budget_too_small(self):
        assert find_skew_for_rectangular_tiling([(1, -5)],
                                                max_coeff=2) is None

    def test_already_nonnegative_returns_identity(self):
        t = find_skew_for_rectangular_tiling([(1, 0), (0, 1)])
        assert t == RatMat([[1, 0], [0, 1]])
