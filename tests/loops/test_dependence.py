"""Unit tests for uniform dependence extraction."""

import pytest

from repro.linalg import RatMat
from repro.loops import (
    ArrayRef,
    Statement,
    dependence_matrix,
    is_lexicographically_positive,
    nest_dependences,
    uniform_dependences,
    validate_dependences,
)


def _stmt(write_off, read_offs, array="A"):
    return Statement.of(
        ArrayRef.of(array, write_off),
        [ArrayRef.of(array, r) for r in read_offs],
    )


class TestUniformDependences:
    def test_simple_stencil(self):
        w = ArrayRef.of("A", (0, 0))
        reads = [ArrayRef.of("A", (-1, 0)), ArrayRef.of("A", (0, -1))]
        assert uniform_dependences(w, reads) == ((1, 0), (0, 1))

    def test_other_array_ignored(self):
        w = ArrayRef.of("A", (0, 0))
        reads = [ArrayRef.of("B", (-1, 0))]
        assert uniform_dependences(w, reads) == ()

    def test_self_read_no_dependence(self):
        w = ArrayRef.of("A", (0, 0))
        assert uniform_dependences(w, [ArrayRef.of("A", (0, 0))]) == ()

    def test_non_uniform_rejected(self):
        w = ArrayRef.of("A", (0, 0))
        skewed = ArrayRef.of("A", (0, 0), RatMat([[1, 1], [0, 1]]))
        with pytest.raises(ValueError):
            uniform_dependences(w, [skewed])

    def test_shared_access_matrix_solved(self):
        m = RatMat([[1, 1], [0, 1]])
        w = ArrayRef.of("A", (0, 0), m)
        r = ArrayRef.of("A", (-1, -1), m)
        # F d = (1, 1) with F = [[1,1],[0,1]] -> d = (0, 1)
        assert uniform_dependences(w, [r]) == ((0, 1),)


class TestNestDependences:
    def test_cross_array(self):
        """X reads B, B written by another statement: dep still found."""
        sx = Statement.of(
            ArrayRef.of("X", (0, 0)),
            [ArrayRef.of("X", (-1, 0)), ArrayRef.of("B", (-1, -1))],
        )
        sb = Statement.of(
            ArrayRef.of("B", (0, 0)),
            [ArrayRef.of("B", (-1, 0))],
        )
        deps = nest_dependences([sx, sb])
        assert set(deps) == {(1, 0), (1, 1)}

    def test_duplicates_merged(self):
        s1 = _stmt((0, 0), [(-1, 0)])
        s2 = Statement.of(
            ArrayRef.of("B", (0, 0)),
            [ArrayRef.of("B", (-1, 0))],
        )
        assert nest_dependences([s1, s2]) == ((1, 0),)

    def test_paper_adi_dependences(self, adi_small):
        assert set(adi_small.nest.dependences) == {
            (1, 0, 0), (1, 1, 0), (1, 0, 1)
        }


class TestDependenceMatrix:
    def test_columns(self):
        d = dependence_matrix([(1, 2), (3, 4)])
        assert d == ((1, 3), (2, 4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dependence_matrix([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            dependence_matrix([(1, 2), (3,)])


class TestLexPositivity:
    def test_positive(self):
        assert is_lexicographically_positive((0, 0, 1))
        assert is_lexicographically_positive((1, -5, 0))

    def test_negative(self):
        assert not is_lexicographically_positive((0, -1, 5))
        assert not is_lexicographically_positive((0, 0, 0))

    def test_validate_raises(self):
        with pytest.raises(ValueError):
            validate_dependences([(1, 0), (0, -1)])

    def test_validate_passes(self):
        validate_dependences([(1, -1), (0, 1)])
