"""Unit tests for the rendezvous send protocol."""

import pytest

from repro.apps import sor
from repro.runtime import (
    ClusterSpec,
    Compute,
    DeadlockError,
    DistributedRun,
    Recv,
    Send,
    TiledProgram,
    VirtualMPI,
)

from tests.conftest import values_close


def run(programs, spec):
    return VirtualMPI(spec, programs).run()


class TestProtocolSelection:
    def test_small_messages_stay_eager(self):
        spec = ClusterSpec(rendezvous_threshold=10_000)

        def sender(api):
            yield Send(dest=1, tag=0, nelems=10)  # 80 bytes: eager
            yield Compute(1.0)

        def receiver(api):
            yield Compute(5.0)
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver}, spec)
        # eager: sender never waits for the late receiver
        assert stats.clocks[0] < 2.0

    def test_large_messages_synchronize(self):
        spec = ClusterSpec(rendezvous_threshold=100)

        def sender(api):
            yield Send(dest=1, tag=0, nelems=1000)  # 8000 B: rendezvous
            yield Compute(0.0)

        def receiver(api):
            yield Compute(5.0)
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver}, spec)
        # sender blocked until the receive at t=5, then both transfer
        assert stats.clocks[0] >= 5.0
        assert abs(stats.clocks[0] - stats.clocks[1]) < 1e-12

    def test_threshold_boundary_exclusive(self):
        spec = ClusterSpec(rendezvous_threshold=80)

        def sender(api):
            yield Send(dest=1, tag=0, nelems=10)  # exactly 80 B: eager

        def receiver(api):
            yield Compute(3.0)
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver}, spec)
        assert stats.clocks[0] < 1.0

    def test_overlap_disables_rendezvous(self):
        spec = ClusterSpec(rendezvous_threshold=0, overlap=True)

        def sender(api):
            yield Send(dest=1, tag=0, nelems=1000)

        def receiver(api):
            yield Compute(5.0)
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver}, spec)
        assert stats.clocks[0] < 1.0  # offloaded


class TestFifoAcrossProtocols:
    def test_mixed_sizes_keep_order(self):
        spec = ClusterSpec(rendezvous_threshold=800)
        got = []

        def sender(api):
            yield Send(dest=1, tag=0, nelems=1000, payload="big")   # rdv
            yield Send(dest=1, tag=0, nelems=10, payload="small")   # eager

        def receiver(api):
            p1, _ = yield Recv(source=0, tag=0)
            p2, _ = yield Recv(source=0, tag=0)
            got.extend([p1, p2])

        run({0: sender, 1: receiver}, spec)
        assert got == ["big", "small"]


class TestDeadlockDetection:
    def test_unmatched_rendezvous_send(self):
        spec = ClusterSpec(rendezvous_threshold=0)

        def sender(api):
            yield Send(dest=1, tag=0, nelems=100)

        def receiver(api):
            yield Compute(1.0)  # never posts the receive

        with pytest.raises(DeadlockError, match="rendezvous-send"):
            run({0: sender, 1: receiver}, spec)


class TestEndToEnd:
    def test_sor_correct_under_rendezvous(self, sor_small,
                                          sor_reference_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        spec = ClusterSpec(rendezvous_threshold=0)
        arrays, _ = DistributedRun(prog, spec).execute(sor_small.init_value)
        assert values_close(arrays["A"], sor_reference_small)

    def test_rendezvous_never_faster(self, sor_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        eager = DistributedRun(prog, ClusterSpec()).simulate()
        rdv = DistributedRun(
            prog, ClusterSpec(rendezvous_threshold=0)).simulate()
        assert rdv.makespan >= eager.makespan - 1e-12
