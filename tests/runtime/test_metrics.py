"""Unit tests for utilization metrics."""

import pytest

from repro.apps import sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.metrics import (
    RankMetrics,
    format_metrics,
    metrics_from_stats,
)


@pytest.fixture(scope="module")
def run_metrics():
    app = sor.app(6, 8)
    prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                        mapping_dim=2)
    stats = DistributedRun(prog, ClusterSpec()).simulate()
    return metrics_from_stats(stats), stats


class TestAccounting:
    def test_one_row_per_rank(self, run_metrics):
        m, stats = run_metrics
        assert len(m.ranks) == len(stats.clocks)

    def test_components_cover_makespan(self, run_metrics):
        m, _ = run_metrics
        for r in m.ranks:
            assert r.compute + r.comm + r.idle == pytest.approx(
                m.makespan, abs=1e-12)

    def test_nonnegative(self, run_metrics):
        m, _ = run_metrics
        for r in m.ranks:
            assert r.compute >= 0 and r.comm >= 0 and r.idle >= 0

    def test_efficiency_in_unit_interval(self, run_metrics):
        m, _ = run_metrics
        assert 0 < m.parallel_efficiency <= 1

    def test_efficiency_matches_stats(self, run_metrics):
        m, stats = run_metrics
        assert m.parallel_efficiency == pytest.approx(stats.efficiency())

    def test_imbalance_nonnegative(self, run_metrics):
        m, _ = run_metrics
        assert m.load_imbalance >= 0

    def test_comm_fraction_bounded(self, run_metrics):
        m, _ = run_metrics
        assert 0 <= m.comm_fraction <= 1


class TestFormat:
    def test_contains_summary_line(self, run_metrics):
        m, _ = run_metrics
        text = format_metrics(m)
        assert "efficiency" in text and "imbalance" in text

    def test_top_truncates(self, run_metrics):
        m, _ = run_metrics
        short = format_metrics(m, top=2)
        assert len(short.splitlines()) == 2 + 2

    def test_busy_fraction_counts_comm(self):
        # busy = (compute + comm) / total; the old definition counted
        # compute only, making comm-bound ranks look idle.
        r = RankMetrics(rank=0, compute=2.0, comm=1.0, idle=1.0)
        assert r.busy_fraction == pytest.approx(0.75)
        assert r.compute_fraction == pytest.approx(0.5)

    def test_busy_fraction_zero_total(self):
        r = RankMetrics(rank=0, compute=0.0, comm=0.0, idle=0.0)
        assert r.busy_fraction == 0.0
        assert r.compute_fraction == 0.0
