"""Correctness and failure modes of the real multiprocess backend.

The dense engine is the reference: every parallel run here must be
**bitwise** identical (``tol=0.0``) — same batched kernels, same pack
order, so any drift is a transport bug, not float noise.  RunStats
event counts must equal the simulator's.  The failure-mode tests pin
the contract that a broken run *reports* instead of hanging: worker
crashes surface as :class:`ParallelWorkerError` with the remote
traceback, genuine protocol deadlocks as
:class:`ParallelTimeoutError` (mirroring the simulator's
``DeadlockError`` on the same schedule).
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import adi, heat, jacobi, sor
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    EventTrace,
    ParallelRuntimeError,
    ParallelTimeoutError,
    ParallelWorkerError,
    TiledProgram,
    arrays_match,
    dense_to_cells,
    run_parallel,
)
from repro.runtime.parallel import (
    EdgeSpec,
    _Edge,
    _partition,
    build_edges,
    build_rank_plans,
)
from repro.runtime.vmpi import DeadlockError

SPEC = ClusterSpec()

# (app, tiling, mapping_dim) — the dense-engine matrix, minus the
# heaviest entries (each parallel run spawns real OS processes).
PARALLEL_CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-partial-tiles"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
]


def _dense_ref(app, h, mdim):
    prog = TiledProgram(app.nest, h, mapping_dim=mdim)
    fields, stats = DistributedRun(prog, SPEC).execute_dense(
        app.init_value)
    return prog, dense_to_cells(fields), stats


class TestBitwiseAgainstDense:
    @pytest.mark.parametrize("app,h,mdim", PARALLEL_CONFIGS)
    def test_matches_dense_engine(self, app, h, mdim):
        prog, ref, ref_stats = _dense_ref(app, h, mdim)
        fields, stats = run_parallel(prog, SPEC, app.init_value,
                                     workers=2)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)
        # Event counts must equal the simulator's (the clocks are
        # measured wall time, so only the counting side is comparable).
        assert stats.total_messages == ref_stats.total_messages
        assert stats.total_elements == ref_stats.total_elements

    def test_single_worker_matches(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=1)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_workers_above_processor_count_clamped(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value,
                                 workers=prog.num_processors + 50)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_event_counts_match_simulator(self):
        app, h = jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3)
        prog = TiledProgram(app.nest, h, mapping_dim=0)
        sim_stats = DistributedRun(prog, SPEC).simulate()
        _, stats = run_parallel(prog, SPEC, app.init_value, workers=2)
        assert stats.total_messages == sim_stats.total_messages
        assert stats.total_elements == sim_stats.total_elements

    def test_executor_method_and_trace(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        trace = EventTrace()
        run = DistributedRun(prog, SPEC, trace=trace)
        fields, stats = run.execute_parallel(app.init_value, workers=2)
        _, ref, _ = _dense_ref(app, h, 2)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)
        # One measured send/recv event per message on each side.
        sends = [e for e in trace.events if e.kind == "send"]
        recvs = [e for e in trace.events if e.kind == "recv"]
        assert len(sends) == stats.total_messages
        assert len(recvs) == stats.total_messages
        assert all(e.label == "measured" for e in trace.events)
        assert all(e.end >= e.start >= 0.0 for e in trace.events)

    def test_measured_stats_are_wall_clock(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        _, stats = run_parallel(prog, SPEC, app.init_value, workers=2)
        assert stats.makespan > 0.0
        assert all(c >= 0.0 for c in stats.clocks.values())
        assert stats.makespan == pytest.approx(
            max(stats.clocks.values()))
        for rank in stats.clocks:
            busy = stats.compute_time[rank] + stats.comm_time[rank]
            assert busy <= stats.clocks[rank] * 1.001 + 1e-9


class TestProtocols:
    def test_eager_bitwise(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=2,
                                 protocol="eager")
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_eager_minimal_mailbox_backpressure(self):
        # depth=1 forces maximal backpressure: every edge blocks after
        # one in-flight message; the cooperative scheduler must still
        # drain the schedule, bitwise-identically.
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=2,
                                 protocol="eager", mailbox_depth=1)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_rendezvous_bitwise_on_safe_schedule(self):
        # Jacobi's single-tag-per-step schedule is rendezvous-safe
        # (the simulator agrees); results must still be bitwise.
        app, h = jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3)
        prog, ref, _ = _dense_ref(app, h, 0)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=2,
                                 protocol="rendezvous")
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_rendezvous_deadlock_mirrors_simulator(self):
        # SOR's multi-tag schedule deadlocks under a forced rendezvous
        # protocol.  The simulator proves it statically; the real
        # backend must *report* it (timeout), never hang — naming the
        # stuck mailbox edges and attaching the HB02 cycle hint.
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        spec_rdv = dataclasses.replace(SPEC, rendezvous_threshold=0)
        with pytest.raises(DeadlockError):
            DistributedRun(prog, spec_rdv).simulate()
        with pytest.raises(ParallelTimeoutError) as exc:
            run_parallel(prog, SPEC, app.init_value, workers=2,
                         protocol="rendezvous", timeout=5.0)
        msg = str(exc.value)
        assert "blocked edges" in msg
        assert "tag" in msg and "sent" in msg and "consumed" in msg
        assert "HB certificate reports a wait cycle" in msg
        # The hinted cycle is the statically certified one.
        cert = prog.hb_certificate(protocol="rendezvous")
        assert cert.cycle
        for r in cert.cycle:
            assert str(r) in msg

    def test_verify_refuses_certified_deadlock(self):
        # verify=True must catch the same hazard *before* forking any
        # worker: VerificationError with the HB02 diagnostic, no 5s
        # timeout paid.
        from repro.analysis.verifier import VerificationError
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        with pytest.raises(VerificationError) as exc:
            run_parallel(prog, SPEC, app.init_value, workers=2,
                         protocol="rendezvous", timeout=5.0,
                         verify=True)
        assert "HB02" in [d.code for d in exc.value.report.diagnostics]

    def test_verify_passes_clean_schedule(self):
        # On a certified-clean configuration verify=True must be
        # transparent: same bitwise results as the plain run.
        app, h = sor.app(4, 6), sor.h_nonrectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=2,
                                 protocol="eager", verify=True)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_invalid_arguments(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        with pytest.raises(ValueError):
            run_parallel(prog, SPEC, app.init_value, protocol="tcp")
        with pytest.raises(ValueError):
            run_parallel(prog, SPEC, app.init_value, mailbox_depth=0)


class TestFailureModes:
    def test_worker_crash_surfaces_cleanly(self):
        # A crash in any rank must produce ParallelWorkerError with
        # the remote traceback — promptly, with every worker reaped
        # and every shared-memory segment released (no hang).
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        with pytest.raises(ParallelWorkerError) as exc_info:
            run_parallel(prog, SPEC, app.init_value, workers=2,
                         timeout=60.0, _crash_rank=1)
        assert "injected crash in rank 1" in str(exc_info.value)

    def test_crash_leaves_no_shared_memory(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        before = set(os.listdir("/dev/shm")) if os.path.isdir(
            "/dev/shm") else set()
        with pytest.raises(ParallelWorkerError):
            run_parallel(prog, SPEC, app.init_value, workers=2,
                         timeout=60.0, _crash_rank=0)
        if before is not None and os.path.isdir("/dev/shm"):
            leaked = {n for n in set(os.listdir("/dev/shm")) - before
                      if n.startswith("psm_")}
            assert not leaked, f"leaked segments: {leaked}"


class TestMailboxRing:
    def _edge(self, depth, capacity):
        spec = EdgeSpec(meta_off=0, data_off=0, depth=depth,
                        capacity=capacity)
        meta = np.zeros(2 + depth, dtype=np.int64)
        data = np.zeros(depth * capacity, dtype=np.float64)
        return _Edge(spec, meta, data)

    def test_fifo_and_wraparound(self):
        edge = self._edge(depth=2, capacity=3)
        for round_no in range(5):  # wraps the ring twice
            assert edge.can_push()
            edge.push(np.array([float(round_no)]))
            assert edge.can_pop()
            got = edge.pop()
            assert got.tolist() == [float(round_no)]
        assert not edge.can_pop()

    def test_backpressure_when_full(self):
        edge = self._edge(depth=2, capacity=1)
        edge.push(np.array([1.0]))
        edge.push(np.array([2.0]))
        assert not edge.can_push()  # ring full: sender must wait
        assert edge.pop().tolist() == [1.0]
        assert edge.can_push()

    def test_oversized_message_rejected(self):
        edge = self._edge(depth=1, capacity=2)
        with pytest.raises(ParallelRuntimeError):
            edge.push(np.zeros(3))

    def test_rendezvous_consumed_tracking(self):
        edge = self._edge(depth=4, capacity=1)
        msgno = edge.push(np.array([7.0]))
        assert not edge.consumed(msgno)
        edge.pop()
        assert edge.consumed(msgno)

    def test_variable_message_sizes(self):
        edge = self._edge(depth=2, capacity=4)
        edge.push(np.array([1.0, 2.0, 3.0]))
        edge.push(np.array([4.0]))
        assert edge.pop().tolist() == [1.0, 2.0, 3.0]
        assert edge.pop().tolist() == [4.0]

    def test_reserve_commit_zero_copy(self):
        # The overlap path's zero-copy protocol: reserve a slot view,
        # fill it incrementally, publish with commit.  The consumer
        # must not see the message before commit.
        edge = self._edge(depth=2, capacity=3)
        view = edge.reserve(3)
        assert view is not None and len(view) == 3
        view[0] = 1.0
        assert not edge.can_pop()       # invisible until commit
        view[1:] = [2.0, 3.0]
        msgno = edge.commit()
        assert edge.can_pop()
        assert not edge.consumed(msgno)
        assert edge.pop().tolist() == [1.0, 2.0, 3.0]
        assert edge.consumed(msgno)

    def test_reserve_full_ring_returns_none(self):
        edge = self._edge(depth=1, capacity=2)
        edge.push(np.array([1.0, 2.0]))
        assert edge.reserve(1) is None  # never blocks, never raises
        edge.pop()
        assert edge.reserve(1) is not None

    def test_reserve_oversized_rejected(self):
        edge = self._edge(depth=1, capacity=2)
        with pytest.raises(ParallelRuntimeError):
            edge.reserve(3)

    def test_reserve_commit_wraparound(self):
        # Drive head past several multiples of depth through the
        # reserve/commit path; slot reuse must stay FIFO-correct.
        edge = self._edge(depth=2, capacity=2)
        for i in range(7):
            view = edge.reserve(2)
            assert view is not None
            view[:] = [float(i), float(-i)]
            edge.commit()
            assert edge.pop().tolist() == [float(i), float(-i)]
        assert not edge.can_pop()

    def test_capacity_boundary_push_pop_sequence(self):
        # Fill to exactly depth (capacity boundary), drain one, refill
        # one, interleaving push and reserve/commit producers.
        edge = self._edge(depth=3, capacity=1)
        edge.push(np.array([1.0]))
        view = edge.reserve(1)
        view[0] = 2.0
        edge.commit()
        edge.push(np.array([3.0]))
        assert not edge.can_push()
        assert edge.reserve(1) is None
        assert edge.peek().tolist() == [1.0]    # zero-copy consumer
        edge.release()
        view = edge.reserve(1)
        assert view is not None
        view[0] = 4.0
        edge.commit()
        assert [edge.pop().tolist() for _ in range(3)] == [
            [2.0], [3.0], [4.0]]

    def test_peek_release_matches_pop(self):
        edge = self._edge(depth=2, capacity=2)
        edge.push(np.array([5.0, 6.0]))
        got = edge.peek()
        assert got.tolist() == [5.0, 6.0]
        edge.release()
        assert not edge.can_pop()


class TestPartition:
    def test_round_robin(self):
        assert _partition(5, 2) == [(0, 2, 4), (1, 3)]

    def test_nranks_below_nworkers_leaves_empty_workers(self):
        # More workers than ranks: the surplus workers get empty
        # tuples (they start, find nothing to run, and exit cleanly).
        assert _partition(2, 4) == [(0,), (1,), (), ()]

    def test_single_worker_gets_everything(self):
        assert _partition(4, 1) == [(0, 1, 2, 3)]

    def test_single_rank(self):
        assert _partition(1, 3) == [(0,), (), ()]

    def test_empty(self):
        assert _partition(0, 2) == [(), ()]


class TestCompiledPlans:
    def test_plans_cover_simulator_counts(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        sim = DistributedRun(prog, SPEC).simulate()
        plans = build_rank_plans(prog)
        sends = sum(len(ss) for p in plans.values() for ss in p.sends)
        recvs = sum(len(rr) for p in plans.values() for rr in p.recvs)
        elems = sum(s.nelems for p in plans.values()
                    for ss in p.sends for s in ss)
        assert sends == sim.total_messages
        assert recvs == sim.total_messages
        assert elems == sim.total_elements

    def test_edges_sized_for_largest_message(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        plans = build_rank_plans(prog)
        edges = build_edges(plans, depth=8)
        for plan in plans.values():
            for ss in plan.sends:
                for s in ss:
                    spec = edges[(plan.rank, s.dst_rank, s.tag)]
                    assert spec.capacity >= s.nelems
                    assert 1 <= spec.depth <= 8


class TestRandomTilings:
    @settings(max_examples=6, deadline=None)
    @given(tx=st.integers(2, 4), ty=st.integers(2, 5),
           tz=st.integers(2, 6))
    def test_parallel_bitwise_equals_dense(self, tx, ty, tz):
        """Hypothesis: across random tile shapes the parallel backend
        is bitwise-identical to the dense engine."""
        app = sor.app(4, 6)
        h = sor.h_rectangular(tx, ty, tz)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        ref_fields, ref_stats = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        fields, stats = run_parallel(prog, SPEC, app.init_value,
                                     workers=2)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)
        assert stats.total_messages == ref_stats.total_messages
        assert stats.total_elements == ref_stats.total_elements

    @settings(max_examples=6, deadline=None)
    @given(tx=st.integers(2, 4), ty=st.integers(2, 5),
           tz=st.integers(2, 6))
    def test_overlap_bitwise_equals_dense(self, tx, ty, tz):
        """Hypothesis: the overlapped schedule stays bitwise-identical
        across random tile shapes (partial tiles, varying wavefront
        depths, varying boundary/interior splits)."""
        app = sor.app(4, 6)
        h = sor.h_rectangular(tx, ty, tz)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        ref_fields, ref_stats = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        fields, stats = run_parallel(prog, SPEC, app.init_value,
                                     workers=2, overlap=True)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)
        assert stats.total_messages == ref_stats.total_messages
        assert stats.total_elements == ref_stats.total_elements


class TestOverlap:
    """The overlapped schedule: bitwise identity is the hard bar."""

    @pytest.mark.parametrize("app,h,mdim", PARALLEL_CONFIGS)
    def test_overlap_matches_dense_engine(self, app, h, mdim):
        prog, ref, ref_stats = _dense_ref(app, h, mdim)
        fields, stats = run_parallel(prog, SPEC, app.init_value,
                                     workers=2, overlap=True)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)
        assert stats.total_messages == ref_stats.total_messages
        assert stats.total_elements == ref_stats.total_elements

    @pytest.mark.parametrize("app,h,mdim", PARALLEL_CONFIGS)
    def test_overlap_matches_blocking_parallel(self, app, h, mdim):
        """Overlap vs blocking on the same backend: identical fields,
        identical message/element counts."""
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        bf, bstats = run_parallel(prog, SPEC, app.init_value,
                                  workers=2, overlap=False)
        of, ostats = run_parallel(prog, SPEC, app.init_value,
                                  workers=2, overlap=True)
        assert arrays_match(dense_to_cells(of), dense_to_cells(bf),
                            tol=0.0)
        assert ostats.total_messages == bstats.total_messages
        assert ostats.total_elements == bstats.total_elements

    def test_overlap_eager_minimal_mailbox(self):
        # depth=1 defeats every reservation (the ring is full whenever
        # the previous message is unconsumed), exercising the staging
        # fallback and the drain-while-blocked path.
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=2,
                                 protocol="eager", mailbox_depth=1,
                                 overlap=True)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_overlap_rendezvous_safe_schedule(self):
        app, h = jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3)
        prog, ref, _ = _dense_ref(app, h, 0)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=2,
                                 protocol="rendezvous", overlap=True)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_overlap_single_worker(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog, ref, _ = _dense_ref(app, h, 2)
        fields, _ = run_parallel(prog, SPEC, app.init_value, workers=1,
                                 overlap=True)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_overlap_trace_and_clocks(self):
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        trace = EventTrace()
        run = DistributedRun(prog, SPEC, trace=trace)
        fields, stats = run.execute_parallel(app.init_value, workers=2,
                                             overlap=True)
        _, ref, _ = _dense_ref(app, h, 2)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)
        sends = [e for e in trace.events if e.kind == "send"]
        recvs = [e for e in trace.events if e.kind == "recv"]
        assert len(sends) == stats.total_messages
        assert len(recvs) == stats.total_messages
        assert all(e.end >= e.start >= 0.0 for e in trace.events)
        for rank in stats.clocks:
            busy = stats.compute_time[rank] + stats.comm_time[rank]
            assert busy <= stats.clocks[rank] * 1.001 + 1e-9

    def test_overlap_plan_structure(self):
        """The compile-time split partitions every level batch and the
        pack schedules cover each region exactly once."""
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        lex = prog.dense_lex_order()
        for pid in prog.pids:
            for tile in prog.dist.tiles_of(pid):
                oplan = prog.overlap_plan(tile)
                batches = prog.dense_level_batches(tile)
                assert oplan.nlevels == len(batches)
                for li, b in enumerate(batches):
                    merged = np.sort(np.concatenate(
                        [oplan.boundary[li], oplan.interior[li]]))
                    assert np.array_equal(merged, np.sort(b))
                sends, _recvs = prog.overlap_directions(tile)
                for d, pack in zip(sends, oplan.packs):
                    region = prog.region_mask(tile, d)
                    ridx = lex[region[lex]]
                    assert pack.count == len(ridx)
                    allpos = np.sort(np.concatenate(pack.level_pos))
                    assert np.array_equal(allpos,
                                          np.arange(len(ridx)))
                    assert 0 <= pack.commit_level < oplan.nlevels

    def test_overlap_analysis_pass_clean(self):
        from repro.analysis import analyze_program, check_overlap
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        assert check_overlap(prog) == []
        report = analyze_program(prog, overlap=True)
        assert "overlap" in report.passes_run
        assert not [d for d in report.diagnostics
                    if d.pass_name == "overlap"]

    def test_overlap_analysis_pass_detects_corruption(self):
        import dataclasses as _dc

        from repro.analysis import check_overlap
        app, h = sor.app(4, 6), sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        prog.prewarm_overlap_plans()
        # Corrupt one cached plan: claim an earlier commit level.
        key, plan = next(iter(prog._overlap_cache.items()))
        bad_packs = tuple(
            _dc.replace(p, commit_level=max(-1, p.commit_level - 1))
            for p in plan.packs)
        prog._overlap_cache[key] = _dc.replace(plan, packs=bad_packs)
        codes = {d.code for d in check_overlap(prog)}
        assert "OV02" in codes
