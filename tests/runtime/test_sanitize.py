"""Trace sanitizer (HB04): measured runs conform to the certificate;
doctored traces and mismatched modes are rejected."""

import dataclasses

import pytest

from repro.analysis.hb import sanitize_report, sanitize_trace
from repro.apps import sor
from repro.runtime import (
    ClusterSpec,
    EventTrace,
    TiledProgram,
    run_parallel,
)
from repro.runtime.trace import TraceEvent

SPEC = ClusterSpec()


@pytest.fixture(scope="module")
def sor_prog():
    return TiledProgram(sor.app(4, 6).nest,
                        sor.h_nonrectangular(2, 3, 4), mapping_dim=2)


def _measure(prog, overlap):
    trace = EventTrace()
    app = sor.app(4, 6)
    run_parallel(prog, SPEC, app.init_value, workers=2,
                 trace=trace, overlap=overlap)
    return trace


@pytest.fixture(scope="module")
def blocking_trace(sor_prog):
    return _measure(sor_prog, overlap=False)


@pytest.fixture(scope="module")
def overlap_trace(sor_prog):
    return _measure(sor_prog, overlap=True)


class TestMeasuredTracesConform:
    def test_blocking_run_sanitizes_clean(self, sor_prog,
                                          blocking_trace):
        assert blocking_trace.events
        assert sanitize_trace(sor_prog, blocking_trace) == []

    def test_overlap_run_sanitizes_clean(self, sor_prog,
                                         overlap_trace):
        assert sanitize_trace(sor_prog, overlap_trace,
                              overlap=True) == []

    def test_report_wrapper_marks_pass(self, sor_prog,
                                       blocking_trace):
        rep = sanitize_report(sor_prog, blocking_trace,
                              subject="measured sor")
        assert rep.ok
        assert rep.passes_run == ["sanitize"]
        assert rep.meta["events"] == len(blocking_trace.events)


def _doctored(trace, mutate):
    """Copy the trace with one mutation applied to the event list."""
    out = EventTrace()
    out.events = mutate(list(trace.events))
    return out


class TestDoctoredTracesRejected:
    def test_mode_mismatch_is_flagged(self, sor_prog, overlap_trace):
        # An overlap trace replayed against the blocking certificate
        # must fail: sends precede the tile compute record.
        diags = sanitize_trace(sor_prog, overlap_trace, overlap=False)
        assert diags
        assert all(d.code == "HB04" for d in diags)

    def test_dropped_event_is_flagged(self, sor_prog, blocking_trace):
        def drop_first_send(events):
            i = next(k for k, e in enumerate(events)
                     if e.kind == "send")
            return events[:i] + events[i + 1:]

        diags = sanitize_trace(
            sor_prog, _doctored(blocking_trace, drop_first_send))
        assert any("event(s)" in d.message or "out of certified"
                   in d.message for d in diags)

    def test_swapped_events_are_flagged(self, sor_prog,
                                        blocking_trace):
        # Swap a rank's compute with its following send: program
        # order violated.
        def swap(events):
            for k, e in enumerate(events[:-1]):
                nxt = events[k + 1]
                if (e.kind == "compute" and nxt.kind == "send"
                        and e.rank == nxt.rank):
                    events[k], events[k + 1] = nxt, e
                    return events
            raise AssertionError("no compute/send pair found")

        diags = sanitize_trace(sor_prog,
                               _doctored(blocking_trace, swap))
        assert any("out of certified order" in d.message
                   for d in diags)

    def test_time_travel_is_flagged(self, sor_prog, blocking_trace):
        # Rewrite one recv to complete long before its send started:
        # publication-before-consumption violated on the wall clock.
        def warp(events):
            for k, e in enumerate(events):
                if e.kind == "recv":
                    events[k] = dataclasses.replace(
                        e, start=-100.0, end=-99.0)
                    return events
            raise AssertionError("no recv found")

        diags = sanitize_trace(sor_prog,
                               _doctored(blocking_trace, warp))
        assert any("before its send started" in d.message
                   for d in diags)

    def test_wrong_payload_size_is_flagged(self, sor_prog,
                                           blocking_trace):
        def grow(events):
            for k, e in enumerate(events):
                if e.kind == "recv":
                    events[k] = dataclasses.replace(
                        e, nelems=e.nelems + 1)
                    return events
            raise AssertionError("no recv found")

        diags = sanitize_trace(sor_prog,
                               _doctored(blocking_trace, grow))
        assert diags

    def test_foreign_rank_is_flagged(self, sor_prog, blocking_trace):
        def alien(events):
            events.append(TraceEvent("compute", 99, 0.0, 1.0))
            return events

        diags = sanitize_trace(sor_prog,
                               _doctored(blocking_trace, alien))
        assert any("rank 99" in d.message for d in diags)
