"""Versioned EventTrace serialization: round trip, version gating."""

import json

import pytest

from repro.runtime.trace import (
    TRACE_SCHEMA_VERSION,
    EventTrace,
    TraceEvent,
)


def _sample_trace():
    t = EventTrace()
    t.record("send", 0, 0.0, 1.5, peer=1, tag=2, nelems=7,
             label="measured")
    t.record("recv", 1, 0.5, 2.0, peer=0, tag=2, nelems=7)
    t.record("compute", 0, 1.5, 3.0)
    return t


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        t = _sample_trace()
        back = EventTrace.from_dict(t.to_dict())
        assert back.events == t.events

    def test_file_round_trip(self, tmp_path):
        t = _sample_trace()
        path = str(tmp_path / "trace.json")
        t.save(path)
        back = EventTrace.load(path)
        assert back.events == t.events
        assert back.message_count() == 1

    def test_payload_carries_schema_version(self):
        payload = _sample_trace().to_dict()
        assert payload["version"] == TRACE_SCHEMA_VERSION

    def test_none_peer_tag_survive(self):
        t = EventTrace()
        t.record("compute", 3, 0.0, 1.0)
        ev = EventTrace.from_dict(t.to_dict()).events[0]
        assert ev.peer is None and ev.tag is None
        assert ev == TraceEvent("compute", 3, 0.0, 1.0)


class TestVersionGate:
    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="no schema version"):
            EventTrace.from_dict({"events": []})

    def test_wrong_version_rejected(self):
        payload = _sample_trace().to_dict()
        payload["version"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="incompatible"):
            EventTrace.from_dict(payload)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="trace object"):
            EventTrace.load(str(path))
