"""Unit tests for the sequential interpreters."""

from repro.apps import adi, jacobi, sor
from repro.runtime.interpreter import run_sequential, run_tiled_sequential

from tests.conftest import values_close


class TestSequentialAgainstNaiveReferences:
    """The interpreter executing the IR must equal the hand-written
    reference implementations — validates the IR construction."""

    def test_sor(self, sor_small, sor_reference_small):
        got = run_sequential(sor_small.original, sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_sor_skewed(self, sor_small, sor_reference_small):
        got = run_sequential(sor_small.nest, sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_jacobi(self, jacobi_small, jacobi_reference_small):
        got = run_sequential(jacobi_small.original, jacobi_small.init_value)
        assert values_close(got["A"], jacobi_reference_small)

    def test_jacobi_skewed(self, jacobi_small, jacobi_reference_small):
        got = run_sequential(jacobi_small.nest, jacobi_small.init_value)
        assert values_close(got["A"], jacobi_reference_small)

    def test_adi_both_arrays(self, adi_small, adi_reference_small):
        got = run_sequential(adi_small.nest, adi_small.init_value)
        assert values_close(got["X"], adi_reference_small["X"])
        assert values_close(got["B"], adi_reference_small["B"])


class TestTiledOrderPreservesSemantics:
    """Legality in action: tiled reordering changes nothing."""

    def test_sor_rect(self, sor_small, sor_reference_small):
        got = run_tiled_sequential(sor_small.nest, sor.h_rectangular(2, 3, 4),
                                   sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_sor_nonrect(self, sor_small, sor_reference_small):
        got = run_tiled_sequential(
            sor_small.nest, sor.h_nonrectangular(2, 3, 4),
            sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_jacobi_nonrect_strided(self, jacobi_small,
                                    jacobi_reference_small):
        got = run_tiled_sequential(
            jacobi_small.nest, jacobi.h_nonrectangular(2, 4, 3),
            jacobi_small.init_value)
        assert values_close(got["A"], jacobi_reference_small)

    def test_adi_cone_aligned(self, adi_small, adi_reference_small):
        got = run_tiled_sequential(adi_small.nest, adi.h_nr3(2, 3, 3),
                                   adi_small.init_value)
        assert values_close(got["X"], adi_reference_small["X"])
        assert values_close(got["B"], adi_reference_small["B"])
