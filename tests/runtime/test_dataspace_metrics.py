"""Edge-case coverage for data-space checks and runtime failure modes.

These are the paths the cross-mode verification idiom leans on:
``max_abs_difference`` / ``arrays_match`` decide whether two execution
modes agree, ``assemble_dense`` windows results, and ``DeadlockError``
is the runtime's only defence against a miscompiled communication
schedule.  A wrong answer in any of them silently blesses a broken run.
"""

import numpy as np
import pytest

from repro.runtime import (
    ClusterSpec,
    Compute,
    DeadlockError,
    DenseField,
    Recv,
    Send,
    VirtualMPI,
    arrays_match,
    assemble_dense,
    max_abs_difference,
)

SPEC = ClusterSpec(net_latency=1e-3, net_bandwidth=8e6,
                   bytes_per_element=8, time_per_iteration=1e-6)


class TestMaxAbsDifference:
    def test_both_empty_is_zero(self):
        assert max_abs_difference({}, {}) == 0.0

    def test_empty_vs_nonempty_is_inf(self):
        assert max_abs_difference({}, {(0,): 1.0}) == float("inf")
        assert max_abs_difference({(0,): 1.0}, {}) == float("inf")

    def test_disjoint_keys_is_inf(self):
        a = {(0, 0): 1.0}
        b = {(1, 1): 1.0}
        assert max_abs_difference(a, b) == float("inf")

    def test_partially_overlapping_keys_is_inf(self):
        # Identical where both are defined — still a mismatch, because
        # one mode wrote a cell the other never produced.
        a = {(0,): 1.0, (1,): 2.0}
        b = {(0,): 1.0}
        assert max_abs_difference(a, b) == float("inf")

    def test_identical_is_zero(self):
        a = {(0,): 1.5, (1,): -2.5}
        assert max_abs_difference(a, dict(a)) == 0.0

    def test_reports_largest_gap(self):
        a = {(0,): 1.0, (1,): 5.0}
        b = {(0,): 1.0 + 1e-9, (1,): 5.0 - 2e-6}
        assert max_abs_difference(a, b) == pytest.approx(2e-6)


class TestArraysMatchTolerance:
    def test_exact_tolerance_boundary_passes(self):
        # arrays_match uses <=, so a gap of exactly tol must pass.
        a = {"A": {(0,): 1.0}}
        b = {"A": {(0,): 1.0 + 1e-6}}
        gap = abs(b["A"][(0,)] - 1.0)
        assert arrays_match(a, b, tol=gap)
        assert not arrays_match(a, b, tol=gap * 0.5)

    def test_zero_tolerance_requires_bitwise(self):
        a = {"A": {(0,): 0.1 + 0.2}}
        assert arrays_match(a, {"A": {(0,): 0.1 + 0.2}}, tol=0.0)
        assert not arrays_match(a, {"A": {(0,): 0.3}}, tol=0.0)

    def test_different_array_names_mismatch(self):
        assert not arrays_match({"A": {}}, {"B": {}})


class TestAssembleDenseWindow:
    def test_out_of_window_raises_with_count(self):
        cells = {(0, 0): 1.0, (5, 5): 2.0, (6, 6): 3.0}
        with pytest.raises(ValueError, match="2 cell"):
            assemble_dense(cells, fill=0.0, origin=(0, 0), shape=(2, 2))

    def test_clip_truncates_deliberately(self):
        cells = {(0, 0): 1.0, (5, 5): 2.0}
        a = assemble_dense(cells, fill=0.0, origin=(0, 0), shape=(2, 2),
                           clip=True)
        assert a[0, 0] == 1.0
        assert a.sum() == 1.0

    def test_window_covering_all_cells_never_raises(self):
        cells = {(1, 1): 1.0}
        a = assemble_dense(cells, fill=0.0, origin=(0, 0), shape=(3, 3))
        assert a[1, 1] == 1.0


class TestDenseFieldToCells:
    def test_only_written_cells_exported(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        written = np.array([[True, False], [False, True]])
        f = DenseField(origin=(10, 20), values=values, written=written)
        assert f.to_cells() == {(10, 20): 1.0, (11, 21): 4.0}

    def test_nothing_written_is_empty(self):
        f = DenseField(origin=(0,), values=np.zeros(4),
                       written=np.zeros(4, dtype=bool))
        assert f.to_cells() == {}


class TestDeadlockDetection:
    def test_recv_with_no_sender(self):
        def p(api):
            yield Recv(source=1, tag=0)

        def q(api):
            yield Compute(1.0)

        with pytest.raises(DeadlockError):
            VirtualMPI(SPEC, {0: p, 1: q}).run()

    def test_mutual_recv_cycle(self):
        def p(api):
            yield Recv(source=1, tag=0)
            yield Send(dest=1, tag=0, nelems=1)

        def q(api):
            yield Recv(source=0, tag=0)
            yield Send(dest=0, tag=0, nelems=1)

        with pytest.raises(DeadlockError, match="blocked operations"):
            VirtualMPI(SPEC, {0: p, 1: q}).run()

    def test_tag_mismatch_deadlocks(self):
        def p(api):
            yield Send(dest=1, tag=1, nelems=1)
            # rank 1 waits on tag 2, which never arrives

        def q(api):
            yield Recv(source=0, tag=2)

        with pytest.raises(DeadlockError):
            VirtualMPI(SPEC, {0: p, 1: q}).run()

    def test_no_deadlock_on_clean_exchange(self):
        def p(api):
            yield Send(dest=1, tag=0, nelems=1)
            yield Recv(source=1, tag=0)

        def q(api):
            payload, _ = yield Recv(source=0, tag=0)
            yield Send(dest=0, tag=0, nelems=1)

        stats = VirtualMPI(SPEC, {0: p, 1: q}).run()
        assert stats.total_messages == 2
