"""Unit tests for event traces and ASCII Gantt rendering."""

from repro.runtime.trace import EventTrace, ascii_gantt


def _sample_trace():
    t = EventTrace()
    t.record("compute", rank=0, start=0.0, end=1.0)
    t.record("send", rank=0, start=1.0, end=1.2, peer=1, tag=0, nelems=5)
    t.record("recv", rank=1, start=0.0, end=1.2, peer=0, tag=0, nelems=5)
    t.record("compute", rank=1, start=1.2, end=2.0)
    return t


class TestTrace:
    def test_by_rank_sorted(self):
        t = _sample_trace()
        by = t.by_rank()
        assert set(by) == {0, 1}
        for events in by.values():
            starts = [e.start for e in events]
            assert starts == sorted(starts)

    def test_message_count(self):
        assert _sample_trace().message_count() == 1


class TestGantt:
    def test_rows_per_rank(self):
        rows = ascii_gantt(_sample_trace(), width=40)
        assert len(rows) == 2
        assert all(len(r.cells) == 40 for r in rows)

    def test_compute_marks_present(self):
        rows = ascii_gantt(_sample_trace(), width=40)
        assert "#" in rows[0].cells
        assert "#" in rows[1].cells

    def test_recv_wait_visible(self):
        rows = ascii_gantt(_sample_trace(), width=40)
        assert "<" in rows[1].cells

    def test_empty_trace(self):
        assert ascii_gantt(EventTrace()) == []
