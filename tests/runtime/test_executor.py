"""Unit tests for the TiledProgram compiler output and executor plans."""

import pytest

from repro.apps import adi, sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram


@pytest.fixture(scope="module")
def prog(sor_small_module):
    return TiledProgram(sor_small_module.nest,
                        sor.h_nonrectangular(2, 3, 4),
                        mapping_dim=2)


@pytest.fixture(scope="module")
def sor_small_module():
    return sor.app(4, 6)


class TestCompile:
    def test_illegal_tiling_rejected(self, sor_small_module):
        with pytest.raises(ValueError):
            TiledProgram(sor_small_module.original,
                         sor.h_rectangular(2, 3, 4))

    def test_total_points(self, prog):
        assert prog.total_points() == 4 * 6 * 6

    def test_ranks_bijective(self, prog):
        assert len(prog.rank_of) == prog.num_processors
        assert sorted(prog.rank_of.values()) == list(
            range(prog.num_processors))

    def test_arrays(self, prog):
        assert prog.arrays == ["A"]

    def test_tags_distinct(self, prog):
        tags = [prog.message_tag(dm) for dm in prog.comm.d_m]
        assert len(set(tags)) == len(tags)


class TestPlans:
    def test_send_recv_plans_globally_matched(self, prog):
        """Every send has exactly one matching receive (same src/dst/dir),
        with identical element counts, across the whole schedule."""
        narr = len(prog.arrays)
        sends = []
        recvs = []
        for pid in prog.pids:
            for tile in prog.dist.tiles_of(pid):
                for ds, pred, src in prog.receive_plan(tile):
                    n = prog.region_count(pred, ds) * narr
                    if n:
                        recvs.append((src, pid, prog.comm.project(ds), n))
                for dm, dst in prog.send_plan(tile):
                    full = dm[:prog.dist.m] + (0,) + dm[prog.dist.m:]
                    n = prog.region_count(tile, full) * narr
                    if n:
                        sends.append((pid, dst, dm, n))
        assert sorted(sends) == sorted(recvs)

    def test_receive_sources_are_predecessors(self, prog):
        for pid in prog.pids:
            for tile in prog.dist.tiles_of(pid):
                for ds, pred, src in prog.receive_plan(tile):
                    assert prog.dist.valid(pred)
                    assert src in prog.rank_of or src not in prog.pids
                    dm = prog.comm.project(ds)
                    assert tuple(a - b for a, b in zip(pid, dm)) == src

    def test_full_region_counts_positive(self, prog):
        for dm in prog.comm.d_m:
            full = dm[:prog.dist.m] + (0,) + dm[prog.dist.m:]
            assert prog.full_region_count(full) > 0

    def test_region_count_full_tile_shortcut(self, prog):
        full_tiles = [t for t in prog.dist.tiles
                      if prog.tiling.classify_tile(t) == "full"]
        for t in full_tiles[:4]:
            for dm in prog.comm.d_m:
                full = dm[:prog.dist.m] + (0,) + dm[prog.dist.m:]
                assert prog.region_count(t, full) == \
                    prog.full_region_count(full)


class TestSimulateVsExecuteTiming:
    def test_same_makespan(self, sor_small_module):
        """Data mode and timing mode must produce identical clocks —
        the schedule is the same program."""
        p1 = TiledProgram(sor_small_module.nest,
                          sor.h_nonrectangular(2, 3, 4), mapping_dim=2)
        spec = ClusterSpec()
        sim = DistributedRun(p1, spec).simulate()
        _, ex = DistributedRun(p1, spec).execute(
            sor_small_module.init_value)
        assert abs(sim.makespan - ex.makespan) < 1e-12
        assert sim.total_messages == ex.total_messages
        assert sim.total_elements == ex.total_elements

    def test_deterministic(self, sor_small_module):
        p = TiledProgram(sor_small_module.nest,
                         sor.h_nonrectangular(2, 3, 4), mapping_dim=2)
        spec = ClusterSpec()
        a = DistributedRun(p, spec).simulate()
        b = DistributedRun(p, spec).simulate()
        assert a.makespan == b.makespan
        assert a.clocks == b.clocks


class TestMultiArray:
    def test_adi_message_elements_scale_with_arrays(self):
        app = adi.app(4, 5)
        p = TiledProgram(app.nest, adi.h_rectangular(2, 3, 3),
                         mapping_dim=0)
        assert len(p.arrays) == 2
        stats = DistributedRun(p, ClusterSpec()).simulate()
        # every message carries X and B: element total must be even
        assert stats.total_elements % 2 == 0
