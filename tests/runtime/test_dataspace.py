"""Unit tests for global data-space assembly and cross-mode checks."""

import numpy as np
import pytest

from repro.runtime.dataspace import (
    arrays_match,
    assemble_dense,
    max_abs_difference,
    written_region,
)


@pytest.fixture
def sparse():
    return {(1, 2): 1.0, (1, 3): 2.0, (3, 2): 3.0}


class TestRegion:
    def test_bounding_box(self, sparse):
        assert written_region(sparse) == ((1, 2), (3, 3))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            written_region({})


class TestAssemble:
    def test_values_placed(self, sparse):
        a = assemble_dense(sparse, fill=0.0)
        assert a.shape == (3, 2)
        assert a[0, 0] == 1.0 and a[0, 1] == 2.0 and a[2, 0] == 3.0

    def test_fill_value(self, sparse):
        a = assemble_dense(sparse)
        assert np.isnan(a[1, 0])

    def test_custom_window(self, sparse):
        a = assemble_dense(sparse, fill=0.0, origin=(0, 0), shape=(5, 5))
        assert a[1, 2] == 1.0
        assert a[3, 2] == 3.0

    def test_out_of_window_raises(self, sparse):
        # Silently dropping cells used to mask assembly bugs; now the
        # caller must opt into truncation explicitly.
        with pytest.raises(ValueError, match="3 cell"):
            assemble_dense(sparse, fill=0.0, origin=(0, 0), shape=(1, 1))

    def test_out_of_window_clip_opt_in(self, sparse):
        a = assemble_dense(sparse, fill=0.0, origin=(0, 0), shape=(1, 1),
                           clip=True)
        assert a.sum() == 0.0  # all cells outside the tiny window

    def test_from_real_execution(self, sor_small, sor_reference_small):
        from repro.apps import sor
        from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
        prog = TiledProgram(sor_small.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        arrays, _ = DistributedRun(prog, ClusterSpec()).execute(
            sor_small.init_value)
        dense = assemble_dense(arrays["A"], fill=0.0)
        # data cells are *unskewed*: A[t,i,j] over [1,4] x [1,6]^2
        assert dense.shape == (4, 6, 6)
        assert not np.isnan(dense).any()


class TestComparison:
    def test_max_abs_difference(self, sparse):
        other = dict(sparse)
        other[(3, 2)] += 1e-6
        assert max_abs_difference(sparse, other) == pytest.approx(1e-6)

    def test_key_mismatch_is_infinite(self, sparse):
        other = dict(sparse)
        other[(9, 9)] = 0.0
        assert max_abs_difference(sparse, other) == float("inf")

    def test_arrays_match(self, sparse):
        assert arrays_match({"A": sparse}, {"A": dict(sparse)})
        assert not arrays_match({"A": sparse}, {"B": sparse})
        shifted = {k: v + 1.0 for k, v in sparse.items()}
        assert not arrays_match({"A": sparse}, {"A": shifted})
