"""Unit tests: message aggregation and heterogeneous-node modeling."""

import pytest

from repro.apps import sor
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram


@pytest.fixture(scope="module")
def prog():
    app = sor.app(8, 10)
    return TiledProgram(app.nest, sor.h_nonrectangular(2, 4, 5),
                        mapping_dim=2)


class TestUnaggregated:
    def test_more_messages_than_aggregated(self, prog):
        spec = ClusterSpec()
        agg = DistributedRun(prog, spec).simulate()
        raw = DistributedRun(prog, spec).simulate_unaggregated()
        assert raw.total_messages > agg.total_messages

    def test_never_faster(self, prog):
        """The Tang & Xue aggregation is a pure win: same regions, fewer
        latencies."""
        spec = ClusterSpec()
        agg = DistributedRun(prog, spec).simulate()
        raw = DistributedRun(prog, spec).simulate_unaggregated()
        assert raw.makespan >= agg.makespan - 1e-12

    def test_completes_without_deadlock(self, prog):
        stats = DistributedRun(prog, ClusterSpec()).simulate_unaggregated()
        assert stats.makespan > 0

    def test_element_volume_at_least_aggregated(self, prog):
        spec = ClusterSpec()
        agg = DistributedRun(prog, spec).simulate()
        raw = DistributedRun(prog, spec).simulate_unaggregated()
        assert raw.total_elements >= agg.total_elements


class TestHeterogeneous:
    def test_uniform_factors_noop(self, prog):
        base = DistributedRun(prog, ClusterSpec()).simulate()
        uni = DistributedRun(prog, ClusterSpec(
            node_speed_factors=tuple([1.0] * prog.num_processors)
        )).simulate()
        assert uni.makespan == pytest.approx(base.makespan)

    def test_one_slow_node_stretches_makespan(self, prog):
        base = DistributedRun(prog, ClusterSpec()).simulate()
        factors = [1.0] * prog.num_processors
        factors[prog.num_processors // 2] = 3.0
        slow = DistributedRun(prog, ClusterSpec(
            node_speed_factors=tuple(factors))).simulate()
        assert slow.makespan > base.makespan

    def test_slowdown_bounded_by_factor(self, prog):
        factors = [1.0] * prog.num_processors
        factors[0] = 2.0
        base = DistributedRun(prog, ClusterSpec()).simulate()
        slow = DistributedRun(prog, ClusterSpec(
            node_speed_factors=tuple(factors))).simulate()
        assert slow.makespan <= 2.0 * base.makespan + 1e-9

    def test_factor_default_beyond_tuple(self):
        spec = ClusterSpec(node_speed_factors=(2.0,))
        assert spec.node_speed_factor(0) == 2.0
        assert spec.node_speed_factor(5) == 1.0
