"""Unit tests for Chrome-tracing export."""

import json

from repro.runtime.trace import EventTrace, to_chrome_trace


def _trace():
    t = EventTrace()
    t.record("compute", rank=0, start=0.0, end=0.5)
    t.record("send", rank=0, start=0.5, end=0.6, peer=1, tag=3, nelems=7)
    t.record("recv", rank=1, start=0.0, end=0.6, peer=0, tag=3, nelems=7)
    return t


class TestChromeTrace:
    def test_one_event_per_record(self):
        evs = to_chrome_trace(_trace())
        assert len(evs) == 3

    def test_complete_event_format(self):
        evs = to_chrome_trace(_trace())
        for e in evs:
            assert e["ph"] == "X"
            assert e["dur"] >= 0
            assert isinstance(e["tid"], int)

    def test_microsecond_scaling(self):
        evs = to_chrome_trace(_trace())
        compute = next(e for e in evs if e["cat"] == "compute")
        assert compute["ts"] == 0.0
        assert compute["dur"] == 0.5e6

    def test_peer_and_tag_in_args(self):
        evs = to_chrome_trace(_trace())
        send = next(e for e in evs if e["cat"] == "send")
        assert send["args"] == {"nelems": 7, "peer": 1, "tag": 3}

    def test_json_serializable(self):
        text = json.dumps({"traceEvents": to_chrome_trace(_trace())})
        assert "traceEvents" in text

    def test_real_run_exports(self, sor_small):
        from repro.apps import sor
        from repro.runtime import (ClusterSpec, DistributedRun, EventTrace,
                                   TiledProgram)
        trace = EventTrace()
        prog = TiledProgram(sor_small.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        DistributedRun(prog, ClusterSpec(), trace=trace).simulate()
        evs = to_chrome_trace(trace)
        assert len(evs) == len(trace.events)
        json.dumps(evs)
