"""Regression tests pinning the simulator fidelity fixes.

Three bugs, three pins:

1. ``simulate_unaggregated`` must apply the same per-rank
   ``node_speed_factor`` as ``simulate()`` — the aggregation ablation
   may only differ in message structure, never in the CPU cost model.
2. The executor must reuse the one frozen ``dense_lex_order()`` instead
   of re-running ``np.lexsort`` over the TTIS lattice per message.
3. Hot paths must route per-tile point counts through the program-level
   cache (``TiledProgram.tile_point_count``), so repeated runs never
   re-reduce partial-tile masks.
"""

import numpy as np
import pytest

from repro.apps import sor
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec


@pytest.fixture(scope="module")
def prog():
    app = sor.app(4, 6)
    return TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                        mapping_dim=2)


class TestHeterogeneousUnaggregated:
    def test_speed_factors_scale_unaggregated_compute(self, prog):
        """On a heterogeneous spec every Compute/pack term of rank r is
        scaled by f_r, so per-rank compute_time scales *exactly*
        linearly; before the fix the ablation silently ran every rank
        at nominal speed (ratio 1.0 everywhere)."""
        factors = tuple(1.0 + 0.5 * r
                        for r in range(prog.num_processors))
        hom = ClusterSpec()
        het = ClusterSpec(node_speed_factors=factors)
        s_hom = DistributedRun(prog, hom).simulate_unaggregated()
        s_het = DistributedRun(prog, het).simulate_unaggregated()
        for r in range(prog.num_processors):
            assert s_hom.compute_time[r] > 0
            ratio = s_het.compute_time[r] / s_hom.compute_time[r]
            assert ratio == pytest.approx(factors[r], rel=1e-12)
        # The slowdown must also move the makespan.
        assert s_het.makespan > s_hom.makespan

    def test_matches_simulate_cost_model(self, prog):
        """Aggregated and unaggregated modes see the *same* per-rank
        slowdown: their heterogeneous/homogeneous compute-time ratios
        agree rank by rank."""
        factors = tuple(2.0 if r % 2 else 1.0
                        for r in range(prog.num_processors))
        het = ClusterSpec(node_speed_factors=factors)
        hom = ClusterSpec()
        agg_ratio = [
            DistributedRun(prog, het).simulate().compute_time[r] /
            DistributedRun(prog, hom).simulate().compute_time[r]
            for r in range(prog.num_processors)
        ]
        una_ratio = [
            DistributedRun(prog, het).simulate_unaggregated()
            .compute_time[r] /
            DistributedRun(prog, hom).simulate_unaggregated()
            .compute_time[r]
            for r in range(prog.num_processors)
        ]
        assert una_ratio == pytest.approx(agg_ratio, rel=1e-12)


class TestLexsortReuse:
    def test_execute_runs_lexsort_at_most_once(self, monkeypatch):
        """After the frozen order exists, a full data-mode run (which
        packs and unpacks many messages) must not lexsort again; the
        bug re-sorted the whole lattice per received message."""
        app = sor.app(4, 6)
        fresh = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                             mapping_dim=2)
        spec = ClusterSpec()
        calls = []
        real = np.lexsort
        monkeypatch.setattr(
            np, "lexsort", lambda *a, **k: (calls.append(1),
                                            real(*a, **k))[1])
        fresh.dense_lex_order()
        assert len(calls) == 1  # the one frozen sort
        DistributedRun(fresh, spec).execute(app.init_value)
        DistributedRun(fresh, spec).execute_dense(app.init_value)
        assert len(calls) == 1, "lexsort re-ran on a hot path"

    def test_sparse_and_dense_payload_order_agree(self):
        """The deduped order leaves payload layout unchanged: sparse
        execute and dense execute still agree bitwise cell by cell."""
        from repro.runtime import arrays_match, dense_to_cells
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        spec = ClusterSpec()
        sparse, s_stats = DistributedRun(prog, spec).execute(
            app.init_value)
        dense, d_stats = DistributedRun(prog, spec).execute_dense(
            app.init_value)
        assert s_stats == d_stats
        assert arrays_match(sparse, dense_to_cells(dense))


class TestPointCountCache:
    def test_hot_paths_use_program_cache(self, monkeypatch):
        """Once the program cache is warm, simulate / ablation /
        execute_dense must never call the tiling-level point count
        again (each such call on a partial tile re-reduces its mask)."""
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        spec = ClusterSpec()
        for tile in prog.dist.tiles:
            prog.tile_point_count(tile)

        calls = []
        real = prog.tiling.tile_point_count
        monkeypatch.setattr(
            prog.tiling, "tile_point_count",
            lambda t: (calls.append(t), real(t))[1])
        DistributedRun(prog, spec).simulate()
        DistributedRun(prog, spec).simulate_unaggregated()
        DistributedRun(prog, spec).execute_dense(app.init_value)
        assert calls == [], "hot path bypassed the point-count cache"
