"""Unit tests for the virtual MPI discrete-event engine."""

import pytest

from repro.runtime import (
    ClusterSpec,
    Compute,
    DeadlockError,
    EventTrace,
    Recv,
    Send,
    VirtualMPI,
)

SPEC = ClusterSpec(net_latency=1e-3, net_bandwidth=8e6,
                   bytes_per_element=8, time_per_iteration=1e-6)


def run(programs, spec=SPEC, trace=None):
    return VirtualMPI(spec, programs, trace=trace).run()


class TestBasics:
    def test_compute_advances_clock(self):
        def p(api):
            yield Compute(0.5)
        stats = run({0: p})
        assert stats.clocks[0] == 0.5
        assert stats.makespan == 0.5

    def test_send_recv_pair(self):
        def sender(api):
            yield Compute(1.0)
            yield Send(dest=1, tag=0, nelems=1000)

        def receiver(api):
            payload, n = yield Recv(source=0, tag=0)
            assert n == 1000
            yield Compute(0.1)

        stats = run({0: sender, 1: receiver})
        # message leaves at 1.0 + (1ms + 8000B/8MBps = 2ms)
        assert abs(stats.clocks[0] - 1.002) < 1e-9
        # receiver waits for arrival then computes
        assert abs(stats.clocks[1] - 1.102) < 1e-9

    def test_receiver_not_delayed_if_late(self):
        def sender(api):
            yield Send(dest=1, tag=0, nelems=0)

        def receiver(api):
            yield Compute(5.0)
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver})
        assert stats.clocks[1] == 5.0  # message already arrived

    def test_payload_passthrough(self):
        def sender(api):
            yield Send(dest=1, tag=7, nelems=3, payload=[1, 2, 3])

        collected = []

        def receiver(api):
            payload, n = yield Recv(source=0, tag=7)
            collected.append((payload, n))

        run({0: sender, 1: receiver})
        assert collected == [([1, 2, 3], 3)]

    def test_fifo_per_tag(self):
        order = []

        def sender(api):
            yield Send(dest=1, tag=0, nelems=1, payload="a")
            yield Send(dest=1, tag=0, nelems=1, payload="b")

        def receiver(api):
            p1, _ = yield Recv(source=0, tag=0)
            p2, _ = yield Recv(source=0, tag=0)
            order.extend([p1, p2])

        run({0: sender, 1: receiver})
        assert order == ["a", "b"]

    def test_tags_demultiplex(self):
        got = {}

        def sender(api):
            yield Send(dest=1, tag=2, nelems=1, payload="two")
            yield Send(dest=1, tag=1, nelems=1, payload="one")

        def receiver(api):
            p, _ = yield Recv(source=0, tag=1)
            got["first"] = p
            p, _ = yield Recv(source=0, tag=2)
            got["second"] = p

        run({0: sender, 1: receiver})
        assert got == {"first": "one", "second": "two"}


class TestDeadlock:
    def test_recv_without_send(self):
        def p(api):
            yield Recv(source=1, tag=0)

        def q(api):
            yield Compute(1.0)

        with pytest.raises(DeadlockError):
            run({0: p, 1: q})

    def test_mutual_recv(self):
        def p(api):
            yield Recv(source=1, tag=0)

        def q(api):
            yield Recv(source=0, tag=0)

        with pytest.raises(DeadlockError):
            run({0: p, 1: q})


class TestOverlap:
    def test_overlap_frees_sender_early(self):
        spec = ClusterSpec(net_latency=1e-3, net_bandwidth=8e6,
                           overlap=True)

        def sender(api):
            yield Send(dest=1, tag=0, nelems=10000)
            yield Compute(0.001)

        def receiver(api):
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver}, spec=spec)
        # sender pays only latency, then computes
        assert abs(stats.clocks[0] - 0.002) < 1e-9
        # receiver still waits for the full transfer (1ms + 10ms)
        assert abs(stats.clocks[1] - 0.011) < 1e-9


class TestStats:
    def test_counts(self):
        def sender(api):
            yield Send(dest=1, tag=0, nelems=42)

        def receiver(api):
            yield Recv(source=0, tag=0)

        stats = run({0: sender, 1: receiver})
        assert stats.total_messages == 1
        assert stats.total_elements == 42

    def test_efficiency_bounds(self):
        def p(api):
            yield Compute(1.0)
        stats = run({0: p, 1: p})
        assert 0.99 < stats.efficiency() <= 1.0

    def test_trace_records_events(self):
        trace = EventTrace()

        def sender(api):
            yield Compute(0.1)
            yield Send(dest=1, tag=0, nelems=10)

        def receiver(api):
            yield Recv(source=0, tag=0)

        run({0: sender, 1: receiver}, trace=trace)
        kinds = {e.kind for e in trace.events}
        assert kinds == {"compute", "send", "recv"}
        assert trace.message_count() == 1

    def test_bad_yield_type(self):
        def p(api):
            yield "nonsense"

        with pytest.raises(TypeError):
            run({0: p})


class TestSimultaneousSends:
    """Equal-time events must order by issue sequence, never payload.

    The event heaps hold ``(seq, entry)`` pairs under a monotonic
    counter; without the unique ``seq`` key, two sends issued at the
    same simulated instant would fall through to comparing message
    objects (a ``TypeError`` for dict/ndarray payloads, and an ordering
    hazard otherwise).
    """

    # Zero-cost network: every send lands at the same simulated time.
    FREE = ClusterSpec(net_latency=0.0, net_bandwidth=1e30,
                       bytes_per_element=8, time_per_iteration=1e-6)

    def test_equal_time_unorderable_payloads_fifo(self):
        def sender(api):
            yield Send(dest=1, tag=0, nelems=1, payload={"n": "first"})
            yield Send(dest=1, tag=0, nelems=1, payload={"n": "second"})
            yield Send(dest=1, tag=0, nelems=1, payload={"n": "third"})

        def receiver(api):
            got = []
            for _ in range(3):
                payload, _n = yield Recv(source=0, tag=0)
                got.append(payload["n"])
            assert got == ["first", "second", "third"]

        stats = run({0: sender, 1: receiver}, spec=self.FREE)
        assert stats.total_messages == 3

    def test_equal_time_ndarray_payloads(self):
        np = pytest.importorskip("numpy")

        def sender(api):
            yield Send(dest=1, tag=3, nelems=2,
                       payload=np.array([1.0, 2.0]))
            yield Send(dest=1, tag=3, nelems=2,
                       payload=np.array([3.0, 4.0]))

        def receiver(api):
            first, _ = yield Recv(source=0, tag=3)
            second, _ = yield Recv(source=0, tag=3)
            assert first.tolist() == [1.0, 2.0]
            assert second.tolist() == [3.0, 4.0]

        run({0: sender, 1: receiver}, spec=self.FREE)
