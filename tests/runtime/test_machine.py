"""Unit tests for the cluster cost model."""

from repro.runtime import ClusterSpec, FAST_ETHERNET_CLUSTER


class TestCostModel:
    def test_transfer_time_hockney(self):
        spec = ClusterSpec(net_latency=1e-4, net_bandwidth=1e7)
        assert spec.transfer_time(0) == 1e-4
        assert abs(spec.transfer_time(10**7) - (1e-4 + 1.0)) < 1e-12

    def test_message_time_uses_element_size(self):
        spec = ClusterSpec(net_latency=0.0, net_bandwidth=8.0,
                           bytes_per_element=8)
        assert abs(spec.message_time(2) - 2.0) < 1e-12

    def test_compute_time_linear(self):
        spec = ClusterSpec(time_per_iteration=1e-6)
        assert abs(spec.compute_time(1000) - 1e-3) < 1e-15

    def test_pack_time(self):
        spec = ClusterSpec(time_per_packed_element=1e-8)
        assert abs(spec.pack_time(100) - 1e-6) < 1e-15

    def test_with_overlap(self):
        spec = FAST_ETHERNET_CLUSTER
        assert not spec.overlap
        o = spec.with_overlap()
        assert o.overlap
        assert o.net_latency == spec.net_latency

    def test_default_is_16_nodes(self):
        assert FAST_ETHERNET_CLUSTER.nodes == 16

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            FAST_ETHERNET_CLUSTER.nodes = 4
