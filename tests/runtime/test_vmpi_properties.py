"""Property-based tests of the discrete-event engine.

Random but deadlock-free communication programs (a rank only receives
from lower ranks, sends to higher ranks — a DAG by construction) must
satisfy the engine's conservation and monotonicity laws under any
protocol mode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import ClusterSpec, Compute, Recv, Send, VirtualMPI


@st.composite
def dag_programs(draw):
    """A list per rank of (compute_ms, sends-to-higher-ranks) rounds."""
    n_ranks = draw(st.integers(2, 4))
    rounds = draw(st.integers(1, 3))
    plan = {}
    sends = []  # (src, dst, round, nelems)
    for r in range(n_ranks):
        rows = []
        for k in range(rounds):
            comp = draw(st.floats(0.0, 2e-3, allow_nan=False))
            outs = []
            for dst in range(r + 1, n_ranks):
                if draw(st.booleans()):
                    nelems = draw(st.integers(1, 500))
                    outs.append((dst, nelems))
                    sends.append((r, dst, k, nelems))
            rows.append((comp, outs))
        plan[r] = rows
    return n_ranks, plan, sends


def _build(plan, sends, rank):
    """Rank program: per round, recv everything addressed to it from
    that round (in sender order), compute, then send."""
    incoming = {}
    for src, dst, rnd, nelems in sends:
        incoming.setdefault((dst, rnd), []).append((src, nelems))

    def node(api):
        for rnd, (comp, outs) in enumerate(plan[rank]):
            for src, nelems in sorted(incoming.get((rank, rnd), [])):
                payload, got = yield Recv(source=src, tag=rnd)
                assert got == nelems
            yield Compute(comp)
            for dst, nelems in outs:
                yield Send(dest=dst, tag=rnd, nelems=nelems)
    return node


SPECS = [
    ClusterSpec(),
    ClusterSpec(overlap=True),
    ClusterSpec(rendezvous_threshold=0),
    ClusterSpec(rendezvous_threshold=1000),
]


@given(dag_programs(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_conservation_and_completion(case, spec_idx):
    n_ranks, plan, sends = case
    spec = SPECS[spec_idx]
    engine = VirtualMPI(spec, {
        r: _build(plan, sends, r) for r in range(n_ranks)
    })
    stats = engine.run()
    assert stats.total_messages == len(sends)
    assert stats.total_elements == sum(s[3] for s in sends)
    assert stats.makespan == max(stats.clocks.values())
    for r in range(n_ranks):
        # a rank's clock covers at least its own compute time
        own_compute = sum(c for c, _ in plan[r])
        assert stats.clocks[r] >= own_compute - 1e-12


@given(dag_programs())
@settings(max_examples=40, deadline=None)
def test_determinism(case):
    n_ranks, plan, sends = case
    spec = ClusterSpec()

    def run_once():
        return VirtualMPI(spec, {
            r: _build(plan, sends, r) for r in range(n_ranks)
        }).run()

    a, b = run_once(), run_once()
    assert a.clocks == b.clocks
    assert a.makespan == b.makespan


@given(dag_programs())
@settings(max_examples=40, deadline=None)
def test_protocol_monotonicity(case):
    """overlap <= eager <= all-rendezvous in makespan."""
    n_ranks, plan, sends = case

    def run_with(spec):
        return VirtualMPI(spec, {
            r: _build(plan, sends, r) for r in range(n_ranks)
        }).run().makespan

    t_overlap = run_with(ClusterSpec(overlap=True))
    t_eager = run_with(ClusterSpec())
    t_rdv = run_with(ClusterSpec(rendezvous_threshold=0))
    assert t_overlap <= t_eager + 1e-12
    assert t_eager <= t_rdv + 1e-12


@given(dag_programs())
@settings(max_examples=30, deadline=None)
def test_faster_network_never_hurts(case):
    n_ranks, plan, sends = case

    def run_with(bw):
        spec = ClusterSpec(net_bandwidth=bw)
        return VirtualMPI(spec, {
            r: _build(plan, sends, r) for r in range(n_ranks)
        }).run().makespan

    assert run_with(1e9) <= run_with(1e6) + 1e-12
