"""Correctness of the dense vectorized execution engine.

The sparse interpreters (`run_sequential`, `run_tiled_sequential`,
`DistributedRun.execute`) are the semantic reference; every dense run
here is cross-checked against them **bitwise** (``tol=0.0``) — the
``kernel_np`` twins perform the same IEEE-754 operations in the same
order, so any drift is a real indexing or scheduling bug, not float
noise.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import adi, heat, jacobi, sor
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    TiledProgram,
    arrays_match,
    dense_to_cells,
    level_batches,
    read_dependences,
    run_dense_sequential,
    run_sequential,
    run_tiled_sequential,
    wavefront_vector,
)

SPEC = ClusterSpec()


class TestWavefrontVector:
    def test_no_deps_is_zero(self):
        assert wavefront_vector([], 3) == (0, 0, 0)

    def test_axis_preferred(self):
        # every dependence advances along axis 0 => a single coordinate
        # suffices and gives the fewest levels
        assert wavefront_vector([(1, 0), (1, 1), (2, -1)], 2) == (1, 0)

    def test_axis_min_extent_wins(self):
        # both axes qualify; the smaller extent means fewer levels
        s = wavefront_vector([(1, 2), (2, 1)], 2, extents=[100, 5])
        assert s == (0, 1)

    def test_all_ones_for_nonnegative_deps(self):
        # no single axis covers both, but all deps are componentwise >= 0
        assert wavefront_vector([(1, 0), (0, 1)], 2) == (1, 1)

    def test_weighted_for_lex_positive_deps(self):
        # an unskewed stencil: (1, -1) rules out axis 1 and all-ones
        deps = [(1, 0), (1, -1), (1, 1)]
        s = wavefront_vector(deps, 2)
        for d in deps:
            assert sum(a * b for a, b in zip(s, d)) >= 1

    def test_zero_dependence_rejected(self):
        with pytest.raises(ValueError):
            wavefront_vector([(1, 0), (0, 0)], 2)

    def test_validates_result(self):
        # lexicographically *negative* dependence admits no schedule
        with pytest.raises(ValueError):
            wavefront_vector([(1, 0), (-1, 0)], 2)


class TestLevelBatches:
    def test_zero_vector_single_batch(self):
        pts = np.array([[0, 0], [1, 1], [2, 2]])
        batches = level_batches(pts, (0, 0))
        assert len(batches) == 1
        assert batches[0].tolist() == [0, 1, 2]

    def test_partition_is_exact(self):
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 5, size=(40, 3))
        batches = level_batches(pts, (1, 2, 3))
        got = np.concatenate(batches)
        assert sorted(got.tolist()) == list(range(40))

    def test_levels_increase_and_are_uniform(self):
        pts = np.array([[2, 0], [0, 0], [1, 0], [0, 1], [1, 1]])
        s = (1, 1)
        batches = level_batches(pts, s)
        levels = [set((pts[b] @ np.array(s)).tolist()) for b in batches]
        assert all(len(lv) == 1 for lv in levels)
        flat = [lv.pop() for lv in levels]
        assert flat == sorted(flat)

    def test_stable_within_level(self):
        pts = np.array([[0, 1], [1, 0], [0, 1]])
        batches = level_batches(pts, (1, 1))
        assert batches[0].tolist() == [0, 1, 2]


class TestReadDependences:
    def test_shape_matches_statements(self):
        nest = sor.app(4, 6).nest
        deps = read_dependences(nest)
        assert len(deps) == len(nest.statements)
        for stmt, ds in zip(nest.statements, deps):
            assert len(ds) == len(stmt.reads)

    def test_self_deps_nonneg_after_skewing(self):
        # the skewed SOR nest is legal, so every same-array read
        # dependence is lexicographically positive
        nest = sor.app(4, 6).nest
        for ds in read_dependences(nest):
            for d in ds:
                if d is not None and any(d):
                    assert next(x for x in d if x != 0) > 0


DENSE_SEQ_APPS = [
    pytest.param(sor.app(4, 6), id="sor"),
    pytest.param(jacobi.app(3, 5, 5), id="jacobi"),
    pytest.param(adi.app(4, 5), id="adi"),
    pytest.param(heat.app(4, 8), id="heat"),
    pytest.param(heat.app_unskewed(4, 8), id="heat-unskewed"),
]


class TestDenseSequentialBitwise:
    @pytest.mark.parametrize("app", DENSE_SEQ_APPS)
    def test_matches_sparse_reference(self, app):
        ref = run_sequential(app.nest, app.init_value)
        got = run_dense_sequential(app.nest, app.init_value)
        assert arrays_match(got, ref, tol=0.0)

    def test_scalar_kernel_fallback(self):
        # stripping kernel_np forces the per-point fallback loop, which
        # must agree with the vectorized twin exactly
        app = sor.app(4, 6)
        nest = dataclasses.replace(
            app.nest,
            statements=tuple(
                dataclasses.replace(s, kernel_np=None)
                for s in app.nest.statements
            ),
        )
        ref = run_dense_sequential(app.nest, app.init_value)
        got = run_dense_sequential(nest, app.init_value)
        assert arrays_match(got, ref, tol=0.0)


# (app, tiling, mapping_dim) configurations, chosen to hit partial
# tiles, nonrectangular tilings, multi-array nests, and c > 1 strides.
EXEC_CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-partial-tiles"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_nonrectangular(2, 4, 3),
                 0, id="jacobi-nonrect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(adi.app(4, 5), adi.h_nr3(2, 3, 3), 0, id="adi-nr3"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
    pytest.param(heat.app_unskewed(4, 8), heat.h_diamond(2), 1,
                 id="heat-diamond"),
    pytest.param(heat.app(4, 8), heat.h_skewed_band(2, 2), 1,
                 id="heat-skewed-band"),
]


class TestExecuteDenseBitwise:
    @pytest.mark.parametrize("app,h,mdim", EXEC_CONFIGS)
    def test_matches_sparse_executor(self, app, h, mdim):
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        ref_arrays, ref_stats = DistributedRun(prog, SPEC).execute(
            app.init_value)
        fields, stats = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        assert arrays_match(dense_to_cells(fields), ref_arrays, tol=0.0)
        # the dense engine must also yield the identical event
        # sequence, hence identical simulated measurements
        assert stats.makespan == ref_stats.makespan
        assert stats.clocks == ref_stats.clocks
        assert stats.total_messages == ref_stats.total_messages
        assert stats.total_elements == ref_stats.total_elements

    @pytest.mark.parametrize("app,h,mdim", EXEC_CONFIGS[:4])
    def test_matches_tiled_sequential(self, app, h, mdim):
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        ref = run_tiled_sequential(app.nest, h, app.init_value)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)

    def test_matches_dense_sequential(self):
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        ref = run_dense_sequential(app.nest, app.init_value)
        assert arrays_match(dense_to_cells(fields), ref, tol=0.0)
