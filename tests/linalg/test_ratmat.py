"""Unit tests for exact rational matrices."""

from fractions import Fraction

import pytest

from repro.linalg import RatMat, diag, from_rows, identity, lcm, rat


class TestRat:
    def test_int(self):
        assert rat(3) == Fraction(3)

    def test_string_fraction(self):
        assert rat("2/6") == Fraction(1, 3)

    def test_fraction_passthrough(self):
        f = Fraction(5, 7)
        assert rat(f) is f

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            rat(0.5)

    def test_negative_string(self):
        assert rat("-1/8") == Fraction(-1, 8)


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12

    def test_coprime(self):
        assert lcm(3, 7) == 21

    def test_zero(self):
        assert lcm(0, 5) == 0

    def test_equal(self):
        assert lcm(8, 8) == 8


class TestConstruction:
    def test_shape(self):
        m = RatMat([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert m.nrows == 2 and m.ncols == 3

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            RatMat([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RatMat([])

    def test_string_entries(self):
        m = from_rows([["1/2", "1/3"], [0, 1]])
        assert m[0, 0] == Fraction(1, 2)
        assert m[0, 1] == Fraction(1, 3)

    def test_identity(self):
        i3 = identity(3)
        assert i3[0, 0] == 1 and i3[0, 1] == 0
        assert i3.is_square()

    def test_diag(self):
        d = diag([2, "1/3"])
        assert d[0, 0] == 2 and d[1, 1] == Fraction(1, 3) and d[0, 1] == 0

    def test_equality_and_hash(self):
        a = RatMat([[1, 2], [3, 4]])
        b = from_rows([["2/2", 2], [3, "8/2"]])
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_round_readable(self):
        assert "RatMat" in repr(RatMat([[1]]))


class TestArithmetic:
    def test_add_sub(self):
        a = RatMat([[1, 2], [3, 4]])
        b = RatMat([[4, 3], [2, 1]])
        assert (a + b) == RatMat([[5, 5], [5, 5]])
        assert (a - a) == RatMat([[0, 0], [0, 0]])

    def test_neg_scale(self):
        a = RatMat([[1, -2]])
        assert -a == RatMat([[-1, 2]])
        assert a.scale("1/2") == from_rows([["1/2", -1]])

    def test_matmul(self):
        a = RatMat([[1, 2], [3, 4]])
        b = RatMat([[0, 1], [1, 0]])
        assert a @ b == RatMat([[2, 1], [4, 3]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            RatMat([[1, 2]]) @ RatMat([[1, 2]])

    def test_matvec(self):
        a = RatMat([[1, 2], [3, 4]])
        assert a.matvec([1, 1]) == (Fraction(3), Fraction(7))

    def test_matvec_length_mismatch(self):
        with pytest.raises(ValueError):
            RatMat([[1, 2]]).matvec([1])

    def test_transpose(self):
        a = RatMat([[1, 2, 3], [4, 5, 6]])
        assert a.transpose() == RatMat([[1, 4], [2, 5], [3, 6]])

    def test_hstack_vstack(self):
        a = RatMat([[1], [2]])
        b = RatMat([[3], [4]])
        assert a.hstack(b) == RatMat([[1, 3], [2, 4]])
        assert a.vstack(b) == RatMat([[1], [2], [3], [4]])


class TestSolve:
    def test_det_triangular(self):
        assert RatMat([[2, 0], [5, 3]]).det() == 6

    def test_det_singular(self):
        assert RatMat([[1, 2], [2, 4]]).det() == 0

    def test_det_permutation_sign(self):
        assert RatMat([[0, 1], [1, 0]]).det() == -1

    def test_inverse_roundtrip(self):
        a = from_rows([["1/2", "-1/4", 0], [0, "1/4", 0], [0, 0, "1/3"]])
        assert a @ a.inverse() == identity(3)
        assert a.inverse() @ a == identity(3)

    def test_inverse_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            RatMat([[1, 1], [1, 1]]).inverse()

    def test_solve(self):
        a = RatMat([[2, 1], [1, 3]])
        x = a.solve([5, 10])
        assert a.matvec(x) == (Fraction(5), Fraction(10))

    def test_paper_sor_inverse(self):
        """P = H^{-1} for the SOR non-rectangular tiling (x=y=z=4)."""
        h = from_rows([["1/4", 0, 0], [0, "1/4", 0], ["-1/4", 0, "1/4"]])
        p = h.inverse()
        assert p == RatMat([[4, 0, 0], [0, 4, 0], [4, 0, 4]])
        assert abs(p.det()) == 64  # tile volume xyz


class TestIntegrality:
    def test_is_integer(self):
        assert RatMat([[1, 2], [3, 4]]).is_integer()
        assert not from_rows([["1/2", 0], [0, 1]]).is_integer()

    def test_to_int_rows(self):
        assert RatMat([[1, -2]]).to_int_rows() == ((1, -2),)

    def test_to_int_rows_raises(self):
        with pytest.raises(ValueError):
            from_rows([["1/2"]]).to_int_rows()

    def test_denominator_lcm_per_row(self):
        h = from_rows([["1/2", "-1/4", 0], [0, "1/6", 0], [0, 0, 1]])
        assert h.denominator_lcm_per_row() == (4, 6, 1)

    def test_v_times_h_integral(self):
        """The defining property of the paper's V matrix."""
        h = from_rows([["1/3", "-1/6", 0], [0, "1/5", 0],
                       ["-1/7", 0, "1/7"]])
        v = diag(h.denominator_lcm_per_row())
        assert (v @ h).is_integer()
