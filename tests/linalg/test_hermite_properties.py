"""Property-based tests: HNF and Smith form invariants on random matrices."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    RatMat,
    column_hnf,
    is_column_hnf,
    is_unimodular,
    smith_normal_form,
)


def nonsingular_int_matrices(n: int, lo: int = -6, hi: int = 6):
    return (
        st.lists(
            st.lists(st.integers(lo, hi), min_size=n, max_size=n),
            min_size=n, max_size=n,
        )
        .map(RatMat)
        .filter(lambda m: m.det() != 0)
    )


@given(nonsingular_int_matrices(2))
@settings(max_examples=120)
def test_hnf_2x2_invariants(a):
    b, u = column_hnf(a)
    assert a @ u == b
    assert is_unimodular(u)
    assert is_column_hnf(b)
    assert abs(b.det()) == abs(a.det())


@given(nonsingular_int_matrices(3, -4, 4))
@settings(max_examples=60)
def test_hnf_3x3_invariants(a):
    b, u = column_hnf(a)
    assert a @ u == b
    assert is_unimodular(u)
    assert is_column_hnf(b)
    assert abs(b.det()) == abs(a.det())


@given(nonsingular_int_matrices(2))
@settings(max_examples=80)
def test_hnf_uniqueness(a):
    """HNF is a canonical form: unimodular column changes don't move it."""
    b1, _ = column_hnf(a)
    # Post-multiply by a fixed unimodular matrix and re-normalize.
    w = RatMat([[1, 1], [0, 1]])
    b2, _ = column_hnf(a @ w)
    assert b1 == b2


@given(nonsingular_int_matrices(3, -4, 4))
@settings(max_examples=50)
def test_smith_invariants(a):
    s, u, v = smith_normal_form(a)
    assert u @ a @ v == s
    assert is_unimodular(u) and is_unimodular(v)
    diag = [int(s[i, i]) for i in range(3)]
    for i in range(3):
        for j in range(3):
            if i != j:
                assert s[i, j] == 0
    assert all(d >= 0 for d in diag)
    for i in range(2):
        if diag[i] != 0:
            assert diag[i + 1] % diag[i] == 0
    prod = diag[0] * diag[1] * diag[2]
    assert prod == abs(int(a.det()))


@given(nonsingular_int_matrices(2))
@settings(max_examples=80)
def test_hnf_diagonal_product_is_lattice_index(a):
    """prod(c_k) = |det| — the TTIS lattice density identity."""
    b, _ = column_hnf(a)
    assert int(b[0, 0]) * int(b[1, 1]) == abs(int(a.det()))
