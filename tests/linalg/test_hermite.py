"""Unit tests for Hermite Normal Form (the stride/offset source)."""

import pytest

from repro.linalg import (
    RatMat,
    column_hnf,
    is_column_hnf,
    is_unimodular,
    row_hnf,
)


class TestColumnHNF:
    def test_identity(self):
        b, u = column_hnf([[1, 0], [0, 1]])
        assert b == RatMat([[1, 0], [0, 1]])
        assert u == RatMat([[1, 0], [0, 1]])

    def test_product_identity(self):
        a = RatMat([[2, -1, 0], [0, 1, 0], [0, 0, 1]])
        b, u = column_hnf(a)
        assert a @ u == b
        assert is_unimodular(u)
        assert is_column_hnf(b)

    def test_negative_pivot_flipped(self):
        b, _ = column_hnf([[-3, 0], [1, 2]])
        assert b[0, 0] > 0 and b[1, 1] > 0

    def test_lower_triangular(self):
        b, _ = column_hnf([[4, 7, 2], [1, 3, 9], [5, 0, 6]])
        assert b[0, 1] == 0 and b[0, 2] == 0 and b[1, 2] == 0

    def test_offdiag_reduced(self):
        b, _ = column_hnf([[6, 4], [2, 8]])
        assert 0 <= b[1, 0] < b[1, 1]

    def test_det_preserved_up_to_sign(self):
        a = RatMat([[3, 1, 4], [1, 5, 9], [2, 6, 5]])
        b, _ = column_hnf(a)
        assert abs(b.det()) == abs(a.det())

    def test_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            column_hnf([[1, 2], [2, 4]])

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            column_hnf([[1, 2, 3], [4, 5, 6]])

    def test_paper_jacobi_h_prime(self):
        """H' of the Jacobi non-rectangular tiling: strides (1, 2, 1)."""
        hp = RatMat([[2, -1, 0], [0, 1, 0], [0, 0, 1]])
        b, u = column_hnf(hp)
        assert (int(b[0, 0]), int(b[1, 1]), int(b[2, 2])) == (1, 2, 1)
        assert hp @ u == b

    def test_hnf_of_hnf_is_fixed_point(self):
        a = [[2, 0, 0], [1, 3, 0], [0, 2, 4]]
        b, _ = column_hnf(a)
        b2, u2 = column_hnf(b)
        assert b2 == b
        assert u2 == RatMat([[1, 0, 0], [0, 1, 0], [0, 0, 1]])


class TestRowHNF:
    def test_product(self):
        a = RatMat([[4, 7], [2, 9]])
        b, u = row_hnf(a)
        assert u @ a == b
        assert is_unimodular(u)

    def test_upper_triangular(self):
        b, _ = row_hnf([[4, 7, 2], [1, 3, 9], [5, 0, 6]])
        assert b[1, 0] == 0 and b[2, 0] == 0 and b[2, 1] == 0

    def test_positive_diagonal(self):
        b, _ = row_hnf([[-2, 5], [3, -1]])
        assert b[0, 0] > 0 and b[1, 1] > 0


class TestIsColumnHnf:
    def test_accepts(self):
        assert is_column_hnf([[2, 0], [1, 3]])

    def test_rejects_upper_entry(self):
        assert not is_column_hnf([[2, 1], [0, 3]])

    def test_rejects_negative_diag(self):
        assert not is_column_hnf([[-2, 0], [0, 3]])

    def test_rejects_unreduced(self):
        assert not is_column_hnf([[2, 0], [5, 3]])
