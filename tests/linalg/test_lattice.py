"""Unit tests for lattice membership and enumeration."""

import pytest

from repro.linalg import (
    RatMat,
    fundamental_volume,
    lattice_contains,
    lattice_points_in_box,
)


class TestMembership:
    def test_identity_lattice_is_everything(self):
        assert lattice_contains([[1, 0], [0, 1]], (3, -7))

    def test_even_lattice(self):
        basis = [[2, 0], [0, 2]]
        assert lattice_contains(basis, (4, -2))
        assert not lattice_contains(basis, (3, 0))

    def test_sheared_lattice(self):
        basis = [[2, -1], [0, 1]]  # Jacobi-style H'
        assert lattice_contains(basis, (2, 0))
        assert lattice_contains(basis, (-1, 1))
        assert lattice_contains(basis, (1, 1))
        assert not lattice_contains(basis, (1, 0))


class TestVolume:
    def test_unimodular(self):
        assert fundamental_volume([[1, 0], [3, 1]]) == 1

    def test_det_abs(self):
        assert fundamental_volume([[2, -1], [0, 1]]) == 2

    def test_fractional_rejected(self):
        from repro.linalg import from_rows
        with pytest.raises(ValueError):
            fundamental_volume(from_rows([["1/2", 0], [0, 1]]))


class TestEnumeration:
    def test_box_density(self):
        """#points in an aligned box == volume(box)/|det|."""
        basis = [[2, -1], [0, 1]]
        pts = list(lattice_points_in_box(basis, [0, 0], [4, 4]))
        assert len(pts) == 16 // 2

    def test_points_are_members(self):
        basis = [[3, 1], [1, 2]]
        for p in lattice_points_in_box(basis, [-5, -5], [5, 5]):
            assert lattice_contains(basis, p)

    def test_matches_bruteforce(self):
        basis = [[2, 1], [0, 3]]
        got = set(lattice_points_in_box(basis, [-6, -6], [6, 6]))
        want = set()
        for x in range(-30, 31):
            for y in range(-30, 31):
                p = (2 * x + y, 3 * y)
                if all(-6 <= c < 6 for c in p):
                    want.add(p)
        assert got == want

    def test_empty_box(self):
        assert list(lattice_points_in_box([[1, 0], [0, 1]],
                                          [2, 2], [2, 2])) == []

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            list(lattice_points_in_box([[1, 0], [0, 1]], [0], [1]))
