"""Unit tests for unimodularity checks and integer inverses."""

import pytest

from repro.linalg import RatMat, from_rows, integer_inverse, is_unimodular


class TestIsUnimodular:
    def test_identity(self):
        assert is_unimodular([[1, 0], [0, 1]])

    def test_paper_sor_skew(self):
        assert is_unimodular([[1, 0, 0], [1, 1, 0], [2, 0, 1]])

    def test_paper_jacobi_skew(self):
        assert is_unimodular([[1, 0, 0], [1, 1, 0], [1, 0, 1]])

    def test_det_two_rejected(self):
        assert not is_unimodular([[2, 0], [0, 1]])

    def test_det_minus_one_accepted(self):
        assert is_unimodular([[0, 1], [1, 0]])

    def test_fractional_rejected(self):
        assert not is_unimodular(from_rows([["1/2", 0], [0, 2]]))

    def test_non_square_rejected(self):
        assert not is_unimodular([[1, 0, 0], [0, 1, 0]])


class TestIntegerInverse:
    def test_skew_inverse(self):
        t = RatMat([[1, 0, 0], [1, 1, 0], [2, 0, 1]])
        tinv = integer_inverse(t)
        assert tinv == RatMat([[1, 0, 0], [-1, 1, 0], [-2, 0, 1]])

    def test_inverse_is_integral(self):
        t = RatMat([[1, 3], [0, 1]])
        assert integer_inverse(t).is_integer()

    def test_non_unimodular_raises(self):
        with pytest.raises(ValueError):
            integer_inverse(RatMat([[2, 0], [0, 1]]))
