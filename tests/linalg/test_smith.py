"""Unit tests for the Smith Normal Form."""

import pytest

from repro.linalg import RatMat, smith_normal_form


class TestSmith:
    def test_textbook_example(self):
        s, u, v = smith_normal_form([[2, 4], [6, 8]])
        assert s == RatMat([[2, 0], [0, 4]])
        assert u @ RatMat([[2, 4], [6, 8]]) @ v == s

    def test_identity(self):
        s, _, _ = smith_normal_form([[1, 0], [0, 1]])
        assert s == RatMat([[1, 0], [0, 1]])

    def test_diagonal_divisibility_enforced(self):
        s, _, _ = smith_normal_form([[2, 0], [0, 3]])
        assert s == RatMat([[1, 0], [0, 6]])

    def test_singular_matrix(self):
        s, u, v = smith_normal_form([[1, 2], [2, 4]])
        assert u @ RatMat([[1, 2], [2, 4]]) @ v == s
        assert s[1, 1] == 0  # rank 1

    def test_negative_entries(self):
        a = [[-3, 1], [2, -5]]
        s, u, v = smith_normal_form(a)
        assert u @ RatMat(a) @ v == s
        assert s[0, 0] >= 0 and s[1, 1] >= 0

    def test_sor_h_prime_is_unimodular_lattice(self):
        """SOR's H' has |det| = 1: its lattice is all of Z^3."""
        s, _, _ = smith_normal_form([[1, 0, 0], [0, 1, 0], [-1, 0, 1]])
        assert s == RatMat([[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            smith_normal_form([[1, 2, 3], [4, 5, 6]])
