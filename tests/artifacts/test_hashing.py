"""Content-key semantics: stability, sensitivity, and canonicalization."""

import subprocess
import sys

from repro.apps import jacobi, sor
from repro.artifacts import content_key
from repro.loops.nest import LoopNest

KEY_SNIPPET = """\
import sys
from repro.apps import sor
from repro.artifacts import content_key
app = sor.app(4, 6)
h = sor.h_rectangular(2, 3, 4)
sys.stdout.write(content_key(app.nest, h, 2))
"""


def _subprocess_key(hashseed):
    out = subprocess.run(
        [sys.executable, "-c", KEY_SNIPPET],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(hashseed),
             "PATH": "/usr/bin:/bin"},
        cwd="/root/repo")
    return out.stdout.strip()


class TestStability:
    def test_stable_within_process(self):
        app = sor.app(4, 6)
        h = sor.h_rectangular(2, 3, 4)
        assert content_key(app.nest, h, 2) == content_key(app.nest, h, 2)

    def test_stable_across_process_restarts(self):
        """The key must not depend on interpreter state — two fresh
        processes with *different* PYTHONHASHSEED values (which perturb
        dict/set iteration order) must agree with each other and with
        this process."""
        app = sor.app(4, 6)
        h = sor.h_rectangular(2, 3, 4)
        here = content_key(app.nest, h, 2)
        assert _subprocess_key(0) == here
        assert _subprocess_key(424242) == here


class TestSensitivity:
    def test_h_changes_key(self):
        app = sor.app(4, 6)
        assert content_key(app.nest, sor.h_rectangular(2, 3, 4), 2) != \
            content_key(app.nest, sor.h_rectangular(2, 3, 5), 2)

    def test_shape_changes_key(self):
        app = sor.app(4, 6)
        assert content_key(app.nest, sor.h_rectangular(2, 3, 4), 2) != \
            content_key(app.nest, sor.h_nonrectangular(2, 3, 4), 2)

    def test_domain_changes_key(self):
        h = sor.h_rectangular(2, 3, 4)
        assert content_key(sor.app(4, 6).nest, h, 2) != \
            content_key(sor.app(4, 7).nest, h, 2)

    def test_mapping_dim_changes_key(self):
        app = sor.app(4, 6)
        h = sor.h_rectangular(2, 3, 4)
        keys = {content_key(app.nest, h, m) for m in (None, 0, 1, 2)}
        assert len(keys) == 4

    def test_different_apps_differ(self):
        assert content_key(sor.app(4, 6).nest,
                           sor.h_rectangular(2, 3, 4), 2) != \
            content_key(jacobi.app(3, 5, 5).nest,
                        jacobi.h_rectangular(2, 3, 3), 0)


class TestCanonicalization:
    def test_name_is_not_hashed(self):
        """Two structurally identical nests with different display
        names are the same compile request."""
        app = sor.app(4, 6)
        nest = app.nest
        renamed = LoopNest(name="something-else", domain=nest.domain,
                           statements=nest.statements,
                           dependences=nest.dependences)
        h = sor.h_rectangular(2, 3, 4)
        assert content_key(nest, h, 2) == content_key(renamed, h, 2)
