"""Artifact round-trips are bitwise-equivalent to a fresh compile.

The six reference configs (the HB suite's) cover all three apps, both
tile shapes, and all mapping dimensions the paper uses.  For each we
assert the strongest property the tentpole claims: a loaded program's
``simulate()`` RunStats compare *equal* and its ``execute_dense()``
fields match at tol=0.0 — while the expensive pipeline stages are
monkeypatched to explode, proving the load path never runs them.
"""

import numpy as np
import pytest

from repro.apps import adi, heat, jacobi, sor
from repro.artifacts import ArtifactCache
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec
from repro.runtime.parallel import build_rank_plans
from repro.tiling.transform import TilingTransformation

CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-rect-57"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
]

SPEC = ClusterSpec()


def _fields_bitwise_equal(f1, f2):
    assert set(f1) == set(f2)
    for name in f1:
        assert f1[name].origin == f2[name].origin
        assert np.array_equal(f1[name].values, f2[name].values)
        assert np.array_equal(f1[name].written, f2[name].written)


@pytest.mark.parametrize("app,h,mdim", CONFIGS)
def test_roundtrip_bitwise(tmp_path, monkeypatch, app, h, mdim):
    cache = ArtifactCache(str(tmp_path))
    fresh = TiledProgram(app.nest, h, mapping_dim=mdim)
    cache.store(fresh, mdim)

    # Loading must not re-run the pipeline: blow up the legality proof
    # and the Fourier-Motzkin projection behind enumerate_tiles().
    def boom(*a, **k):
        raise AssertionError("compile pipeline ran on the load path")

    monkeypatch.setattr("repro.runtime.executor.check_legal_tiling", boom)
    monkeypatch.setattr(TilingTransformation, "tile_space_bounds", boom)

    loaded = cache.load(app.nest, h, mdim)
    assert loaded is not None
    assert cache.stats()["hits"] == 1

    s_fresh = DistributedRun(fresh, SPEC).simulate()
    s_loaded = DistributedRun(loaded, SPEC).simulate()
    assert s_fresh == s_loaded

    f_fresh, st_fresh = DistributedRun(fresh, SPEC).execute_dense(
        app.init_value)
    f_loaded, st_loaded = DistributedRun(loaded, SPEC).execute_dense(
        app.init_value)
    assert st_fresh == st_loaded
    _fields_bitwise_equal(f_fresh, f_loaded)


@pytest.mark.parametrize("app,h,mdim", CONFIGS[:1])
def test_roundtrip_rank_plans_and_geometry(tmp_path, app, h, mdim):
    cache = ArtifactCache(str(tmp_path))
    fresh = TiledProgram(app.nest, h, mapping_dim=mdim)
    cache.store(fresh, mdim)
    loaded = cache.load(app.nest, h, mdim)
    assert loaded is not None
    assert loaded.dist.tiles == fresh.dist.tiles
    assert loaded.dist.m == fresh.dist.m
    assert loaded.comm.d_s == fresh.comm.d_s
    assert loaded.comm.d_m == fresh.comm.d_m
    assert loaded.comm.cc == fresh.comm.cc
    assert loaded.comm.offsets == fresh.comm.offsets
    assert np.array_equal(loaded.dense_lex_order(),
                          fresh.dense_lex_order())
    assert loaded.dense_schedule_vector() == fresh.dense_schedule_vector()
    # The lazily-decoded plans equal a from-scratch build.
    assert build_rank_plans(loaded) == build_rank_plans(fresh)
    for tile in fresh.dist.tiles:
        assert loaded.tile_point_count(tile) == \
            fresh.tile_point_count(tile)
        assert loaded.tiling.classify_tile(tile) == \
            fresh.tiling.classify_tile(tile)


def test_certificates_survive_roundtrip(tmp_path, monkeypatch):
    """A program certified before store() ships its proofs: the loaded
    program answers ``hb_certificate()``/``cost_certificate()`` without
    re-running either certifier."""
    app = sor.app(4, 6)
    h = sor.h_rectangular(2, 3, 4)
    fresh = TiledProgram(app.nest, h, mapping_dim=2)
    hb = fresh.hb_certificate()
    cost = fresh.cost_certificate()
    assert fresh._hb_cache and fresh._cost_cache

    cache = ArtifactCache(str(tmp_path))
    cache.store(fresh, 2)
    loaded = cache.load(app.nest, h, 2)
    assert loaded is not None
    assert set(loaded._hb_cache) == set(fresh._hb_cache)
    assert set(loaded._cost_cache) == set(fresh._cost_cache)

    def boom(*a, **k):
        raise AssertionError("certifier re-ran on a cache hit")

    monkeypatch.setattr("repro.analysis.hb.graph.certify_program", boom)
    monkeypatch.setattr("repro.analysis.cost.certify_cost", boom)
    assert loaded.hb_certificate().ok == hb.ok
    assert loaded.cost_certificate().ok == cost.ok


def test_get_or_compile_miss_then_hit(tmp_path):
    app = sor.app(4, 6)
    h = sor.h_rectangular(2, 3, 4)
    cache = ArtifactCache(str(tmp_path))
    p1, st1 = cache.get_or_compile(app.nest, h, 2)
    p2, st2 = cache.get_or_compile(app.nest, h, 2)
    assert (st1, st2) == ("miss", "hit")
    assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                             "invalid": 0, "native_hits": 0,
                             "native_misses": 0, "native_stores": 0}
    assert DistributedRun(p1, SPEC).simulate() == \
        DistributedRun(p2, SPEC).simulate()
