"""Failure modes of the on-disk format: every defect is a clean miss.

The cache's contract is that a bad artifact can cost a recompile but
never an error and never a wrong program — corruption, truncation,
version skew and key mismatch must all be detected and demoted.
"""

import os
import pickle
import threading

import pytest

from repro.apps import sor
from repro.artifacts import (
    MAGIC,
    ArtifactCache,
    ArtifactError,
    content_key,
    read_artifact,
)
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec

APP = sor.app(4, 6)
H = sor.h_rectangular(2, 3, 4)
MDIM = 2
SPEC = ClusterSpec()


def _store(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    prog = TiledProgram(APP.nest, H, mapping_dim=MDIM)
    path = cache.store(prog, MDIM)
    return cache, prog, path


class TestCorruption:
    def test_flipped_byte_is_rejected(self, tmp_path):
        cache, _, path = _store(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum"):
            read_artifact(path)
        assert cache.load(APP.nest, H, MDIM) is None
        assert cache.stats()["invalid"] == 1

    def test_truncated_file_is_rejected(self, tmp_path):
        cache, _, path = _store(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(ArtifactError):
            read_artifact(path)
        assert cache.load(APP.nest, H, MDIM) is None

    def test_empty_and_garbage_files_are_rejected(self, tmp_path):
        cache, _, path = _store(tmp_path)
        open(path, "wb").write(b"")
        assert cache.load(APP.nest, H, MDIM) is None
        open(path, "wb").write(b"not an artifact at all")
        assert cache.load(APP.nest, H, MDIM) is None

    def test_wrong_key_is_rejected(self, tmp_path):
        _, _, path = _store(tmp_path)
        with pytest.raises(ArtifactError, match="key mismatch"):
            read_artifact(path, expected_key="0" * 64)


class TestVersioning:
    def test_version_bump_falls_back_to_recompile(self, tmp_path,
                                                  monkeypatch):
        cache, _, path = _store(tmp_path)
        import repro.artifacts.format as fmt
        monkeypatch.setattr(fmt, "FORMAT_VERSION",
                            fmt.FORMAT_VERSION + 1)
        with pytest.raises(ArtifactError, match="format version"):
            read_artifact(path)
        # ...and the cache turns that into a working recompile.
        prog, status = cache.get_or_compile(APP.nest, H, MDIM)
        assert status == "miss"
        assert cache.stats()["invalid"] == 1
        assert DistributedRun(prog, SPEC).simulate().makespan > 0

    def test_cert_version_bump_drops_only_certificates(self, tmp_path,
                                                       monkeypatch):
        """A certificate-shape bump must not invalidate the geometry:
        the program still loads, just without pre-proved certificates."""
        cache = ArtifactCache(str(tmp_path))
        prog = TiledProgram(APP.nest, H, mapping_dim=MDIM)
        prog.hb_certificate()
        cache.store(prog, MDIM)
        import repro.analysis.certstate as cs
        monkeypatch.setattr(cs, "CERT_STATE_VERSION",
                            cs.CERT_STATE_VERSION + 1)
        loaded = cache.load(APP.nest, H, MDIM)
        assert loaded is not None
        assert not loaded._hb_cache


class TestRecovery:
    def test_corrupt_artifact_is_rewritten_on_next_compile(self,
                                                           tmp_path):
        cache, _, path = _store(tmp_path)
        open(path, "wb").write(b"garbage")
        prog, status = cache.get_or_compile(APP.nest, H, MDIM)
        assert status == "miss"
        prog2, status2 = cache.get_or_compile(APP.nest, H, MDIM)
        assert status2 == "hit"
        assert DistributedRun(prog, SPEC).simulate() == \
            DistributedRun(prog2, SPEC).simulate()


class TestConcurrency:
    def test_racing_writers_never_produce_torn_reads(self, tmp_path):
        """Two writers repeatedly replacing one cache entry while a
        reader loads it: every load must see a complete artifact (the
        atomic rename guarantees this), never a torn file."""
        cache = ArtifactCache(str(tmp_path))
        prog = TiledProgram(APP.nest, H, mapping_dim=MDIM)
        # Pre-build the payload once; writers then race on the file.
        from repro.artifacts.format import snapshot_program, write_artifact
        key = content_key(APP.nest, H, MDIM)
        payload = snapshot_program(prog, MDIM, key=key)
        path = cache.path_for(key)
        write_artifact(path, payload)  # entry exists before the race
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                try:
                    write_artifact(path, payload)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            loads = 0
            while loads < 20:
                loaded = cache.load(APP.nest, H, MDIM)
                assert loaded is not None, "torn read observed"
                loads += 1
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
        assert cache.stats()["invalid"] == 0
        # No leaked temporary files from the racing writers.
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.endswith(".tmp")]
        assert leftovers == []

    def test_concurrent_get_or_compile_both_usable(self, tmp_path):
        """Two caches (as two processes would) racing get_or_compile on
        an empty directory: both must return working programs and the
        surviving artifact must be loadable."""
        c1 = ArtifactCache(str(tmp_path))
        c2 = ArtifactCache(str(tmp_path))
        results = {}

        def work(name, cache):
            results[name] = cache.get_or_compile(APP.nest, H, MDIM)

        t1 = threading.Thread(target=work, args=("a", c1))
        t2 = threading.Thread(target=work, args=("b", c2))
        t1.start(); t2.start(); t1.join(); t2.join()
        (pa, _), (pb, _) = results["a"], results["b"]
        assert DistributedRun(pa, SPEC).simulate() == \
            DistributedRun(pb, SPEC).simulate()
        c3 = ArtifactCache(str(tmp_path))
        assert c3.load(APP.nest, H, MDIM) is not None
