"""Property test: emitted C bound expressions are semantically exact.

The C strings from ``affine_to_c``/``bound_to_c`` happen to be valid
Python once ``floord``/``ceild`` are defined (same integer semantics as
the emitted C helpers), so we can *evaluate the emitted text* against
exact Fraction arithmetic on random expressions and random variable
assignments — the text itself is under test, not the machinery.
"""

import math
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.exprs import affine_to_c, bound_to_c
from repro.polyhedra import Halfspace, Polyhedron, loop_bounds

ENV = {
    "floord": lambda a, b: a // b,
    "ceild": lambda a, b: -((-a) // b),
    "max": max,
    "min": min,
}


@st.composite
def affine_cases(draw):
    n = draw(st.integers(0, 3))
    coeffs = tuple(
        Fraction(draw(st.integers(-6, 6)), draw(st.integers(1, 6)))
        for _ in range(n)
    )
    const = Fraction(draw(st.integers(-12, 12)), draw(st.integers(1, 6)))
    values = tuple(draw(st.integers(-9, 9)) for _ in range(n))
    return coeffs, const, values


@given(affine_cases(), st.sampled_from(["floor", "ceil"]))
@settings(max_examples=200, deadline=None)
def test_emitted_expression_matches_exact_value(case, rounding):
    coeffs, const, values = case
    names = [f"v{i}" for i in range(len(coeffs))]
    text = affine_to_c(coeffs, const, names, rounding)
    env = dict(ENV)
    env.update(zip(names, values))
    got = eval(text, {"__builtins__": {}}, env)
    exact = sum((c * v for c, v in zip(coeffs, values)), const)
    want = math.floor(exact) if rounding == "floor" else math.ceil(exact)
    assert got == want, (text, values)


@st.composite
def bounded_polyhedra_1var(draw):
    """Random constraints over (outer, x) bounding x both ways."""
    cs = [
        Halfspace.of([0, 1], draw(st.integers(0, 9))),      # x <= c
        Halfspace.of([0, -1], draw(st.integers(0, 9))),     # x >= -c
    ]
    for _ in range(draw(st.integers(0, 2))):
        a0 = draw(st.integers(-3, 3))
        a1 = draw(st.sampled_from([-3, -2, -1, 1, 2, 3]))
        b = draw(st.integers(-9, 9))
        cs.append(Halfspace.of([a0, a1], b))
    return Polyhedron(cs)


@given(bounded_polyhedra_1var(), st.integers(-4, 4))
@settings(max_examples=150, deadline=None)
def test_emitted_bounds_match_loopbound_evaluate(p, outer):
    bounds = loop_bounds(p)
    b = bounds[1]
    lo_txt = bound_to_c(b, ["v0"], "lower")
    hi_txt = bound_to_c(b, ["v0"], "upper")
    env = dict(ENV)
    env["v0"] = outer
    lo = eval(lo_txt, {"__builtins__": {}}, env)
    hi = eval(hi_txt, {"__builtins__": {}}, env)
    assert (lo, hi) == b.evaluate((outer,))
