"""Unit tests for the executable sequential tiled code generator.

These pin down the *textual* loop bounds semantically: the emitted
Python must reproduce the reference interpreter exactly for every app
and tiling — which means the Fourier-Motzkin ceild/floord chains, tile
origins, strides, phases, and boundary guards in the text are right,
not just the in-memory machinery that derived them.
"""

import pytest

from repro.apps import adi, jacobi, sor
from repro.codegen import (
    generate_python_sequential,
    run_generated_sequential,
)
from repro.runtime.interpreter import run_sequential

from tests.conftest import values_close


class TestEmission:
    def test_source_structure(self, sor_small):
        src = generate_python_sequential(sor_small.nest,
                                         sor.h_nonrectangular(2, 3, 4))
        assert "def execute(arrays, init_value, kernels):" in src
        assert src.count("for jS") == 3
        assert src.count("for jp") == 3
        assert "ceild" in src and "floord" in src

    def test_compiles(self, sor_small):
        src = generate_python_sequential(sor_small.nest,
                                         sor.h_rectangular(2, 3, 4))
        compile(src, "<test>", "exec")


class TestSemantics:
    def test_sor_rect(self, sor_small, sor_reference_small):
        got = run_generated_sequential(
            sor_small.nest, sor.h_rectangular(2, 3, 4),
            sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_sor_nonrect(self, sor_small, sor_reference_small):
        got = run_generated_sequential(
            sor_small.nest, sor.h_nonrectangular(2, 3, 4),
            sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_jacobi_strided(self, jacobi_small, jacobi_reference_small):
        """c = (1,2,1): the emitted stride/phase arithmetic matters."""
        got = run_generated_sequential(
            jacobi_small.nest, jacobi.h_nonrectangular(2, 4, 3),
            jacobi_small.init_value)
        assert values_close(got["A"], jacobi_reference_small)

    def test_adi_multi_statement(self, adi_small, adi_reference_small):
        got = run_generated_sequential(
            adi_small.nest, adi.h_nr3(2, 3, 3), adi_small.init_value)
        assert values_close(got["X"], adi_reference_small["X"])
        assert values_close(got["B"], adi_reference_small["B"])

    @pytest.mark.parametrize("size", [(1, 1, 1), (3, 5, 2), (4, 2, 7)])
    def test_sor_awkward_tile_sizes(self, sor_small, sor_reference_small,
                                    size):
        got = run_generated_sequential(
            sor_small.nest, sor.h_nonrectangular(*size),
            sor_small.init_value)
        assert values_close(got["A"], sor_reference_small)

    def test_matches_interpreter_on_custom_nest(self):
        from repro.loops import ArrayRef, LoopNest, Statement
        from repro.tiling import parallelepiped_tiling

        def kern(_j, v):
            return 1.0 + 0.25 * v[0] + 0.125 * v[1]

        stmt = Statement.of(
            ArrayRef.of("A", (0, 0)),
            [ArrayRef.of("A", (-1, -1)), ArrayRef.of("A", (-1, 1))],
            kern)
        nest = LoopNest.rectangular("w", [0, 0], [9, 9], [stmt],
                                    [(1, 1), (1, -1)])
        h = parallelepiped_tiling([["1/4", "-1/4"], ["1/4", "1/4"]])

        def init(_a, c):
            return 0.1 * c[0] - 0.2 * c[1]

        got = run_generated_sequential(nest, h, init)
        want = run_sequential(nest, init)
        assert values_close(got["A"], want["A"])
