"""Unit tests for sequential tiled code emission."""

import pytest

from repro.apps import adi, jacobi, sor
from repro.codegen import generate_sequential_tiled_code


class TestStructure:
    def test_2n_loops(self, sor_small):
        code = generate_sequential_tiled_code(
            sor_small.nest, sor.h_nonrectangular(2, 3, 4))
        assert code.count("for (long jS") == 3
        assert code.count("for (long jp") == 3

    def test_prologue_helpers_present(self, sor_small):
        code = generate_sequential_tiled_code(
            sor_small.nest, sor.h_rectangular(2, 3, 4))
        assert "floord" in code and "ceild" in code

    def test_boundary_guard_present(self, sor_small):
        code = generate_sequential_tiled_code(
            sor_small.nest, sor.h_nonrectangular(2, 3, 4))
        assert "if (" in code

    def test_braces_balanced(self, sor_small):
        code = generate_sequential_tiled_code(
            sor_small.nest, sor.h_nonrectangular(2, 3, 4))
        assert code.count("{") == code.count("}")


class TestSkewedIndexing:
    def test_sor_array_expressions(self, sor_small):
        """The skewed SOR must index A with unskewed expressions like
        A[j0][-j0 + j1][-2*j0 + j2] (paper §4.1's skewed loop body)."""
        code = generate_sequential_tiled_code(
            sor_small.nest, sor.h_nonrectangular(2, 3, 4))
        assert "A[j0][-j0 + j1][-2*j0 + j2]" in code

    def test_jacobi_array_expressions(self, jacobi_small):
        code = generate_sequential_tiled_code(
            jacobi_small.nest, jacobi.h_rectangular(2, 4, 3))
        assert "A[j0][-j0 + j1][-j0 + j2]" in code


class TestStrides:
    def test_unit_strides_for_rectangular(self, adi_small):
        code = generate_sequential_tiled_code(
            adi_small.nest, adi.h_rectangular(2, 3, 3))
        assert "jp0 += 1" in code

    def test_nonunit_stride_for_strided_lattice(self, jacobi_small):
        """Jacobi H_nr has c = (1,2,1): dimension 1 steps by 2."""
        code = generate_sequential_tiled_code(
            jacobi_small.nest, jacobi.h_nonrectangular(2, 4, 3))
        assert "jp1 += 2" in code

    def test_incremental_offset_in_phase(self, jacobi_small):
        """The HNF subdiagonal entry appears in the phase expression."""
        code = generate_sequential_tiled_code(
            jacobi_small.nest, jacobi.h_nonrectangular(2, 4, 3))
        assert "ph1 = 1*x0" in code


class TestMultiStatement:
    def test_adi_two_statements(self, adi_small):
        code = generate_sequential_tiled_code(
            adi_small.nest, adi.h_nr3(2, 3, 3))
        assert "F_X(" in code and "F_B(" in code
        assert "A[j1][j2]" in code  # 2D input array projection
