"""Unit tests for the SPMD C+MPI emitter."""

import re

import pytest

from repro.apps import adi, sor
from repro.codegen import generate_mpi_code
from repro.runtime import TiledProgram


@pytest.fixture(scope="module")
def sor_code():
    from repro.apps import sor as s
    app = s.app(4, 6)
    return app, generate_mpi_code(app.nest, s.h_nonrectangular(2, 3, 4),
                                  mapping_dim=2)


class TestStructure:
    def test_mpi_calls_present(self, sor_code):
        _, code = sor_code
        assert "MPI_Init" in code
        assert "MPI_Recv" in code
        assert "MPI_Send" in code
        assert "MPI_Finalize" in code

    def test_receive_before_compute_before_send(self, sor_code):
        _, code = sor_code
        main = code[code.index("int main"):]
        assert main.index("RECEIVE(") < main.index("for (long jp0")
        assert main.index("for (long jp0") < main.index("SEND(")

    def test_lds_allocation(self, sor_code):
        _, code = sor_code
        assert "LDS_CELLS" in code
        assert "calloc" in code

    def test_map_macro(self, sor_code):
        _, code = sor_code
        assert "#define MAP(" in code


class TestCompileTimeConstants:
    """The constants burned into the text must match the executable
    pipeline — the anti-drift check."""

    def test_cc_vector(self, sor_code):
        app, code = sor_code
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        assert f"CC vector     : {prog.comm.cc}" in code

    def test_offsets(self, sor_code):
        app, code = sor_code
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        assert f"LDS offsets   : {prog.comm.offsets}" in code
        for k, off in enumerate(prog.comm.offsets):
            assert f"#define OFF{k} {off}" in code

    def test_tile_dependences_documented(self, sor_code):
        app, code = sor_code
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        assert f"D^S           : {prog.comm.d_s}" in code
        assert f"D^m           : {prog.comm.d_m}" in code

    def test_one_send_block_per_dm(self, sor_code):
        app, code = sor_code
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        assert code.count("MPI_Send") == len(prog.comm.d_m)

    def test_receives_only_for_crossing_ds(self, sor_code):
        app, code = sor_code
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        crossing = [ds for ds in prog.comm.d_s
                    if not prog.comm.is_intra_processor(ds)]
        assert code.count("MPI_Recv") == len(crossing)


class TestPackLoops:
    def test_pack_restricted_by_cc(self, sor_code):
        app, code = sor_code
        prog = TiledProgram(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        # at least one pack loop starts at a CC bound
        assert re.search(r"max\(l\dp, \d+\)", code)

    def test_halo_unpack_shift(self, sor_code):
        _, code = sor_code
        assert "halo slot" in code

    def test_multi_array_adi(self):
        app = adi.app(4, 5)
        code = generate_mpi_code(app.nest, adi.h_nr3(2, 3, 3),
                                 mapping_dim=0)
        assert "LA_X[" in code and "LA_B[" in code
