"""Unit tests for C affine-expression emission."""

from fractions import Fraction

import pytest

from repro.codegen.exprs import affine_to_c, bound_to_c
from repro.polyhedra import box, loop_bounds


class TestAffineToC:
    def test_integer_no_division(self):
        s = affine_to_c((Fraction(2),), Fraction(3), ("i",), "floor")
        assert "floord" not in s
        assert "2*i" in s and "3" in s

    def test_fraction_uses_floord(self):
        s = affine_to_c((Fraction(1, 2),), Fraction(0), ("i",), "floor")
        assert s == "floord(i, 2)"

    def test_fraction_uses_ceild(self):
        s = affine_to_c((Fraction(1, 3),), Fraction(-1, 3), ("i",), "ceil")
        assert s == "ceild(i - 1, 3)"

    def test_unit_coefficients(self):
        s = affine_to_c((Fraction(1), Fraction(-1)), Fraction(0),
                        ("i", "j"), "floor")
        assert "1*" not in s
        assert s == "(i - j)"

    def test_constant_only(self):
        assert affine_to_c((), Fraction(5), (), "floor") == "5"

    def test_bad_rounding_rejected(self):
        with pytest.raises(ValueError):
            affine_to_c((), Fraction(0), (), "trunc")


class TestBoundToC:
    def test_box_bounds_simple(self):
        b = loop_bounds(box([1, 2], [4, 9]))
        assert bound_to_c(b[0], (), "lower") == "1"
        assert bound_to_c(b[0], (), "upper") == "4"

    def test_max_of_multiple_lowers(self):
        from repro.polyhedra import Halfspace, Polyhedron
        p = box([0, 0], [9, 9]).with_constraint(
            Halfspace.of([1, -2], 0))  # i - 2j <= 0, i.e. j >= i/2
        b = loop_bounds(p)
        lower = bound_to_c(b[1], ("jS0",), "lower")
        assert "max(" in lower
        assert "ceild" in lower

    def test_unbounded_rejected(self):
        from repro.polyhedra import Halfspace, Polyhedron
        p = Polyhedron([Halfspace.of([1], 5)])
        b = loop_bounds(p)
        with pytest.raises(ValueError):
            bound_to_c(b[0], (), "lower")

    def test_bad_kind(self):
        b = loop_bounds(box([0], [1]))
        with pytest.raises(ValueError):
            bound_to_c(b[0], (), "middle")


class TestFloordSemantics:
    """The emitted C helpers must agree with Python's floor/ceil division."""

    @staticmethod
    def _c_div(a, b):
        """C99 '/' truncates toward zero; '%' takes the dividend's sign."""
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q, a - q * b

    def test_floord_matches_python_floor(self):
        for a in range(-25, 26):
            for b in (1, 2, 3, 5, 7):
                q, r = self._c_div(a, b)
                c_floord = q - ((r != 0) and ((a ^ b) < 0))
                assert c_floord == a // b, (a, b)

    def test_ceild_matches_python_ceil(self):
        import math
        for a in range(-25, 26):
            for b in (1, 2, 3, 5, 7):
                q, r = self._c_div(a, b)
                c_ceild = q + ((r != 0) and ((a ^ b) > 0))
                assert c_ceild == math.ceil(a / b) == -((-a) // b), (a, b)
