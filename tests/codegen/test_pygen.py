"""Unit tests for executable Python code generation."""

import pytest

from repro.apps import adi, sor
from repro.codegen import (
    generate_python_node_programs,
    load_generated_module,
)
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.vmpi import VirtualMPI


@pytest.fixture(scope="module")
def generated():
    app = sor.app(4, 6)
    h = sor.h_nonrectangular(2, 3, 4)
    src = generate_python_node_programs(app.nest, h, mapping_dim=2)
    return app, h, src


class TestEmission:
    def test_self_contained_header(self, generated):
        _, _, src = generated
        assert "Auto-generated" in src
        assert "from repro.runtime.vmpi import Compute, Recv, Send" in src
        # nothing else from the compiler is imported
        imports = [l for l in src.splitlines()
                   if l.startswith(("import ", "from "))]
        assert imports == ["from repro.runtime.vmpi import "
                           "Compute, Recv, Send"]

    def test_schedules_table_per_rank(self, generated):
        app, h, src = generated
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        mod = load_generated_module(src)
        assert set(mod.SCHEDULES) == set(range(prog.num_processors))

    def test_compiles_and_loads(self, generated):
        _, _, src = generated
        mod = load_generated_module(src)
        assert callable(mod.node_program)


class TestGeneratedExecution:
    def test_same_makespan_as_executor(self, generated):
        app, h, src = generated
        spec = ClusterSpec()
        mod = load_generated_module(src)
        engine = VirtualMPI(spec, {r: mod.node_program(r)
                                   for r in mod.RANKS})
        gen_stats = engine.run()
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        direct = DistributedRun(prog, spec).simulate()
        assert abs(gen_stats.makespan - direct.makespan) < 1e-15
        assert gen_stats.total_messages == direct.total_messages
        assert gen_stats.total_elements == direct.total_elements

    def test_multi_array_app(self):
        app = adi.app(4, 5)
        h = adi.h_nr3(2, 3, 3)
        src = generate_python_node_programs(app.nest, h, mapping_dim=0)
        mod = load_generated_module(src)
        spec = ClusterSpec()
        engine = VirtualMPI(spec, {r: mod.node_program(r)
                                   for r in mod.RANKS})
        stats = engine.run()
        prog = TiledProgram(app.nest, h, mapping_dim=0)
        direct = DistributedRun(prog, spec).simulate()
        assert abs(stats.makespan - direct.makespan) < 1e-15

    def test_spec_dependent_constants(self, generated):
        """Compute durations are baked with the spec used at emission."""
        app, h, _ = generated
        fast = ClusterSpec(time_per_iteration=1e-9)
        src = generate_python_node_programs(app.nest, h, mapping_dim=2,
                                            spec=fast)
        mod = load_generated_module(src)
        engine = VirtualMPI(fast, {r: mod.node_program(r)
                                   for r in mod.RANKS})
        stats = engine.run()
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        direct = DistributedRun(prog, fast).simulate()
        assert abs(stats.makespan - direct.makespan) < 1e-15


class TestDenseEmission:
    @pytest.fixture(scope="class")
    def dense_generated(self):
        app = sor.app(4, 6)
        h = sor.h_nonrectangular(2, 3, 4)
        src = generate_python_node_programs(app.nest, h, mapping_dim=2,
                                            engine="dense")
        return app, h, src

    def test_default_is_unchanged(self, generated):
        app, h, src = generated
        again = generate_python_node_programs(app.nest, h, mapping_dim=2,
                                              engine="sparse")
        assert again == src

    def test_unknown_engine_rejected(self):
        app = sor.app(4, 6)
        with pytest.raises(ValueError, match="engine"):
            generate_python_node_programs(
                app.nest, sor.h_rectangular(2, 3, 4), mapping_dim=2,
                engine="cuda")

    def test_wavefront_constant(self, dense_generated):
        app, h, src = dense_generated
        mod = load_generated_module(src)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        assert mod.ENGINE == "dense"
        assert mod.WAVEFRONT == prog.dense_schedule_vector()

    def test_slice_sizes_sum_to_tile_points(self, dense_generated):
        app, h, src = dense_generated
        mod = load_generated_module(src)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        # every tile-compute event carries the wavefront slice sizes;
        # their total over a rank equals the rank's point count
        expected = {
            prog.rank_of[pid]: sum(prog.tiling.tile_point_count(t)
                                   for t in prog.dist.tiles_of(pid))
            for pid in prog.pids
        }
        for rank, events in mod.SCHEDULES.items():
            total = sum(sum(ev[2]) for ev in events
                        if ev[0] == "compute" and len(ev) == 3)
            assert total == expected[rank]

    def test_same_stats_as_sparse_emission(self, generated,
                                           dense_generated):
        _, _, sparse_src = generated
        _, _, dense_src = dense_generated
        spec = ClusterSpec()
        stats = []
        for src in (sparse_src, dense_src):
            mod = load_generated_module(src)
            engine = VirtualMPI(
                spec, {r: mod.node_program(r) for r in mod.RANKS})
            stats.append(engine.run())
        assert stats[0] == stats[1]

    def test_passes_translation_validation(self, dense_generated):
        from repro.analysis.transval import check_pygen_source
        app, h, src = dense_generated
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        assert check_pygen_source(prog, src) == []


class TestOverlapEmission:
    @pytest.fixture(scope="class")
    def overlap_generated(self):
        app = sor.app(4, 6)
        h = sor.h_nonrectangular(2, 3, 4)
        src = generate_python_node_programs(app.nest, h, mapping_dim=2,
                                            engine="dense-overlap")
        return app, h, src

    def test_engine_constant(self, overlap_generated):
        app, h, src = overlap_generated
        mod = load_generated_module(src)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        assert mod.ENGINE == "dense-overlap"
        assert mod.WAVEFRONT == prog.dense_schedule_vector()

    def test_boundary_sizes_bounded_by_slices(self, overlap_generated):
        app, h, src = overlap_generated
        mod = load_generated_module(src)
        # tile-compute events carry (time, slice_sizes, boundary_sizes)
        # with boundary[L] <= slice[L] per level, and at least one
        # boundary point wherever the tile sends anything.
        seen = 0
        for events in mod.SCHEDULES.values():
            for ev in events:
                if ev[0] == "compute" and len(ev) == 4:
                    seen += 1
                    sizes, bnd = ev[2], ev[3]
                    assert len(bnd) == len(sizes)
                    assert all(0 <= b <= s
                               for b, s in zip(bnd, sizes))
        assert seen > 0

    def test_same_stats_as_dense_emission(self, overlap_generated):
        app, h, src = overlap_generated
        dense_src = generate_python_node_programs(
            app.nest, h, mapping_dim=2, engine="dense")
        spec = ClusterSpec()
        stats = []
        for s in (dense_src, src):
            mod = load_generated_module(s)
            engine = VirtualMPI(
                spec, {r: mod.node_program(r) for r in mod.RANKS})
            stats.append(engine.run())
        assert stats[0] == stats[1]

    def test_passes_translation_validation(self, overlap_generated):
        from repro.analysis.transval import check_pygen_source
        app, h, src = overlap_generated
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        assert check_pygen_source(prog, src) == []
