/* Exact integer floor/ceil division (C '/' truncates toward zero). */
static inline long floord(long a, long b)
{ return a / b - (((a % b) != 0) && ((a ^ b) < 0)); }
static inline long ceild(long a, long b)
{ return a / b + (((a % b) != 0) && ((a ^ b) > 0)); }

/* Data-parallel MPI code for 'sor_skewed'
 *   H tile volume : 24
 *   V (TTIS box)  : (2, 3, 4)
 *   strides c_k   : (1, 1, 1)
 *   mapping dim m : 2
 *   CC vector     : (1, 2, 3)
 *   LDS offsets   : (1, 1, 4)
 *   D^S           : ((0, 0, 1), (0, 1, 0), (0, 1, 1), (1, 0, 0), (1, 0, 1), (1, 1, 0), (1, 1, 1))
 *   D^m           : ((0, 1), (1, 0), (1, 1))
 */
#include <mpi.h>

#define OFF0 1
#define OFF1 1
#define OFF2 4
#define NTILES ntiles  /* chain length of this rank */
#define LDS_CELLS ((OFF0 + 2) * (OFF1 + 3) * (OFF2 + NTILES*4))

/* map(j', t): LDS cell of TTIS point j' in chain tile t (Table 1). */
#define MAP(jp0, jp1, jp2, t) (floord(jp0, 1) + OFF0) , (floord(jp1, 1) + OFF1) , (floord(t*4 + jp2, 1) + OFF2)  /* one index per LDS dim */

void RECEIVE(int *pid, long tS, double *LA, double *buf) {
    /* tile dependence d^S = (0, 1, 0), processor direction d^m = (0, 1) */
    if (valid_pred(pid, tS, (long[]){0, 1, 0}) && is_minsucc(...)) {
        MPI_Recv(buf, count, MPI_DOUBLE, rank_of_pid_minus((int[]){0, 1}), TAG_0_1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long count = 0;
    for (long jp0 = l0p; jp0 <= u0p; jp0 += 1) {
        for (long jp1 = max(l1p, 2); jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                LA[MAP(jp0, jp1, jp2, tS) - (0*2, 1*3, 0*4)] = buf[count++];  /* halo slot */
            }
        }
    }
    }
    /* tile dependence d^S = (0, 1, 1), processor direction d^m = (0, 1) */
    if (valid_pred(pid, tS, (long[]){0, 1, 1}) && is_minsucc(...)) {
        MPI_Recv(buf, count, MPI_DOUBLE, rank_of_pid_minus((int[]){0, 1}), TAG_0_1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long count = 0;
    for (long jp0 = l0p; jp0 <= u0p; jp0 += 1) {
        for (long jp1 = max(l1p, 2); jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                LA[MAP(jp0, jp1, jp2, tS) - (0*2, 1*3, 1*4)] = buf[count++];  /* halo slot */
            }
        }
    }
    }
    /* tile dependence d^S = (1, 0, 0), processor direction d^m = (1, 0) */
    if (valid_pred(pid, tS, (long[]){1, 0, 0}) && is_minsucc(...)) {
        MPI_Recv(buf, count, MPI_DOUBLE, rank_of_pid_minus((int[]){1, 0}), TAG_1_0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long count = 0;
    for (long jp0 = max(l0p, 1); jp0 <= u0p; jp0 += 1) {
        for (long jp1 = l1p; jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                LA[MAP(jp0, jp1, jp2, tS) - (1*2, 0*3, 0*4)] = buf[count++];  /* halo slot */
            }
        }
    }
    }
    /* tile dependence d^S = (1, 0, 1), processor direction d^m = (1, 0) */
    if (valid_pred(pid, tS, (long[]){1, 0, 1}) && is_minsucc(...)) {
        MPI_Recv(buf, count, MPI_DOUBLE, rank_of_pid_minus((int[]){1, 0}), TAG_1_0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long count = 0;
    for (long jp0 = max(l0p, 1); jp0 <= u0p; jp0 += 1) {
        for (long jp1 = l1p; jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                LA[MAP(jp0, jp1, jp2, tS) - (1*2, 0*3, 1*4)] = buf[count++];  /* halo slot */
            }
        }
    }
    }
    /* tile dependence d^S = (1, 1, 0), processor direction d^m = (1, 1) */
    if (valid_pred(pid, tS, (long[]){1, 1, 0}) && is_minsucc(...)) {
        MPI_Recv(buf, count, MPI_DOUBLE, rank_of_pid_minus((int[]){1, 1}), TAG_1_1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long count = 0;
    for (long jp0 = max(l0p, 1); jp0 <= u0p; jp0 += 1) {
        for (long jp1 = max(l1p, 2); jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                LA[MAP(jp0, jp1, jp2, tS) - (1*2, 1*3, 0*4)] = buf[count++];  /* halo slot */
            }
        }
    }
    }
    /* tile dependence d^S = (1, 1, 1), processor direction d^m = (1, 1) */
    if (valid_pred(pid, tS, (long[]){1, 1, 1}) && is_minsucc(...)) {
        MPI_Recv(buf, count, MPI_DOUBLE, rank_of_pid_minus((int[]){1, 1}), TAG_1_1, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long count = 0;
    for (long jp0 = max(l0p, 1); jp0 <= u0p; jp0 += 1) {
        for (long jp1 = max(l1p, 2); jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                LA[MAP(jp0, jp1, jp2, tS) - (1*2, 1*3, 1*4)] = buf[count++];  /* halo slot */
            }
        }
    }
    }
}

void SEND(int *pid, long tS, double *LA, double *buf) {
    /* processor dependence d^m = (0, 1) */
    if (exists_valid_successor(pid, tS)) {
        long count = 0;
    for (long jp0 = l0p; jp0 <= u0p; jp0 += 1) {
        for (long jp1 = max(l1p, 2); jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                buf[count++] = LA[MAP(jp0, jp1, jp2, tS)];
            }
        }
    }
        MPI_Send(buf, count, MPI_DOUBLE, rank_of_pid_plus((int[]){0, 1}), TAG_0_1, MPI_COMM_WORLD);
    }
    /* processor dependence d^m = (1, 0) */
    if (exists_valid_successor(pid, tS)) {
        long count = 0;
    for (long jp0 = max(l0p, 1); jp0 <= u0p; jp0 += 1) {
        for (long jp1 = l1p; jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                buf[count++] = LA[MAP(jp0, jp1, jp2, tS)];
            }
        }
    }
        MPI_Send(buf, count, MPI_DOUBLE, rank_of_pid_plus((int[]){1, 0}), TAG_1_0, MPI_COMM_WORLD);
    }
    /* processor dependence d^m = (1, 1) */
    if (exists_valid_successor(pid, tS)) {
        long count = 0;
    for (long jp0 = max(l0p, 1); jp0 <= u0p; jp0 += 1) {
        for (long jp1 = max(l1p, 2); jp1 <= u1p; jp1 += 1) {
            for (long jp2 = l2p; jp2 <= u2p; jp2 += 1) {
                buf[count++] = LA[MAP(jp0, jp1, jp2, tS)];
            }
        }
    }
        MPI_Send(buf, count, MPI_DOUBLE, rank_of_pid_plus((int[]){1, 1}), TAG_1_1, MPI_COMM_WORLD);
    }
}

int main(int argc, char **argv) {
    MPI_Init(&argc, &argv);
    int rank; MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    int pid[2]; pid_of_rank(rank, pid);  /* (n-1)-dim processor mesh */
    double *LA = calloc(LDS_CELLS, sizeof(double));
    double *buf = malloc(MAX_MSG * sizeof(double));
    for (long tS = lS2; tS <= uS2; tS++) {
        if (!tile_valid(pid, tS)) continue;
        RECEIVE(pid, tS, LA, buf);
        long ph0 = 0;
        for (long jp0 = ((ph0 % 1) + 1) % 1; jp0 < 2; jp0 += 1) {
            long x0 = (jp0 - ph0) / 1;
            long ph1 = 0;
            for (long jp1 = ((ph1 % 1) + 1) % 1; jp1 < 3; jp1 += 1) {
                long x1 = (jp1 - ph1) / 1;
                long ph2 = 0;
                for (long jp2 = ((ph2 % 1) + 1) % 1; jp2 < 4; jp2 += 1) {
                    long x2 = (jp2 - ph2) / 1;
                    if (inside_original_space(jp, pid, tS)) {
                        LA_A[MAP(jp0, jp1, jp2, t)] = F_A(LA_A[MAP(jp0, jp1 - 1, jp2, t)], LA_A[MAP(jp0, jp1, jp2 - 1, t)], LA_A[MAP(jp0 - 1, jp1, jp2 - 1, t)], LA_A[MAP(jp0 - 1, jp1 - 1, jp2, t)], LA_A[MAP(jp0 - 1, jp1 - 1, jp2 - 1, t)]);
                    }
                }
            }
        }
        SEND(pid, tS, LA, buf);
    }
    writeback_to_global_DS(LA);  /* loc^-1 of Table 2 */
    MPI_Finalize();
    return 0;
}
