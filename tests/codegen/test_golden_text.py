"""Golden-text tests: the emitted C+MPI program is pinned exactly.

The generators burn every compile-time constant into the text, so any
pipeline change that alters bounds, strides, halo offsets, tags or the
communication sets shows up as a one-line diff here.  Regenerate a
golden file deliberately with::

    PYTHONPATH=src python - <<'EOF'
    from repro.apps import sor
    from repro.codegen.parallel import generate_mpi_code
    app = sor.app(8, 12)
    print(generate_mpi_code(app.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=app.mapping_dim), end="")
    EOF

and review the diff like any other code change.  The companion
translation-validation suite proves the pinned text is also *internally
consistent* with the pipeline, so a golden update that silently breaks
an invariant cannot land clean.
"""

from pathlib import Path

import pytest

from repro.analysis.transval import check_mpi_text
from repro.apps import jacobi, sor
from repro.codegen.parallel import generate_mpi_code
from repro.runtime.executor import TiledProgram

GOLDEN = Path(__file__).parent / "golden"

CASES = [
    ("sor_8x12_nonrect_2_3_4_mpi.c",
     sor.app(8, 12), sor.h_nonrectangular(2, 3, 4)),
    ("jacobi_4x6x6_nonrect_2_2_3_mpi.c",
     jacobi.app(4, 6, 6), jacobi.h_nonrectangular(2, 2, 3)),
]


@pytest.mark.parametrize("fname,app,h", CASES, ids=[c[0] for c in CASES])
def test_emitted_mpi_text_matches_golden(fname, app, h):
    expected = (GOLDEN / fname).read_text()
    actual = generate_mpi_code(app.nest, h, mapping_dim=app.mapping_dim)
    assert actual == expected, (
        f"{fname} drifted — if the change is intentional, regenerate "
        f"the golden file (see module docstring) and review the diff")


@pytest.mark.parametrize("fname,app,h", CASES, ids=[c[0] for c in CASES])
def test_golden_text_translation_validates(fname, app, h):
    # the pinned text itself must satisfy TV01-TV03 against the pipeline
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    diags = check_mpi_text(prog, (GOLDEN / fname).read_text())
    assert diags == [], [d.message for d in diags]
