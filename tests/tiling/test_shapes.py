"""Unit tests for tiling-matrix constructors."""

from fractions import Fraction

import pytest

from repro.tiling import (
    cone_aligned_tiling,
    parallelepiped_tiling,
    rectangular_tiling,
    tiling_cone_rays,
)


class TestRectangular:
    def test_diag(self):
        h = rectangular_tiling([2, 5])
        assert h[0, 0] == Fraction(1, 2)
        assert h[1, 1] == Fraction(1, 5)
        assert h[0, 1] == 0

    def test_inverse_is_diag_sizes(self):
        h = rectangular_tiling([3, 7])
        p = h.inverse()
        assert p[0, 0] == 3 and p[1, 1] == 7

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            rectangular_tiling([0, 2])


class TestParallelepiped:
    def test_string_rows(self):
        h = parallelepiped_tiling([["1/4", "-1/4"], [0, "1/2"]])
        assert h[0, 1] == Fraction(-1, 4)


class TestConeAligned:
    ADI_DEPS = [(1, 0, 0), (1, 1, 0), (1, 0, 1)]

    def test_builds_adi_nr3(self):
        rays = [(1, -1, -1), (0, 1, 0), (0, 0, 1)]
        h = cone_aligned_tiling(rays, [4, 4, 4], deps=self.ADI_DEPS)
        from repro.apps import adi
        assert h == adi.h_nr3(4, 4, 4)

    def test_rejects_ray_outside_cone(self):
        with pytest.raises(ValueError):
            cone_aligned_tiling([(-1, 0, 0), (0, 1, 0), (0, 0, 1)],
                                [2, 2, 2], deps=self.ADI_DEPS)

    def test_accepts_computed_extreme_rays(self):
        rays = tiling_cone_rays(self.ADI_DEPS)
        h = cone_aligned_tiling(rays, [3] * len(rays), deps=self.ADI_DEPS)
        assert h.nrows == 3

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cone_aligned_tiling([(1, 0)], [2, 3])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            cone_aligned_tiling([(1, 0), (0, 1)], [2, -1])
