"""Unit tests for the TTIS transformation (paper §2.3)."""

import numpy as np
import pytest

from repro.linalg import RatMat, from_rows, lattice_points_in_box
from repro.tiling import TTIS
from repro.tiling.shapes import parallelepiped_tiling, rectangular_tiling


def jacobi_h(x=2, y=4, z=3):
    return parallelepiped_tiling([
        [f"1/{x}", f"-1/{2 * x}", 0],
        [0, f"1/{y}", 0],
        [0, 0, f"1/{z}"],
    ])


class TestConstruction:
    def test_v_matrix(self):
        t = TTIS(jacobi_h())
        assert t.v == (4, 4, 3)   # lcm of row denominators

    def test_h_prime_integral(self):
        t = TTIS(jacobi_h())
        assert t.h_prime.is_integer()
        assert t.h_prime == RatMat([[2, -1, 0], [0, 1, 0], [0, 0, 1]])

    def test_strides_from_hnf(self):
        t = TTIS(jacobi_h())
        assert t.c == (1, 2, 1)

    def test_offsets_lower_triangular(self):
        t = TTIS(jacobi_h())
        assert len(t.offsets[0]) == 0
        assert len(t.offsets[1]) == 1
        assert len(t.offsets[2]) == 2

    def test_rectangular_is_trivial(self):
        t = TTIS(rectangular_tiling([3, 4, 5]))
        assert t.v == (3, 4, 5)
        assert t.c == (1, 1, 1)
        assert t.tile_volume == 60

    def test_stride_divides_extent(self):
        t = TTIS(jacobi_h())
        for vk, ck in zip(t.v, t.c):
            assert vk % ck == 0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            TTIS(RatMat([[1, 0, 0], [0, 1, 0]]))


class TestVolume:
    def test_volume_is_det_p(self):
        h = jacobi_h()
        t = TTIS(h)
        assert t.tile_volume == abs(int(h.inverse().det()))

    def test_volume_counts_lattice_points(self):
        t = TTIS(jacobi_h())
        assert len(list(t.lattice_points())) == t.tile_volume


class TestTraversal:
    def test_matches_generic_lattice_walker(self):
        t = TTIS(jacobi_h())
        ours = sorted(t.lattice_points())
        generic = sorted(lattice_points_in_box(
            t.h_prime, [0] * 3, list(t.v)))
        assert ours == generic

    def test_np_variant_agrees(self):
        t = TTIS(jacobi_h())
        a = sorted(map(tuple, t.lattice_points_np().tolist()))
        assert a == sorted(t.lattice_points())

    def test_np_fast_path_for_unit_strides(self):
        t = TTIS(rectangular_tiling([2, 3, 2]))
        assert len(t.lattice_points_np()) == 12
        assert sorted(map(tuple, t.lattice_points_np().tolist())) == \
            sorted(t.lattice_points())

    def test_points_inside_box(self):
        t = TTIS(jacobi_h())
        for p in t.lattice_points():
            for k in range(3):
                assert 0 <= p[k] < t.v[k]

    def test_tis_points_are_preimages(self):
        t = TTIS(jacobi_h())
        lat = t.lattice_points_np()
        tis = t.tis_points_np()
        for jp, j in zip(lat, tis):
            assert t.to_ttis(tuple(j)) == tuple(jp)


class TestPointMaps:
    def test_roundtrip(self):
        t = TTIS(jacobi_h())
        for p in t.lattice_points():
            assert t.to_ttis(t.from_ttis(p)) == tuple(p)

    def test_from_ttis_off_lattice_rejected(self):
        t = TTIS(jacobi_h())
        with pytest.raises(ValueError):
            t.from_ttis((1, 0, 0))  # (1,0,0) not in lattice of [[2,-1,0],...]

    def test_contains_lattice_point(self):
        t = TTIS(jacobi_h())
        pts = set(t.lattice_points())
        assert all(t.contains_lattice_point(p) for p in pts)
        assert not t.contains_lattice_point((1, 0, 0))
        assert not t.contains_lattice_point((-2, 1, 0))  # outside box

    def test_transformed_dependences(self):
        t = TTIS(jacobi_h())
        # H' (1,1,1) = (2-1, 1, 1) = (1,1,1)
        assert t.transformed_dependences([(1, 1, 1)]) == ((1, 1, 1),)

    def test_tile_point_in_ttis_box(self):
        """The defining TTIS property: j in TIS <=> H'j in [0, v)."""
        t = TTIS(jacobi_h())
        h = jacobi_h()
        import math
        for j in map(tuple, t.tis_points_np().tolist()):
            assert tuple(math.floor(x) for x in h.matvec(j)) == (0, 0, 0)
