"""Unit tests for the tiling transformation (tile space, D^S, masks)."""

import numpy as np
import pytest

from repro.linalg import from_rows
from repro.polyhedra import box
from repro.tiling import TilingTransformation
from repro.tiling.shapes import parallelepiped_tiling, rectangular_tiling

SOR_DEPS = [(0, 1, 0), (0, 0, 1), (1, 0, 2), (1, 1, 1), (1, 1, 2)]


@pytest.fixture(scope="module")
def sor_nr_tiling():
    h = parallelepiped_tiling(
        [["1/3", 0, 0], [0, "1/4", 0], ["-1/5", 0, "1/5"]])
    return TilingTransformation(h, box([1, 1, 1], [9, 12, 20]))


class TestBasics:
    def test_tile_of_floor(self, sor_nr_tiling):
        # H (3,4,5) = (1, 1, (5-3)/5) -> floor = (1, 1, 0)
        assert sor_nr_tiling.tile_of((3, 4, 5)) == (1, 1, 0)

    def test_origin_inverse_of_tile(self, sor_nr_tiling):
        for js in [(0, 0, 0), (1, 2, 1), (2, 0, 3)]:
            origin = sor_nr_tiling.tile_origin(js)
            assert sor_nr_tiling.tile_of(origin) == js

    def test_volume(self, sor_nr_tiling):
        assert sor_nr_tiling.tile_volume() == 3 * 4 * 5

    def test_non_integer_p_rejected(self):
        h = parallelepiped_tiling([["1/2", "-1/3"], [0, "1/2"]])
        with pytest.raises(ValueError):
            TilingTransformation(h, box([0, 0], [5, 5]))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TilingTransformation(rectangular_tiling([2, 2]),
                                 box([0, 0, 0], [5, 5, 5]))


class TestPartition:
    def test_every_point_in_its_tile(self, sor_nr_tiling):
        tt = sor_nr_tiling
        for j in [(1, 1, 1), (9, 12, 20), (5, 7, 13)]:
            js = tt.tile_of(j)
            pts = set(map(tuple, tt.tile_points_np(js).tolist()))
            assert j in pts

    def test_tiles_partition_domain(self, sor_nr_tiling):
        tt = sor_nr_tiling
        seen = {}
        for t in tt.enumerate_tiles():
            for p in map(tuple, tt.tile_points_np(t).tolist()):
                assert p not in seen, f"{p} in two tiles"
                seen[p] = t
        assert len(seen) == 9 * 12 * 20

    def test_counts_sum_to_domain(self, sor_nr_tiling):
        tt = sor_nr_tiling
        assert sum(tt.tile_point_count(t)
                   for t in tt.enumerate_tiles()) == 9 * 12 * 20


class TestClassification:
    def test_full_tile(self, sor_nr_tiling):
        tt = sor_nr_tiling
        full = [t for t in tt.enumerate_tiles() if tt.tile_is_full(t)]
        assert full, "expected at least one interior tile"
        for t in full:
            assert tt.classify_tile(t) == "full"
            assert tt.tile_point_count(t) == tt.tile_volume()

    def test_classification_consistent_with_masks(self, sor_nr_tiling):
        tt = sor_nr_tiling
        for t in tt.enumerate_tiles():
            cls = tt.classify_tile(t)
            count = int(tt.tile_mask(t).sum())
            if cls == "full":
                assert count == tt.tile_volume()
            elif cls == "empty":
                assert count == 0
            else:
                assert 0 <= count <= tt.tile_volume()

    def test_far_away_tile_empty(self, sor_nr_tiling):
        assert sor_nr_tiling.classify_tile((50, 50, 50)) == "empty"
        assert sor_nr_tiling.tile_point_count((50, 50, 50)) == 0


class TestTileSpaceBounds:
    def test_bounds_contain_all_tiles(self, sor_nr_tiling):
        tt = sor_nr_tiling
        bounds = tt.tile_space_bounds()
        for t in tt.enumerate_tiles():
            lo0, hi0 = bounds[0].evaluate(())
            assert lo0 <= t[0] <= hi0
            lo1, hi1 = bounds[1].evaluate((t[0],))
            assert lo1 <= t[1] <= hi1
            lo2, hi2 = bounds[2].evaluate((t[0], t[1]))
            assert lo2 <= t[2] <= hi2

    def test_enumeration_cached(self, sor_nr_tiling):
        a = sor_nr_tiling.enumerate_tiles()
        assert sor_nr_tiling.enumerate_tiles() is a


class TestTileDependences:
    def test_sor_ds_nonnegative(self, sor_nr_tiling):
        ds = sor_nr_tiling.tile_dependences(SOR_DEPS)
        assert ds
        for d in ds:
            assert all(x >= 0 for x in d)
            assert any(d)

    def test_matches_bruteforce(self, sor_nr_tiling):
        """D^S definition checked point by point over the TIS."""
        tt = sor_nr_tiling
        got = set(tt.tile_dependences(SOR_DEPS))
        want = set()
        for j in map(tuple, tt.ttis.tis_points_np().tolist()):
            for d in SOR_DEPS:
                jd = tuple(a + b for a, b in zip(j, d))
                t = tt.tile_of(jd)
                if any(t):
                    want.add(t)
        assert got == want

    def test_cached(self, sor_nr_tiling):
        a = sor_nr_tiling.tile_dependences(SOR_DEPS)
        b = sor_nr_tiling.tile_dependences(SOR_DEPS)
        assert a is b

    def test_large_tile_swallows_dependence(self):
        """A tile much larger than all deps has only unit D^S entries."""
        h = rectangular_tiling([10, 10])
        tt = TilingTransformation(h, box([0, 0], [29, 29]))
        ds = tt.tile_dependences([(1, 0), (0, 1), (1, 1)])
        assert set(ds) == {(0, 1), (1, 0), (1, 1)}
