"""Unit tests for tiling legality (H D >= 0)."""

import pytest

from repro.apps import adi, jacobi, sor
from repro.tiling import check_legal_tiling, is_legal_tiling
from repro.tiling.shapes import rectangular_tiling


class TestLegality:
    def test_rect_legal_for_nonneg_deps(self):
        assert is_legal_tiling(rectangular_tiling([2, 2]),
                               [(1, 0), (0, 1), (1, 1)])

    def test_rect_illegal_for_negative_dep(self):
        assert not is_legal_tiling(rectangular_tiling([2, 2]),
                                   [(1, -1)])

    def test_check_raises_with_context(self):
        with pytest.raises(ValueError, match="dependence"):
            check_legal_tiling(rectangular_tiling([2, 2]), [(1, -1)])

    def test_check_passes_silently(self):
        check_legal_tiling(rectangular_tiling([2, 2]), [(1, 1)])


class TestPaperTilings:
    """Every experimental tiling in §4 must be legal for its skewed nest."""

    def test_sor(self, sor_small):
        deps = sor_small.nest.dependences
        assert is_legal_tiling(sor.h_rectangular(2, 3, 4), deps)
        assert is_legal_tiling(sor.h_nonrectangular(2, 3, 4), deps)

    def test_sor_nr_illegal_on_unskewed(self, sor_small):
        deps = sor_small.original.dependences
        assert not is_legal_tiling(sor.h_rectangular(2, 3, 4), deps)

    def test_jacobi(self, jacobi_small):
        deps = jacobi_small.nest.dependences
        assert is_legal_tiling(jacobi.h_rectangular(2, 4, 3), deps)
        assert is_legal_tiling(jacobi.h_nonrectangular(2, 4, 3), deps)

    def test_adi_all_four(self, adi_small):
        deps = adi_small.nest.dependences
        for hf in (adi.h_rectangular, adi.h_nr1, adi.h_nr2, adi.h_nr3):
            assert is_legal_tiling(hf(2, 3, 3), deps)
