"""Unit tests for tile-size selection."""

import pytest

from repro.apps import sor
from repro.runtime import ClusterSpec
from repro.tiling import ratio_balanced_extent, sweep_best_extent


@pytest.fixture(scope="module")
def setting():
    app = sor.app(12, 16)
    h_of = lambda z: sor.h_nonrectangular(3, 4, z)
    return app, h_of


class TestRatioBalanced:
    def test_returns_candidate(self, setting):
        app, h_of = setting
        ext = ratio_balanced_extent(h_of, app.nest, 2, ClusterSpec(),
                                    candidates=range(1, 17))
        assert 1 <= ext <= 16

    def test_slower_cpu_wants_smaller_tiles(self, setting):
        """More compute per point balances against comm with a smaller
        chain extent."""
        app, h_of = setting
        fast_cpu = ClusterSpec(time_per_iteration=50e-9)
        slow_cpu = ClusterSpec(time_per_iteration=5000e-9)
        e_fast = ratio_balanced_extent(h_of, app.nest, 2, fast_cpu,
                                       candidates=range(1, 33))
        e_slow = ratio_balanced_extent(h_of, app.nest, 2, slow_cpu,
                                       candidates=range(1, 33))
        assert e_slow <= e_fast

    def test_no_valid_candidate_raises(self, setting):
        app, _ = setting

        def bad(_ext):
            from repro.tiling import parallelepiped_tiling
            # P is never integral: TTIS construction fails
            return parallelepiped_tiling(
                [["1/2", "-1/3", 0], [0, "1/2", 0], [0, 0, "1/2"]])

        with pytest.raises(ValueError):
            ratio_balanced_extent(bad, app.nest, 2, ClusterSpec(),
                                  candidates=[2, 3])


class TestSweep:
    def test_best_is_argmax_of_curve(self, setting):
        app, h_of = setting
        out = sweep_best_extent(h_of, app.nest, 2, ClusterSpec(),
                                candidates=(2, 4, 8))
        speeds = dict(out.curve)
        assert out.best_speedup == max(speeds.values())
        assert speeds[out.best_extent] == out.best_speedup

    def test_curve_covers_candidates(self, setting):
        app, h_of = setting
        out = sweep_best_extent(h_of, app.nest, 2, ClusterSpec(),
                                candidates=(2, 4))
        assert [e for e, _ in out.curve] == [2, 4]

    def test_deterministic(self, setting):
        app, h_of = setting
        a = sweep_best_extent(h_of, app.nest, 2, ClusterSpec(), (2, 4))
        b = sweep_best_extent(h_of, app.nest, 2, ClusterSpec(), (2, 4))
        assert a == b
