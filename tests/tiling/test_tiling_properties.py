"""Property-based tests: random legal tilings of random 2D spaces.

The central invariant of tiling: ``floor(H j)`` partitions the iteration
space — every point belongs to exactly one enumerated tile — and the
TTIS machinery (strides, offsets, inverse maps) is exact on the lattice.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.linalg import RatMat
from repro.polyhedra import box
from repro.tiling import TTIS, TilingTransformation


@st.composite
def integer_p_matrices(draw):
    """Random 2x2 integer P with nonzero det and modest entries; H = P^-1."""
    a = draw(st.integers(1, 4))
    d = draw(st.integers(1, 4))
    b = draw(st.integers(-2, 2))
    c = draw(st.integers(-2, 2))
    p = RatMat([[a, b], [c, d]])
    assume(p.det() != 0)
    return p


@st.composite
def domains_2d(draw):
    lo = (draw(st.integers(-3, 1)), draw(st.integers(-3, 1)))
    hi = (lo[0] + draw(st.integers(2, 8)), lo[1] + draw(st.integers(2, 8)))
    return box(lo, hi), lo, hi


@given(integer_p_matrices(), domains_2d())
@settings(max_examples=60, deadline=None)
def test_tiles_partition_every_point(p, dom):
    domain, lo, hi = dom
    h = p.inverse()
    tt = TilingTransformation(h, domain)
    tiles = set(tt.enumerate_tiles())
    total = 0
    for x in range(lo[0], hi[0] + 1):
        for y in range(lo[1], hi[1] + 1):
            js = tt.tile_of((x, y))
            assert js in tiles
            pts = set(map(tuple, tt.tile_points_np(js).tolist()))
            assert (x, y) in pts
            total += 1
    assert sum(tt.tile_point_count(t) for t in tiles) == total


@given(integer_p_matrices())
@settings(max_examples=80, deadline=None)
def test_ttis_lattice_count_is_volume(p):
    h = p.inverse()
    try:
        t = TTIS(h)
    except ValueError:
        # c_k | v_kk can fail for adversarial H' — that's a documented
        # precondition of the LDS condensation, not a bug.
        return
    pts = list(t.lattice_points())
    assert len(pts) == t.tile_volume == abs(int(p.det()))
    assert len(set(pts)) == len(pts)


@given(integer_p_matrices())
@settings(max_examples=80, deadline=None)
def test_ttis_roundtrip_on_lattice(p):
    h = p.inverse()
    try:
        t = TTIS(h)
    except ValueError:
        return
    for jp in t.lattice_points():
        j = t.from_ttis(jp)
        assert t.to_ttis(j) == tuple(jp)
        assert t.contains_lattice_point(jp)


@given(integer_p_matrices(), domains_2d())
@settings(max_examples=40, deadline=None)
def test_classify_tile_sound(p, dom):
    domain, lo, hi = dom
    tt = TilingTransformation(p.inverse(), domain)
    for t in tt.enumerate_tiles():
        cls = tt.classify_tile(t)
        exact = int(tt.tile_mask(t).sum())
        if cls == "full":
            assert exact == tt.tile_volume()
        elif cls == "empty":
            assert exact == 0
