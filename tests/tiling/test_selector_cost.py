"""Cost-guided tile-size selection: analytic ranking must find the
exhaustive sweep's winner with a fraction of its simulator runs."""

import pytest

from repro.apps import sor
from repro.runtime import ClusterSpec
from repro.tiling.selector import cost_guided_extent, sweep_best_extent


@pytest.fixture(scope="module")
def setting():
    app = sor.app(10, 14)

    def h_of(z):
        return sor.h_nonrectangular(2, 3, z)

    return app, h_of


class TestCostGuided:
    def test_beats_sweep_with_3x_fewer_sims(self, setting):
        # The ISSUE acceptance: makespan no worse than the exhaustive
        # sweep winner, with at least 3x fewer simulator evaluations.
        app, h_of = setting
        spec = ClusterSpec()
        cands = list(range(2, 10))
        cg = cost_guided_extent(h_of, app.nest, 2, spec, cands)
        sw = sweep_best_extent(h_of, app.nest, 2, spec, cands)
        assert cg.best_makespan <= sw.best_makespan
        assert cg.simulator_evals * 3 <= len(cands)
        assert cg.candidate_count == len(cands)

    def test_prediction_is_the_simulation(self, setting):
        # The analytic curve *is* the simulator's (COST03 bitwise
        # exactness), so the frontier's winner is the global winner.
        app, h_of = setting
        spec = ClusterSpec()
        cg = cost_guided_extent(h_of, app.nest, 2, spec,
                                list(range(2, 8)))
        predicted = dict(cg.predicted_curve)
        assert predicted[cg.best_extent] == cg.best_makespan
        assert cg.best_extent in cg.frontier

    def test_top_k_clamped_to_one(self, setting):
        app, h_of = setting
        cg = cost_guided_extent(h_of, app.nest, 2, ClusterSpec(),
                                [2, 3], top_k=0)
        assert cg.simulator_evals == 1

    def test_all_deadlocked_candidates_raise(self):
        # Forced rendezvous deadlocks the rect SOR pipeline at every
        # extent — the selector must refuse, not simulate a hang.
        import dataclasses

        app = sor.app(4, 6)
        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=0)

        def h_of(z):
            return sor.h_rectangular(2, 3, z)

        with pytest.raises(ValueError, match="deadlock"):
            cost_guided_extent(h_of, app.nest, 2, spec, [4, 5])
