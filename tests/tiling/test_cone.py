"""Unit tests: tiling cones of the paper's three dependence sets."""

import pytest

from repro.tiling import in_tiling_cone, tiling_cone_rays

SOR_DEPS = [(1, 1, 2), (0, 1, 0), (1, 0, 2), (1, 1, 1), (0, 0, 1)]
JACOBI_DEPS = [(1, 1, 1), (1, 2, 1), (1, 0, 1), (1, 1, 2), (1, 1, 0)]
ADI_DEPS = [(1, 0, 0), (1, 1, 0), (1, 0, 1)]


class TestPaperCones:
    def test_sor_cone(self):
        """Paper §4.1: C rows (1,0,0), (0,1,0), (-1,0,1), (-2,1,1)."""
        rays = set(tiling_cone_rays(SOR_DEPS))
        assert rays == {(1, 0, 0), (0, 1, 0), (-1, 0, 1), (-2, 1, 1)}

    def test_adi_cone(self):
        """Paper §4.3: C rows (1,-1,-1), (0,1,0), (0,0,1)."""
        rays = set(tiling_cone_rays(ADI_DEPS))
        assert rays == {(1, -1, -1), (0, 1, 0), (0, 0, 1)}

    def test_jacobi_cone(self):
        rays = set(tiling_cone_rays(JACOBI_DEPS))
        assert rays == {(-1, 1, 1), (1, -1, 1), (1, 1, -1), (3, -1, -1)}

    def test_rays_are_in_cone(self):
        for deps in (SOR_DEPS, JACOBI_DEPS, ADI_DEPS):
            for r in tiling_cone_rays(deps):
                assert in_tiling_cone(r, deps)


class TestInCone:
    def test_interior(self):
        assert in_tiling_cone((1, 1, 1), ADI_DEPS)

    def test_outside(self):
        assert not in_tiling_cone((-1, 0, 0), ADI_DEPS)

    def test_rational_candidates_exact(self):
        """Regression: Fraction entries must not be truncated."""
        from fractions import Fraction
        # (2, -1, -1) . (1, 1, 2) = -1: outside the SOR cone.
        assert not in_tiling_cone(
            (Fraction(2), Fraction(-1), Fraction(-1)), SOR_DEPS)

    def test_boundary(self):
        # (1,-1,-1) is orthogonal to both (1,1,0) and (1,0,1)
        assert in_tiling_cone((1, -1, -1), ADI_DEPS)


class TestEdgeCases:
    def test_1d(self):
        assert tiling_cone_rays([(1,), (2,)]) == [(1,)]

    def test_2d_quadrant(self):
        rays = set(tiling_cone_rays([(1, 0), (0, 1)]))
        assert rays == {(1, 0), (0, 1)}

    def test_2d_wedge(self):
        rays = set(tiling_cone_rays([(1, 1), (1, -1)]))
        assert rays == {(1, 1), (1, -1)}

    def test_empty_deps_rejected(self):
        with pytest.raises(ValueError):
            tiling_cone_rays([])
