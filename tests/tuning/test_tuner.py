"""The tuner's search ladder: rejection handling, pruning, verdicts."""

from fractions import Fraction

import pytest

from repro.apps import adi, jacobi, sor
from repro.linalg.ratmat import RatMat
from repro.runtime.machine import ClusterSpec
from repro.tuning import (
    ShapeCandidate,
    TuneConfig,
    hnf_key,
    tune_tile_shape,
)
from repro.tuning.schema import validate_report

SPEC = ClusterSpec()


def _candidate(h, order):
    return ShapeCandidate(h=h, rays=(), scales=(), key=hnf_key(h),
                          order=order)


def test_illegal_h_rejected_before_costing(monkeypatch):
    """A known-bad ``H`` (violates ``H D >= 0`` for SOR's skewed deps)
    must be recorded as a rejection by the compile rung — the cost
    certifier must never see it."""
    app = sor.app(6, 9)
    bad = RatMat([[Fraction(-1, 2), 0, 0],
                  [0, Fraction(1, 3), 0],
                  [0, 0, Fraction(1, 4)]])

    def boom(*a, **k):
        raise AssertionError("cost certifier ran on an illegal tiling")

    monkeypatch.setattr(
        "repro.runtime.executor.TiledProgram.cost_certificate", boom)
    with pytest.raises(ValueError,
                       match="no tile-shape candidate compiled"):
        tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                        candidates=[_candidate(bad, 0)])


def test_illegal_h_among_good_candidates_is_a_trace_rejection():
    app = sor.app(6, 9)
    bad = RatMat([[Fraction(-1, 2), 0, 0],
                  [0, Fraction(1, 3), 0],
                  [0, 0, Fraction(1, 4)]])
    good = sor.h_nonrectangular(2, 3, 4)
    res = tune_tile_shape(
        app.nest, app.mapping_dim, spec=SPEC,
        candidates=[_candidate(bad, 0), _candidate(good, 1)])
    by_order = {t.order: t for t in res.trace}
    assert by_order[0].status == "rejected:compile"
    assert by_order[0].predicted_makespan is None
    assert by_order[1].status == "winner"


def test_baseline_always_simulated_and_never_beaten():
    app = sor.app(8, 12)
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(),
                          baseline_h=sor.h_rectangular(2, 3, 4))
    assert res.baseline is not None
    assert res.baseline.simulated_makespan is not None
    assert (res.winner.simulated_makespan
            <= res.baseline.simulated_makespan)


def test_early_stop_fires_and_prunes():
    app = sor.app(8, 12)
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(),
                          baseline_h=sor.h_rectangular(2, 3, 4))
    assert res.early_stop
    assert "lower bound" in (res.early_stop_reason or "")
    pruned = [t for t in res.trace if t.status == "pruned:early-stop"]
    assert pruned, "the stop must actually prune part of the space"
    # Pruned candidates were never compiled, let alone simulated.
    for t in pruned:
        assert t.predicted_makespan is None
        assert t.simulated_makespan is None


def test_early_stop_respects_min_costed():
    app = sor.app(8, 12)
    res = tune_tile_shape(
        app.nest, app.mapping_dim, spec=SPEC,
        config=TuneConfig(min_costed=10 ** 6),
        baseline_h=sor.h_rectangular(2, 3, 4))
    assert not res.early_stop


def test_processor_cap_rejections_are_traced():
    app = sor.app(8, 12)
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(max_processors=12))
    capped = [t for t in res.trace if t.status == "rejected:processors"]
    assert capped
    for t in capped:
        assert "exceed the cap of 12" in (t.reason or "")
        assert t.processors is not None and t.processors > 12
    assert res.winner.processors <= 12


def test_all_candidates_capped_is_an_error():
    app = sor.app(8, 12)
    with pytest.raises(ValueError,
                       match="no tile-shape candidate compiled"):
        tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                        config=TuneConfig(max_processors=1))


@pytest.mark.parametrize("app,h", [
    (sor.app(8, 12), sor.h_rectangular(2, 3, 4)),
    (jacobi.app(6, 8, 8), jacobi.h_rectangular(2, 4, 4)),
    (adi.app(6, 8), adi.h_rectangular(2, 4, 4)),
])
def test_tuned_beats_or_matches_rectangles_on_paper_apps(app, h):
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(), baseline_h=h)
    assert res.baseline is not None
    assert (res.winner.simulated_makespan
            <= res.baseline.simulated_makespan)
    validate_report(res.to_dict())


def test_report_roundtrips_the_winner_matrix():
    from repro.tuning import h_from_doc

    app = sor.app(8, 12)
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(),
                          baseline_h=sor.h_rectangular(2, 3, 4))
    doc = res.to_dict()
    assert h_from_doc(doc["winner"]["h"]) == res.winner_h


def test_as_sweep_outcome_adapter():
    app = sor.app(8, 12)
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(),
                          baseline_h=sor.h_rectangular(2, 3, 4))
    sw = res.as_sweep_outcome()
    assert sw.best_extent == res.winner.chain_extent
    assert sw.best_makespan == res.winner.simulated_makespan
    assert sw.best_speedup == pytest.approx(res.speedup)
    assert any(ext == sw.best_extent for ext, _ in sw.curve)


def test_schema_rejects_a_mangled_report():
    app = sor.app(6, 9)
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=SPEC,
                          config=TuneConfig(),
                          baseline_h=sor.h_rectangular(2, 3, 4))
    doc = res.to_dict()
    doc["winner"]["simulated_makespan"] = "fast"
    with pytest.raises(ValueError, match="schema validation"):
        validate_report(doc)
