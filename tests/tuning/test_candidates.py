"""Candidate generation: legality by construction, exact dedup.

The tuner's soundness rests on two properties pinned here:

* every generated ``H`` row lies inside the tiling cone of the
  dependence set (so ``H D >= 0`` — the candidate is a *legal* tiling)
  — checked as a hypothesis property over random uniform dependence
  sets, not just the paper's three;
* the dedup key collapses exactly the respellings of one rational
  ``H`` and nothing more — in particular it must NOT merge the paper's
  rectangular and cone-skewed SOR tilings, which share a tile-origin
  lattice but tile differently.
"""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps import sor
from repro.linalg.ratmat import RatMat
from repro.tiling.cone import in_tiling_cone
from repro.tiling.legality import is_legal_tiling
from repro.tuning import generate_candidates, hnf_key

SOR_DEPS = sor.DECLARED_SKEWED_DEPS


@st.composite
def uniform_dependence_sets(draw):
    """2-4 random nonnegative-leading dependence vectors in 2D/3D.

    First components are kept strictly positive (a uniform dependence
    set of a fully permutable band, as after skewing) so the tiling
    cone is full-dimensional and candidate generation meaningful.
    """
    n = draw(st.integers(2, 3))
    count = draw(st.integers(2, 4))
    deps = []
    for _ in range(count):
        vec = [draw(st.integers(1, 3))]
        vec.extend(draw(st.integers(0, 3)) for _ in range(n - 1))
        deps.append(tuple(vec))
    return tuple(dict.fromkeys(deps))


@given(uniform_dependence_sets())
@settings(max_examples=40, deadline=None)
def test_candidates_stay_inside_the_cone(deps):
    try:
        space = generate_candidates(deps, max_candidates=24)
    except ValueError:
        # Degenerate cone (fewer extreme rays than dimensions): no
        # basis exists; rejection is the correct outcome.
        assume(False)
    assert space.candidates, "nonempty cone must yield candidates"
    for cand in space.candidates:
        for ray in cand.rays:
            assert in_tiling_cone(ray, deps), (ray, deps)
        # Rows in the cone imply H D >= 0 — legality by construction.
        assert is_legal_tiling(cand.h, deps), (cand.label, deps)


def test_every_sor_candidate_is_legal():
    space = generate_candidates(SOR_DEPS)
    assert len(space.candidates) >= 16
    for cand in space.candidates:
        assert is_legal_tiling(cand.h, SOR_DEPS), cand.label


def test_dedup_collapses_respellings():
    h = RatMat([[Fraction(1, 2), 0], [Fraction(1, 2), Fraction(1, 2)]])
    # The same rational H spelled with unreduced fractions.
    respelled = RatMat([[Fraction(2, 4), 0],
                        [Fraction(3, 6), Fraction(4, 8)]])
    assert hnf_key(h) == hnf_key(respelled)


def test_dedup_keeps_rect_and_skewed_sor_distinct():
    """The paper's §4.1 pair: same tile-origin lattice, same volume,
    different tile shapes, different communication.  A key based on
    the column HNF of ``V @ H`` (invariant under column operations)
    would merge them and erase the experiment; the canonical-form key
    must not."""
    h_rect = sor.h_rectangular(2, 3, 4)
    h_skew = sor.h_nonrectangular(2, 3, 4)
    assert hnf_key(h_rect) != hnf_key(h_skew)


def test_dedup_is_exactly_h_equality():
    x = RatMat([[Fraction(1, 2), 0], [0, Fraction(1, 3)]])
    y = RatMat([[Fraction(1, 2), 0], [0, Fraction(1, 4)]])
    assert hnf_key(x) != hnf_key(y)
    assert hnf_key(x) == hnf_key(RatMat([[Fraction(1, 2), 0],
                                         [0, Fraction(1, 3)]]))


def test_generation_is_deterministic():
    a = generate_candidates(SOR_DEPS)
    b = generate_candidates(SOR_DEPS)
    assert [c.label for c in a.candidates] == [c.label for c in b.candidates]
    assert [c.h for c in a.candidates] == [c.h for c in b.candidates]


def test_candidate_cap_is_respected():
    space = generate_candidates(SOR_DEPS, max_candidates=7)
    assert len(space.candidates) <= 7
    assert space.truncated > 0      # the cap actually bit


def test_degenerate_dependences_rejected():
    with pytest.raises(ValueError):
        generate_candidates(())
