"""Tuning records: content addressing, byte-identity, zero re-work.

Mirrors ``tests/artifacts/test_roundtrip.py``: the warm path must not
only return equal results — it must provably never run the pipeline
(legality proof, tile enumeration, costing, simulation), which the
tests enforce by monkeypatching those stages to explode.
"""

import json

import pytest

from repro.apps import sor
from repro.artifacts import ArtifactCache
from repro.runtime.machine import ClusterSpec
from repro.tiling.transform import TilingTransformation
from repro.tuning import (
    TuneConfig,
    TuneRecordStore,
    h_from_doc,
    tune_key,
    tune_or_load,
)

SPEC = ClusterSpec()
CONFIG = TuneConfig()


def _tiny():
    return sor.app(6, 9), sor.h_rectangular(2, 3, 4)


def test_warm_retune_is_byte_identical(tmp_path):
    app, h = _tiny()
    report1, status1 = tune_or_load(
        app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
        baseline_h=h)
    assert status1 == "miss"
    key = tune_key(app.nest, app.mapping_dim, SPEC, CONFIG)
    path = TuneRecordStore(str(tmp_path)).path_for(key)
    blob1 = open(path, "rb").read()

    report2, status2 = tune_or_load(
        app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
        baseline_h=h)
    assert status2 == "hit"
    assert report1 == report2
    assert open(path, "rb").read() == blob1
    # The stored blob IS the canonical rendering of the report.
    assert json.loads(blob1.decode()) == report1


def test_warm_retune_runs_no_pipeline(tmp_path, monkeypatch):
    app, h = _tiny()
    tune_or_load(app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
                 baseline_h=h)

    def boom(*a, **k):
        raise AssertionError("compile/search pipeline ran on the "
                             "warm-tune path")

    monkeypatch.setattr("repro.runtime.executor.check_legal_tiling", boom)
    monkeypatch.setattr(TilingTransformation, "tile_space_bounds", boom)
    monkeypatch.setattr("repro.tuning.tuner.tune_tile_shape", boom)
    monkeypatch.setattr("repro.tuning.records.tune_tile_shape", boom)

    report, status = tune_or_load(
        app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
        baseline_h=h)
    assert status == "hit"
    assert report["winner"]["label"]


def test_winner_lands_in_the_program_artifact_cache(tmp_path):
    app, h = _tiny()
    report, _ = tune_or_load(
        app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
        baseline_h=h)
    winner_h = h_from_doc(report["winner"]["h"])
    cache = ArtifactCache(str(tmp_path))
    prog = cache.load(app.nest, winner_h, app.mapping_dim)
    assert prog is not None, "tuned winner missing from program cache"
    assert cache.hits == 1


def test_key_depends_on_every_semantic_input():
    app, _ = _tiny()
    base = tune_key(app.nest, app.mapping_dim, SPEC, CONFIG)
    assert base == tune_key(app.nest, app.mapping_dim, ClusterSpec(),
                            TuneConfig())
    other_app = sor.app(6, 10)
    assert base != tune_key(other_app.nest, app.mapping_dim, SPEC, CONFIG)
    assert base != tune_key(app.nest, 0, SPEC, CONFIG)
    assert base != tune_key(app.nest, app.mapping_dim,
                            ClusterSpec(net_latency=1e-3), CONFIG)
    assert base != tune_key(app.nest, app.mapping_dim, SPEC,
                            TuneConfig(stop_ratio=1.5))


def test_corrupt_record_demotes_to_retune(tmp_path):
    app, h = _tiny()
    tune_or_load(app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
                 baseline_h=h)
    key = tune_key(app.nest, app.mapping_dim, SPEC, CONFIG)
    store = TuneRecordStore(str(tmp_path))
    with open(store.path_for(key), "wb") as f:
        f.write(b'{"kind": "garbage"')
    report, status = tune_or_load(
        app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
        baseline_h=h)
    assert status == "miss"        # corruption -> clean re-tune
    assert report["winner"]["label"]
    # ... and the re-tune repaired the record on disk.
    repaired = TuneRecordStore(str(tmp_path))
    assert repaired.load(key) == report


def test_record_with_wrong_key_is_invalid(tmp_path):
    app, h = _tiny()
    report, _ = tune_or_load(
        app.nest, app.mapping_dim, SPEC, CONFIG, str(tmp_path),
        baseline_h=h)
    store = TuneRecordStore(str(tmp_path))
    other = "0" * 64
    store.store(other, report)     # stored under a key it doesn't match
    assert store.load(other) is None
    assert store.invalid == 1
