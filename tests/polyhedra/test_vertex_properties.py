"""Property-based tests for vertex enumeration."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import (
    Halfspace,
    box,
    bounding_box,
    enumerate_vertices,
    integer_points,
)


@st.composite
def cut_boxes(draw):
    lo = (draw(st.integers(-3, 0)), draw(st.integers(-3, 0)))
    hi = (lo[0] + draw(st.integers(1, 6)), lo[1] + draw(st.integers(1, 6)))
    p = box(lo, hi)
    for _ in range(draw(st.integers(0, 2))):
        a = [draw(st.integers(-2, 2)), draw(st.integers(-2, 2))]
        if a == [0, 0]:
            continue
        # keep a corner feasible so the polyhedron stays nonempty
        b = max(a[0] * lo[0] + a[1] * lo[1],
                a[0] * lo[0] + a[1] * hi[1]) + draw(st.integers(0, 4))
        p = p.with_constraint(Halfspace.of(a, b))
    return p


@given(cut_boxes())
@settings(max_examples=80, deadline=None)
def test_vertices_are_feasible(p):
    for v in enumerate_vertices(p):
        assert p.contains(v)


@given(cut_boxes())
@settings(max_examples=80, deadline=None)
def test_integer_points_inside_vertex_hull_box(p):
    """Every integer point lies within the vertex bounding box."""
    verts = enumerate_vertices(p)
    if not verts:
        return
    lo = [min(v[k] for v in verts) for k in range(2)]
    hi = [max(v[k] for v in verts) for k in range(2)]
    for pt in integer_points(p):
        for k in range(2):
            assert lo[k] <= pt[k] <= hi[k]


@given(cut_boxes())
@settings(max_examples=60, deadline=None)
def test_bounding_box_tight_for_integer_points(p):
    verts = enumerate_vertices(p)
    if not verts:
        return
    blo, bhi = bounding_box(p)
    pts = list(integer_points(p))
    for pt in pts:
        for k in range(2):
            assert blo[k] <= pt[k] <= bhi[k]


@given(cut_boxes())
@settings(max_examples=60, deadline=None)
def test_extreme_in_every_direction(p):
    """For any direction, some vertex maximizes it over the integer
    points (convexity: vertices dominate)."""
    verts = enumerate_vertices(p)
    pts = list(integer_points(p))
    if not verts or not pts:
        return
    for d in [(1, 0), (0, 1), (1, 1), (-1, 2)]:
        vmax = max(sum(Fraction(a) * b for a, b in zip(v, d))
                   for v in verts)
        pmax = max(sum(a * b for a, b in zip(pt, d)) for pt in pts)
        assert vmax >= pmax
