"""Unit + property tests for exact rational emptiness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import (
    Halfspace,
    Polyhedron,
    box,
    contains_integer_point,
    is_rationally_empty,
)


class TestUnit:
    def test_box_nonempty(self):
        assert not is_rationally_empty(box([0, 0], [3, 3]))

    def test_contradictory_bounds(self):
        p = box([0], [5]).with_constraint(Halfspace.of([-1], -10))
        assert is_rationally_empty(p)

    def test_constant_contradiction(self):
        p = Polyhedron([Halfspace.of([0, 0], -1)])
        assert is_rationally_empty(p)

    def test_thin_rational_slab_is_nonempty(self):
        """1/3 <= x <= 2/3 has rational points but no integer ones."""
        p = Polyhedron([Halfspace.of([3], 2), Halfspace.of([-3], -1)])
        assert not is_rationally_empty(p)
        assert not contains_integer_point(p)

    def test_empty_after_combination(self):
        # x + y <= 0 and x, y >= 1
        p = box([1, 1], [10, 10]).with_constraint(Halfspace.of([1, 1], 0))
        assert is_rationally_empty(p)

    def test_single_point(self):
        p = box([2, 3], [2, 3])
        assert not is_rationally_empty(p)


@st.composite
def random_2d(draw):
    lo = (draw(st.integers(-3, 1)), draw(st.integers(-3, 1)))
    hi = (lo[0] + draw(st.integers(0, 6)), lo[1] + draw(st.integers(0, 6)))
    p = box(lo, hi)
    for _ in range(draw(st.integers(0, 3))):
        a = [draw(st.integers(-3, 3)), draw(st.integers(-3, 3))]
        b = draw(st.integers(-6, 6))
        p = p.with_constraint(Halfspace.of(a, b))
    return p


@given(random_2d())
@settings(max_examples=120, deadline=None)
def test_integer_points_imply_rationally_nonempty(p):
    if contains_integer_point(p):
        assert not is_rationally_empty(p)


@given(random_2d())
@settings(max_examples=120, deadline=None)
def test_rationally_empty_implies_no_integer_points(p):
    if is_rationally_empty(p):
        assert not contains_integer_point(p)
