"""Unit tests for integer point enumeration."""

from repro.polyhedra import (
    Halfspace,
    Polyhedron,
    box,
    contains_integer_point,
    count_integer_points,
    integer_points,
)


class TestEnumeration:
    def test_box_count(self):
        assert count_integer_points(box([0, 0], [2, 3])) == 12

    def test_lexicographic_order(self):
        pts = list(integer_points(box([0, 0], [1, 1])))
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_simplex_count(self):
        # x,y >= 0, x + y <= 3: 10 points
        p = box([0, 0], [5, 5]).with_constraint(Halfspace.of([1, 1], 3))
        assert count_integer_points(p) == 10

    def test_members_satisfy_constraints(self):
        p = box([-2, -2], [2, 2]).with_constraint(Halfspace.of([1, -1], 1))
        for pt in integer_points(p):
            assert p.contains(pt)

    def test_empty(self):
        p = box([0], [5]).with_constraint(Halfspace.of([-1], -10))
        assert not contains_integer_point(p)
        assert count_integer_points(p) == 0

    def test_thin_slab_no_integer_points(self):
        """Rational shadow nonempty, integer content empty."""
        # 1/3 <= x <= 2/3
        p = Polyhedron([Halfspace.of([3], 2), Halfspace.of([-3], -1)])
        assert not contains_integer_point(p)

    def test_skewed_region_matches_bruteforce(self):
        p = box([-3, -3], [3, 3]).with_constraint(
            Halfspace.of([2, 3], 4)).with_constraint(
            Halfspace.of([-1, 2], 2))
        got = set(integer_points(p))
        want = {
            (x, y)
            for x in range(-3, 4) for y in range(-3, 4)
            if 2 * x + 3 * y <= 4 and -x + 2 * y <= 2
        }
        assert got == want
