"""Unit tests for half-space polyhedra."""

from fractions import Fraction

import pytest

from repro.linalg import RatMat
from repro.polyhedra import Halfspace, Polyhedron, box


class TestHalfspace:
    def test_satisfied(self):
        c = Halfspace.of([1, 1], 3)
        assert c.satisfied_by((1, 2))
        assert not c.satisfied_by((2, 2))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Halfspace.of([1, 0], 0).satisfied_by((1, 2, 3))

    def test_normalized_scales_to_primitive(self):
        c = Halfspace.of(["2/3", "4/3"], 2).normalized()
        assert c.a == (Fraction(1), Fraction(2))
        assert c.b == Fraction(3)

    def test_normalized_tautology(self):
        c = Halfspace.of([0, 0], 5).normalized()
        assert c.is_trivial()

    def test_normalized_infeasible(self):
        c = Halfspace.of([0, 0], -1).normalized()
        assert c.is_infeasible_constant()


class TestPolyhedron:
    def test_box_contains(self):
        p = box([0, 0], [3, 4])
        assert p.contains((0, 0)) and p.contains((3, 4))
        assert not p.contains((4, 0)) and not p.contains((-1, 2))

    def test_intersect(self):
        p = box([0, 0], [5, 5]).intersect(box([3, 3], [9, 9]))
        assert p.contains((4, 4))
        assert not p.contains((2, 2))

    def test_with_constraint(self):
        p = box([0, 0], [5, 5]).with_constraint(Halfspace.of([1, 1], 4))
        assert p.contains((2, 2))
        assert not p.contains((3, 3))

    def test_normalized_dedupes(self):
        c = Halfspace.of([1, 0], 2)
        p = Polyhedron([c, Halfspace.of([2, 0], 4), c])
        assert len(p.normalized().constraints) == 1

    def test_obviously_empty(self):
        p = Polyhedron([Halfspace.of([0, 0], -1)])
        assert p.is_obviously_empty()

    def test_empty_constraint_list_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron([])

    def test_from_system(self):
        p = Polyhedron.from_system([[1, 0], [-1, 0]], [3, 0])
        assert p.contains((2, 100))
        assert not p.contains((4, 0))

    def test_preimage_skew(self):
        """Points of T(box) pulled back through T^{-1} land in the box."""
        t_inv = RatMat([[1, 0], [-1, 1]])  # inverse of [[1,0],[1,1]]
        p = box([0, 0], [3, 3])
        skewed = p.preimage(t_inv)
        # y = T x for x=(3,3) is (3,6)
        assert skewed.contains((3, 6))
        assert not skewed.contains((3, 7))
        assert skewed.contains((0, 0))

    def test_preimage_with_shift(self):
        p = box([0], [10])
        q = p.preimage(RatMat([[1]]), shift=[5])
        assert q.contains((5,))
        assert not q.contains((6,))
