"""Unit tests for Fourier-Motzkin elimination and loop bounds."""

import pytest

from repro.polyhedra import (
    Halfspace,
    Polyhedron,
    box,
    eliminate_variable,
    loop_bounds,
    project_onto_prefix,
)


class TestEliminate:
    def test_box_projection(self):
        p = box([0, 0], [3, 7])
        q = eliminate_variable(p, 1)
        assert q.dim == 1
        assert q.contains((0,)) and q.contains((3,))
        assert not q.contains((4,))

    def test_triangle_shadow(self):
        # x >= 0, y >= 0, x + y <= 4 projected on x: [0, 4]
        p = box([0, 0], [10, 10]).with_constraint(Halfspace.of([1, 1], 4))
        q = eliminate_variable(p, 1)
        assert q.contains((4,))
        assert not q.contains((5,))

    def test_out_of_range_var(self):
        with pytest.raises(ValueError):
            eliminate_variable(box([0, 0], [1, 1]), 2)

    def test_project_onto_prefix(self):
        p = box([0, 0, 0], [2, 3, 4])
        q = project_onto_prefix(p, 1)
        assert q.dim == 1
        assert q.contains((2,)) and not q.contains((3,))

    def test_elimination_order_independent_shadow(self):
        p = box([0, 0, 0], [5, 5, 5]).with_constraint(
            Halfspace.of([1, 1, 1], 7))
        a = eliminate_variable(eliminate_variable(p, 2), 1)
        b = project_onto_prefix(p, 1)
        for x in range(-1, 8):
            assert a.contains((x,)) == b.contains((x,))


class TestLoopBounds:
    def test_box_bounds(self):
        bounds = loop_bounds(box([1, 2], [4, 9]))
        assert bounds[0].evaluate(()) == (1, 4)
        assert bounds[1].evaluate((1,)) == (2, 9)

    def test_triangular_domain(self):
        # 0 <= i <= 5, 0 <= j <= i  (lower-triangular loop)
        p = Polyhedron([
            Halfspace.of([1, 0], 5), Halfspace.of([-1, 0], 0),
            Halfspace.of([0, -1], 0), Halfspace.of([-1, 1], 0),
        ])
        bounds = loop_bounds(p)
        assert bounds[0].evaluate(()) == (0, 5)
        assert bounds[1].evaluate((3,)) == (0, 3)
        assert bounds[1].evaluate((0,)) == (0, 0)

    def test_rational_bounds_rounded(self):
        # 2j <= i means j <= floor(i/2)
        p = Polyhedron([
            Halfspace.of([1, 0], 7), Halfspace.of([-1, 0], 0),
            Halfspace.of([0, -1], 0), Halfspace.of([-1, 2], 0),
        ])
        bounds = loop_bounds(p)
        assert bounds[1].evaluate((5,)) == (0, 2)
        assert bounds[1].evaluate((4,)) == (0, 2)
        assert bounds[1].evaluate((1,)) == (0, 0)

    def test_evaluate_wrong_arity(self):
        bounds = loop_bounds(box([0, 0], [1, 1]))
        with pytest.raises(ValueError):
            bounds[1].evaluate(())

    def test_unbounded_raises(self):
        p = Polyhedron([Halfspace.of([1], 5)])  # no lower bound
        with pytest.raises(ValueError):
            loop_bounds(p)[0].evaluate(())

    def test_bounds_reference_outer_only(self):
        bounds = loop_bounds(box([0, 0, 0], [2, 2, 2]))
        for k, b in enumerate(bounds):
            for coeffs, _ in b.lowers + b.uppers:
                assert len(coeffs) == k
