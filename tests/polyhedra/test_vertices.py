"""Unit tests for vertex enumeration and bounding boxes."""

from fractions import Fraction

import pytest

from repro.linalg import RatMat
from repro.polyhedra import (
    Halfspace,
    bounding_box,
    box,
    enumerate_vertices,
    image_bounding_box,
)


class TestVertices:
    def test_unit_square(self):
        verts = set(enumerate_vertices(box([0, 0], [1, 1])))
        assert verts == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_triangle(self):
        p = box([0, 0], [10, 10]).with_constraint(Halfspace.of([1, 1], 2))
        verts = set(enumerate_vertices(p))
        assert (Fraction(0), Fraction(0)) in verts
        assert (Fraction(2), Fraction(0)) in verts
        assert (Fraction(0), Fraction(2)) in verts
        assert len(verts) == 3

    def test_redundant_constraints_merged(self):
        p = box([0, 0], [1, 1]).with_constraint(Halfspace.of([1, 1], 2))
        assert len(enumerate_vertices(p)) == 4

    def test_3d_cube(self):
        assert len(enumerate_vertices(box([0, 0, 0], [1, 1, 1]))) == 8


class TestBoundingBox:
    def test_box_is_its_own_bbox(self):
        assert bounding_box(box([1, 2], [5, 9])) == ((1, 2), (5, 9))

    def test_fractional_vertices_rounded_inward(self):
        # vertices at x = 1/2 and 7/2: integer bbox [1, 3]
        p = Halfspace.of([2], 7)
        q = Halfspace.of([-2], -1)
        from repro.polyhedra import Polyhedron
        assert bounding_box(Polyhedron([p, q])) == ((1,), (3,))

    def test_empty_raises(self):
        from repro.polyhedra import Polyhedron
        p = Polyhedron([Halfspace.of([1], -1), Halfspace.of([-1], -1)])
        with pytest.raises(ValueError):
            bounding_box(p)


class TestImageBoundingBox:
    def test_tile_space_extent(self):
        """Image of a box through a tiling matrix H."""
        from repro.linalg import from_rows
        h = from_rows([["1/2", 0], [0, "1/3"]])
        lo, hi = image_bounding_box(box([0, 0], [9, 9]), h)
        assert lo == (0, 0)
        assert hi == (Fraction(9, 2), Fraction(3))

    def test_skew_image(self):
        t = RatMat([[1, 0], [1, 1]])
        lo, hi = image_bounding_box(box([0, 0], [2, 3]), t)
        assert lo == (0, 0)
        assert hi == (2, 5)
