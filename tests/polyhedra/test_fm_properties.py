"""Property-based tests: FM projections and loop bounds vs brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import (
    Halfspace,
    Polyhedron,
    box,
    eliminate_variable,
    integer_points,
    loop_bounds,
)


@st.composite
def bounded_2d_polyhedra(draw):
    """A 2D box intersected with up to 3 random half-planes."""
    lo = [draw(st.integers(-4, 0)), draw(st.integers(-4, 0))]
    hi = [draw(st.integers(1, 5)), draw(st.integers(1, 5))]
    p = box(lo, hi)
    n_extra = draw(st.integers(0, 3))
    for _ in range(n_extra):
        a = [draw(st.integers(-3, 3)), draw(st.integers(-3, 3))]
        b = draw(st.integers(-4, 8))
        p = p.with_constraint(Halfspace.of(a, b))
    return p, (tuple(lo), tuple(hi))


@given(bounded_2d_polyhedra())
@settings(max_examples=100, deadline=None)
def test_projection_is_exact_shadow(data):
    """x is in the projection iff some rational y makes (x, y) feasible.

    We verify the integer-relaxed direction both ways on a grid: any
    feasible (x, y) implies x in the shadow, and any x outside the
    shadow has no feasible partner."""
    p, (lo, hi) = data
    q = eliminate_variable(p, 1)
    for x in range(lo[0] - 1, hi[0] + 2):
        partner = any(
            p.contains((x, y)) for y in range(lo[1] - 1, hi[1] + 2)
        )
        if partner:
            assert q.contains((x,))
        if not q.contains((x,)):
            assert not partner


@given(bounded_2d_polyhedra())
@settings(max_examples=100, deadline=None)
def test_loop_bounds_cover_all_integer_points(data):
    """Walking the derived bounds + membership check finds exactly the
    brute-force integer point set (in the same lexicographic order)."""
    p, (lo, hi) = data
    want = [
        (x, y)
        for x in range(lo[0], hi[0] + 1)
        for y in range(lo[1], hi[1] + 1)
        if p.contains((x, y))
    ]
    got = list(integer_points(p))
    assert got == want


@given(bounded_2d_polyhedra())
@settings(max_examples=60, deadline=None)
def test_bounds_never_cut_feasible_points(data):
    """The FM bound interval at each level contains every feasible value."""
    p, (lo, hi) = data
    pts = list(integer_points(p))
    if not pts:
        return
    bounds = loop_bounds(p)
    b0 = bounds[0].evaluate(())
    for x, y in pts:
        assert b0[0] <= x <= b0[1]
        l1, u1 = bounds[1].evaluate((x,))
        assert l1 <= y <= u1
