"""The native backend is bitwise-identical to the dense engine.

Every run through a compiled ``.so`` is cross-checked at ``tol=0.0``
against the numpy dense engine (itself bitwise-checked against the
sparse interpreters): the emitted C performs exactly the IEEE-754
operations of ``kernel_np`` in the same order, under
``-ffp-contract=off -fno-fast-math``.  The suite also pins down the
degradation contract — no toolchain, a broken toolchain, a
non-float64 run, or an expression-less nest must all fall back to the
numpy kernels without changing a single bit of output.
"""

import dataclasses
import functools
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import adi, heat, jacobi, sor
from repro.artifacts import ArtifactCache
from repro.native import kexpr
from repro.native.compile import (
    NativeCompileError,
    compile_shared_object,
    find_compiler,
)
from repro.native.engine import build_native_library, native_key
from repro.runtime import (
    ClusterSpec,
    DistributedRun,
    TiledProgram,
    arrays_match,
    dense_to_cells,
)

SPEC = ClusterSpec()


@functools.lru_cache(maxsize=1)
def _cc_usable():
    """True iff a working C compiler is present (probe compile).

    Under ``CC=/bin/false`` (the supported degradation drill) the
    bitwise suites skip and the fallback suites still run, so the
    whole file stays green without a toolchain.
    """
    cc = find_compiler()
    if cc is None:
        return False
    try:
        with tempfile.TemporaryDirectory() as tmp:
            compile_shared_object(
                cc, "int repro_probe(void) { return 0; }\n",
                os.path.join(tmp, "probe.so"))
    except NativeCompileError:
        return False
    return True


requires_cc = pytest.mark.skipif(
    not _cc_usable(), reason="no working C compiler")

# The six reference configs (see tests/artifacts/test_roundtrip.py):
# all three CLI apps plus heat, both tile shapes, every mapping
# dimension the paper uses, and a partial-tile case.
CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-partial-tiles"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
]


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """One shared on-disk cache: each config compiles at most once."""
    return ArtifactCache(str(tmp_path_factory.mktemp("native-cache")))


def _build(prog, cache):
    lib = build_native_library(prog, cache=cache)
    assert lib.available, lib.fallback_reason
    return lib


class TestNativeDenseBitwise:
    @pytest.mark.parametrize("app,h,mdim", CONFIGS)
    @requires_cc
    def test_matches_dense_engine(self, cache, app, h, mdim):
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        lib = _build(prog, cache)
        ref_fields, ref_stats = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        fields, stats = DistributedRun(prog, SPEC).execute_dense(
            app.init_value, native=lib)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)
        # same schedule, same events, same simulated measurements
        assert stats.makespan == ref_stats.makespan
        assert stats.clocks == ref_stats.clocks
        assert stats.total_messages == ref_stats.total_messages
        assert stats.total_elements == ref_stats.total_elements


class TestNativeParallelBitwise:
    """Workers call the kernels over the same shared LDS byte layout."""

    @pytest.mark.parametrize("app,h,mdim", CONFIGS)
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["blocking", "overlap"])
    @requires_cc
    def test_matches_dense_engine(self, cache, app, h, mdim, overlap):
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        lib = _build(prog, cache)
        ref_fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        run = DistributedRun(prog, SPEC)
        fields, stats = run.execute_parallel(
            app.init_value, workers=2, native=lib, overlap=overlap)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)

    @pytest.mark.parametrize("protocol", ["eager", "rendezvous", "spec"])
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["blocking", "overlap"])
    @requires_cc
    def test_protocols(self, cache, protocol, overlap):
        if protocol == "rendezvous":
            # SOR's multi-tag schedule deadlocks under rendezvous (the
            # HB certifier proves it); use jacobi's rendezvous-safe
            # single-tag schedule, as the parallel-engine suite does.
            app = jacobi.app(3, 5, 5)
            prog = TiledProgram(app.nest, jacobi.h_rectangular(2, 3, 3),
                                mapping_dim=0)
        else:
            app = sor.app(4, 6)
            prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                                mapping_dim=2)
        lib = _build(prog, cache)
        ref_fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        fields, _ = DistributedRun(prog, SPEC).execute_parallel(
            app.init_value, workers=2, native=lib,
            protocol=protocol, overlap=overlap)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)


class TestNativeRandomTilings:
    @given(tx=st.integers(2, 4), ty=st.integers(2, 5),
           tz=st.integers(2, 5))
    @settings(max_examples=6, deadline=None)
    @requires_cc
    def test_sor_tilings_bitwise(self, tx, ty, tz):
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(tx, ty, tz),
                            mapping_dim=2)
        lib = build_native_library(prog)
        assert lib.available, lib.fallback_reason
        ref_fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value)
        fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value, native=lib)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)


def _fallback_still_bitwise(app, prog, lib):
    """An unavailable library must be a transparent no-op."""
    assert not lib.available
    assert lib.status == "fallback"
    ref_fields, _ = DistributedRun(prog, SPEC).execute_dense(
        app.init_value)
    fields, _ = DistributedRun(prog, SPEC).execute_dense(
        app.init_value, native=lib)
    assert arrays_match(dense_to_cells(fields),
                        dense_to_cells(ref_fields), tol=0.0)


class TestFallback:
    def test_no_compiler(self, monkeypatch, tmp_path):
        # $CC pointing at a nonexistent driver disables discovery
        monkeypatch.setenv("CC", "no-such-compiler-xyzzy")
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        lib = build_native_library(
            prog, cache=ArtifactCache(str(tmp_path)))
        assert "no C compiler" in lib.fallback_reason
        _fallback_still_bitwise(app, prog, lib)

    def test_broken_compiler(self, monkeypatch, tmp_path):
        # CC=/bin/false: discovery succeeds, every build fails
        if not os.path.exists("/bin/false"):
            pytest.skip("/bin/false not available")
        monkeypatch.setenv("CC", "/bin/false")
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        lib = build_native_library(
            prog, cache=ArtifactCache(str(tmp_path)))
        assert "compile failed" in lib.fallback_reason
        _fallback_still_bitwise(app, prog, lib)

    def test_nest_without_exprs(self, tmp_path):
        # stripping the symbolic exprs leaves nothing to compile
        app = sor.app(4, 6)
        nest = dataclasses.replace(
            app.nest,
            statements=tuple(dataclasses.replace(s, expr=None)
                             for s in app.nest.statements))
        prog = TiledProgram(nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        lib = build_native_library(
            prog, cache=ArtifactCache(str(tmp_path)))
        assert lib.status == "fallback"
        assert "no symbolic" in lib.fallback_reason
        _fallback_still_bitwise(app, prog, lib)

    @requires_cc
    def test_non_float64_uses_numpy(self, cache):
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        lib = _build(prog, cache)
        assert lib.runtime(prog, app.init_value, np.float32) is None
        fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value, dtype=np.float32, native=lib)
        ref_fields, _ = DistributedRun(prog, SPEC).execute_dense(
            app.init_value, dtype=np.float32)
        assert arrays_match(dense_to_cells(fields),
                            dense_to_cells(ref_fields), tol=0.0)


class TestCache:
    """Content-addressed ``.so`` reuse and stale-object invalidation."""

    @requires_cc
    def test_cold_miss_then_warm_hit(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        cold = build_native_library(prog, cache=cache)
        assert cold.status == "miss"
        assert os.path.exists(cold.so_path)
        # the source is stored next to the object for auditability
        assert os.path.exists(cold.so_path[:-3] + ".c")

        warm = build_native_library(
            TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                         mapping_dim=2),
            cache=cache)
        assert warm.status == "hit"
        assert warm.key == cold.key
        assert warm.so_path == cold.so_path
        stats = cache.stats()
        assert stats["native_misses"] == 1
        assert stats["native_hits"] == 1

    @requires_cc
    def test_warm_hit_skips_compiler(self, tmp_path, monkeypatch):
        cache = ArtifactCache(str(tmp_path))
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        build_native_library(prog, cache=cache)

        def boom(*a, **k):
            raise AssertionError("compiler ran on the warm path")

        monkeypatch.setattr(
            "repro.native.engine.compile_shared_object", boom)
        warm = build_native_library(
            TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                         mapping_dim=2),
            cache=cache)
        assert warm.status == "hit"
        assert warm.available

    @requires_cc
    def test_edited_kernel_never_served_stale(self, tmp_path):
        """The key-sensitivity regression for the PR-8 cache design.

        ``content_key`` deliberately excludes kernels (geometry-equal
        artifacts stay shareable); the native key therefore folds in
        the kernel-source hash, so a nest whose *expression* changed
        can never be handed the old shared object.
        """
        from repro.artifacts.hashing import content_key

        cache = ArtifactCache(str(tmp_path))
        app = sor.app(4, 6)
        h = sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        lib = build_native_library(prog, cache=cache)
        assert lib.status == "miss"

        # same geometry, different kernel expression
        edited_nest = dataclasses.replace(
            app.nest,
            statements=tuple(
                dataclasses.replace(
                    s, expr=kexpr.KMul(kexpr.KConst(2.0), s.expr))
                for s in app.nest.statements))
        edited = TiledProgram(edited_nest, h, mapping_dim=2)
        assert (content_key(edited_nest, h, 2)
                == content_key(app.nest, h, 2))

        lib2 = build_native_library(edited, cache=cache)
        assert lib2.status == "miss"        # NOT a stale hit
        assert lib2.key != lib.key
        assert lib2.so_path != lib.so_path

    @requires_cc
    def test_key_sensitivity(self):
        assert (native_key("c", "s", "f")
                != native_key("c2", "s", "f"))
        assert (native_key("c", "s", "f")
                != native_key("c", "s2", "f"))
        assert (native_key("c", "s", "f")
                != native_key("c", "s", "f2"))
        assert native_key("c", "s", "f") == native_key("c", "s", "f")

    @requires_cc
    def test_compiler_change_invalidates(self, tmp_path, monkeypatch):
        cache = ArtifactCache(str(tmp_path))
        app = sor.app(4, 6)
        prog = TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                            mapping_dim=2)
        lib = build_native_library(prog, cache=cache)
        monkeypatch.setattr(
            "repro.native.engine.compiler_fingerprint",
            lambda cc: "deadbeefdeadbeef")
        lib2 = build_native_library(
            TiledProgram(app.nest, sor.h_rectangular(2, 3, 4),
                         mapping_dim=2),
            cache=cache)
        assert lib2.key != lib.key
        assert lib2.status == "miss"


class TestArtifactKernelDrift:
    """Geometry-equal artifact + edited kernels => refuse to load."""

    def test_restore_refuses_kernel_drift(self):
        from repro.artifacts.format import (
            ArtifactError,
            restore_program,
            snapshot_program,
        )

        app = sor.app(4, 6)
        h = sor.h_rectangular(2, 3, 4)
        prog = TiledProgram(app.nest, h, mapping_dim=2)
        payload = snapshot_program(prog, 2)

        edited_nest = dataclasses.replace(
            app.nest,
            statements=tuple(
                dataclasses.replace(
                    s, expr=kexpr.KMul(kexpr.KConst(2.0), s.expr))
                for s in app.nest.statements))
        with pytest.raises(ArtifactError, match="kernel drift"):
            restore_program(edited_nest, h, payload)
