"""Unit coverage for the C emitter, kexpr rendering, and TV05.

TV05 re-parses the emitted translation unit with an independent
grammar and proves it against the symbolic ``KExpr`` trees — these
tests drive both directions: the genuine TU validates cleanly for
every app, and each class of corruption (constant bits, operator
structure, slot wiring, write target, arity) raises a TV05 error.
"""

import dataclasses
import re

import numpy as np
import pytest

from repro.analysis.transval import transval_report
from repro.analysis.transval.kernels import (
    check_native_tu,
    parse_c_double_expr,
)
from repro.apps import adi, heat, jacobi, sor
from repro.native import kexpr
from repro.native.emit import (
    NativeEmitError,
    emit_translation_unit,
)
from repro.runtime import TiledProgram, read_dependences

APPS = [
    pytest.param(sor.app(4, 6), id="sor"),
    pytest.param(jacobi.app(3, 5, 5), id="jacobi"),
    pytest.param(adi.app(4, 5), id="adi"),
    pytest.param(heat.app(4, 8), id="heat"),
]


def _arrays(app):
    return tuple(sorted({s.write.array for s in app.nest.statements}))


class TestEmit:
    @pytest.mark.parametrize("app", APPS)
    def test_one_function_per_statement(self, app):
        plan = emit_translation_unit(app.nest, _arrays(app))
        assert plan.source.count("static double F_") == len(
            app.nest.statements)
        assert "void repro_run(" in plan.source

    @pytest.mark.parametrize("app", APPS)
    def test_slot_counts_match_dependences(self, app):
        plan = emit_translation_unit(app.nest, _arrays(app))
        deps = read_dependences(app.nest)
        n_dep = sum(1 for ds in deps for d in ds if d is not None)
        n_pure = sum(1 for ds in deps for d in ds if d is None)
        assert plan.n_dep_slots == n_dep
        assert plan.n_pure_slots == n_pure
        assert len(plan.slots) == n_dep + n_pure

    def test_deterministic_hash(self):
        app = sor.app(4, 6)
        p1 = emit_translation_unit(app.nest, _arrays(app))
        p2 = emit_translation_unit(app.nest, _arrays(app))
        assert p1.source == p2.source
        assert p1.source_hash == p2.source_hash

    def test_hash_tracks_expression(self):
        app = sor.app(4, 6)
        p1 = emit_translation_unit(app.nest, _arrays(app))
        nest = dataclasses.replace(
            app.nest,
            statements=tuple(
                dataclasses.replace(
                    s, expr=kexpr.KMul(kexpr.KConst(2.0), s.expr))
                for s in app.nest.statements))
        p2 = emit_translation_unit(nest, _arrays(app))
        assert p1.source_hash != p2.source_hash

    def test_missing_expr_raises(self):
        app = sor.app(4, 6)
        nest = dataclasses.replace(
            app.nest,
            statements=tuple(dataclasses.replace(s, expr=None)
                             for s in app.nest.statements))
        with pytest.raises(NativeEmitError, match="no symbolic"):
            emit_translation_unit(nest, _arrays(app))


class TestKexprRendering:
    def test_hex_constants_roundtrip(self):
        # every double constant must survive C parsing bit-for-bit
        for value in (0.25, 1.0 / 3.0, 0.1, -2.5e-17, 1e300):
            text = kexpr.const_to_c(value)
            node = parse_c_double_expr(text, [])
            assert node[0] == "const"
            assert (np.float64(node[1]).tobytes()
                    == np.float64(value).tobytes())

    def test_to_c_parses_back(self):
        v = kexpr.reads(3)
        expr = kexpr.KAdd(
            kexpr.KMul(kexpr.KConst(0.25),
                       kexpr.KAdd(v[0], kexpr.KNeg(v[1]))),
            kexpr.KDiv(v[2], kexpr.KConst(3.0)))
        text = kexpr.to_c(expr, {q: f"v{q}" for q in range(3)})
        node = parse_c_double_expr(text, ["v0", "v1", "v2"])
        assert node == (
            "+",
            ("*", ("const", 0.25), ("+", ("read", 0),
                                    ("neg", ("read", 1)))),
            ("/", ("read", 2), ("const", 3.0)))


class TestTV05:
    @pytest.mark.parametrize("app", APPS)
    def test_clean_on_reference_apps(self, app):
        diags = check_native_tu(app.nest, _arrays(app))
        assert diags == []

    def test_runs_inside_transval_report(self):
        app = sor.app(4, 6)
        report = transval_report(app.nest, sor.h_rectangular(2, 3, 4),
                                 mapping_dim=2)
        assert report.ok
        assert "transval-kernels" in report.passes_run

    def _tu(self):
        app = sor.app(4, 6)
        return app, emit_translation_unit(app.nest, _arrays(app)).source

    def _errors(self, app, text):
        diags = check_native_tu(app.nest, _arrays(app), text)
        return [d for d in diags if d.code == "TV05"]

    def test_flipped_constant_bit_detected(self):
        app, src = self._tu()
        bad = src.replace("0x1", "0x2", 1)
        assert self._errors(app, bad)

    def test_reassociated_operator_detected(self):
        app, src = self._tu()
        bad = re.sub(
            r"return (.*?);",
            lambda m: "return " + m.group(1).replace("+", "-", 1) + ";",
            src, count=1)
        assert self._errors(app, bad)

    def test_swapped_read_slot_detected(self):
        app, src = self._tu()
        bad = re.sub(r"rb0\[i_\]", "rb1[i_]", src, count=1)
        assert self._errors(app, bad)

    def test_wrong_write_buffer_detected(self):
        app, src = self._tu()
        bad = re.sub(r"b_(\w+)\[wbase", "b_WRONG[wbase", src, count=1)
        assert self._errors(app, bad)

    def test_missing_call_detected(self):
        app, src = self._tu()
        bad = re.sub(
            r"b_\w+\[wbase\[i_\]\s*\+\s*shift\]\s*=\s*F_\w+\(.*?\);",
            ";", src, count=1, flags=re.S)
        assert self._errors(app, bad)

    def test_nest_without_exprs_is_silent(self):
        # no native TU => numpy fallback, nothing to prove, no noise
        app = sor.app(4, 6)
        nest = dataclasses.replace(
            app.nest,
            statements=tuple(dataclasses.replace(s, expr=None)
                             for s in app.nest.statements))
        assert check_native_tu(nest, _arrays(app)) == []
