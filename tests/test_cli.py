"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_sor_info(self, capsys):
        rc = main(["info", "--app", "sor", "-s", "6", "8",
                   "-t", "2", "3", "4", "--shape", "nonrect"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CC vector" in out
        assert "tile volume     : 24" in out

    def test_wrong_size_count(self):
        with pytest.raises(SystemExit):
            main(["info", "--app", "sor", "-s", "6",
                  "-t", "2", "3", "4"])

    def test_unknown_shape(self):
        with pytest.raises(SystemExit):
            main(["info", "--app", "sor", "-s", "6", "8",
                  "-t", "2", "3", "4", "--shape", "nr3"])


class TestCodegen:
    def test_mpi_kind(self, capsys):
        rc = main(["codegen", "--app", "adi", "-s", "6", "8",
                   "-t", "2", "3", "3", "--shape", "nr3", "--kind", "mpi"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MPI_Send" in out

    def test_sequential_kind(self, capsys):
        rc = main(["codegen", "--app", "jacobi", "-s", "4", "6", "6",
                   "-t", "2", "4", "3", "--shape", "nonrect",
                   "--kind", "sequential"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "for (long jS0" in out

    def test_python_kind_is_loadable(self, capsys):
        rc = main(["codegen", "--app", "sor", "-s", "6", "8",
                   "-t", "2", "3", "4", "--shape", "rect",
                   "--kind", "python"])
        out = capsys.readouterr().out
        assert rc == 0
        from repro.codegen import load_generated_module
        mod = load_generated_module(out)
        assert hasattr(mod, "SCHEDULES")


class TestSimulate:
    def test_prints_speedup(self, capsys):
        rc = main(["simulate", "--app", "sor", "-s", "6", "8",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--ranks", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out
        assert "efficiency" in out

    def test_overlap_flag(self, capsys):
        rc = main(["simulate", "--app", "sor", "-s", "6", "8",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--overlap"])
        assert rc == 0


class TestVerify:
    def test_verified_exit_zero(self, capsys):
        rc = main(["verify", "--app", "adi", "-s", "4", "5",
                   "-t", "2", "3", "3", "--shape", "nr3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VERIFIED" in out
        assert "array X" in out and "array B" in out

    def test_sor_nonrect(self, capsys):
        rc = main(["verify", "--app", "sor", "-s", "4", "6",
                   "-t", "2", "3", "4", "--shape", "nonrect"])
        assert rc == 0


class TestFigure:
    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure", "nonsense"])

    def test_rejects_non_figure_attribute(self):
        with pytest.raises(SystemExit):
            main(["figure", "FigureResult"])
