"""Unit tests for the closed-form makespan prediction."""

import pytest

from repro.apps import sor
from repro.polyhedra import box
from repro.runtime import ClusterSpec
from repro.schedule import predict_makespan
from repro.tiling import TilingTransformation

SOR_DEPS_SKEWED = [(0, 1, 0), (0, 0, 1), (1, 0, 2), (1, 1, 1), (1, 1, 2)]


@pytest.fixture(scope="module")
def setting():
    h = sor.h_nonrectangular(3, 4, 5)
    app = sor.app(9, 12)
    tt = TilingTransformation(h, app.nest.domain)
    return tt, ClusterSpec()


class TestPrediction:
    def test_components_positive(self, setting):
        tt, spec = setting
        pred = predict_makespan(tt, SOR_DEPS_SKEWED, 2, spec)
        assert pred.steps > 0
        assert pred.per_step_compute > 0
        assert pred.per_step_comm > 0
        assert pred.total == pred.steps * (
            pred.per_step_compute + pred.per_step_comm)

    def test_steps_equal_schedule_length(self, setting):
        tt, spec = setting
        from repro.schedule import schedule_length
        pred = predict_makespan(tt, SOR_DEPS_SKEWED, 2, spec)
        assert pred.steps == schedule_length(tt)

    def test_compute_term_is_tile_volume(self, setting):
        tt, spec = setting
        pred = predict_makespan(tt, SOR_DEPS_SKEWED, 2, spec)
        assert abs(pred.per_step_compute
                   - spec.compute_time(tt.tile_volume())) < 1e-15

    def test_multi_array_scales_comm(self, setting):
        tt, spec = setting
        p1 = predict_makespan(tt, SOR_DEPS_SKEWED, 2, spec, arrays=1)
        p2 = predict_makespan(tt, SOR_DEPS_SKEWED, 2, spec, arrays=2)
        assert p2.per_step_comm > p1.per_step_comm

    def test_prediction_brackets_simulation(self, setting):
        """The model should land within a small factor of the DES —
        it ignores boundary clipping and fill/drain, nothing else."""
        tt, spec = setting
        from repro.runtime import DistributedRun, TiledProgram
        app = sor.app(9, 12)
        prog = TiledProgram(app.nest, sor.h_nonrectangular(3, 4, 5),
                            mapping_dim=2)
        sim = DistributedRun(prog, spec).simulate()
        pred = predict_makespan(prog.tiling, app.nest.dependences,
                                2, spec)
        ratio = pred.total / sim.makespan
        assert 0.3 < ratio < 4.0, f"model/sim ratio {ratio}"
