"""§4 schedule-length identities checked against the *simulated* system.

The paper derives, per app, the exact step-count advantage of the
non-rectangular tiling (e.g. SOR: M/z fewer steps).  Here we check the
same gap emerges from the enumerated tile space — the wavefront count of
the actual tile graph, not just the closed-form ``floor(H j_max)``.
"""

import pytest

from repro.apps import adi, jacobi, sor
from repro.schedule import LinearSchedule
from repro.tiling import TilingTransformation


def _steps(nest, h):
    tt = TilingTransformation(h, nest.domain)
    return LinearSchedule(tt).length()


class TestWavefrontGaps:
    def test_sor_nonrect_fewer_steps(self):
        app = sor.app(12, 12)
        s_r = _steps(app.nest, sor.h_rectangular(3, 4, 4))
        s_nr = _steps(app.nest, sor.h_nonrectangular(3, 4, 4))
        assert s_nr < s_r
        # §4.1: the gap is about M/z wavefronts
        assert s_r - s_nr == pytest.approx(12 / 4, abs=1.1)

    def test_jacobi_nonrect_fewer_steps(self):
        app = jacobi.app(8, 10, 10)
        s_r = _steps(app.nest, jacobi.h_rectangular(2, 4, 4))
        s_nr = _steps(app.nest, jacobi.h_nonrectangular(2, 4, 4))
        assert s_nr < s_r
        # §4.2: gap about (T+I)/(2x)
        assert s_r - s_nr == pytest.approx((8 + 10) / 4, abs=1.6)

    def test_adi_ordering(self):
        app = adi.app(8, 9)
        s_r = _steps(app.nest, adi.h_rectangular(2, 3, 3))
        s_1 = _steps(app.nest, adi.h_nr1(2, 3, 3))
        s_2 = _steps(app.nest, adi.h_nr2(2, 3, 3))
        s_3 = _steps(app.nest, adi.h_nr3(2, 3, 3))
        # §4.3: t_nr3 < t_nr1 = t_nr2 < t_r
        assert s_3 < s_1 <= s_r
        assert s_3 < s_2 <= s_r
        assert s_1 == s_2  # y = z symmetric factors

    def test_adi_nr3_gap_formula(self):
        app = adi.app(8, 9)
        s_r = _steps(app.nest, adi.h_rectangular(2, 3, 3))
        s_3 = _steps(app.nest, adi.h_nr3(2, 3, 3))
        # §4.3: gap about N/y + N/z
        assert s_r - s_3 == pytest.approx(9 / 3 + 9 / 3, abs=2.1)
