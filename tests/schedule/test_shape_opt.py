"""Unit tests for the Hodzic-Shang shape-optimality analysis."""

import pytest

from repro.apps import adi
from repro.schedule import analyze_shape, rank_shapes, row_cone_position

ADI_DEPS = [(1, 0, 0), (1, 1, 0), (1, 0, 1)]
J_MAX = (64, 128, 128)


class TestRowPosition:
    def test_interior(self):
        assert row_cone_position((1, 1, 1), ADI_DEPS) == "interior"

    def test_boundary(self):
        # (0,1,0) is orthogonal to (1,0,0) and (1,0,1)
        assert row_cone_position((0, 1, 0), ADI_DEPS) == "boundary"

    def test_outside(self):
        assert row_cone_position((-1, 0, 0), ADI_DEPS) == "outside"

    def test_fraction_rows(self):
        from fractions import Fraction
        row = (Fraction(1, 4), Fraction(-1, 8), Fraction(-1, 8))
        assert row_cone_position(row, ADI_DEPS) in ("boundary", "interior")


class TestAnalysis:
    def _candidates(self, x=8, y=16, z=16):
        return [
            ("rect", adi.h_rectangular(x, y, z)),
            ("nr1", adi.h_nr1(x, y, z)),
            ("nr2", adi.h_nr2(x, y, z)),
            ("nr3", adi.h_nr3(x, y, z)),
        ]

    def test_rect_first_row_interior(self):
        a = analyze_shape("rect", adi.h_rectangular(8, 16, 16),
                          ADI_DEPS, J_MAX)
        assert a.row_positions[0] == "interior"
        assert a.interior_rows == 1

    def test_nr3_all_rows_boundary_when_cubic(self):
        """With x = y = z the nr3 first row is parallel to the extreme
        ray (1,-1,-1): every row sits on the cone boundary."""
        a = analyze_shape("nr3", adi.h_nr3(16, 16, 16), ADI_DEPS, J_MAX)
        assert a.fully_boundary

    def test_nr3_interior_when_x_smaller(self):
        """Unequal factors tilt the first row into the interior —
        the shape is then cone-*derived* but not boundary-aligned."""
        a = analyze_shape("nr3", adi.h_nr3(8, 16, 16), ADI_DEPS, J_MAX)
        assert a.row_positions[0] == "interior"

    def test_ranking_matches_paper_ordering(self):
        ranked = rank_shapes(self._candidates(16, 16, 16), ADI_DEPS,
                             J_MAX)
        labels = [a.label for a in ranked]
        assert labels[0] == "nr3"
        assert labels[-1] == "rect"

    def test_theorem_shape(self):
        """[10]: among equal-volume cubic candidates the winner has no
        interior rows (boundary-aligned shapes are optimal)."""
        ranked = rank_shapes(self._candidates(16, 16, 16), ADI_DEPS,
                             J_MAX)
        best = ranked[0]
        assert best.interior_rows == 0

    def test_completion_steps_ordered(self):
        ranked = rank_shapes(self._candidates(16, 16, 16), ADI_DEPS,
                             J_MAX)
        steps = [a.completion_step for a in ranked]
        assert steps == sorted(steps)
