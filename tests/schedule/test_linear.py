"""Unit tests for the linear schedule Pi = [1,...,1]."""

import pytest

from repro.polyhedra import box
from repro.schedule import LinearSchedule, last_tile_time, schedule_length
from repro.tiling import TilingTransformation
from repro.tiling.shapes import rectangular_tiling


@pytest.fixture(scope="module")
def tiling():
    return TilingTransformation(rectangular_tiling([2, 3]),
                                box([0, 0], [5, 8]))


class TestSchedule:
    def test_step_is_coordinate_sum(self, tiling):
        s = LinearSchedule(tiling)
        assert s.step_of((2, 1)) == 3

    def test_wavefronts_partition_tiles(self, tiling):
        s = LinearSchedule(tiling)
        steps = s.steps()
        total = sum(len(v) for v in steps.values())
        assert total == len(tiling.enumerate_tiles())

    def test_length(self, tiling):
        # tiles: 3 x 3 grid; steps 0..4
        assert schedule_length(tiling) == 5

    def test_max_parallelism(self, tiling):
        s = LinearSchedule(tiling)
        assert s.max_parallelism() == 3  # anti-diagonal of a 3x3 grid

    def test_dependences_respect_schedule(self, tiling):
        """Every tile dependence advances the wavefront: Pi d^S >= 1."""
        ds = tiling.tile_dependences([(1, 0), (0, 1), (1, 1)])
        for d in ds:
            assert sum(d) >= 1


class TestLastTileTime:
    def test_rectangular(self):
        h = rectangular_tiling([2, 3])
        assert last_tile_time(h, (5, 8)) == 5 // 2 + 8 // 3

    def test_paper_sor_identity(self):
        """§4.1: t_nr = t_r - M/z for the skewed SOR last point."""
        from repro.apps import sor
        m_sz, n_sz, x, y, z = 100, 200, 25, 75, 10
        j_max = (m_sz, m_sz + n_sz, 2 * m_sz + n_sz)
        t_r = last_tile_time(sor.h_rectangular(x, y, z), j_max)
        t_nr = last_tile_time(sor.h_nonrectangular(x, y, z), j_max)
        assert t_nr == t_r - m_sz // z

    def test_paper_jacobi_identity(self):
        """§4.2: t_nr = t_r - (T+I)/(2x)."""
        from repro.apps import jacobi
        t_sz, i_sz, j_sz, x, y, z = 50, 100, 100, 10, 30, 30
        j_max = (t_sz, t_sz + i_sz, t_sz + j_sz)
        t_r = last_tile_time(jacobi.h_rectangular(x, y, z), j_max)
        t_nr = last_tile_time(jacobi.h_nonrectangular(x, y, z), j_max)
        gap = (t_sz + i_sz) / (2 * x)
        assert abs((t_r - t_nr) - gap) <= 1  # floor rounding slack

    def test_paper_adi_identities(self):
        """§4.3: t_nr1 = t_r - N/y, t_nr2 = t_r - N/z,
        t_nr3 = t_r - N/y - N/z."""
        from repro.apps import adi
        t_sz, n_sz, x, y, z = 100, 256, 10, 32, 32
        j_max = (t_sz, n_sz, n_sz)
        t_r = last_tile_time(adi.h_rectangular(x, y, z), j_max)
        t_1 = last_tile_time(adi.h_nr1(x, y, z), j_max)
        t_2 = last_tile_time(adi.h_nr2(x, y, z), j_max)
        t_3 = last_tile_time(adi.h_nr3(x, y, z), j_max)
        assert abs((t_r - t_1) - n_sz / y) <= 1
        assert abs((t_r - t_2) - n_sz / z) <= 1
        assert abs((t_r - t_3) - (n_sz / y + n_sz / z)) <= 1
        assert t_3 < t_1 <= t_r and t_3 < t_2 <= t_r


class TestMakespanFormulaTerms:
    def test_exact_rows(self):
        from fractions import Fraction
        from repro.apps import sor
        from repro.schedule import makespan_formula_terms
        terms = makespan_formula_terms(sor.h_rectangular(25, 75, 10),
                                       (100, 300, 400))
        assert terms == (Fraction(4), Fraction(4), Fraction(40))
