"""Unit tests for the UET-UCT mapping analysis."""

import pytest

from repro.polyhedra import box
from repro.schedule import best_mapping_dim, evaluate_mappings
from repro.tiling import TilingTransformation
from repro.tiling.shapes import rectangular_tiling


@pytest.fixture(scope="module")
def long_dim_tiling():
    """Tile space 2 x 2 x 8: dimension 2 is clearly the longest."""
    h = rectangular_tiling([3, 3, 3])
    return TilingTransformation(h, box([0, 0, 0], [5, 5, 23]))

DEPS = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]


class TestEvaluate:
    def test_one_eval_per_dim(self, long_dim_tiling):
        evals = evaluate_mappings(long_dim_tiling, DEPS)
        assert [e.mapping_dim for e in evals] == [0, 1, 2]

    def test_processor_counts(self, long_dim_tiling):
        evals = evaluate_mappings(long_dim_tiling, DEPS)
        assert evals[2].processors == 4     # 2 x 2
        assert evals[0].processors == 16    # 2 x 8

    def test_chain_lengths(self, long_dim_tiling):
        evals = evaluate_mappings(long_dim_tiling, DEPS)
        assert evals[2].chain_tiles_max == 8
        assert evals[0].chain_tiles_max == 2

    def test_makespan_positive(self, long_dim_tiling):
        for e in evaluate_mappings(long_dim_tiling, DEPS):
            assert e.makespan_steps >= 1


class TestOptimality:
    def test_longest_dimension_wins_at_ratio_one(self, long_dim_tiling):
        """Ref [3]: collapse the dimension with the most tiles."""
        assert best_mapping_dim(long_dim_tiling, DEPS, comm_cost=1.0) == 2

    def test_free_communication_flattens_choice(self, long_dim_tiling):
        """With comm_cost = 0 every mapping has the same critical path,
        so the tie-break (longest dimension) still picks dim 2."""
        evals = evaluate_mappings(long_dim_tiling, DEPS, comm_cost=0.0)
        assert len({e.makespan_steps for e in evals}) == 1
        assert best_mapping_dim(long_dim_tiling, DEPS, 0.0) == 2

    def test_collapsed_makespan_beats_bad_choice(self, long_dim_tiling):
        evals = evaluate_mappings(long_dim_tiling, DEPS, comm_cost=1.0)
        best = min(e.makespan_steps for e in evals)
        assert evals[2].makespan_steps == best

    def test_agrees_with_distribution_default(self, long_dim_tiling):
        """ComputationDistribution's longest-dim default matches the
        UET-UCT optimum on the paper's workloads."""
        from repro.distribution import ComputationDistribution
        dist = ComputationDistribution(long_dim_tiling)
        assert dist.m == best_mapping_dim(long_dim_tiling, DEPS)
