"""Unit tests for the translation-validation building blocks.

Covers the expression IR (:mod:`repro.analysis.transval.loopir`) —
parsing-independent algebra: affine extraction, rounded-affine atoms,
exact interval evaluation — and the two readers, round-tripped over
freshly emitted artifacts.
"""

from fractions import Fraction

import pytest

from repro.analysis.transval.creader import (
    parse_expr,
    read_mpi,
    read_sequential,
    split_top,
)
from repro.analysis.transval.loopir import (
    Const,
    FloorDiv,
    Mod,
    NotAffine,
    ReaderError,
    Var,
    affine,
    bound_atoms,
    interval,
    rounded_atom,
    substitute,
)
from repro.analysis.transval.pyreader import read_pygen, read_pyseq
from repro.apps import sor
from repro.codegen.parallel import generate_mpi_code
from repro.codegen.pygen import generate_python_node_programs
from repro.codegen.pyseq import generate_python_sequential
from repro.codegen.sequential import generate_sequential_tiled_code


class TestAffine:
    def test_linear_combination(self):
        coeffs, const = affine(parse_expr("2*x + 3*y - 4"))
        assert coeffs == {"x": 2, "y": 3}
        assert const == -4

    def test_exact_division_by_constant(self):
        # floord(6*x + 4, 2) divides exactly: rational affine result
        coeffs, const = affine(parse_expr("floord(6*x + 4, 2)"))
        assert coeffs == {"x": 3}
        assert const == 2

    def test_mod_is_not_affine(self):
        with pytest.raises(NotAffine):
            affine(parse_expr("x % 3"))


class TestRoundedAtoms:
    def test_floor_atom_normal_form(self):
        a = rounded_atom(parse_expr("floord(x - 2, 3)"))
        b = rounded_atom(parse_expr("floord(x + 1, 3) - 1"))
        assert a == b  # integer shifts fold through the rounding

    def test_exact_when_coefficients_integral(self):
        rounding, items, const = rounded_atom(parse_expr("floord(4*x, 2)"))
        assert rounding == "exact"
        assert dict(items) == {"x": Fraction(2)}
        assert const == 0

    def test_negative_divisor_normalises(self):
        a = rounded_atom(parse_expr("floord(x, 2)"))
        b = rounded_atom(FloorDiv(Var("x"), Const(2)))
        assert a == b

    def test_bound_atoms_unwrap_max(self):
        lows = bound_atoms(parse_expr("max(ceild(x, 2), 0)"), "lower")
        assert len(lows) == 2
        with pytest.raises(NotAffine):
            bound_atoms(parse_expr("max(x, 0)"), "upper")


class TestInterval:
    def test_affine_interval(self):
        lo, hi = interval(parse_expr("2*x - y"), {"x": (0, 3), "y": (1, 2)})
        assert (lo, hi) == (-2, 5)

    def test_floordiv_interval(self):
        lo, hi = interval(parse_expr("floord(x, 3)"), {"x": (-4, 7)})
        assert (lo, hi) == (-2, 2)

    def test_mod_same_block_is_exact(self):
        lo, hi = interval(Mod(Var("x"), Const(5)), {"x": (6, 8)})
        assert (lo, hi) == (1, 3)

    def test_mod_crossing_blocks_is_range(self):
        lo, hi = interval(Mod(Var("x"), Const(5)), {"x": (3, 8)})
        assert (lo, hi) == (0, 4)

    def test_free_variable_raises(self):
        with pytest.raises(ReaderError):
            interval(parse_expr("x + y"), {"x": (0, 1)})

    def test_substitute(self):
        e = substitute(parse_expr("x + y"), {"x": Const(5)})
        assert interval(e, {"y": (0, 0)}) == (5, 5)


class TestParsingHelpers:
    def test_split_top_respects_parens(self):
        assert split_top("f(a, b), c", ",") == ["f(a, b)", "c"]

    def test_parse_error_carries_line(self):
        with pytest.raises(ReaderError) as exc:
            parse_expr("x +", line=7)
        assert exc.value.line == 7
        assert "line 7" in str(exc.value)


@pytest.fixture(scope="module")
def sor_setup():
    app = sor.app(8, 12)
    h = sor.h_nonrectangular(2, 3, 4)
    return app, h


class TestReaderRoundTrips:
    def test_mpi_reader_structure(self, sor_setup):
        app, h = sor_setup
        text = generate_mpi_code(app.nest, h, mapping_dim=app.mapping_dim)
        parsed = read_mpi(text)
        assert parsed.name == app.nest.name
        assert len(parsed.inner_loops) == 3
        assert len(parsed.map_params) == 4  # jp0..jp2 + t
        assert parsed.recv_blocks and parsed.send_blocks
        # every receive block handles a distinct tile dependence, and
        # its tag names its processor direction
        assert len({b.d_s for b in parsed.recv_blocks}) == \
            len(parsed.recv_blocks)
        for b in parsed.recv_blocks:
            assert b.tag == "_".join(
                str(x).replace("-", "m") for x in b.d_m)
        assert len(parsed.body) == len(app.nest.statements)

    def test_sequential_reader_structure(self, sor_setup):
        app, h = sor_setup
        text = generate_sequential_tiled_code(app.nest, h)
        parsed = read_sequential(text)
        assert parsed.name == app.nest.name
        assert len(parsed.outer) == 3
        assert len(parsed.inner_loops) == 3
        assert parsed.guards  # original-space membership conjuncts

    def test_pyseq_reader_matches_c_reader_shape(self, sor_setup):
        app, h = sor_setup
        c = read_sequential(generate_sequential_tiled_code(app.nest, h))
        py = read_pyseq(generate_python_sequential(app.nest, h))
        assert len(py.outer) == len(c.outer)
        assert len(py.inner_loops) == len(c.inner_loops)
        assert len(py.guards) == len(c.guards)
        assert len(py.body) == len(c.body)

    def test_pygen_reader_schedules(self, sor_setup):
        app, h = sor_setup
        src = generate_python_node_programs(
            app.nest, h, mapping_dim=app.mapping_dim)
        parsed = read_pygen(src)
        assert parsed.num_ranks == len(parsed.schedules)
        assert set(parsed.pid_of_rank) == set(range(parsed.num_ranks))

    def test_garbage_raises_reader_error(self):
        with pytest.raises(ReaderError):
            read_mpi("this is not a program\n")
        with pytest.raises(ReaderError):
            read_sequential("void f() {}\n")
