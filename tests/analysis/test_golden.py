"""Golden diagnostics for the paper's benchmark configurations.

Every seed app/tiling pair the rest of the suite executes must analyze
*clean of errors* — the verifier may not cry wolf on programs the
integration tests prove correct.  The exact diagnostic sets are pinned:
most configs are entirely clean; the SOR and Jacobi tilings carry one
documented DL03 *warning* (they really do deadlock under the
synchronous rendezvous protocol — the engine confirms it — but complete
under the default eager protocol).
"""

import pytest

from repro.apps import adi, heat, jacobi, sor
from repro.analysis import analyze_program
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec
from repro.runtime.vmpi import DeadlockError

CASES = [
    # (id, app, h, mapping_dim, expected diagnostic codes)
    ("sor-rect", lambda: sor.app(4, 6), lambda: sor.h_rectangular(2, 3, 3),
     2, ["DL03"]),
    ("sor-nonrect", lambda: sor.app(4, 6),
     lambda: sor.h_nonrectangular(2, 3, 3), 2, ["DL03"]),
    ("sor-nonrect-234", lambda: sor.app(4, 6),
     lambda: sor.h_nonrectangular(2, 3, 4), 2, []),
    ("jacobi-rect", lambda: jacobi.app(3, 6, 6),
     lambda: jacobi.h_rectangular(2, 3, 3), 0, ["DL03"]),
    ("jacobi-nonrect", lambda: jacobi.app(3, 6, 6),
     lambda: jacobi.h_nonrectangular(2, 4, 4), 0, ["DL03"]),
    ("adi-rect", lambda: adi.app(4, 5), lambda: adi.h_rectangular(2, 3, 3),
     0, []),
    ("adi-nr1", lambda: adi.app(4, 5), lambda: adi.h_nr1(2, 3, 3), 0, []),
    ("adi-nr2", lambda: adi.app(4, 5), lambda: adi.h_nr2(2, 3, 3), 0, []),
    ("heat-rect", lambda: heat.app(6, 8), lambda: heat.h_rectangular(3, 4),
     0, []),
    ("heat-skew", lambda: heat.app(6, 8),
     lambda: heat.h_skewed_band(3, 2), 0, []),
]


@pytest.mark.parametrize(
    "make_app, make_h, m, expected",
    [c[1:] for c in CASES], ids=[c[0] for c in CASES])
def test_paper_config_golden_diagnostics(make_app, make_h, m, expected):
    app = make_app()
    prog = TiledProgram(app.nest, make_h(), mapping_dim=m)
    rep = analyze_program(prog)
    assert rep.codes() == expected
    assert rep.ok                      # never an *error* on a seed config
    assert rep.passes_run == ["legality", "races", "deadlock", "bounds"]
    assert rep.meta["processors"] == prog.num_processors
    assert rep.meta["messages"] > 0 or prog.num_processors == 1


@pytest.mark.parametrize(
    "make_app, make_h, m",
    [c[1:4] for c in CASES if c[4] == ["DL03"]],
    ids=[c[0] for c in CASES if c[4] == ["DL03"]])
def test_dl03_warnings_are_honest(make_app, make_h, m):
    """Every DL03 warning corresponds to a real rendezvous deadlock:
    force the synchronous protocol and the engine must actually hang."""
    app = make_app()
    prog = TiledProgram(app.nest, make_h(), mapping_dim=m)
    rep = analyze_program(prog)
    dl03 = rep.by_code("DL03")
    assert dl03 and all(d.severity == "warning" for d in dl03)
    assert "rendezvous" in dl03[0].message
    with pytest.raises(DeadlockError):
        DistributedRun(prog, ClusterSpec(rendezvous_threshold=0)).simulate()


@pytest.mark.parametrize(
    "make_app, make_h, m",
    [c[1:4] for c in CASES if c[4] == []],
    ids=[c[0] for c in CASES if c[4] == []])
def test_clean_configs_survive_rendezvous(make_app, make_h, m):
    """Conversely: a fully clean report means even the synchronous
    protocol completes."""
    app = make_app()
    prog = TiledProgram(app.nest, make_h(), mapping_dim=m)
    stats = DistributedRun(
        prog, ClusterSpec(rendezvous_threshold=0)).simulate()
    assert stats.makespan > 0
