"""The ``repro analyze`` CLI: exit codes and report formats."""

import json

import pytest

from repro.cli import main


class TestCleanAnalysis:
    def test_clean_config_exits_zero(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no diagnostics" in out
        assert "passes: legality, races, deadlock, bounds" in out

    def test_json_output_parses(self, capsys):
        rc = main(["analyze", "--app", "adi", "-s", "4", "5",
                   "-t", "2", "3", "3", "--shape", "rect", "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert blob["ok"] is True
        assert blob["counts"]["error"] == 0
        assert blob["passes"] == ["legality", "races", "deadlock", "bounds"]
        assert blob["meta"]["processors"] >= 1


class TestFailingAnalysis:
    def test_unskewed_nest_exits_nonzero(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect", "--unskewed"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[LEG01]" in out
        assert "tiling cone" in out

    def test_unskewed_json_structured(self, capsys):
        rc = main(["analyze", "--app", "jacobi", "-s", "3", "6", "6",
                   "-t", "2", "3", "3", "--shape", "rect", "--unskewed",
                   "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert blob["ok"] is False
        codes = {d["code"] for d in blob["diagnostics"]}
        assert codes == {"LEG01"}
        first = blob["diagnostics"][0]
        assert first["severity"] == "error"
        assert first["pass"] == "legality"
        assert "row" in first["subject"] and "dep" in first["subject"]
        assert first["equation"].startswith("H D >= 0")

    def test_warning_only_config_still_exits_zero(self, capsys):
        # sor rect carries a DL03 rendezvous warning but no errors
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warning[DL03]" in out

    def test_unknown_shape_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--app", "sor", "-s", "8", "12",
                  "-t", "2", "3", "3", "--shape", "diamond"])


class TestTransvalFlag:
    def test_transval_adds_tv_passes_and_stays_clean(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect", "--transval"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no diagnostics" in out
        for p in ("transval-dependences", "transval-loops",
                  "transval-subscripts", "transval-constants"):
            assert p in out

    def test_transval_json_lists_passes(self, capsys):
        rc = main(["analyze", "--app", "adi", "-s", "4", "5",
                   "-t", "2", "3", "3", "--shape", "rect",
                   "--transval", "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert blob["ok"] is True
        assert "transval-constants" in blob["passes"]

    def test_transval_skipped_on_failing_base_report(self, capsys):
        # unskewed sor + rect tiling fails legality; the TV passes must
        # not run (there is no buildable program to emit and parse)
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect", "--unskewed",
                   "--transval"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[LEG01]" in out
        assert "transval-loops" not in out


class TestHbFlag:
    def test_hb_adds_pass_and_stays_clean(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect", "--hb"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no diagnostics" in out
        assert "hb" in out.split("passes: ")[1]

    def test_hb_off_by_default(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "passes: legality, races, deadlock, bounds" in out

    def test_hb_warns_on_rendezvous_cycle(self, capsys):
        # sor rect deadlocks only under forced rendezvous: the HB pass
        # mirrors DL03 — demoted warnings, exit 0, cycle reported.
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect", "--hb",
                   "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert blob["ok"] is True
        assert "hb" in blob["passes"]
        hb02 = [d for d in blob["diagnostics"] if d["code"] == "HB02"]
        assert hb02
        assert all(d["severity"] == "warning" for d in hb02)
        assert any("rendezvous" in d["message"] for d in hb02)


class TestSanitizeCommand:
    def test_sanitize_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "run.json")
        rc = main(["run", "--app", "sor", "-s", "4", "6",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--engine", "parallel", "--workers", "2",
                   "--trace-out", trace])
        assert rc == 0
        capsys.readouterr()
        rc = main(["sanitize", "--app", "sor", "-s", "4", "6",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--trace", trace])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no diagnostics" in out

    def test_sanitize_mode_mismatch_fails(self, capsys, tmp_path):
        trace = str(tmp_path / "run.json")
        rc = main(["run", "--app", "sor", "-s", "4", "6",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--engine", "parallel", "--workers", "2",
                   "--overlap", "--trace-out", trace])
        assert rc == 0
        capsys.readouterr()
        # replay the overlap trace against the blocking certificate
        rc = main(["sanitize", "--app", "sor", "-s", "4", "6",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--trace", trace])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[HB04]" in out

    def test_sanitize_missing_trace_aborts(self, capsys, tmp_path):
        rc = main(["sanitize", "--app", "sor", "-s", "4", "6",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--trace", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert rc == 1
        assert "sanitize aborted" in err


class TestFailOnWarn:
    def test_warning_config_fails_with_flag(self, capsys):
        # sor rect carries a DL03 warning: rc flips from 0 to 1
        argv = ["analyze", "--app", "sor", "-s", "8", "12",
                "-t", "2", "3", "3", "--shape", "rect"]
        assert main(argv) == 0
        capsys.readouterr()
        rc = main(argv + ["--fail-on-warn"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "warning[DL03]" in out

    def test_clean_config_unaffected_by_flag(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--fail-on-warn"])
        assert rc == 0
        assert "clean: no diagnostics" in capsys.readouterr().out
