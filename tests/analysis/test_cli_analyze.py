"""The ``repro analyze`` CLI: exit codes and report formats."""

import json

import pytest

from repro.cli import main


class TestCleanAnalysis:
    def test_clean_config_exits_zero(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no diagnostics" in out
        assert "passes: legality, races, deadlock, bounds" in out

    def test_json_output_parses(self, capsys):
        rc = main(["analyze", "--app", "adi", "-s", "4", "5",
                   "-t", "2", "3", "3", "--shape", "rect", "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert blob["ok"] is True
        assert blob["counts"]["error"] == 0
        assert blob["passes"] == ["legality", "races", "deadlock", "bounds"]
        assert blob["meta"]["processors"] >= 1


class TestFailingAnalysis:
    def test_unskewed_nest_exits_nonzero(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect", "--unskewed"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[LEG01]" in out
        assert "tiling cone" in out

    def test_unskewed_json_structured(self, capsys):
        rc = main(["analyze", "--app", "jacobi", "-s", "3", "6", "6",
                   "-t", "2", "3", "3", "--shape", "rect", "--unskewed",
                   "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert blob["ok"] is False
        codes = {d["code"] for d in blob["diagnostics"]}
        assert codes == {"LEG01"}
        first = blob["diagnostics"][0]
        assert first["severity"] == "error"
        assert first["pass"] == "legality"
        assert "row" in first["subject"] and "dep" in first["subject"]
        assert first["equation"].startswith("H D >= 0")

    def test_warning_only_config_still_exits_zero(self, capsys):
        # sor rect carries a DL03 rendezvous warning but no errors
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warning[DL03]" in out

    def test_unknown_shape_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--app", "sor", "-s", "8", "12",
                  "-t", "2", "3", "3", "--shape", "diamond"])


class TestTransvalFlag:
    def test_transval_adds_tv_passes_and_stays_clean(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect", "--transval"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no diagnostics" in out
        for p in ("transval-dependences", "transval-loops",
                  "transval-subscripts", "transval-constants"):
            assert p in out

    def test_transval_json_lists_passes(self, capsys):
        rc = main(["analyze", "--app", "adi", "-s", "4", "5",
                   "-t", "2", "3", "3", "--shape", "rect",
                   "--transval", "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert blob["ok"] is True
        assert "transval-constants" in blob["passes"]

    def test_transval_skipped_on_failing_base_report(self, capsys):
        # unskewed sor + rect tiling fails legality; the TV passes must
        # not run (there is no buildable program to emit and parse)
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "3", "--shape", "rect", "--unskewed",
                   "--transval"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error[LEG01]" in out
        assert "transval-loops" not in out


class TestFailOnWarn:
    def test_warning_config_fails_with_flag(self, capsys):
        # sor rect carries a DL03 warning: rc flips from 0 to 1
        argv = ["analyze", "--app", "sor", "-s", "8", "12",
                "-t", "2", "3", "3", "--shape", "rect"]
        assert main(argv) == 0
        capsys.readouterr()
        rc = main(argv + ["--fail-on-warn"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "warning[DL03]" in out

    def test_clean_config_unaffected_by_flag(self, capsys):
        rc = main(["analyze", "--app", "sor", "-s", "8", "12",
                   "-t", "2", "3", "4", "--shape", "nonrect",
                   "--fail-on-warn"])
        assert rc == 0
        assert "clean: no diagnostics" in capsys.readouterr().out
