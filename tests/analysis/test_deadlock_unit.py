"""Unit tests of the abstract channel machine on hand-written rank programs.

These mirror the runtime scenarios of ``tests/runtime/test_rendezvous``
and the vMPI deadlock tests — but statically: the checker must reach
the same verdict the engine reaches by running.
"""

from repro.analysis import RecvOp, SendOp, check_deadlock
from repro.runtime.vmpi import Recv, Send


def codes(diags):
    return sorted(d.code for d in diags)


def errors(diags):
    return [d for d in diags if d.severity == "error"]


class TestChannelMultisets:
    def test_matched_pair_clean(self):
        ops = {0: [SendOp(dest=1, tag=0, nelems=4)],
               1: [RecvOp(source=0, tag=0, nelems=4)]}
        assert check_deadlock(ops) == []

    def test_unmatched_recv_is_dl01(self):
        ops = {0: [], 1: [RecvOp(source=0, tag=0)]}
        diags = check_deadlock(ops)
        assert codes(errors(diags)) == ["DL01"]
        assert diags[0].subject_dict()["rank"] == 1
        assert diags[0].subject_dict()["source"] == 0

    def test_wrong_tag_is_unmatched_both_ways(self):
        ops = {0: [SendOp(dest=1, tag=7, nelems=1)],
               1: [RecvOp(source=0, tag=0)]}
        diags = check_deadlock(ops, synchronous=False)
        assert "DL01" in codes(diags)      # the recv never matches
        assert "DL02" in codes(diags)      # the send is never consumed
        assert codes(errors(diags)) == ["DL01"]

    def test_extra_send_is_dl02_warning_under_eager(self):
        ops = {0: [SendOp(dest=1, tag=0, nelems=1),
                   SendOp(dest=1, tag=0, nelems=1)],
               1: [RecvOp(source=0, tag=0)]}
        diags = check_deadlock(ops, synchronous=False)
        assert codes(diags) == ["DL02"]
        assert not errors(diags)

    def test_extra_send_blocks_under_rendezvous(self):
        # Runtime twin: TestDeadlockDetection.test_unmatched_rendezvous_send
        ops = {0: [SendOp(dest=1, tag=0, nelems=100)],
               1: []}
        diags = check_deadlock(ops, synchronous=True)
        assert "DL01" in codes(errors(diags)) or \
            "DL03" in codes(errors(diags))

    def test_fifo_size_mismatch_is_dl04(self):
        ops = {0: [SendOp(dest=1, tag=0, nelems=8)],
               1: [RecvOp(source=0, tag=0, nelems=6)]}
        diags = check_deadlock(ops)
        assert codes(diags) == ["DL04"]

    def test_unknown_sizes_skip_dl04(self):
        ops = {0: [SendOp(dest=1, tag=0)],
               1: [RecvOp(source=0, tag=0, nelems=6)]}
        assert check_deadlock(ops) == []


class TestCyclicWaits:
    def test_crossed_recv_recv_cycle(self):
        # 0 waits for 1's message, 1 waits for 0's: both send *after*.
        ops = {0: [RecvOp(source=1, tag=0), SendOp(dest=1, tag=0, nelems=1)],
               1: [RecvOp(source=0, tag=0), SendOp(dest=0, tag=0, nelems=1)]}
        diags = check_deadlock(ops, synchronous=False)
        assert "DL03" in codes(errors(diags))
        cycle = [d for d in diags if d.code == "DL03"][0]
        assert set(cycle.subject_dict()["cycle"]) == {0, 1}

    def test_crossed_sync_send_send_cycle(self):
        # Classic head-to-head sends: fine eagerly, deadlock rendezvous.
        ops = {0: [SendOp(dest=1, tag=0, nelems=1),
                   RecvOp(source=1, tag=0)],
               1: [SendOp(dest=0, tag=0, nelems=1),
                   RecvOp(source=0, tag=0)]}
        assert check_deadlock(ops, synchronous=False) == []
        diags = check_deadlock(ops, synchronous=True)
        assert "DL03" in codes(errors(diags))

    def test_three_rank_ring_completes_eagerly(self):
        ops = {
            0: [SendOp(dest=1, tag=0, nelems=1), RecvOp(source=2, tag=0)],
            1: [SendOp(dest=2, tag=0, nelems=1), RecvOp(source=0, tag=0)],
            2: [SendOp(dest=0, tag=0, nelems=1), RecvOp(source=1, tag=0)],
        }
        assert check_deadlock(ops, synchronous=False) == []
        # ... but the same ring of rendezvous sends is a cycle.
        diags = check_deadlock(ops, synchronous=True)
        assert "DL03" in codes(errors(diags))

    def test_pipeline_clean_under_both_protocols(self):
        ops = {
            0: [SendOp(dest=1, tag=0, nelems=2)],
            1: [RecvOp(source=0, tag=0), SendOp(dest=2, tag=0, nelems=2)],
            2: [RecvOp(source=1, tag=0)],
        }
        assert check_deadlock(ops, synchronous=False) == []
        assert check_deadlock(ops, synchronous=True) == []

    def test_out_of_order_recvs_same_channel_are_fine(self):
        # FIFO per channel means recv order across *channels* can differ
        # from send order; within one channel it cannot matter.
        ops = {
            0: [SendOp(dest=2, tag=0, nelems=1)],
            1: [SendOp(dest=2, tag=0, nelems=1)],
            2: [RecvOp(source=1, tag=0), RecvOp(source=0, tag=0)],
        }
        assert check_deadlock(ops, synchronous=False) == []


class TestVmpiOpAcceptance:
    def test_raw_vmpi_ops_accepted(self):
        ops = {0: [Send(dest=1, tag=0, nelems=3)],
               1: [Recv(source=0, tag=0)]}
        assert check_deadlock(ops) == []

    def test_raw_vmpi_unmatched_recv(self):
        ops = {0: [], 1: [Recv(source=0, tag=5)]}
        assert codes(errors(check_deadlock(ops))) == ["DL01"]

    def test_unknown_op_type_rejected(self):
        import pytest
        with pytest.raises(TypeError, match="unknown op"):
            check_deadlock({0: ["not an op"]})
