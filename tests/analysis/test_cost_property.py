"""Property: on hypothesis-random legal tilings of the reference apps,
the cost certifier's closed-form per-edge byte volumes equal the
simulator's accumulated per-channel message bytes **exactly** (tol=0),
and the analytic makespan is the simulated one bitwise.

This is the COST01/COST03 contract beyond the six golden configs: the
closed-form lattice counting (HNF strides, ``cc`` lower bounds, the
``D^m`` enumeration) has no tolerance to hide behind — one miscounted
lattice point on any channel of any legal tiling fails the run.
"""

import dataclasses

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps import adi, sor
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec


def _exact_equality(prog, spec):
    cert = prog.cost_certificate(protocol="spec", spec=spec)
    assert cert.ok, [d.message for d in cert.diagnostics]
    stats = DistributedRun(prog, spec).simulate()
    # tol = 0: element counts are integers and must match per channel.
    assert cert.channel_elements() == stats.channel_elements
    assert cert.channel_messages() == stats.channel_messages
    bpe = spec.bytes_per_element
    for edge in cert.edges:
        assert edge.nbytes == \
            stats.channel_elements[(edge.src_rank, edge.dst_rank,
                                    edge.tag)] * bpe
    assert cert.makespan == stats.makespan


class TestRandomTilings:
    @settings(max_examples=12, deadline=None)
    @given(
        sizes=st.tuples(st.integers(3, 5), st.integers(4, 8)),
        factors=st.tuples(st.integers(2, 3), st.integers(2, 4),
                          st.integers(2, 4)),
        nonrect=st.booleans(),
        mdim=st.integers(0, 2),
        rdv=st.sampled_from([None, 64]),
    )
    def test_random_sor_tiling_volumes_exact(self, sizes, factors,
                                             nonrect, mdim, rdv):
        app = sor.app(*sizes)
        h = (sor.h_nonrectangular(*factors) if nonrect
             else sor.h_rectangular(*factors))
        try:
            prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        except ValueError:
            assume(False)
        assume(prog.num_processors > 1)
        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=rdv)
        _exact_equality(prog, spec)

    @settings(max_examples=8, deadline=None)
    @given(
        sizes=st.tuples(st.integers(4, 8), st.integers(5, 9)),
        factors=st.tuples(st.integers(2, 3), st.integers(2, 3),
                          st.integers(2, 3)),
        shape=st.sampled_from(["rect", "nr1", "nr2", "nr3"]),
    )
    def test_random_adi_tiling_volumes_exact(self, sizes, factors,
                                             shape):
        # ADI's cone tilings have non-unimodular HNFs (strides > 1):
        # the closed form's strided lattice counting gets exercised
        # for real here, full tiles included.
        app = adi.app(*sizes)
        h_of = {"rect": adi.h_rectangular, "nr1": adi.h_nr1,
                "nr2": adi.h_nr2, "nr3": adi.h_nr3}[shape]
        try:
            prog = TiledProgram(app.nest, h_of(*factors),
                                mapping_dim=0)
        except ValueError:
            assume(False)
        assume(prog.num_processors > 1)
        _exact_equality(prog, ClusterSpec())
