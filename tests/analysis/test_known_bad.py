"""The known-bad corpus: every defect class must produce its exact code.

Each case constructs (or corrupts) a program with one specific defect
and asserts the verifier pins it with the right diagnostic — and, where
the defect is runtime-observable, that the static verdict agrees with
what actually happens when the program runs.
"""

import pytest

from repro.apps import heat, jacobi, sor
from repro.analysis import (
    VerificationError,
    analyze,
    analyze_program,
    analyze_tiling,
    verify_program,
)
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec
from repro.runtime.vmpi import DeadlockError


def error_codes(report):
    return sorted({d.code for d in report.errors})


# -- illegal tilings (LEG01) ---------------------------------------------------------


class TestIllegalTilings:
    def test_rectangular_tiling_of_unskewed_sor(self):
        """The paper's rect tiling is only legal *after* skewing."""
        nest = sor.original_nest(4, 6)
        rep = analyze(nest, sor.h_rectangular(2, 3, 3), mapping_dim=2,
                      subject="unskewed sor")
        assert error_codes(rep) == ["LEG01"]
        assert not rep.ok
        # every offending (row, dep) pair is reported, not just the first
        bad = rep.by_code("LEG01")
        assert len(bad) >= 2
        rows = {d.subject_dict()["row"] for d in bad}
        assert len(rows) >= 2
        # the suggestion names the tiling cone's extreme rays
        assert "cone" in bad[0].suggestion

    def test_diamond_tiling_of_skewed_heat(self):
        """h_diamond fits the *unskewed* heat nest; on the skewed one a
        row leaves the cone."""
        app = heat.app(6, 8)
        rep = analyze(app.nest, heat.h_diamond(2),
                      mapping_dim=app.mapping_dim)
        assert error_codes(rep) == ["LEG01"]
        # legality failed, so no program was built and no later pass ran
        assert rep.passes_run == ["legality"]

    def test_diamond_tiling_of_unskewed_heat_is_clean(self):
        app = heat.app_unskewed(6, 8)
        rep = analyze(app.nest, heat.h_diamond(2),
                      mapping_dim=app.mapping_dim)
        assert rep.ok

    def test_construction_still_raises_with_full_violation_list(self):
        nest = sor.original_nest(4, 6)
        with pytest.raises(ValueError, match="negative inner product"):
            TiledProgram(nest, sor.h_rectangular(2, 3, 3), 2)


# -- tiles too small (LEG02) ---------------------------------------------------------


class TestTileTooSmall:
    def test_unit_tile_on_skewed_jacobi(self):
        """The skewed jacobi deps reach 2 along i/j; a 1x1x1 tile cannot
        hold them and the §3.2 halo machinery breaks down."""
        app = jacobi.app(3, 6, 6)
        rep = analyze_tiling(jacobi.h_rectangular(1, 1, 1),
                             app.nest.dependences)
        assert error_codes(rep) == ["LEG02"]
        dims = {d.subject_dict()["dim"] for d in rep.by_code("LEG02")}
        assert dims == {1, 2}
        # the suggested fix names the minimum viable extent
        assert "at least 2" in rep.by_code("LEG02")[0].suggestion

    def test_matches_communication_spec_constructor(self):
        """The precheck must agree exactly with the runtime guard."""
        app = jacobi.app(3, 6, 6)
        with pytest.raises(ValueError, match="tile too small"):
            TiledProgram(app.nest, jacobi.h_rectangular(1, 1, 1), 0)

    def test_adequate_tile_is_clean(self):
        app = jacobi.app(3, 6, 6)
        rep = analyze_tiling(jacobi.h_rectangular(2, 3, 3),
                             app.nest.dependences)
        assert rep.ok and not rep.diagnostics


# -- dropped messages (DL01 + runtime DeadlockError) -------------------------------


class _DroppedSend(TiledProgram):
    """A miscompiled program: tile (0,0,0) forgets its last send."""

    def send_plan(self, tile):
        plan = super().send_plan(tile)
        if tile == (0, 0, 0):
            return plan[:-1]
        return plan


class TestDroppedSend:
    @pytest.fixture(scope="class")
    def broken(self, sor_small):
        return _DroppedSend(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)

    def test_statically_detected_as_unmatched_recv(self, broken):
        rep = analyze_program(broken, subject="dropped send")
        assert "DL01" in error_codes(rep)
        dl = rep.by_code("DL01")[0]
        assert "blocks forever" in dl.message

    def test_runtime_agrees_it_deadlocks(self, broken):
        with pytest.raises(DeadlockError):
            DistributedRun(broken, ClusterSpec()).simulate()

    def test_verify_program_raises(self, broken):
        with pytest.raises(VerificationError) as exc:
            verify_program(broken)
        assert not exc.value.report.ok
        # the race pass also catches the dropped send (it runs first);
        # both verdicts must be in the carried report
        assert "DL01" in error_codes(exc.value.report)
        assert "RACE01" in error_codes(exc.value.report)
        assert "[RACE01]" in str(exc.value)

    def test_verify_flag_guards_construction(self, sor_small):
        with pytest.raises(VerificationError):
            _DroppedSend(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                         mapping_dim=2, verify=True)

    def test_clean_program_passes_verify_flag(self, sor_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2, verify=True)
        assert prog.num_processors > 1


# -- corrupted halo geometry (HALO01/HALO02) ----------------------------------------


class TestOutOfHaloAccess:
    def _corrupt_offsets(self, sor_small, dim):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        off = list(prog.comm.offsets)
        assert off[dim] > 0
        off[dim] = 0
        prog.comm.offsets = tuple(off)
        prog.addressing._lds_cache.clear()
        return prog

    def test_zeroed_halo_offset_escapes_lds(self, sor_small):
        prog = self._corrupt_offsets(sor_small, dim=0)
        rep = analyze_program(prog, subject="zeroed off_0")
        codes = error_codes(rep)
        assert "HALO01" in codes or "HALO02" in codes
        assert not rep.ok

    def test_diagnostic_carries_cell_and_shape(self, sor_small):
        prog = self._corrupt_offsets(sor_small, dim=0)
        rep = analyze_program(prog)
        halo = [d for d in rep.errors if d.code.startswith("HALO")][0]
        subj = halo.subject_dict()
        assert "cell" in subj and "shape" in subj


# -- uncovered dependences (RACE01) -------------------------------------------------


class TestUncoveredDependence:
    def test_hidden_tile_dependence_is_race01(self, sor_small):
        prog = TiledProgram(sor_small.nest, sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)
        dm0 = prog.comm.d_m[0]
        full = prog.comm._dm_to_ds[dm0]
        assert len(full) > 1
        prog.comm._dm_to_ds[dm0] = full[:-1]
        rep = analyze_program(prog, subject="hidden d^S")
        assert "RACE01" in error_codes(rep)
        race = rep.by_code("RACE01")[0]
        assert race.severity == "error"
