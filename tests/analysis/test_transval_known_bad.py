"""Translation validation: clean emissions pass, mutations are caught.

One test class per TV pass.  Each mutation class corrupts the emitted
text (or the declared dependence matrix) in a way the matching pass —
and only a matching code — must flag:

* ``TV01`` — a wrong loop stride in the main TTIS nest;
* ``TV02`` — a halo-slot shift / read subscript that escapes the LDS;
* ``TV03`` — a corrupted burned-in constant (``CC`` and a pack bound);
* ``TV04`` — a declared dependence the statement bodies do not carry.
"""

import dataclasses

import pytest

from repro.analysis.transval import (
    PASS_CONSTANTS,
    PASS_DEPENDENCES,
    PASS_LOOPS,
    PASS_SUBSCRIPTS,
    check_declared_dependences,
    check_mpi_text,
    transval_report,
    validate_mpi_text,
)
from repro.analysis.verifier import VerificationError
from repro.apps import adi, heat, jacobi, sor
from repro.codegen.parallel import generate_mpi_code
from repro.runtime.executor import TiledProgram

#: One representative legal configuration per paper app.
CONFIGS = [
    ("sor", sor.app(8, 12), sor.h_nonrectangular(2, 3, 4)),
    ("jacobi", jacobi.app(4, 6, 6), jacobi.h_nonrectangular(2, 2, 3)),
    ("adi", adi.app(4, 5), adi.h_rectangular(2, 3, 3)),
    ("heat", heat.app(6, 8), heat.h_rectangular(2, 2)),
]


@pytest.fixture(scope="module")
def sor_case():
    app = sor.app(8, 12)
    h = sor.h_nonrectangular(2, 3, 4)
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    text = generate_mpi_code(app.nest, h, mapping_dim=app.mapping_dim)
    return app, h, prog, text


def _mutate(text: str, old: str, new: str) -> str:
    assert old in text, f"mutation target {old!r} not in emitted text"
    return text.replace(old, new)


class TestCleanEmissions:
    @pytest.mark.parametrize("name,app,h",
                             CONFIGS, ids=[c[0] for c in CONFIGS])
    def test_all_apps_validate_clean(self, name, app, h):
        report = transval_report(app.nest, h, mapping_dim=app.mapping_dim,
                                 subject=name)
        assert report.ok, report.render_text()
        assert not report.diagnostics, report.render_text()
        for p in (PASS_LOOPS, PASS_SUBSCRIPTS, PASS_CONSTANTS,
                  PASS_DEPENDENCES):
            assert p in report.passes_run

    def test_generate_with_validate_flag(self, sor_case):
        app, h, _, plain = sor_case
        text = generate_mpi_code(app.nest, h, mapping_dim=app.mapping_dim,
                                 validate=True)
        assert text == plain


class TestTV01WrongStride:
    def test_wrong_inner_stride_flagged(self, sor_case):
        _, _, prog, text = sor_case
        bad = _mutate(text, "jp1 < 3; jp1 += 1", "jp1 < 3; jp1 += 3")
        diags = check_mpi_text(prog, bad)
        assert diags, "mutated stride not flagged"
        assert {d.code for d in diags} == {"TV01"}

    def test_unparsable_text_is_tv01_not_crash(self, sor_case):
        _, _, prog, _ = sor_case
        diags = check_mpi_text(prog, "int main(void) { return 0; }\n")
        assert [d.code for d in diags] == ["TV01"]


class TestTV02SubscriptEscapes:
    def test_wrong_halo_shift_flagged(self, sor_case):
        _, _, prog, text = sor_case
        bad = _mutate(text, "- (0*2, 1*3, 0*4)", "- (0*2, 2*3, 0*4)")
        diags = check_mpi_text(prog, bad)
        assert diags
        assert all(d.code == "TV02" for d in diags)

    def test_off_by_far_read_subscript_flagged(self, sor_case):
        _, _, prog, text = sor_case
        bad = _mutate(text, "MAP(jp0, jp1 - 1, jp2, t)",
                      "MAP(jp0, jp1 - 9, jp2, t)")
        diags = check_mpi_text(prog, bad)
        assert diags
        assert "TV02" in {d.code for d in diags}


class TestTV03CorruptedConstants:
    def test_corrupted_cc_header_and_pack_bound(self, sor_case):
        _, _, prog, text = sor_case
        bad = _mutate(text, "CC vector     : (1, 2, 3)",
                      "CC vector     : (1, 1, 3)")
        bad = _mutate(bad, "max(l1p, 2)", "max(l1p, 1)")
        diags = check_mpi_text(prog, bad)
        assert diags
        assert {d.code for d in diags} == {"TV03"}

    def test_validate_guard_raises(self, sor_case):
        app, h, prog, text = sor_case
        bad = _mutate(text, "CC vector     : (1, 2, 3)",
                      "CC vector     : (9, 9, 9)")
        with pytest.raises(VerificationError) as exc:
            validate_mpi_text(prog, bad)
        assert exc.value.report.by_code("TV03")


class TestTV04DeclaredDependences:
    def test_wrong_declared_vector_flagged(self):
        app = sor.app(8, 12)
        deps = app.nest.dependences
        bad_nest = dataclasses.replace(
            app.nest, dependences=deps[:-1] + ((1, 1, 3),))
        diags = check_declared_dependences(bad_nest)
        codes = [(d.code, d.severity) for d in diags]
        # the body-derived (1,1,2) is missing -> error; the phantom
        # (1,1,3) is declared but never derived -> warning
        assert ("TV04", "error") in codes
        assert ("TV04", "warning") in codes

    def test_clean_apps_have_consistent_declarations(self):
        for _, app, _h in CONFIGS:
            assert check_declared_dependences(app.nest) == []
            assert check_declared_dependences(app.original) == []
