"""Property test tying the static verdict to dynamic truth.

For random stencils and random legal tilings: the verifier must report
zero *errors*, and the distributed execution it certified must agree
cell-for-cell with the sequential interpreter.  One direction says the
passes have no false positives on correct compilations; the combination
says "analyze clean" and "runs correctly" point at the same programs.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_program
from repro.linalg import RatMat
from repro.loops import ArrayRef, LoopNest, Statement
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.interpreter import run_sequential
from repro.tiling import is_legal_tiling

SPEC = ClusterSpec()


@st.composite
def random_cases(draw):
    n_deps = draw(st.integers(1, 3))
    deps = []
    for _ in range(n_deps):
        d = (draw(st.integers(0, 2)), draw(st.integers(-2, 2)))
        if d[0] == 0:
            d = (0, abs(d[1]))
        if d == (0, 0):
            d = (1, 0)
        deps.append(d)
    deps = sorted(set(deps))
    a = draw(st.integers(2, 4))
    dd = draw(st.integers(2, 4))
    b = draw(st.integers(-2, 2))
    c = draw(st.integers(-2, 2))
    p = RatMat([[a, b], [c, dd]])
    assume(p.det() != 0)
    h = p.inverse()
    assume(is_legal_tiling(h, deps))
    from repro.distribution.communication import CommunicationSpec
    from repro.polyhedra import box as _box
    from repro.tiling import TilingTransformation
    try:
        tt = TilingTransformation(h, _box((0, 0), (8, 8)))
        CommunicationSpec(tt, deps, 0)
        CommunicationSpec(tt, deps, 1)
    except ValueError:
        assume(False)
    lo = (draw(st.integers(-2, 0)), draw(st.integers(-2, 0)))
    hi = (lo[0] + draw(st.integers(3, 7)), lo[1] + draw(st.integers(3, 7)))
    coeffs = [draw(st.integers(1, 9)) / 16.0 for _ in range(len(deps))]
    return deps, h, lo, hi, tuple(coeffs)


def _build_nest(deps, lo, hi, coeffs):
    def kernel(_p, reads, _c=coeffs):
        return 0.5 + sum(c * v for c, v in zip(_c, reads))

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0)),
        [ArrayRef.of("A", tuple(-x for x in d)) for d in deps],
        kernel,
    )
    return LoopNest.rectangular("prop", list(lo), list(hi), [stmt],
                                list(deps))


def _init(_arr, cell):
    return 0.03 * cell[0] - 0.07 * cell[1] + 0.5


@given(random_cases(), st.sampled_from([0, 1]))
@settings(max_examples=40, deadline=None)
def test_legal_tilings_analyze_clean_and_run_correctly(case, mapping_dim):
    deps, h, lo, hi, coeffs = case
    nest = _build_nest(deps, lo, hi, coeffs)
    prog = TiledProgram(nest, h, mapping_dim=mapping_dim)
    report = analyze_program(prog)
    # no false positives: a correct compilation carries zero errors
    assert report.ok, report.render_text()
    # and the program the verifier blessed really is correct
    arrays, _ = DistributedRun(prog, SPEC).execute(_init)
    ref = run_sequential(nest, _init)
    assert set(arrays["A"]) == set(ref["A"])
    for k, v in ref["A"].items():
        assert abs(arrays["A"][k] - v) < 1e-11, (k, arrays["A"][k], v)


@given(random_cases())
@settings(max_examples=25, deadline=None)
def test_verify_flag_accepts_every_legal_tiling(case):
    """TiledProgram(..., verify=True) must never reject a correct
    compilation — the guard is allowed to block only real defects."""
    deps, h, lo, hi, coeffs = case
    nest = _build_nest(deps, lo, hi, coeffs)
    prog = TiledProgram(nest, h, verify=True)
    assert prog.num_processors >= 1


@given(random_cases())
@settings(max_examples=25, deadline=None)
def test_clean_sync_deadlock_report_matches_engine(case):
    """When the report has no DL03 at all, the rendezvous engine must
    complete; when it has one, the default eager engine must still
    complete (DL03-only reports are warnings by construction)."""
    deps, h, lo, hi, coeffs = case
    nest = _build_nest(deps, lo, hi, coeffs)
    prog = TiledProgram(nest, h)
    report = analyze_program(prog)
    assert report.ok
    if not report.by_code("DL03"):
        stats = DistributedRun(
            prog, ClusterSpec(rendezvous_threshold=0)).simulate()
        assert stats.makespan >= 0
    stats = DistributedRun(prog, SPEC).simulate()
    assert stats.makespan >= 0
