"""Ring protocol model checker: the faithful model verifies clean and
every known-bad mutation is rejected (HB03)."""

import pytest

from repro.analysis.hb.ringmodel import (
    MUTATIONS,
    RingConfig,
    check_ring_model,
    explore,
    main,
    ring_diagnostics,
)


class TestFaithfulModel:
    def test_faithful_protocol_is_clean(self):
        res = check_ring_model(None)
        assert res.ok, res.violations[:3]
        assert res.configs == 24          # depths 1-3 x msgs x 2 modes
        assert res.states > 0

    def test_wraparound_is_exercised(self):
        # More messages than slots forces the ring to wrap; a depth-2
        # ring with 4 messages must still verify.
        res = explore(RingConfig(depth=2, nmsgs=4, mode="push"))
        assert res.ok
        res = explore(RingConfig(depth=2, nmsgs=4, mode="reserve"))
        assert res.ok

    def test_ring_diagnostics_empty_and_cached(self):
        assert ring_diagnostics() == []
        assert ring_diagnostics() == []   # cached second call


class TestMutationCorpus:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_is_rejected(self, mutation):
        res = check_ring_model(mutation)
        assert not res.ok, f"mutation {mutation} was not caught"
        assert res.violations

    def test_commit_barrier_flip_names_the_stale_read(self):
        # publish-before-payload is caught at the consumer's first
        # read: the size store (which follows the payload store in
        # this mutation) is not yet published.
        res = check_ring_model("commit_before_payload")
        assert any("not published before consumption" in v
                   for v in res.violations)
        # the size-barrier flip is caught at the payload read
        res = check_ring_model("premature_commit")
        assert any("half-written payload" in v
                   for v in res.violations)

    def test_no_backpressure_names_slot_reuse(self):
        res = check_ring_model("no_backpressure")
        assert any("slot reused" in v or "size" in v
                   for v in res.violations)

    def test_unknown_mutation_raises(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            check_ring_model("flip_everything")


class TestSelftestEntrypoint:
    def test_selftest_passes(self, capsys):
        assert main(["--selftest"]) == 0
        out = capsys.readouterr().out
        assert "faithful ring protocol: ok" in out
        for name in MUTATIONS:
            assert f"mutation {name}: rejected" in out

    def test_bad_usage(self, capsys):
        assert main(["--bogus"]) == 2
