"""Known-bad cost-model corpus: every seeded miscomputation in
:data:`repro.analysis.cost.MUTATIONS` must be rejected with its golden
COST diagnostic, and the clean run must stay clean.

The ``wrong_stride`` seed only bites where the HNF strides matter
*and* interior tiles exist: ADI's nr1 cone tiling has ``c = (1, 3,
1)`` and, at T=8 N=9, eight full tiles — small enough to certify in
milliseconds, big enough that the closed form actually counts strided
lattices.
"""

import pytest

from repro.analysis.cost import MUTATIONS, certify_cost
from repro.apps import adi, sor
from repro.runtime.executor import TiledProgram

#: mutation -> (config builder, golden diagnostic code)
GOLDEN = {
    "wrong_stride": "COST01",
    "off_by_one_halo": "COST01",
    "dropped_cc_edge": "COST01",
    "swapped_edge_weight": "COST03",
    "bad_lower_bound_constant": "COST04",
}


def _strided_prog():
    # HNF strides c = (1, 3, 1): the closed form must honor them.
    return TiledProgram(adi.app(8, 9).nest, adi.h_nr1(2, 3, 3),
                        mapping_dim=0)


def _plain_prog():
    return TiledProgram(sor.app(4, 6).nest,
                        sor.h_nonrectangular(2, 3, 4), mapping_dim=2)


def _prog_for(mutation):
    return _strided_prog() if mutation == "wrong_stride" \
        else _plain_prog()


def test_corpus_covers_the_contract():
    # The ISSUE contract: at least five seeded miscomputations.
    assert len(MUTATIONS) >= 5
    assert set(GOLDEN) == set(MUTATIONS)


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_mutation_rejected_with_golden_code(mutation):
    cert = certify_cost(_prog_for(mutation), mutation=mutation)
    assert not cert.ok, f"{mutation} survived certification"
    errors = [d for d in cert.diagnostics if d.severity == "error"]
    assert errors, f"{mutation} produced no error diagnostics"
    assert {d.code for d in errors} == {GOLDEN[mutation]}, \
        (mutation, [(d.code, d.message) for d in errors])
    for d in errors:
        assert d.pass_name == "cost"
        assert d.message and d.suggestion


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_unmutated_twin_is_clean(mutation):
    # The same program certifies clean without the seed — the corpus
    # tests the certifier, not broken programs.
    cert = certify_cost(_prog_for(mutation))
    assert cert.ok, [d.message for d in cert.diagnostics]
