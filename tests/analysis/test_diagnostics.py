"""Unit tests for the Diagnostic / AnalysisReport framework."""

import json

import pytest

from repro.analysis import ERROR, INFO, WARNING, AnalysisReport, Diagnostic


def _diag(code="RACE01", severity=ERROR, **kw):
    defaults = dict(
        pass_name="races",
        message="tile dependence (0, 1, 1) is not covered",
        equation="D^S subset of covered deps (§3.2)",
        subject=(("tile", (0, 1, 2)), ("ds", (0, 1, 1))),
        suggestion="add the dependence to D^m",
    )
    defaults.update(kw)
    return Diagnostic(code=code, severity=severity, **defaults)


class TestDiagnostic:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            _diag(severity="fatal")

    def test_render_contains_all_parts(self):
        text = _diag().render()
        assert "error[RACE01] races:" in text
        assert "tile=(0, 1, 2)" in text
        assert "invariant: D^S subset" in text
        assert "fix: add the dependence" in text

    def test_render_minimal(self):
        d = Diagnostic(code="DL01", severity=WARNING, pass_name="deadlock",
                       message="m")
        assert d.render() == "warning[DL01] deadlock: m"

    def test_to_dict_jsonable(self):
        d = _diag(subject=(("tile", (0, 1)), ("count", 3)))
        blob = json.dumps(d.to_dict())
        back = json.loads(blob)
        assert back["subject"]["tile"] == [0, 1]
        assert back["subject"]["count"] == 3
        assert back["code"] == "RACE01"

    def test_subject_dict(self):
        assert _diag().subject_dict() == {"tile": (0, 1, 2),
                                         "ds": (0, 1, 1)}


class TestAnalysisReport:
    def test_empty_report_is_ok(self):
        rep = AnalysisReport()
        assert rep.ok
        assert rep.errors == [] and rep.warnings == []
        assert "clean" in rep.render_text()

    def test_error_flips_ok_warning_does_not(self):
        rep = AnalysisReport()
        rep.add(_diag(severity=WARNING))
        assert rep.ok
        rep.add(_diag(code="HALO01"))
        assert not rep.ok
        assert len(rep.errors) == 1 and len(rep.warnings) == 1

    def test_by_code_and_codes(self):
        rep = AnalysisReport()
        rep.extend([_diag(code="DL01"), _diag(code="RACE01"),
                    _diag(code="DL01", severity=INFO)])
        assert rep.codes() == ["DL01", "RACE01", "DL01"]
        assert len(rep.by_code("DL01")) == 2

    def test_mark_pass_deduplicates(self):
        rep = AnalysisReport()
        rep.mark_pass("races")
        rep.mark_pass("races")
        rep.mark_pass("bounds")
        assert rep.passes_run == ["races", "bounds"]

    def test_json_round_trip(self):
        rep = AnalysisReport(meta={"subject": "unit", "tiles": 12})
        rep.add(_diag())
        rep.mark_pass("races")
        back = json.loads(rep.to_json())
        assert back["ok"] is False
        assert back["counts"] == {"error": 1, "warning": 0, "total": 1}
        assert back["passes"] == ["races"]
        assert back["meta"]["subject"] == "unit"
        assert back["diagnostics"][0]["code"] == "RACE01"

    def test_render_text_counts_line(self):
        rep = AnalysisReport()
        rep.add(_diag())
        rep.add(_diag(severity=WARNING))
        assert "1 error(s), 1 warning(s)" in rep.render_text()
