"""Property test: translation validation has no false positives.

For random stencils and random legal tilings (the same generator as
:mod:`tests.analysis.test_property`): every artifact freshly emitted by
the generators must translation-validate with *zero* findings.  The
check is sound on this domain — ``check_tiling`` passing first means
every transformed dependence component lies in ``{0, 1}``, so the
interval abstraction used by TV02 is exact, and a clean verdict is a
proof, not a heuristic.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.transval import transval_report
from repro.linalg import RatMat
from repro.loops import ArrayRef, LoopNest, Statement
from repro.tiling import is_legal_tiling


@st.composite
def random_cases(draw):
    n_deps = draw(st.integers(1, 3))
    deps = []
    for _ in range(n_deps):
        d = (draw(st.integers(0, 2)), draw(st.integers(-2, 2)))
        if d[0] == 0:
            d = (0, abs(d[1]))
        if d == (0, 0):
            d = (1, 0)
        deps.append(d)
    deps = sorted(set(deps))
    a = draw(st.integers(2, 4))
    dd = draw(st.integers(2, 4))
    b = draw(st.integers(-2, 2))
    c = draw(st.integers(-2, 2))
    p = RatMat([[a, b], [c, dd]])
    assume(p.det() != 0)
    h = p.inverse()
    assume(is_legal_tiling(h, deps))
    from repro.distribution.communication import CommunicationSpec
    from repro.polyhedra import box as _box
    from repro.tiling import TilingTransformation
    try:
        tt = TilingTransformation(h, _box((0, 0), (8, 8)))
        CommunicationSpec(tt, deps, 0)
        CommunicationSpec(tt, deps, 1)
    except ValueError:
        assume(False)
    lo = (draw(st.integers(-2, 0)), draw(st.integers(-2, 0)))
    hi = (lo[0] + draw(st.integers(3, 7)), lo[1] + draw(st.integers(3, 7)))
    return deps, h, lo, hi


def _build_nest(deps, lo, hi):
    def kernel(_p, reads):
        return 0.5 + 0.25 * sum(reads)

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0)),
        [ArrayRef.of("A", tuple(-x for x in d)) for d in deps],
        kernel,
    )
    return LoopNest.rectangular("prop", list(lo), list(hi), [stmt],
                                list(deps))


@given(random_cases(), st.sampled_from([0, 1]))
@settings(max_examples=25, deadline=None)
def test_legal_tilings_translation_validate_clean(case, mapping_dim):
    deps, h, lo, hi = case
    nest = _build_nest(deps, lo, hi)
    report = transval_report(nest, h, mapping_dim=mapping_dim)
    assert report.ok, report.render_text()
    assert not report.diagnostics, report.render_text()
    # all four TV passes really ran (legality precheck did not bail)
    assert "transval-loops" in report.passes_run
    assert "transval-subscripts" in report.passes_run
    assert "transval-constants" in report.passes_run
    assert "transval-dependences" in report.passes_run
    assert "transval-kernels" in report.passes_run
