"""Property: the simulator's event order is a linear extension of the
static happens-before graph — on every reference config (eager and
spec protocols, with and without the spec's comm overlap) and on
hypothesis-random legal SOR tilings.

Mapping: the simulator records per-rank send/recv events in program
order (parked rendezvous senders emit their event at match time, but
a parked rank issues nothing else meanwhile), so the k-th send/recv
of a rank's trace corresponds to the k-th SEND/RECV of the HB graph's
rank order.  The assertions are then

* sequence equality — same channels, same payload sizes, same order;
* every HB edge respected on the simulated clock — if ``hb(a, b)``
  then event ``b`` cannot finish before ``a`` begins.
"""

import dataclasses

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.hb.graph import (
    RECV,
    SEND,
    build_hb_graph,
    certify_program,
    happens_before,
    vector_clocks,
)
from repro.apps import adi, heat, jacobi, sor
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec
from repro.runtime.trace import EventTrace

HB_CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-partial-tiles"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
]

_EPS = 1e-12


def _assert_linear_extension(prog, spec, protocol):
    trace = EventTrace()
    DistributedRun(prog, spec, trace=trace).simulate()
    g = build_hb_graph(prog, protocol=protocol, spec=spec)
    clocks, processed = vector_clocks(g)
    assert processed.all()

    # Map graph SEND/RECV events to simulator events, rank by rank.
    sim_by_rank = {}
    for ev in trace.events:  # record order is per-rank program order
        if ev.kind in ("send", "recv"):
            sim_by_rank.setdefault(ev.rank, []).append(ev)
    sim_time = {}
    for rank in range(g.nranks):
        static = [i for i in g.rank_order[rank]
                  if g.events[i].kind in (SEND, RECV)]
        measured = sim_by_rank.get(rank, [])
        assert len(static) == len(measured)
        for i, m in zip(static, measured):
            e = g.events[i]
            assert (e.kind, e.peer, e.tag, e.nelems) == \
                (m.kind, m.peer, m.tag, m.nelems)
            sim_time[i] = (m.start, m.end)

    # Every message edge lands on the simulated clock in HB order,
    # and — the full property — any two HB-ordered comm events do.
    for s, r in g.msg_edges:
        assert sim_time[r][1] >= sim_time[s][0] - _EPS
    ids = sorted(sim_time)
    for a in ids:
        for b in ids:
            if a != b and happens_before(g, clocks, processed, a, b):
                assert sim_time[b][1] >= sim_time[a][0] - _EPS, \
                    (g.events[a], g.events[b])


class TestReferenceConfigs:
    @pytest.mark.parametrize("app,h,mdim", HB_CONFIGS)
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["no-overlap", "overlap"])
    def test_eager_order_extends_hb(self, app, h, mdim, overlap):
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        spec = ClusterSpec(overlap=overlap)
        _assert_linear_extension(prog, spec, "eager")

    @pytest.mark.parametrize("app,h,mdim", HB_CONFIGS)
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["no-overlap", "overlap"])
    def test_spec_protocol_order_extends_hb(self, app, h, mdim,
                                            overlap):
        # Default spec: 'spec' degenerates to eager; the graphs and
        # the simulated orders must agree under that reading too.
        prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        spec = ClusterSpec(overlap=overlap)
        _assert_linear_extension(prog, spec, "spec")

    def test_forced_rendezvous_on_safe_schedule(self):
        # Jacobi completes under rendezvous; the parked-sender event
        # mapping must still line up.
        prog = TiledProgram(jacobi.app(3, 5, 5).nest,
                            jacobi.h_rectangular(2, 3, 3),
                            mapping_dim=0)
        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=0)
        _assert_linear_extension(prog, spec, "spec")


class TestRandomTilings:
    @settings(max_examples=10, deadline=None)
    @given(
        sizes=st.tuples(st.integers(3, 5), st.integers(4, 8)),
        factors=st.tuples(st.integers(2, 3), st.integers(2, 4),
                          st.integers(2, 4)),
        nonrect=st.booleans(),
        mdim=st.integers(0, 2),
    )
    def test_random_sor_tiling_order_extends_hb(self, sizes, factors,
                                                nonrect, mdim):
        app = sor.app(*sizes)
        h = (sor.h_nonrectangular(*factors) if nonrect
             else sor.h_rectangular(*factors))
        try:
            prog = TiledProgram(app.nest, h, mapping_dim=mdim)
        except ValueError:
            assume(False)
        assume(prog.num_processors > 1)
        cert = certify_program(prog, protocol="eager")
        assert cert.ok, [d.message for d in cert.diagnostics]
        _assert_linear_extension(prog, ClusterSpec(), "eager")
