"""Happens-before certifier: HB01/HB02 verdicts on the reference
configs, the forced-rendezvous SOR deadlock as an explicit HB cycle,
known-bad programs, and the analyze-surface wiring."""

import dataclasses

import pytest

from repro.analysis import analyze_program
from repro.analysis.hb import check_hb
from repro.analysis.hb.graph import (
    build_hb_graph,
    certify_program,
    happens_before,
    vector_clocks,
)
from repro.apps import adi, heat, jacobi, sor
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec
from repro.runtime.vmpi import DeadlockError

# The six reference configs of the parallel-engine suite.
HB_CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-partial-tiles"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
]


def _prog(app, h, mdim):
    return TiledProgram(app.nest, h, mapping_dim=mdim)


class TestReferenceConfigsCertify:
    @pytest.mark.parametrize("app,h,mdim", HB_CONFIGS)
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["blocking", "overlap"])
    def test_eager_certifies_clean(self, app, h, mdim, overlap):
        cert = certify_program(_prog(app, h, mdim), protocol="eager",
                               overlap=overlap)
        assert cert.ok, [d.message for d in cert.diagnostics]
        assert cert.pairs_checked == cert.pairs_proved > 0
        assert cert.machine.completed

    @pytest.mark.parametrize("app,h,mdim", HB_CONFIGS)
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["blocking", "overlap"])
    def test_spec_protocol_certifies_clean(self, app, h, mdim, overlap):
        # 'spec' with the default spec (rendezvous_threshold=None)
        # must behave exactly like eager.
        spec = ClusterSpec()
        cert = certify_program(_prog(app, h, mdim), protocol="spec",
                               overlap=overlap, spec=spec)
        assert cert.ok, [d.message for d in cert.diagnostics]

    def test_tight_ring_still_certifies(self):
        # depth-1 mailboxes force maximal backpressure; the drain
        # logic must still complete the overlap schedule.
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        for overlap in (False, True):
            cert = certify_program(prog, protocol="eager",
                                   overlap=overlap, mailbox_depth=1)
            assert cert.ok, (overlap,
                             [d.message for d in cert.diagnostics])


class TestRendezvousDeadlock:
    def test_sor_rect_cycle_matches_simulator(self):
        # The paper's rect SOR tiling deadlocks under forced
        # rendezvous: the certifier must report it as an explicit
        # HB02 cycle, and every rank on the cycle must be among the
        # ranks the simulator reports blocked.
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        cert = certify_program(prog, protocol="rendezvous")
        assert not cert.ok
        codes = {d.code for d in cert.diagnostics}
        assert codes == {"HB02"}
        assert len(cert.cycle) >= 2
        diag = cert.diagnostics[0]
        assert "cyclic wait" in diag.message
        assert diag.subject_dict()["cycle"] == list(cert.cycle) or \
            tuple(diag.subject_dict()["cycle"]) == cert.cycle

        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=0)
        with pytest.raises(DeadlockError) as exc:
            DistributedRun(prog, spec).simulate()
        blocked = str(exc.value)
        for rank in cert.cycle:
            assert f"{rank}:" in blocked

    def test_spec_protocol_with_forced_threshold_deadlocks(self):
        # protocol='spec' + threshold 0 is the same hazard.
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=0)
        cert = certify_program(prog, protocol="spec", spec=spec)
        assert not cert.ok
        assert {d.code for d in cert.diagnostics} == {"HB02"}

    def test_rendezvous_safe_schedule_certifies(self):
        # Jacobi is rendezvous-safe (single tag per step); the
        # certifier must agree with the simulator here too.
        prog = _prog(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3),
                     0)
        cert = certify_program(prog, protocol="rendezvous")
        assert cert.ok


class _DroppedSend(TiledProgram):
    """Miscompiled program: tile (0,0,0) forgets its last send."""

    def send_plan(self, tile):
        plan = super().send_plan(tile)
        if tile == (0, 0, 0):
            return plan[:-1]
        return plan


class TestKnownBadPrograms:
    @pytest.fixture(scope="class")
    def broken(self, sor_small):
        return _DroppedSend(sor_small.nest,
                            sor.h_nonrectangular(2, 3, 4),
                            mapping_dim=2)

    def test_dropped_send_jams_the_machine(self, broken):
        cert = certify_program(broken, protocol="eager")
        assert not cert.ok
        assert "HB02" in {d.code for d in cert.diagnostics}
        assert len(cert.graph.unmatched_recvs) == 1
        assert not cert.machine.completed

    def test_dropped_send_is_a_race_in_overlap_mode(self, broken):
        # In overlap mode the producing event is the send itself, so
        # the missing message is also an HB01 unprovable pair.
        cert = certify_program(broken, protocol="eager", overlap=True)
        codes = {d.code for d in cert.diagnostics}
        assert "HB01" in codes and "HB02" in codes


class TestVectorClocks:
    def test_po_and_message_edges_are_ordered(self):
        g = build_hb_graph(
            _prog(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2),
            protocol="eager")
        clocks, processed = vector_clocks(g)
        assert processed.all()
        # program order
        for order in g.rank_order:
            for a, b in zip(order, order[1:]):
                assert happens_before(g, clocks, processed, a, b)
                assert not happens_before(g, clocks, processed, b, a)
        # message edges
        assert g.msg_edges
        for s, r in g.msg_edges:
            assert happens_before(g, clocks, processed, s, r)


class TestCheckHbDriver:
    def test_clean_config_no_diagnostics(self):
        prog = _prog(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2)
        assert check_hb(prog) == []

    def test_rendezvous_only_hazard_demoted_to_warning(self):
        # Mirrors the DL03 dual-protocol policy: the rect SOR tiling
        # completes under eager, so its rendezvous-only cycle is a
        # warning, never an error.
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        diags = check_hb(prog)
        assert diags
        assert all(d.severity == "warning" for d in diags)
        assert {d.code for d in diags} == {"HB02"}
        assert "rendezvous" in diags[0].message

    def test_certificate_is_cached_on_the_program(self):
        prog = _prog(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2)
        c1 = prog.hb_certificate(protocol="eager")
        c2 = prog.hb_certificate(protocol="eager")
        assert c1 is c2
        c3 = prog.hb_certificate(protocol="eager", overlap=True)
        assert c3 is not c1

    def test_analyze_program_hb_pass_is_opt_in(self):
        prog = _prog(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2)
        rep = analyze_program(prog, subject="hb opt-in")
        assert "hb" not in rep.passes_run
        rep_hb = analyze_program(prog, subject="hb opt-in", hb=True)
        assert "hb" in rep_hb.passes_run
        assert rep_hb.ok
