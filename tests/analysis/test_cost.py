"""Static cost certifier: exactness against the simulator and the
parallel runtime on the six reference configs, wiring surfaces, and
the lower-bound verdict."""

import dataclasses

import pytest

from repro.analysis import analyze_program
from repro.analysis.cost import certify_cost, check_cost
from repro.apps import adi, heat, jacobi, sor
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec
from repro.runtime.vmpi import DeadlockError

# The six reference configs of the parallel-engine suite.
COST_CONFIGS = [
    pytest.param(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2,
                 id="sor-rect"),
    pytest.param(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2,
                 id="sor-nonrect"),
    pytest.param(sor.app(5, 7), sor.h_rectangular(3, 4, 5), 2,
                 id="sor-partial-tiles"),
    pytest.param(jacobi.app(3, 5, 5), jacobi.h_rectangular(2, 3, 3), 0,
                 id="jacobi-rect"),
    pytest.param(adi.app(4, 5), adi.h_rectangular(2, 3, 3), 0,
                 id="adi-rect"),
    pytest.param(heat.app(4, 8), heat.h_rectangular(2, 4), 1,
                 id="heat-rect"),
]

# Cluster models spanning the protocol space the simulator executes:
# pure eager, overlapped sends, rendezvous for large messages, and
# the rendezvous/overlap combination (overlap suppresses handshakes).
SPECS = [
    pytest.param(ClusterSpec(), id="eager"),
    pytest.param(dataclasses.replace(ClusterSpec(), overlap=True),
                 id="eager-overlap"),
    pytest.param(dataclasses.replace(ClusterSpec(),
                                     rendezvous_threshold=64),
                 id="rdv64"),
    pytest.param(dataclasses.replace(ClusterSpec(),
                                     rendezvous_threshold=64,
                                     overlap=True),
                 id="rdv64-overlap"),
]


def _prog(app, h, mdim):
    return TiledProgram(app.nest, h, mapping_dim=mdim)


class TestSimulatorExactness:
    """COST01/COST03: analytic == simulated, per edge and bitwise."""

    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("app,h,mdim", COST_CONFIGS)
    def test_channels_and_makespan_match_simulator(self, app, h, mdim,
                                                   spec):
        prog = _prog(app, h, mdim)
        # protocol='spec' is exactly the simulator's dispatch rule.
        cert = prog.cost_certificate(protocol="spec", spec=spec)
        assert cert.ok, [d.message for d in cert.diagnostics]
        stats = DistributedRun(prog, spec).simulate()
        assert cert.channel_messages() == stats.channel_messages
        assert cert.channel_elements() == stats.channel_elements
        assert cert.total_messages == stats.total_messages
        assert cert.total_elements == stats.total_elements
        # Bitwise: the sweep replays the simulator's clock arithmetic.
        assert cert.makespan == stats.makespan
        assert list(cert.rank_clocks) == \
            [stats.clocks[r] for r in sorted(stats.clocks)]

    @pytest.mark.parametrize("app,h,mdim", COST_CONFIGS)
    def test_heterogeneous_ranks_stay_bitwise(self, app, h, mdim):
        spec = dataclasses.replace(
            ClusterSpec(), node_speed_factors=(1.0, 3.0, 1.0, 2.0))
        prog = _prog(app, h, mdim)
        cert = prog.cost_certificate(protocol="spec", spec=spec)
        stats = DistributedRun(prog, spec).simulate()
        assert cert.makespan == stats.makespan

    def test_forced_rendezvous_deadlock_is_cost03(self):
        # The rect SOR pipeline deadlocks under forced rendezvous in
        # the simulator; the sweep must agree statically.
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=0)
        cert = certify_cost(prog, spec=spec, protocol="spec")
        assert not cert.ok
        assert cert.makespan == float("inf")
        assert "COST03" in {d.code for d in cert.diagnostics}
        with pytest.raises(DeadlockError):
            DistributedRun(prog, spec).simulate()


class TestParallelRuntimeExactness:
    """The measured runtime moves exactly the certified volumes."""

    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["blocking", "overlap"])
    def test_parallel_channels_match_certificate(self, overlap):
        app = sor.app(4, 6)
        prog = _prog(app, sor.h_nonrectangular(2, 3, 4), 2)
        spec = ClusterSpec()
        cert = prog.cost_certificate(protocol="spec", spec=spec)
        _, stats = DistributedRun(prog, spec).execute_parallel(
            app.init_value, workers=2, overlap=overlap)
        assert cert.channel_messages() == stats.channel_messages
        assert cert.channel_elements() == stats.channel_elements

    def test_parallel_channels_match_jacobi(self):
        app = jacobi.app(3, 5, 5)
        prog = _prog(app, jacobi.h_rectangular(2, 3, 3), 0)
        spec = ClusterSpec()
        cert = prog.cost_certificate(protocol="spec", spec=spec)
        _, stats = DistributedRun(prog, spec).execute_parallel(
            app.init_value, workers=2)
        assert cert.channel_messages() == stats.channel_messages
        assert cert.channel_elements() == stats.channel_elements


class TestRankVolumesAndBound:
    @pytest.mark.parametrize("app,h,mdim", COST_CONFIGS)
    def test_rank_points_cover_the_nest(self, app, h, mdim):
        prog = _prog(app, h, mdim)
        cert = prog.cost_certificate()
        assert sum(r.points for r in cert.ranks) == prog.total_points()
        assert cert.imbalance >= 1.0

    @pytest.mark.parametrize("app,h,mdim", COST_CONFIGS)
    def test_lower_bound_floors_the_actual_comm(self, app, h, mdim):
        cert = _prog(app, h, mdim).cost_certificate()
        if cert.bound.applicable:
            assert cert.bound.bound_elements <= \
                cert.bound.actual_elements * (1 + 1e-12)

    def test_elongated_shape_warns_cost04(self):
        # A needle tile (16x1x2 on SOR) concentrates the surface on
        # its thin dimensions — 2.25x the balanced-shape lower bound.
        prog = _prog(sor.app(8, 36), sor.h_rectangular(16, 1, 2), 2)
        cert = certify_cost(prog)
        warns = [d for d in cert.diagnostics if d.code == "COST04"]
        assert warns and warns[0].severity == "warning"
        assert "dimension" in warns[0].message
        assert warns[0].suggestion        # names the rescaling move


class TestWiring:
    def test_certificate_is_cached(self):
        prog = _prog(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2)
        assert prog.cost_certificate() is prog.cost_certificate()
        spec = dataclasses.replace(ClusterSpec(), overlap=True)
        assert prog.cost_certificate(spec=spec) is not \
            prog.cost_certificate()

    def test_analyze_program_cost_pass(self):
        prog = _prog(sor.app(4, 6), sor.h_nonrectangular(2, 3, 4), 2)
        report = analyze_program(prog, cost=True)
        assert report.ok
        assert "cost" in report.passes_run
        meta = report.meta["cost"]
        assert meta["ok"] and meta["edges"]
        assert meta["totals"]["elements"] > 0
        assert meta["makespan"] > 0

    def test_check_cost_covers_spec_protocol(self):
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        spec = dataclasses.replace(ClusterSpec(),
                                   rendezvous_threshold=0)
        diags = check_cost(prog, spec=spec)
        # eager certifies clean; the spec protocol deadlocks (COST03).
        assert "COST03" in {d.code for d in diags}

    def test_unknown_mutation_rejected(self):
        prog = _prog(sor.app(4, 6), sor.h_rectangular(2, 3, 4), 2)
        with pytest.raises(ValueError, match="unknown mutation"):
            certify_cost(prog, mutation="nonsense")
