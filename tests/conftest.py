"""Shared fixtures: small app instances and tilings used across suites."""

import pytest

from repro.apps import adi, jacobi, sor


@pytest.fixture(scope="session")
def sor_small():
    return sor.app(4, 6)


@pytest.fixture(scope="session")
def jacobi_small():
    return jacobi.app(3, 5, 5)


@pytest.fixture(scope="session")
def adi_small():
    return adi.app(4, 5)


@pytest.fixture(scope="session")
def sor_reference_small():
    return sor.reference(4, 6)


@pytest.fixture(scope="session")
def jacobi_reference_small():
    return jacobi.reference(3, 5, 5)


@pytest.fixture(scope="session")
def adi_reference_small():
    return adi.reference(4, 5)


def values_close(a, b, tol=1e-11):
    """Dict-to-dict comparison with exact key sets."""
    return set(a) == set(b) and all(abs(a[k] - b[k]) < tol for k in a)
