"""Unit tests for the SOR application definition."""

import pytest

from repro.apps import sor
from repro.linalg import RatMat
from repro.loops import is_legal_skew
from repro.tiling import tiling_cone_rays


class TestNest:
    def test_original_dependences(self):
        nest = sor.original_nest(4, 6)
        assert set(nest.dependences) == {
            (0, 1, 0), (0, 0, 1), (1, -1, 0), (1, 0, -1), (1, 0, 0)
        }

    def test_skew_matches_paper(self):
        assert sor.SKEW == RatMat([[1, 0, 0], [1, 1, 0], [2, 0, 1]])

    def test_skew_legal(self):
        nest = sor.original_nest(4, 6)
        assert is_legal_skew(sor.SKEW, nest.dependences)

    def test_skewed_dependences_match_paper(self, sor_small):
        assert set(sor_small.nest.dependences) == {
            (1, 1, 2), (0, 1, 0), (1, 0, 2), (1, 1, 1), (0, 0, 1)
        }

    def test_skewed_domain_extents(self, sor_small):
        """t' in [1,M], i' in [2,M+N], j' in [3,2M+N]."""
        dom = sor_small.nest.domain
        assert dom.contains((1, 2, 3))
        assert dom.contains((4, 10, 14))
        assert not dom.contains((0, 2, 3))
        assert not dom.contains((4, 11, 14))

    def test_mapping_dim_is_third(self, sor_small):
        assert sor_small.mapping_dim == 2


class TestTilingMatrices:
    def test_nr_third_row_on_cone(self):
        """The H_nr third row is parallel to the cone ray (-1, 0, 1)."""
        deps = [(1, 1, 2), (0, 1, 0), (1, 0, 2), (1, 1, 1), (0, 0, 1)]
        rays = tiling_cone_rays(deps)
        assert (-1, 0, 1) in rays
        h = sor.h_nonrectangular(2, 3, 5)
        row = [x * 5 for x in h.row(2)]
        assert tuple(int(v) for v in row) == (-1, 0, 1)

    def test_equal_tile_volume(self):
        hr = sor.h_rectangular(2, 3, 5)
        hn = sor.h_nonrectangular(2, 3, 5)
        assert abs(hr.inverse().det()) == abs(hn.inverse().det()) == 30

    def test_shared_leading_rows(self):
        hr = sor.h_rectangular(2, 3, 5)
        hn = sor.h_nonrectangular(2, 3, 5)
        assert hr.row(0) == hn.row(0)
        assert hr.row(1) == hn.row(1)


class TestReference:
    def test_boundary_values_from_init(self):
        ref = sor.reference(2, 3)
        # all interior cells computed
        assert len(ref) == 2 * 3 * 3

    def test_deterministic(self):
        assert sor.reference(3, 4) == sor.reference(3, 4)

    def test_kernel_blends_neighbours(self):
        """Spot-check one cell against the recurrence by hand."""
        ref = sor.reference(1, 2)
        w = sor.OMEGA
        iv = sor.init_value
        t, i, j = 1, 1, 1
        expect = (w / 4) * (
            iv("A", (1, 0, 1)) + iv("A", (1, 1, 0))
            + iv("A", (0, 2, 1)) + iv("A", (0, 1, 2))
        ) + (1 - w) * iv("A", (0, 1, 1))
        assert abs(ref[(1, 1, 1)] - expect) < 1e-12
