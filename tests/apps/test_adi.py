"""Unit tests for the ADI application definition."""

import pytest

from repro.apps import adi
from repro.schedule import last_tile_time
from repro.tiling import in_tiling_cone, is_legal_tiling


class TestNest:
    def test_dependences_match_paper(self, adi_small):
        assert set(adi_small.nest.dependences) == {
            (1, 0, 0), (1, 1, 0), (1, 0, 1)
        }

    def test_no_skew_needed(self, adi_small):
        assert adi_small.skew is None
        assert adi_small.nest is adi_small.original

    def test_two_written_arrays(self, adi_small):
        assert set(adi_small.nest.written_arrays) == {"X", "B"}

    def test_input_array_not_written(self, adi_small):
        reads = [r.array for s in adi_small.nest.statements
                 for r in s.reads]
        assert "A" in reads
        assert "A" not in adi_small.nest.written_arrays

    def test_mapping_dim_is_first(self, adi_small):
        assert adi_small.mapping_dim == 0


class TestTilingMatrices:
    def test_all_legal(self, adi_small):
        deps = adi_small.nest.dependences
        for hf in (adi.h_rectangular, adi.h_nr1, adi.h_nr2, adi.h_nr3):
            assert is_legal_tiling(hf(2, 4, 4), deps)

    def test_nr3_row_in_cone(self, adi_small):
        h = adi.h_nr3(2, 4, 4)
        assert in_tiling_cone(tuple(h.row(0)), adi_small.nest.dependences)

    def test_nr3_parallel_to_extreme_ray_when_cubic(self):
        h = adi.h_nr3(4, 4, 4)
        row = tuple(x * 4 for x in h.row(0))
        assert tuple(int(v) for v in row) == (1, -1, -1)

    def test_equal_volumes(self):
        vols = {
            abs(hf(2, 4, 4).inverse().det())
            for hf in (adi.h_rectangular, adi.h_nr1, adi.h_nr2, adi.h_nr3)
        }
        assert vols == {32}

    def test_completion_formula_ordering(self):
        """t_nr3 < t_nr1 = t_nr2 < t_r (y = z)."""
        j_max = (64, 128, 128)
        x, y, z = 8, 16, 16
        ts = {
            name: last_tile_time(hf(x, y, z), j_max)
            for name, hf in [("r", adi.h_rectangular), ("nr1", adi.h_nr1),
                             ("nr2", adi.h_nr2), ("nr3", adi.h_nr3)]
        }
        assert ts["nr3"] < ts["nr1"] == ts["nr2"] < ts["r"]


class TestReference:
    def test_b_stays_positive(self):
        ref = adi.reference(5, 6)
        assert all(v > 0.5 for v in ref["B"].values())

    def test_spot_value_x(self):
        ref = adi.reference(1, 1)
        iv = adi.init_value
        a = iv("A", (1, 1))
        expect = (
            iv("X", (0, 1, 1))
            + iv("X", (0, 1, 0)) * a / iv("B", (0, 1, 0))
            - iv("X", (0, 0, 1)) * a / iv("B", (0, 0, 1))
        )
        assert abs(ref["X"][(1, 1, 1)] - expect) < 1e-12

    def test_sizes(self):
        ref = adi.reference(2, 3)
        assert len(ref["X"]) == len(ref["B"]) == 2 * 9
