"""Unit tests for the Jacobi application definition."""

import pytest

from repro.apps import jacobi
from repro.linalg import RatMat
from repro.loops import is_legal_skew
from repro.tiling import in_tiling_cone


class TestNest:
    def test_original_dependences(self):
        nest = jacobi.original_nest(3, 5, 5)
        assert set(nest.dependences) == {
            (1, 0, 0), (1, -1, 0), (1, 1, 0), (1, 0, -1), (1, 0, 1)
        }

    def test_skew_matches_paper(self):
        assert jacobi.SKEW == RatMat([[1, 0, 0], [1, 1, 0], [1, 0, 1]])

    def test_skew_legal(self):
        nest = jacobi.original_nest(3, 5, 5)
        assert is_legal_skew(jacobi.SKEW, nest.dependences)

    def test_skewed_dependences_match_paper(self, jacobi_small):
        assert set(jacobi_small.nest.dependences) == {
            (1, 1, 1), (1, 2, 1), (1, 0, 1), (1, 1, 2), (1, 1, 0)
        }

    def test_mapping_dim_is_first(self, jacobi_small):
        assert jacobi_small.mapping_dim == 0


class TestTilingMatrices:
    def test_nr_differs_in_one_entry(self):
        hr = jacobi.h_rectangular(2, 4, 3)
        hn = jacobi.h_nonrectangular(2, 4, 3)
        diffs = [
            (i, j)
            for i in range(3) for j in range(3)
            if hr[i, j] != hn[i, j]
        ]
        assert diffs == [(0, 1)]  # "only one element of H was changed"

    def test_nr_first_row_on_cone_boundary(self, jacobi_small):
        deps = jacobi_small.nest.dependences
        h = jacobi.h_nonrectangular(2, 4, 3)
        row = tuple(h.row(0))
        assert in_tiling_cone(row, deps)
        # active on (1,2,1): exactly on the boundary
        from fractions import Fraction
        assert sum(r * d for r, d in zip(row, (1, 2, 1))) == 0

    def test_p_integral_requires_even_y(self):
        from repro.polyhedra import box
        from repro.tiling import TilingTransformation
        with pytest.raises(ValueError):
            TilingTransformation(jacobi.h_nonrectangular(2, 3, 3),
                                 box([0, 0, 0], [5, 5, 5]))

    def test_equal_volume(self):
        assert abs(jacobi.h_rectangular(2, 4, 3).inverse().det()) == \
            abs(jacobi.h_nonrectangular(2, 4, 3).inverse().det()) == 24


class TestReference:
    def test_size(self):
        assert len(jacobi.reference(2, 3, 4)) == 2 * 3 * 4

    def test_spot_value(self):
        ref = jacobi.reference(1, 1, 1)
        iv = jacobi.init_value
        expect = jacobi.COEF * (
            iv("A", (0, 1, 1)) + iv("A", (0, 0, 1)) + iv("A", (0, 2, 1))
            + iv("A", (0, 1, 0)) + iv("A", (0, 1, 2))
        )
        assert abs(ref[(1, 1, 1)] - expect) < 1e-12
