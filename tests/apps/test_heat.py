"""Unit + integration tests for the 2D heat app (n = 2 coverage)."""

import pytest

from repro.apps import heat
from repro.runtime import ClusterSpec, DistributedRun, TiledProgram
from repro.runtime.interpreter import run_sequential, run_tiled_sequential
from repro.tiling import is_legal_tiling, tiling_cone_rays

from tests.conftest import values_close

SPEC = ClusterSpec()


@pytest.fixture(scope="module")
def ref():
    return heat.reference(8, 12)


class TestDefinition:
    def test_dependences(self):
        nest = heat.original_nest(4, 6)
        assert set(nest.dependences) == {(1, 1), (1, 0), (1, -1)}

    def test_cone_rays(self):
        rays = set(tiling_cone_rays([(1, 1), (1, 0), (1, -1)]))
        assert rays == {(1, 1), (1, -1)}

    def test_skewed_dependences_nonnegative(self):
        a = heat.app(4, 6)
        for d in a.nest.dependences:
            assert all(x >= 0 for x in d)

    def test_diamond_legal_on_original(self):
        nest = heat.original_nest(4, 6)
        assert is_legal_tiling(heat.h_diamond(2), nest.dependences)
        assert not is_legal_tiling(heat.h_rectangular(2, 2),
                                   nest.dependences)

    def test_interpreter_matches_reference(self, ref):
        a = heat.app(8, 12)
        got = run_sequential(a.original, a.init_value)
        assert values_close(got["U"], ref)

    def test_skewed_interpreter_matches(self, ref):
        a = heat.app(8, 12)
        got = run_sequential(a.nest, a.init_value)
        assert values_close(got["U"], ref)


class TestDistributed2D:
    def test_skewed_rect(self, ref):
        a = heat.app(8, 12)
        prog = TiledProgram(a.nest, heat.h_rectangular(3, 4),
                            mapping_dim=a.mapping_dim)
        arrays, _ = DistributedRun(prog, SPEC).execute(a.init_value)
        assert values_close(arrays["U"], ref)

    def test_skewed_band(self, ref):
        a = heat.app(8, 12)
        prog = TiledProgram(a.nest, heat.h_skewed_band(3, 2),
                            mapping_dim=a.mapping_dim)
        arrays, _ = DistributedRun(prog, SPEC).execute(a.init_value)
        assert values_close(arrays["U"], ref)

    def test_diamond_on_original(self, ref):
        a = heat.app_unskewed(8, 12)
        prog = TiledProgram(a.nest, heat.h_diamond(2),
                            mapping_dim=a.mapping_dim)
        arrays, _ = DistributedRun(prog, SPEC).execute(a.init_value)
        assert values_close(arrays["U"], ref)

    def test_processor_mesh_is_1d(self):
        a = heat.app(8, 12)
        prog = TiledProgram(a.nest, heat.h_rectangular(3, 4),
                            mapping_dim=0)
        assert all(len(pid) == 1 for pid in prog.pids)

    def test_tiled_sequential(self, ref):
        a = heat.app_unskewed(8, 12)
        got = run_tiled_sequential(a.nest, heat.h_diamond(2),
                                   a.init_value)
        assert values_close(got["U"], ref)


class TestShapeEffect2D:
    def test_band_tiling_not_slower_than_rect(self):
        """Cone-aligned band vs rectangular at equal volume, 2D."""
        a = heat.app(40, 48)
        spec = ClusterSpec()
        results = {}
        # equal volume: rect 4x12 = 48 = band 2*4*6
        for label, h in (("rect", heat.h_rectangular(4, 12)),
                         ("band", heat.h_skewed_band(4, 6))):
            prog = TiledProgram(a.nest, h, mapping_dim=0)
            stats = DistributedRun(prog, spec).simulate()
            results[label] = stats.makespan
        assert results["band"] <= results["rect"] * 1.02