#!/usr/bin/env python3
"""Quickstart: tile a stencil loop, generate the SPMD program, run it.

This walks the full pipeline of the paper on a small wavefront stencil:

1. define a perfectly nested loop with uniform dependencies;
2. pick a (non-rectangular) tiling from the dependence cone;
3. compile: computation/data distribution + communication sets;
4. execute on the simulated 16-node cluster with real data movement;
5. check the distributed result against a plain sequential run.

Run:  python examples/quickstart.py
"""

from repro import compile_tiled, execute, ClusterSpec
from repro.loops import ArrayRef, LoopNest, Statement
from repro.runtime.interpreter import run_sequential
from repro.tiling import parallelepiped_tiling, tiling_cone_rays


def main() -> None:
    # -- 1. the loop:  A[i,j] = f(A[i-1,j], A[i-1,j-1], A[i-1,j+1]) ----
    def kernel(_point, reads):
        left, mid, right = reads
        return 0.25 * left + 0.5 * mid + 0.25 * right

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0)),
        [
            ArrayRef.of("A", (-1, -1)),
            ArrayRef.of("A", (-1, 0)),
            ArrayRef.of("A", (-1, 1)),
        ],
        kernel,
    )
    nest = LoopNest.rectangular(
        "wavefront", lower=[0, 0], upper=[23, 23],
        statements=[stmt],
        dependences=[(1, 1), (1, 0), (1, -1)],
    )

    # -- 2. tile shape from the dependence cone -------------------------
    rays = tiling_cone_rays(nest.dependences)
    print(f"tiling cone extreme rays: {rays}")
    # (1,1) and (1,-1) span the cone: a diamond tile is legal.
    h = parallelepiped_tiling([["1/8", "-1/8"], ["1/8", "1/8"]])

    # -- 3. compile ------------------------------------------------------
    prog = compile_tiled(nest, h)
    print(f"compiled: {prog.num_processors} processors, "
          f"{len(prog.dist.tiles)} tiles of volume "
          f"{prog.tiling.tile_volume()}")
    print(f"communication vector CC = {prog.comm.cc}")
    print(f"tile dependencies D^S   = {prog.comm.d_s}")

    # -- 4. run on the virtual cluster ------------------------------------
    def init(array, cell):
        return 1.0 if cell[0] < 0 or not (0 <= cell[1] <= 23) else 0.0

    arrays, stats = execute(prog, init, spec=ClusterSpec())
    print(f"simulated makespan: {stats.makespan * 1e3:.3f} ms, "
          f"{stats.total_messages} messages, "
          f"{stats.total_elements} elements moved")

    # -- 5. verify ---------------------------------------------------------
    reference = run_sequential(nest, init)
    assert arrays["A"] == reference["A"], "distributed result differs!"
    print("distributed result matches the sequential reference, "
          f"{len(arrays['A'])} cells checked")


if __name__ == "__main__":
    main()
