#!/usr/bin/env python3
"""ADI tile-shape shootout: four tilings, one winner (paper §4.3).

Compares H_r, H_nr1, H_nr2, H_nr3 (equal tile volume, equal
communication volume, same 16 processors) and shows the completion-time
ordering t_nr3 < t_nr1 = t_nr2 < t_r predicted by Hodzic & Shang's
cone-alignment theory — both in the closed-form schedule analysis and
in the discrete-event simulation.

Run:  python examples/adi_tile_shapes.py [T N x]
"""

import sys

from repro import compile_tiled, simulate, FAST_ETHERNET_CLUSTER
from repro.apps import adi
from repro.experiments.figures import adi_factors
from repro.schedule import last_tile_time, schedule_length
from repro.tiling import tiling_cone_rays


def main(t: int = 100, n: int = 256, x: int = 4) -> None:
    app = adi.app(t, n)
    y, z = adi_factors(t, n)
    print(f"ADI T={t} N={n}; x={x} y={y} z={z}")
    print(f"dependence cone rays: "
          f"{tiling_cone_rays(app.nest.dependences)}")
    print(f"{'tiling':<8}{'last step':>10}{'wavefronts':>12}"
          f"{'T_par (s)':>12}{'speedup':>9}")
    j_max = (t, n, n)
    rows = []
    for label, hf in (("rect", adi.h_rectangular), ("nr1", adi.h_nr1),
                      ("nr2", adi.h_nr2), ("nr3", adi.h_nr3)):
        h = hf(x, y, z)
        prog = compile_tiled(app.nest, h, mapping_dim=app.mapping_dim)
        stats = simulate(prog)
        t_seq = FAST_ETHERNET_CLUSTER.compute_time(prog.total_points())
        speedup = t_seq / stats.makespan
        rows.append((label, speedup))
        print(f"{label:<8}{last_tile_time(h, j_max):>10}"
              f"{schedule_length(prog.tiling):>12}"
              f"{stats.makespan:>12.4f}{speedup:>9.2f}")
    best = max(rows, key=lambda r: r[1])
    print(f"\nwinner: {best[0]} — the cone-aligned shape, "
          "as the theory demands" if best[0] == "nr3"
          else f"\nwinner: {best[0]} (unexpected; try larger T/N)")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
