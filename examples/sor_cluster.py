#!/usr/bin/env python3
"""SOR on the simulated cluster: the paper's §4.1 experiment, end to end.

Reproduces one row of Figure 6: skew SOR, tile it rectangularly and
non-rectangularly with the same factors, simulate both on the
FastEthernet cluster model, and report the speedups plus a Gantt view
of the pipeline.

Run:  python examples/sor_cluster.py [M N z]
"""

import sys

from repro import ClusterSpec, compile_tiled, simulate
from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.runtime import EventTrace
from repro.runtime.trace import ascii_gantt
from repro.schedule import last_tile_time


def main(m: int = 100, n: int = 200, z: int = 8) -> None:
    spec = ClusterSpec()
    x, y = sor_factors(m, n)
    app = sor.app(m, n)
    print(f"SOR M={m} N={n}; factors x={x} y={y} z={z} "
          f"(4x4 processor mesh, chains along the 3rd dimension)")

    j_max = (m, m + n, 2 * m + n)
    results = {}
    for label, h in (("rectangular", sor.h_rectangular(x, y, z)),
                     ("non-rectangular", sor.h_nonrectangular(x, y, z))):
        prog = compile_tiled(app.nest, h, mapping_dim=app.mapping_dim)
        trace = EventTrace()
        from repro.runtime import DistributedRun
        stats = DistributedRun(prog, spec, trace=trace).simulate()
        t_seq = spec.compute_time(prog.total_points())
        results[label] = (prog, stats, t_seq, trace)
        print(f"\n--- {label} ---")
        print(f"last-point schedule step Pi.floor(H j_max) = "
              f"{last_tile_time(h, j_max)}")
        print(f"tiles: {len(prog.dist.tiles)}, messages: "
              f"{stats.total_messages}, elements: {stats.total_elements}")
        print(f"T_par = {stats.makespan:.4f}s   "
              f"speedup = {t_seq / stats.makespan:.2f} on "
              f"{prog.num_processors} processors")

    r = results["rectangular"]
    nr = results["non-rectangular"]
    gain = (r[1].makespan / nr[1].makespan - 1) * 100
    print(f"\nnon-rectangular tiling is {gain:.1f}% faster "
          f"(paper §4.4: 17.3% average improvement for SOR)")

    print("\npipeline of the first 8 ranks (non-rectangular), "
          "#=compute >=send <=wait:")
    for row in ascii_gantt(nr[3], width=76)[:8]:
        print(f"rank {row.rank:>2} |{row.cells}|")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
