#!/usr/bin/env python3
"""Bring your own stencil: auto-skew, cone analysis, shape comparison.

Shows the 'compiler as a library' workflow on a loop the paper never
saw: a 3D anisotropic stencil with a negative dependence.  The pipeline

    dependences -> auto-skew -> tiling cone -> candidate shapes ->
    simulate each -> pick the winner -> verify numerics

is exactly what a user would script with this package.

Run:  python examples/custom_stencil.py
"""

from repro import ClusterSpec, compile_tiled, execute, simulate
from repro.apps.base import TiledApp  # noqa: F401  (shown for docs)
from repro.loops import (
    ArrayRef,
    LoopNest,
    Statement,
    find_skew_for_rectangular_tiling,
    skew_nest,
)
from repro.runtime.interpreter import run_sequential
from repro.tiling import (
    cone_aligned_tiling,
    rectangular_tiling,
    tiling_cone_rays,
)


def main() -> None:
    # A[t,i,j] = f(A[t-1,i,j], A[t-1,i+1,j-1], A[t,i-1,j])
    def kernel(_p, reads):
        return 0.4 * reads[0] + 0.35 * reads[1] + 0.25 * reads[2] + 0.01

    stmt = Statement.of(
        ArrayRef.of("A", (0, 0, 0)),
        [
            ArrayRef.of("A", (-1, 0, 0)),
            ArrayRef.of("A", (-1, 1, -1)),
            ArrayRef.of("A", (0, -1, 0)),
        ],
        kernel,
    )
    nest = LoopNest.rectangular(
        "custom", [0, 0, 0], [11, 11, 11], [stmt],
        dependences=[(1, 0, 0), (1, -1, 1), (0, 1, 0)],
    )

    # -- negative dependence: find a skew automatically --------------------
    t = find_skew_for_rectangular_tiling(nest.dependences)
    print(f"auto-skew found:\n  T = {t!r}")
    skewed = skew_nest(nest, t)
    print(f"skewed dependences: {skewed.dependences}")

    # -- cone analysis -------------------------------------------------------
    rays = tiling_cone_rays(skewed.dependences)
    print(f"tiling cone rays of the skewed nest: {rays}")

    # -- candidate shapes ------------------------------------------------------
    spec = ClusterSpec()
    candidates = {"rect": rectangular_tiling([3, 3, 3])}
    # a cone-aligned alternative using three of the rays, same volume
    for combo_name, combo in (("cone", rays[:3]),):
        try:
            h = cone_aligned_tiling(combo, [3, 3, 3],
                                    deps=skewed.dependences)
            h.inverse().to_int_rows()  # require integer P
            candidates[combo_name] = h
        except ValueError as e:
            print(f"skipping {combo_name}: {e}")

    best = None
    for name, h in candidates.items():
        prog = compile_tiled(skewed, h)
        stats = simulate(prog, spec)
        t_seq = spec.compute_time(prog.total_points())
        s = t_seq / stats.makespan
        print(f"{name:<6} procs={prog.num_processors:<3} "
              f"T_par={stats.makespan * 1e3:8.3f} ms  speedup={s:.2f}")
        if best is None or s > best[1]:
            best = (name, s, h, prog)

    print(f"best shape: {best[0]}")

    # -- verify the winner numerically -------------------------------------------
    def init(_a, cell):
        return 0.1 * cell[0] - 0.05 * cell[1] + 0.02 * cell[2]

    arrays, _ = execute(best[3], init, spec=spec)
    ref = run_sequential(skewed, init)
    diff = max(abs(arrays["A"][k] - ref["A"][k]) for k in ref["A"])
    print(f"max |distributed - sequential| = {diff:.2e} over "
          f"{len(ref['A'])} cells")
    assert diff < 1e-12


if __name__ == "__main__":
    main()
