#!/usr/bin/env python3
"""Tile-size tuning: the paper's 'adjust tile size properly' automated.

The UET-UCT theory behind the paper's mapping choice (their ref [3])
says the chain mapping is optimal when a tile's computation time about
equals its communication time.  This example tunes the chain extent
``z`` of the SOR experiment three ways — the closed-form ratio
balance, an empirical simulated sweep, and the full tile-*shape*
autotuner (``repro tune``), whose verdict plugs into the same
``SweepOutcome`` consumers via ``TuneResult.as_sweep_outcome()``.

Run:  python examples/tile_size_tuning.py [M N]
"""

import sys

from repro.apps import sor
from repro.experiments.figures import sor_factors
from repro.runtime import ClusterSpec
from repro.tiling import ratio_balanced_extent, sweep_best_extent
from repro.tuning import TuneConfig, tune_tile_shape


def main(m: int = 100, n: int = 200) -> None:
    spec = ClusterSpec()
    x, y = sor_factors(m, n)
    app = sor.app(m, n)
    h_of = lambda z: sor.h_nonrectangular(x, y, z)
    candidates = (2, 3, 4, 6, 8, 12, 16, 24, 32)

    balanced = ratio_balanced_extent(h_of, app.nest, app.mapping_dim,
                                     spec, candidates=candidates)
    print(f"ratio-balanced chain extent (comp ~ comm): z = {balanced}")

    outcome = sweep_best_extent(h_of, app.nest, app.mapping_dim, spec,
                                candidates)
    print("\nempirical sweep:")
    print(f"{'z':>4}  speedup")
    for z, s in outcome.curve:
        marker = "  <- best" if z == outcome.best_extent else ""
        marker = marker or ("  <- ratio-balanced" if z == balanced else "")
        print(f"{z:>4}  {s:7.3f}{marker}")
    print(f"\nbest simulated extent: z = {outcome.best_extent} "
          f"(speedup {outcome.best_speedup:.3f})")
    gap = abs(outcome.best_extent - balanced)
    print(f"closed-form vs empirical gap: {gap} candidate steps — the "
          "ratio rule lands near the sweep optimum, as ref [3] predicts")

    # The shape tuner searches H matrices, not just the chain extent,
    # but its verdict renders as the same SweepOutcome shape.
    tuned = tune_tile_shape(
        app.nest, app.mapping_dim, spec=spec,
        config=TuneConfig(max_candidates=24),
        baseline_h=sor.h_nonrectangular(x, y, outcome.best_extent),
    ).as_sweep_outcome()
    print(f"\nshape autotuner: chain extent z = {tuned.best_extent}, "
          f"speedup {tuned.best_speedup:.3f} "
          f"(vs {outcome.best_speedup:.3f} from the extent-only sweep)")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
