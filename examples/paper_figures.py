#!/usr/bin/env python3
"""Regenerate miniature versions of all six paper figures in one go.

Uses reduced iteration spaces and sweeps so the whole script finishes
in about a minute; the benchmark suite (`pytest benchmarks/
--benchmark-only`) runs the paper-scale versions.

Run:  python examples/paper_figures.py
"""

from repro.experiments import figures
from repro.experiments.report import format_table, improvement_percent


def main() -> None:
    runs = [
        ("Figure 5", lambda: figures.fig5(
            spaces=((40, 60), (60, 80)), z_values=(4, 8, 16))),
        ("Figure 6", lambda: figures.fig6(
            m=60, n=100, z_values=(4, 8, 16, 32))),
        ("Figure 7", lambda: figures.fig7(
            spaces=((20, 40, 40), (30, 60, 60)), x_values=(2, 4, 8))),
        ("Figure 8", lambda: figures.fig8(
            t=25, i=50, j=50, x_values=(2, 4, 8))),
        ("Figure 9", lambda: figures.fig9(
            spaces=((25, 64), (50, 64)), x_values=(2, 4, 8))),
        ("Figure 10", lambda: figures.fig10(
            t=50, n=128, x_values=(2, 4, 8, 16))),
    ]
    for name, fn in runs:
        fig = fn()
        print("=" * 70)
        print(f"{name} (miniature)")
        print("=" * 70)
        print(format_table(fig))
        if fig.figure in ("fig6", "fig8"):
            imp = improvement_percent(fig, "rectangular",
                                      "non-rectangular")
            print(f"mean improvement: {imp:.1f}%")
        elif fig.figure == "fig10":
            imp = improvement_percent(fig, "rect", "nr3")
            print(f"mean improvement (nr3 vs rect): {imp:.1f}%")
        print()


if __name__ == "__main__":
    main()
