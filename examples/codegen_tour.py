#!/usr/bin/env python3
"""Code generation tour: what the paper's tool actually emits.

Prints (1) the sequential tiled code of §2.3 — the 2n-deep loop with
Fourier-Motzkin tile bounds and HNF strides/offsets — and (2) the SPMD
C+MPI node program of §3 with its compile-time communication constants,
for the skewed Jacobi under the paper's one-element-changed H_nr.

Run:  python examples/codegen_tour.py
"""

from repro.apps import jacobi
from repro.codegen import generate_mpi_code, generate_sequential_tiled_code


def main() -> None:
    app = jacobi.app(12, 16, 16)
    h = jacobi.h_nonrectangular(3, 4, 4)

    print("=" * 72)
    print("Sequential tiled code (paper §2.3) — skewed Jacobi, H_nr")
    print("=" * 72)
    print(generate_sequential_tiled_code(app.nest, h))

    print("=" * 72)
    print("Data-parallel MPI code (paper §3)")
    print("=" * 72)
    print(generate_mpi_code(app.nest, h, mapping_dim=app.mapping_dim))


if __name__ == "__main__":
    main()
