"""Versioned on-disk format for compiled :class:`TiledProgram` state.

An artifact snapshots everything the compile pipeline *derives* from
``(nest, H, mapping_dim)``: the enumerated tile space and per-tile
classification, partial-tile masks, per-tile point counts, the tile
dependence sets ``D^S``, the frozen lexicographic payload order, the
dense engine's wavefront vector and full-tile level batches, the
prewarmed communication region counts, the per-rank schedule plans,
any overlap (boundary/interior) splits, and any HB/cost certificates
computed before the snapshot.  Loading seeds these straight into the
caches of a freshly shelled :class:`TiledProgram` (via
:meth:`TiledProgram.from_compiled_state`), so none of the expensive
pipeline stages — the legality proof, the Fourier-Motzkin tile
enumeration, the lattice sweeps, the schedule replays — re-run.

Every stored value is a deterministic function of the content key's
inputs, so a loaded program is *bitwise-equivalent* to a fresh compile:
identical ``simulate()`` RunStats and identical ``execute_dense()``
fields at tol=0.0.  Cheap derived invariants (TTIS box, strides, HNF
diagonal, CC vector, LDS offsets) are re-derived at load time and
compared against the stored copies — a drifted compiler rejects the
artifact instead of trusting stale geometry.

File layout (single file, written atomically via rename)::

    MAGIC (10 bytes)  "REPROART" 0x01 '\\n'
    sha256 hex digest of the body (64 bytes) + '\\n'
    body: pickle of the payload dict

The digest catches truncation and bit corruption; any failure to
decode, any version or key mismatch, raises :class:`ArtifactError`,
which the cache layer translates into a clean recompile.  Artifacts are
a *trusted local cache* (they embed pickle); do not load artifacts from
untrusted sources.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from hashlib import sha256
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.artifacts.hashing import FORMAT_VERSION, content_key
from repro.linalg.ratmat import RatMat
from repro.loops.nest import LoopNest
from repro.native.kexpr import kernel_fingerprint
from repro.runtime.executor import TiledProgram
from repro.tiling.transform import TilingTransformation

MAGIC = b"REPROART\x01\n"

Tile = Tuple[int, ...]


class ArtifactError(ValueError):
    """A corrupt, truncated, version-skewed or mismatched artifact."""


class _LazyMaskCache(dict):
    """Tile-mask cache backed by bit-packed rows from an artifact.

    Masks dominate an artifact's byte size, so they stay packed on load
    and each tile's row is unpacked at most once, on first use — the
    hot path (``dict.get``) only pays the unpack for tiles an execution
    actually touches.  Entries for new tiles are stored normally.
    """

    def __init__(self, rows: Dict[Tile, int], packed: np.ndarray,
                 nbits: int):
        super().__init__()
        self._rows = rows
        self._packed = packed
        self._nbits = nbits

    def get(self, key, default=None):
        val = dict.get(self, key)
        if val is None:
            row = self._rows.get(key)
            if row is None:
                return default
            val = np.unpackbits(
                self._packed[row], count=self._nbits).view(np.bool_)
            self[key] = val
        return val


def _precompile(prog: TiledProgram) -> None:
    """Drive every deterministic compile-time stage an artifact stores.

    Idempotent: each stage is already cached on the program, so
    snapshotting a program that has been executed or certified simply
    reuses (and additionally captures) what exists.
    """
    from repro.runtime.parallel import build_rank_plans

    prog.dense_schedule_vector()
    prog.dense_lex_order()
    prog.dense_level_batches(prog.dist.tiles[0])
    prog.prewarm_region_counts()
    for tile in prog.dist.tiles:
        prog.tile_point_count(tile)
        if prog.tiling.classify_tile(tile) == "partial":
            prog.tiling.tile_mask(tile)
    build_rank_plans(prog)


def _deps_key(nest: LoopNest) -> Tuple[Tile, ...]:
    return tuple(tuple(int(x) for x in d) for d in nest.dependences)


def snapshot_program(prog: TiledProgram,
                     mapping_dim: Optional[int] = None,
                     key: Optional[str] = None) -> Dict[str, Any]:
    """Serialize ``prog``'s derived state into an artifact payload.

    ``mapping_dim`` is the *requested* mapping dimension of the compile
    (part of the content key); the resolved dimension is stored in the
    payload so loading does not re-run the span-based resolution.
    """
    from repro.analysis.certstate import dump_certificates
    from repro.runtime.parallel import build_rank_plans

    _precompile(prog)
    tiling = prog.tiling
    ttis = tiling.ttis
    tiles = prog.dist.tiles
    n = prog.n

    classes = np.zeros(len(tiles), dtype=np.uint8)
    masks: List[np.ndarray] = []
    # Partial-tile mask rows are stored in tile-enumeration order, so
    # the row index is recoverable from `classes` alone at load time.
    for i, t in enumerate(tiles):
        if tiling.classify_tile(t) == "partial":
            classes[i] = 1
            masks.append(tiling.tile_mask(t))
    nlat = len(ttis.lattice_points_np())
    if masks:
        packed = np.packbits(
            np.asarray(masks, dtype=np.uint8), axis=1)
    else:
        packed = np.zeros((0, (nlat + 7) // 8), dtype=np.uint8)

    return {
        "format_version": FORMAT_VERSION,
        "key": key if key is not None
        else content_key(prog.nest, tiling.h, mapping_dim),
        "meta": {
            "nest": prog.nest.name,
            "n": n,
            "mapping_dim_request": mapping_dim,
            "mapping_dim": prog.dist.m,
            "num_processors": prog.num_processors,
            "num_tiles": len(tiles),
            # Kernel content is deliberately outside the content key
            # (geometry never depends on it), so it is pinned here
            # instead: load-time drift in this fingerprint rejects the
            # artifact, and the native backend folds it into its own
            # ``.so`` key — an edited app kernel can never be served a
            # stale snapshot or shared object.
            "kernel_fingerprint": kernel_fingerprint(prog.nest),
        },
        # Cheap re-derivable invariants, compared at load time.
        "check": {
            "v": ttis.v,
            "c": ttis.c,
            "hnf": ttis.hnf.to_int_rows(),
            "cc": prog.comm.cc,
            "offsets": prog.comm.offsets,
            "d_m": prog.comm.d_m,
        },
        "geometry": {
            "tiles": np.asarray(tiles, dtype=np.int64),
            "classes": classes,
            "points": np.asarray(
                [prog.tile_point_count(t) for t in tiles],
                dtype=np.int64),
            "masks_packed": packed,
            "nlat": nlat,
            "d_s": prog.comm.d_s,
            "lex_order": prog.dense_lex_order(),
            "dense_s": prog.dense_schedule_vector(),
            "dense_batches": list(prog._dense_full_batches or []),
            "region_full": dict(prog._full_region_cache),
            "region_counts": dict(prog._region_cache),
        },
        "plans": {
            # Nested pickle: the plans are a large forest of small
            # dataclasses, and decoding them dominates cache-hit load
            # latency — so they ship as an opaque blob that
            # build_rank_plans() decodes lazily on first use.
            "rank_plans_blob": pickle.dumps(
                build_rank_plans(prog), protocol=pickle.HIGHEST_PROTOCOL),
            "overlap": dict(prog._overlap_cache),
        },
        "certificates": dump_certificates(prog),
    }


def _check_equal(name: str, stored: Any, derived: Any) -> None:
    if stored != derived:
        raise ArtifactError(
            f"artifact geometry drift: stored {name} = {stored!r} but "
            f"this compiler derives {derived!r}; refusing to load")


def restore_program(nest: LoopNest, h: RatMat,
                    payload: Dict[str, Any]) -> TiledProgram:
    """Reconstruct a :class:`TiledProgram` from an artifact payload.

    The returned program is bitwise-equivalent to a fresh
    ``TiledProgram(nest, h, mapping_dim)`` compile — same ``simulate()``
    RunStats, same ``execute_dense()`` fields at tol=0.0 — with the
    expensive pipeline stages replaced by cache seeding.
    """
    from repro.analysis.certstate import load_certificates

    geo = payload["geometry"]
    check = payload["check"]
    meta = payload["meta"]

    stored_kh = meta.get("kernel_fingerprint")
    live_kh = kernel_fingerprint(nest)
    if stored_kh != live_kh:
        raise ArtifactError(
            f"artifact kernel drift: stored kernel fingerprint "
            f"{stored_kh!r} != this nest's {live_kh!r} (geometry-equal "
            f"nest with edited kernels); refusing to load")

    tiling = TilingTransformation(h, nest.domain)
    ttis = tiling.ttis
    _check_equal("V", check["v"], ttis.v)
    _check_equal("strides c", check["c"], ttis.c)
    _check_equal("HNF", check["hnf"], ttis.hnf.to_int_rows())

    tiles: List[Tile] = list(map(tuple, geo["tiles"].tolist()))
    classes = geo["classes"].tolist()
    tiling._tiles_cache = tiles
    tiling._classify_cache = {
        t: ("partial" if c else "full")
        for t, c in zip(tiles, classes)
    }
    partial_rows = {t: i for i, t in
                    enumerate(t for t, c in zip(tiles, classes) if c)}
    tiling._mask_cache = _LazyMaskCache(
        partial_rows, geo["masks_packed"], int(geo["nlat"]))
    tiling._dS_cache[_deps_key(nest)] = geo["d_s"]

    prog = TiledProgram.from_compiled_state(
        nest, tiling, int(meta["mapping_dim"]))
    _check_equal("CC", check["cc"], prog.comm.cc)
    _check_equal("LDS offsets", check["offsets"], prog.comm.offsets)
    _check_equal("D^m", check["d_m"], prog.comm.d_m)

    prog._points_cache = dict(zip(tiles, geo["points"].tolist()))
    prog._lex_order = geo["lex_order"]
    prog._dense_s = tuple(int(x) for x in geo["dense_s"])
    prog._dense_full_batches = list(geo["dense_batches"])
    prog._full_region_cache = dict(geo["region_full"])
    prog._region_cache = dict(geo["region_counts"])
    prog._region_prewarmed = True
    prog._rank_plans_blob = payload["plans"]["rank_plans_blob"]
    prog._overlap_cache = dict(payload["plans"]["overlap"])
    blob = payload.get("certificates")
    if blob:
        load_certificates(prog, blob)
    return prog


# -- file I/O -----------------------------------------------------------------


def write_artifact(path: str, payload: Dict[str, Any]) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + rename).

    Concurrent writers racing on one path each write their own
    temporary file and the final ``os.replace`` is atomic, so readers
    only ever observe a complete artifact — never a torn write.
    """
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = sha256(body).hexdigest().encode("ascii")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(MAGIC)
            fh.write(digest)
            fh.write(b"\n")
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_artifact(path: str,
                  expected_key: Optional[str] = None) -> Dict[str, Any]:
    """Read and validate an artifact file.

    Raises :class:`ArtifactError` on a missing/corrupt/truncated file,
    a checksum mismatch, a format-version skew, or (when
    ``expected_key`` is given) a content-key mismatch.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(len(MAGIC))
            if head != MAGIC:
                raise ArtifactError(f"{path}: not a repro artifact")
            digest = fh.read(65)
            if len(digest) != 65 or digest[64:] != b"\n":
                raise ArtifactError(f"{path}: truncated header")
            body = fh.read()
    except OSError as exc:
        raise ArtifactError(f"{path}: {exc}") from exc
    if sha256(body).hexdigest().encode("ascii") != digest[:64]:
        raise ArtifactError(f"{path}: checksum mismatch (corrupt or "
                            "truncated artifact)")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise ArtifactError(f"{path}: undecodable body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"{path}: unexpected payload type")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"{path}: format version {version} != {FORMAT_VERSION}")
    if expected_key is not None and payload.get("key") != expected_key:
        raise ArtifactError(
            f"{path}: content key mismatch ({payload.get('key')!r} != "
            f"{expected_key!r})")
    return payload
