"""Compiled programs as first-class, content-addressed artifacts.

- :mod:`repro.artifacts.hashing` — canonical content key over
  (nest, H, mapping dim, format version);
- :mod:`repro.artifacts.format` — the versioned on-disk snapshot of a
  compiled :class:`~repro.runtime.executor.TiledProgram` and its
  bitwise-equivalent reconstruction;
- :mod:`repro.artifacts.cache` — the directory cache with atomic
  writes and hit/miss accounting (`repro compile --cache-dir`,
  `repro serve`).
"""

from repro.artifacts.cache import ARTIFACT_SUFFIX, ArtifactCache, cache_from_env
from repro.artifacts.format import (
    MAGIC,
    ArtifactError,
    read_artifact,
    restore_program,
    snapshot_program,
    write_artifact,
)
from repro.artifacts.hashing import FORMAT_VERSION, canonical_nest, content_key

__all__ = [
    "ARTIFACT_SUFFIX",
    "FORMAT_VERSION",
    "MAGIC",
    "ArtifactCache",
    "ArtifactError",
    "cache_from_env",
    "canonical_nest",
    "content_key",
    "read_artifact",
    "restore_program",
    "snapshot_program",
    "write_artifact",
]
