"""Content-addressed on-disk cache of compiled programs.

``ArtifactCache`` maps a :func:`~repro.artifacts.hashing.content_key`
to one artifact file under a root directory.  ``get_or_compile`` is the
single entry point callers need: a hit reconstructs the program from
disk without re-running the pipeline; a miss compiles, stores, and
returns the fresh program.  Any defect in a stored artifact —
truncation, corruption, format-version skew, geometry drift — demotes
the hit to a clean recompile (and re-store), never an error.

Writes are atomic (tmp file + ``os.replace``), so concurrent processes
racing on one cache entry are safe: each writes a complete file and the
last rename wins; readers never observe a torn artifact.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.artifacts.format import (
    ArtifactError,
    read_artifact,
    restore_program,
    snapshot_program,
    write_artifact,
)
from repro.artifacts.hashing import content_key
from repro.linalg.ratmat import RatMat
from repro.loops.nest import LoopNest
from repro.runtime.executor import TiledProgram

#: File extension for stored artifacts ("tiled program artifact").
ARTIFACT_SUFFIX = ".tpa"

#: File extension for cached native shared objects (see repro.native).
NATIVE_SUFFIX = ".so"


class ArtifactCache:
    """A directory of content-addressed :class:`TiledProgram` artifacts.

    The same directory also holds the native backend's compiled shared
    objects (``<key>.so`` plus the emitted ``<key>.c`` for
    debuggability).  Their keys are *not* plain content keys: the
    native build folds the emitted kernel-source hash and the compiler
    fingerprint into the digest (``repro.native.engine.native_key``),
    because kernel arithmetic is deliberately outside
    :func:`~repro.artifacts.hashing.content_key` — an edited kernel or
    upgraded compiler therefore misses and rebuilds instead of loading
    a stale object.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: artifacts rejected as corrupt/stale and recompiled
        self.invalid = 0
        self.native_hits = 0
        self.native_misses = 0
        self.native_stores = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ARTIFACT_SUFFIX)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "native_hits": self.native_hits,
            "native_misses": self.native_misses,
            "native_stores": self.native_stores,
        }

    # -- native shared objects ------------------------------------------------

    def native_path(self, key: str) -> str:
        return os.path.join(self.root, key + NATIVE_SUFFIX)

    def native_lookup(self, key: str) -> Optional[str]:
        """Path of a cached ``.so`` for ``key``, or ``None``.

        A hit means the compiler never runs for this program again
        (warm path); hit/miss counts are tracked separately from the
        program-artifact counters.
        """
        path = self.native_path(key)
        if os.path.exists(path):
            self.native_hits += 1
            return path
        self.native_misses += 1
        return None

    def native_store_source(self, key: str, source: str) -> str:
        """Atomically drop the emitted ``.c`` next to the ``.so``."""
        path = os.path.join(self.root, key + ".c")
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(source)
        os.replace(tmp, path)
        self.native_stores += 1
        return path

    # -- primitive operations -------------------------------------------------

    def load(self, nest: LoopNest, h: RatMat,
             mapping_dim: Optional[int] = None
             ) -> Optional[TiledProgram]:
        """Reconstruct the cached program for a compile request.

        Returns ``None`` (recording a miss) when no artifact exists or
        the stored one is unusable for any reason.
        """
        key = content_key(nest, h, mapping_dim)
        path = self.path_for(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            payload = read_artifact(path, expected_key=key)
            prog = restore_program(nest, h, payload)
        except ArtifactError:
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return prog

    def store(self, prog: TiledProgram,
              mapping_dim: Optional[int] = None) -> str:
        """Snapshot ``prog`` into the cache; returns the artifact path.

        ``mapping_dim`` must be the *requested* mapping dimension of
        the original compile (it is part of the content key).
        """
        key = content_key(prog.nest, prog.tiling.h, mapping_dim)
        path = self.path_for(key)
        write_artifact(path, snapshot_program(prog, mapping_dim, key=key))
        self.stores += 1
        return path

    # -- the main entry point -------------------------------------------------

    def get_or_compile(self, nest: LoopNest, h: RatMat,
                       mapping_dim: Optional[int] = None,
                       verify: bool = False,
                       store_on_miss: bool = True,
                       ) -> Tuple[TiledProgram, str]:
        """Return ``(program, "hit" | "miss")`` for a compile request.

        On a miss the program is compiled (with ``verify=True`` running
        the transval pipeline once, at artifact-creation time) and, by
        default, stored — subsequent loads then skip both the compile
        *and* the verification, which the content hash makes sound.
        """
        cached = self.load(nest, h, mapping_dim)
        if cached is not None:
            return cached, "hit"
        prog = TiledProgram(nest, h, mapping_dim, verify=verify)
        if store_on_miss:
            self.store(prog, mapping_dim)
        return prog, "miss"


def cache_from_env(default_root: Optional[str] = None,
                   env_var: str = "REPRO_CACHE_DIR",
                   ) -> Optional[ArtifactCache]:
    """Build a cache from ``$REPRO_CACHE_DIR`` or an explicit root."""
    root: Optional[Any] = default_root or os.environ.get(env_var)
    if not root:
        return None
    return ArtifactCache(str(root))
