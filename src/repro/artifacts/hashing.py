"""Content addressing of compiled programs.

An artifact is keyed by a SHA-256 over the *canonical semantic inputs*
of the compile pipeline: the loop nest (domain, access structure,
dependence matrix), the tiling matrix ``H`` as exact rationals, the
requested mapping dimension, and the on-disk format version.  Every
derived quantity stored in an artifact is a deterministic function of
exactly these inputs, so equal keys imply bitwise-equal programs.

Deliberately *not* hashed:

* statement ``kernel``/``kernel_np``/``expr`` bodies — the compiled
  geometry (tiles, communication sets, LDS layout, schedules) never
  depends on the arithmetic inside the loop body, and loaded programs
  always take their kernels from the caller's nest.  Anything that
  *does* depend on kernel content must carry its own hash on top of
  the content key: artifact payloads record a
  ``kernel_fingerprint`` in their metadata (checked at load, so a
  geometry-identical nest with edited kernels can never be served a
  stale snapshot), and the native backend keys its shared objects by
  (content key, emitted C source hash, compiler fingerprint) — see
  ``repro.native``;
* the nest's display ``name`` — two differently-named but structurally
  identical nests compile to the same program.

The hash is computed over a canonical JSON rendering (sorted keys, no
whitespace), so it is stable across processes, ``PYTHONHASHSEED``
values and platforms.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence

from repro.linalg.ratmat import RatMat
from repro.loops.nest import LoopNest
from repro.loops.reference import ArrayRef

#: Version of the on-disk artifact format.  Bump on ANY change to the
#: payload schema or to the semantics of a stored field; old artifacts
#: are then treated as misses and transparently recompiled.
#: v2: payload meta gained the mandatory ``kernel_fingerprint`` field.
FORMAT_VERSION = 2


def _frac(x: Fraction) -> List[int]:
    return [x.numerator, x.denominator]


def _ratmat(m: RatMat) -> List[List[List[int]]]:
    return [[_frac(x) for x in row] for row in m.rows()]


def _ref(r: ArrayRef) -> Dict[str, Any]:
    return {
        "array": r.array,
        "offset": list(r.offset),
        "matrix": None if r.matrix is None else _ratmat(r.matrix),
    }


def canonical_nest(nest: LoopNest) -> Dict[str, Any]:
    """The nest as a canonical, JSON-serializable structure.

    The domain is normalized (primitive integer coefficients, trivial
    constraints dropped, duplicates merged) and its constraints sorted,
    so structurally equal iteration spaces hash equally regardless of
    how their half-spaces were spelled.  Statement order is preserved —
    it is semantically meaningful.
    """
    constraints = sorted(
        ([_frac(a) for a in c.a], _frac(c.b))
        for c in nest.domain.normalized().constraints
    )
    return {
        "depth": nest.depth,
        "domain": [[a, b] for a, b in constraints],
        "statements": [
            {"write": _ref(s.write), "reads": [_ref(r) for r in s.reads]}
            for s in nest.statements
        ],
        "dependences": [list(d) for d in nest.dependences],
    }


def content_key(nest: LoopNest, h: RatMat,
                mapping_dim: Optional[int] = None) -> str:
    """SHA-256 hex key of one (nest, H, mapping_dim) compile request."""
    doc = {
        "format_version": FORMAT_VERSION,
        "nest": canonical_nest(nest),
        "h": _ratmat(h),
        "mapping_dim": mapping_dim,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def hash_sequence(parts: Sequence[str]) -> str:
    """Utility: stable hash of a sequence of strings (used by tests)."""
    acc = hashlib.sha256()
    for p in parts:
        acc.update(p.encode("utf-8"))
        acc.update(b"\x00")
    return acc.hexdigest()
