"""Command-line interface: ``python -m repro <command>``.

Mirrors how the paper's tool was used — feed it a loop nest and a
tiling, get code and cluster numbers back:

* ``info``      — compile and print the derived constants (V, strides,
  CC, offsets, D^S, D^m, processor mesh).
* ``codegen``   — emit the sequential tiled code, the C+MPI program, or
  the executable Python schedule.
* ``simulate``  — run the virtual cluster and print speedup/utilization.
* ``run``       — execute with real data: ``--engine parallel`` uses one
  OS process per processor with shared-memory halo exchange (measured
  wall-clock utilization, bitwise-checked against the dense engine).
* ``analyze``   — static verification: legality, race, deadlock and
  halo-bounds passes over the compiled program, without executing it
  (``--hb`` adds the happens-before certifier, HB01-HB03).
  Exits nonzero when any error-severity diagnostic is found.
* ``sanitize``  — replay a measured trace (``run --trace-out``)
  against the static happens-before graph; any event out of certified
  order is an HB04 error.
* ``figure``    — regenerate one of the paper's figures (5-10).

Apps are the paper's three benchmarks; sizes and tile factors come from
flags.  Examples::

    python -m repro info --app sor -s 100 200 -t 26 76 8 --shape nonrect
    python -m repro codegen --app adi -s 20 24 -t 4 6 6 --shape nr3 --kind mpi
    python -m repro simulate --app jacobi -s 50 100 100 -t 4 38 38 --shape rect
    python -m repro analyze --app sor -s 8 12 -t 2 3 4 --shape nonrect --json
    python -m repro figure fig6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import adi, jacobi, sor

_SHAPES = {
    "sor": {"rect": sor.h_rectangular, "nonrect": sor.h_nonrectangular},
    "jacobi": {"rect": jacobi.h_rectangular,
               "nonrect": jacobi.h_nonrectangular},
    "adi": {"rect": adi.h_rectangular, "nr1": adi.h_nr1,
            "nr2": adi.h_nr2, "nr3": adi.h_nr3},
}


def _build_app(name: str, sizes: List[int]):
    if name == "sor":
        if len(sizes) != 2:
            raise SystemExit("sor needs --sizes M N")
        return sor.app(*sizes)
    if name == "jacobi":
        if len(sizes) != 3:
            raise SystemExit("jacobi needs --sizes T I J")
        return jacobi.app(*sizes)
    if name == "adi":
        if len(sizes) != 2:
            raise SystemExit("adi needs --sizes T N")
        return adi.app(*sizes)
    raise SystemExit(f"unknown app {name!r}")


def _build_h(app_name: str, shape: str, factors: List[int]):
    shapes = _SHAPES[app_name]
    if shape not in shapes:
        raise SystemExit(
            f"{app_name} supports shapes {sorted(shapes)}, not {shape!r}")
    if len(factors) != 3:
        raise SystemExit("--tile needs three factors: x y z")
    return shapes[shape](*factors)


def _common_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--app", required=True, choices=["sor", "jacobi", "adi"])
    p.add_argument("--sizes", "-s", type=int, nargs="+", required=True,
                   help="iteration-space sizes (sor: M N; jacobi: T I J; "
                        "adi: T N)")
    p.add_argument("--tile", "-t", type=int, nargs=3, required=True,
                   metavar=("X", "Y", "Z"), help="tile factors")
    p.add_argument("--shape", default="rect",
                   help="tiling shape (rect/nonrect or rect/nr1/nr2/nr3)")


def cmd_info(args) -> int:
    from repro.runtime.executor import TiledProgram

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    ttis = prog.tiling.ttis
    if args.show_loop:
        from repro.loops.pretty import format_nest
        print(format_nest(app.nest))
        print()
    print(f"nest            : {app.nest.name}")
    print(f"dependences     : {app.nest.dependences}")
    print(f"tile volume     : {ttis.tile_volume}")
    print(f"V (TTIS box)    : {ttis.v}")
    print(f"strides c_k     : {ttis.c}")
    print(f"mapping dim m   : {prog.dist.m}")
    print(f"CC vector       : {prog.comm.cc}")
    print(f"LDS offsets     : {prog.comm.offsets}")
    print(f"D^S             : {prog.comm.d_s}")
    print(f"D^m             : {prog.comm.d_m}")
    print(f"processors      : {prog.num_processors} "
          f"(mesh of pids {prog.pids[0]} .. {prog.pids[-1]})")
    print(f"tiles           : {len(prog.dist.tiles)}")
    print(f"total points    : {prog.total_points()}")
    return 0


def cmd_codegen(args) -> int:
    from repro.codegen import (generate_mpi_code,
                               generate_python_node_programs,
                               generate_sequential_tiled_code)

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    if args.engine == "native":
        # The native backend's generated artifact is the C translation
        # unit of the per-app tile kernels (what gets compiled to the
        # cached .so) — print it regardless of --kind.
        from repro.native.emit import emit_translation_unit
        from repro.runtime.executor import TiledProgram

        prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
        plan = emit_translation_unit(prog.nest, tuple(prog.arrays),
                                     prog.nest.name)
        print(plan.source, end="")
        return 0
    if args.kind == "sequential":
        print(generate_sequential_tiled_code(app.nest, h))
    elif args.kind == "mpi":
        print(generate_mpi_code(app.nest, h, mapping_dim=app.mapping_dim))
    else:
        print(generate_python_node_programs(
            app.nest, h, mapping_dim=app.mapping_dim,
            engine=args.engine))
    return 0


def cmd_simulate(args) -> int:
    from repro.runtime.executor import DistributedRun, TiledProgram
    from repro.runtime.machine import ClusterSpec
    from repro.runtime.metrics import format_metrics, metrics_from_stats

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    spec = ClusterSpec(overlap=args.overlap)
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    stats = DistributedRun(prog, spec).simulate()
    t_seq = spec.compute_time(prog.total_points())
    print(f"T_seq  = {t_seq:.6f}s")
    print(f"T_par  = {stats.makespan:.6f}s")
    print(f"speedup = {t_seq / stats.makespan:.3f} on "
          f"{prog.num_processors} processors")
    print(f"messages = {stats.total_messages}, elements = "
          f"{stats.total_elements}")
    print()
    print(format_metrics(metrics_from_stats(stats), top=args.ranks))
    return 0


def cmd_verify(args) -> int:
    """Execute with real data and compare against the interpreter."""
    from repro.runtime.dataspace import dense_to_cells, max_abs_difference
    from repro.runtime.executor import DistributedRun, TiledProgram
    from repro.runtime.interpreter import run_sequential
    from repro.runtime.machine import ClusterSpec

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    run = DistributedRun(prog, ClusterSpec())
    if args.engine == "dense":
        fields, stats = run.execute_dense(app.init_value)
        arrays = dense_to_cells(fields)
    else:
        arrays, stats = run.execute(app.init_value)
    print(f"engine: {args.engine}")
    reference = run_sequential(app.nest, app.init_value)
    worst = 0.0
    for name in reference:
        diff = max_abs_difference(arrays[name], reference[name])
        cells = len(reference[name])
        print(f"array {name}: {cells} cells, max |diff| = {diff:.3e}")
        worst = max(worst, diff)
    print(f"messages exchanged: {stats.total_messages} "
          f"({stats.total_elements} elements)")
    if worst < 1e-9:
        print("VERIFIED: distributed execution matches the sequential "
              "reference")
        return 0
    print("MISMATCH: distributed execution diverges from the reference")
    return 1


def cmd_run(args) -> int:
    """Execute on the chosen engine and print *measured* utilization.

    With ``--engine parallel`` this is the real thing: one OS process
    per processor, shared-memory halo exchange, wall-clock timings.
    Unless ``--no-check`` is given, the result is cross-checked bitwise
    (tol=0.0) against the dense engine; a mismatch exits nonzero.
    """
    from repro.runtime.dataspace import arrays_match, dense_to_cells
    from repro.runtime.executor import DistributedRun, TiledProgram
    from repro.runtime.machine import ClusterSpec
    from repro.runtime.metrics import format_metrics, metrics_from_stats
    from repro.runtime.trace import EventTrace

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    if args.overlap and args.engine != "parallel":
        raise SystemExit("--overlap requires --engine parallel")
    if args.trace_out and args.engine != "parallel":
        raise SystemExit("--trace-out requires --engine parallel")
    if args.certify and args.engine != "parallel":
        raise SystemExit("--certify requires --engine parallel")
    if args.native and args.engine not in ("parallel", "native"):
        raise SystemExit("--native requires --engine parallel "
                         "(or use --engine native)")
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    lib = None
    if args.engine == "native" or args.native:
        from repro.artifacts import ArtifactCache
        from repro.native.engine import build_native_library

        cache = (ArtifactCache(args.cache_dir)
                 if args.cache_dir else None)
        lib = build_native_library(prog, cache=cache)
        if lib.available:
            print(f"native  : {lib.status} "
                  + ("(cached .so, compiler skipped)"
                     if lib.status == "hit" else "(compiled)"))
            print(f"so      : {lib.so_path}")
        else:
            print(f"native  : fallback ({lib.fallback_reason}); "
                  f"running numpy kernels")
    trace = EventTrace() if args.trace_out else None
    run = DistributedRun(prog, ClusterSpec(overlap=args.overlap),
                         trace=trace)
    import time as _time
    t0 = _time.perf_counter()
    if args.engine == "parallel":
        fields, stats = run.execute_parallel(
            app.init_value, workers=args.workers,
            protocol=args.protocol, overlap=args.overlap,
            verify=args.certify, native=lib)
        arrays = dense_to_cells(fields)
    elif args.engine in ("dense", "native"):
        fields, stats = run.execute_dense(app.init_value, native=lib)
        arrays = dense_to_cells(fields)
    else:
        arrays, stats = run.execute(app.init_value)
    wall = _time.perf_counter() - t0
    print(f"engine: {args.engine}"
          + (f" (workers={args.workers}, protocol={args.protocol}"
             + (", overlap" if args.overlap else "")
             + (", native" if lib is not None and lib.available
                else "") + ")"
             if args.engine == "parallel" else ""))
    print(f"wall-clock: {wall:.3f}s  processors: {prog.num_processors}")
    print(f"messages = {stats.total_messages}, elements = "
          f"{stats.total_elements}")
    print()
    print(format_metrics(metrics_from_stats(stats), top=args.ranks))
    if trace is not None:
        trace.save(args.trace_out)
        print(f"wrote {len(trace.events)} trace event(s) to "
              f"{args.trace_out}")
    if args.no_check:
        return 0
    ref_fields, ref_stats = DistributedRun(
        prog, ClusterSpec()).execute_dense(app.init_value)
    ok = arrays_match(arrays, dense_to_cells(ref_fields), tol=0.0)
    counts_ok = (stats.total_messages == ref_stats.total_messages
                 and stats.total_elements == ref_stats.total_elements)
    print()
    if ok and counts_ok:
        print("CHECK: bitwise identical to the dense engine "
              "(tol=0.0), event counts match")
        return 0
    if not ok:
        print("CHECK FAILED: results differ from the dense engine")
    if not counts_ok:
        print(f"CHECK FAILED: event counts differ "
              f"(messages {stats.total_messages} vs "
              f"{ref_stats.total_messages}, elements "
              f"{stats.total_elements} vs {ref_stats.total_elements})")
    return 1


def cmd_analyze(args) -> int:
    """Run the static verifier and render its report."""
    from repro.analysis import analyze

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    nest = app.nest
    if args.unskewed:
        # Analyze the tiling against the *original* (unskewed) nest —
        # the canonical way to watch the legality pass fire: the paper's
        # rectangular tilings are only legal after skewing.
        originals = {"sor": sor.original_nest, "jacobi": jacobi.original_nest,
                     "adi": adi.original_nest}
        nest = originals[args.app](*args.sizes)
    subject = (f"{args.app} sizes={args.sizes} tile={args.tile} "
               f"shape={args.shape}"
               + (" (unskewed nest)" if args.unskewed else ""))
    try:
        report = analyze(nest, h, mapping_dim=app.mapping_dim,
                         subject=subject, overlap=args.overlap,
                         hb=args.hb, cost=args.cost)
        if args.transval and report.ok:
            # Translation validation: freshly emit all four artifacts
            # and statically compare them against the pipeline.  Only
            # meaningful on buildable geometry — on a failing base
            # report the emitters have nothing trustworthy to produce.
            from repro.analysis.transval import transval_report
            tv = transval_report(nest, h, mapping_dim=app.mapping_dim,
                                 subject=subject)
            report.extend(tv.diagnostics)
            for name in tv.passes_run:
                report.mark_pass(name)
    except ValueError as exc:
        # Defects outside the verifier's pass coverage (e.g. an empty
        # tile space) still surface as a failure, not a crash.
        print(f"analysis aborted: {exc}", file=sys.stderr)
        return 1
    print(report.to_json() if args.json else report.render_text())
    failed = bool(report.errors) or (args.fail_on_warn
                                     and bool(report.warnings))
    return 1 if failed else 0


def cmd_sanitize(args) -> int:
    """Replay a measured trace against the static HB graph (HB04)."""
    from repro.analysis.hb import sanitize_report
    from repro.runtime.executor import TiledProgram
    from repro.runtime.trace import EventTrace

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    try:
        trace = EventTrace.load(args.trace)
    except (OSError, ValueError) as exc:
        print(f"sanitize aborted: {exc}", file=sys.stderr)
        return 1
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    subject = (f"{args.app} sizes={args.sizes} tile={args.tile} "
               f"shape={args.shape} trace={args.trace}")
    report = sanitize_report(prog, trace, protocol=args.protocol,
                             overlap=args.overlap, subject=subject)
    print(report.to_json() if args.json else report.render_text())
    return 1 if report.errors else 0


def cmd_figure(args) -> int:
    from repro.experiments import figures
    from repro.experiments.report import format_table

    fig_fn = getattr(figures, args.name, None)
    if fig_fn is None or not args.name.startswith("fig"):
        raise SystemExit("figure must be one of fig5..fig10")
    fig = fig_fn()
    print(format_table(fig))
    if args.csv:
        from repro.experiments.report import to_csv
        with open(args.csv, "w") as fh:
            fh.write(to_csv(fig))
        print(f"wrote {args.csv}")
    if args.html:
        from repro.experiments.html_report import report_html
        with open(args.html, "w") as fh:
            fh.write(report_html([fig]))
        print(f"wrote {args.html}")
    return 0


def cmd_compile(args) -> int:
    import time

    from repro.artifacts import ArtifactCache, content_key

    app = _build_app(args.app, args.sizes)
    h = _build_h(args.app, args.shape, args.tile)
    cache = ArtifactCache(args.cache_dir)
    t0 = time.perf_counter()
    prog, status = cache.get_or_compile(app.nest, h, app.mapping_dim,
                                        verify=args.verify)
    elapsed = time.perf_counter() - t0
    key = content_key(app.nest, h, app.mapping_dim)
    print(f"key     : {key}")
    print(f"status  : {status}")
    print(f"elapsed : {elapsed*1e3:.1f} ms")
    print(f"tiles   : {len(prog.dist.tiles)}  "
          f"processors: {prog.num_processors}")
    print(f"artifact: {cache.path_for(key)}")
    return 0


def cmd_tune(args) -> int:
    """Search the tiling cone for the best tile shape (``repro tune``).

    The ``--tile``/``--shape`` flags name the *baseline* tiling (the
    paper's hand-picked shape); the tuner explores legal alternatives
    from the cone and reports a winner that beats or matches it.  With
    ``--cache-dir`` the run is content-addressed: a warm re-tune is a
    byte-identical cache read with zero pipeline work, and the winning
    shape's compiled program lands in the same directory's artifact
    cache.
    """
    import json as _json

    from repro.runtime.machine import ClusterSpec
    from repro.tuning import TuneConfig, tune_or_load, tune_tile_shape

    app = _build_app(args.app, args.sizes)
    baseline_h = _build_h(args.app, args.shape, args.tile)
    spec = ClusterSpec()
    config = TuneConfig(
        extents=tuple(args.extents),
        max_candidates=args.max_candidates,
        top_k=args.top_k,
        stop_ratio=args.stop_ratio,
        protocol=args.protocol,
        max_processors=args.max_processors,
        measure_top=args.measure,
        measure_workers=args.workers,
    )
    init = app.init_value if args.measure else None
    if args.cache_dir:
        report, status = tune_or_load(
            app.nest, app.mapping_dim, spec, config, args.cache_dir,
            baseline_h=baseline_h, init_value=init)
        print(f"source  : {status}", file=sys.stderr)
    else:
        result = tune_tile_shape(
            app.nest, app.mapping_dim, spec=spec, config=config,
            baseline_h=baseline_h, init_value=init)
        report = result.to_dict()
    if args.json:
        print(_json.dumps(report, sort_keys=True, indent=2))
        return 0
    counts = report["counts"]
    winner = report["winner"]
    baseline = report["baseline"]
    print(f"nest    : {report['nest']['name']} "
          f"(mapping dim {report['nest']['mapping_dim']})")
    print(f"space   : {counts['candidates']} candidate(s) kept of "
          f"{counts['generated']} generated "
          f"({counts['deduplicated']} deduplicated, "
          f"{counts['truncated']} truncated)")
    print(f"costed  : {counts['costed']}  rejected: {counts['rejected']}  "
          f"pruned after stop: {counts['pruned_after_stop']}")
    stop = report["early_stop"]
    if stop["fired"]:
        print(f"early stop: {stop['reason']}")
    print(f"simulated: {counts['simulator_evals']} frontier candidate(s)")
    print(f"winner  : {winner['label']}")
    print(f"          H rows: "
          + "; ".join("[" + ", ".join(
              str(n) if d == 1 else f"{n}/{d}" for n, d in row) + "]"
              for row in winner["h"]))
    print(f"          predicted {winner['predicted_makespan']:.6f}s, "
          f"simulated {winner['simulated_makespan']:.6f}s on "
          f"{winner['processors']} processors "
          f"(speedup {winner['speedup']:.3f})")
    if winner.get("measured_seconds") is not None:
        print(f"          measured {winner['measured_seconds']:.3f}s "
              f"wall-clock")
    if baseline is not None:
        b_sim = baseline["simulated_makespan"]
        if b_sim is not None:
            gain = b_sim / winner["simulated_makespan"]
            print(f"baseline: {baseline['label']} simulated {b_sim:.6f}s "
                  f"-> tuned shape is {gain:.2f}x")
        else:
            print(f"baseline: {baseline['label']} "
                  f"({baseline['status']}: {baseline['reason']})")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import run_server

    try:
        asyncio.run(run_server(args.cache_dir, args.host, args.port,
                               verify=args.verify))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tiled-iteration-space compiler for (simulated) "
                    "clusters — CLUSTER 2002 reproduction.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print compiled constants")
    _common_flags(p_info)
    p_info.add_argument("--show-loop", action="store_true",
                        help="also print the (skewed) nest as FOR loops")
    p_info.set_defaults(fn=cmd_info)

    p_cg = sub.add_parser("codegen", help="emit generated code")
    _common_flags(p_cg)
    p_cg.add_argument("--kind", choices=["sequential", "mpi", "python"],
                      default="mpi")
    p_cg.add_argument("--engine",
                      choices=["sparse", "dense", "dense-overlap",
                               "native"],
                      default="sparse",
                      help="for --kind python: also burn the dense "
                           "engine's wavefront slices into the "
                           "emitted schedule (dense-overlap adds the "
                           "per-level boundary slice sizes); native "
                           "prints the C tile-kernel translation unit "
                           "the native backend compiles to a shared "
                           "object")
    p_cg.set_defaults(fn=cmd_codegen)

    p_sim = sub.add_parser("simulate", help="run on the virtual cluster")
    _common_flags(p_sim)
    p_sim.add_argument("--overlap", action="store_true",
                       help="enable computation/communication overlap")
    p_sim.add_argument("--ranks", type=int, default=8,
                       help="utilization rows to print")
    p_sim.set_defaults(fn=cmd_simulate)

    p_ver = sub.add_parser(
        "verify", help="run with real data and check against a "
                       "sequential reference")
    _common_flags(p_ver)
    p_ver.add_argument("--engine", choices=["sparse", "dense"],
                       default="sparse",
                       help="distributed execution engine: per-cell "
                            "dict interpreter or the vectorized dense "
                            "LDS engine")
    p_ver.set_defaults(fn=cmd_verify)

    p_run = sub.add_parser(
        "run", help="execute with real data on a chosen engine and "
                    "print measured utilization")
    _common_flags(p_run)
    p_run.add_argument("--engine",
                       choices=["parallel", "dense", "sparse",
                                "native"],
                       default="parallel",
                       help="parallel = real OS processes + "
                            "shared-memory halo exchange; dense/sparse "
                            "= single-process executors; native = the "
                            "dense engine with compiled shared-object "
                            "tile kernels (numpy fallback without a C "
                            "compiler)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="max worker processes for --engine "
                            "parallel (default: one per processor, "
                            "capped at the host CPU count)")
    p_run.add_argument("--protocol",
                       choices=["spec", "eager", "rendezvous"],
                       default="spec",
                       help="mailbox protocol: eager, rendezvous, or "
                            "per-message by the cluster spec's "
                            "threshold")
    p_run.add_argument("--overlap", action="store_true",
                       help="overlapped schedule for --engine "
                            "parallel: boundary-first compute with "
                            "zero-copy packing into the mailbox ring "
                            "and lazy halo unpacking (bitwise "
                            "identical results)")
    p_run.add_argument("--native", action="store_true",
                       help="with --engine parallel: workers run the "
                            "compiled shared-object tile kernels over "
                            "the same LDS buffers and rings (bitwise "
                            "identical; numpy fallback without a C "
                            "compiler)")
    p_run.add_argument("--cache-dir", default=None,
                       help="content-addressed cache directory for the "
                            "native .so (default: $REPRO_CACHE_DIR or "
                            "a per-user temp dir)")
    p_run.add_argument("--no-check", "--no-crosscheck",
                       dest="no_check", action="store_true",
                       help="skip the bitwise cross-check against the "
                            "dense engine (the check re-runs the whole "
                            "problem single-process, roughly doubling "
                            "wall time on large configs; see "
                            "docs/RUNTIME.md)")
    p_run.add_argument("--ranks", type=int, default=8,
                       help="utilization rows to print")
    p_run.add_argument("--trace-out", default=None,
                       help="write the measured event trace "
                            "(versioned JSON) for 'repro sanitize'; "
                            "requires --engine parallel")
    p_run.add_argument("--certify", action="store_true",
                       help="certify the schedule happens-before "
                            "clean (HB01/HB02) before forking any "
                            "worker; requires --engine parallel")
    p_run.set_defaults(fn=cmd_run)

    p_ana = sub.add_parser(
        "analyze", help="static verification: race, deadlock and "
                        "halo-bounds passes (no execution)")
    _common_flags(p_ana)
    p_ana.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    p_ana.add_argument("--unskewed", action="store_true",
                       help="check the tiling against the original "
                            "(unskewed) nest instead of the skewed one")
    p_ana.add_argument("--transval", action="store_true",
                       help="also translation-validate freshly emitted "
                            "C+MPI/Python code and the native kernel "
                            "translation unit against the symbolic "
                            "pipeline (TV01-TV05 passes)")
    p_ana.add_argument("--overlap", action="store_true",
                       help="also verify the overlapped-execution "
                            "plans (OV01-OV03: pack payload equality, "
                            "commit-level legality, boundary/interior "
                            "partition, lazy-unpack safety)")
    p_ana.add_argument("--hb", action="store_true",
                       help="also run the happens-before certifier "
                            "(HB01 races, HB02 wait cycles under "
                            "every protocol, blocking and overlapped "
                            "schedules, plus the HB03 mailbox-ring "
                            "model verdict)")
    p_ana.add_argument("--cost", action="store_true",
                       help="also run the static cost certifier "
                            "(COST01 per-edge volumes, COST02 rank "
                            "volumes/imbalance, COST03 analytic "
                            "makespan, COST04 lower-bound verdict); "
                            "the certificate lands in the JSON "
                            "report's meta.cost")
    p_ana.add_argument("--fail-on-warn", action="store_true",
                       help="exit nonzero on warning diagnostics too, "
                            "not only on errors")
    p_ana.set_defaults(fn=cmd_analyze)

    p_san = sub.add_parser(
        "sanitize", help="replay a measured trace against the static "
                         "happens-before graph (HB04)")
    _common_flags(p_san)
    p_san.add_argument("--trace", required=True,
                       help="trace file written by "
                            "'repro run --trace-out'")
    p_san.add_argument("--protocol",
                       choices=["spec", "eager", "rendezvous"],
                       default="spec",
                       help="protocol the trace was measured under")
    p_san.add_argument("--overlap", action="store_true",
                       help="the trace was measured with --overlap")
    p_san.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    p_san.set_defaults(fn=cmd_sanitize)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("name", help="fig5 .. fig10")
    p_fig.add_argument("--csv", help="also write the series as CSV")
    p_fig.add_argument("--html", help="also write a standalone "
                                      "HTML/SVG report")
    p_fig.set_defaults(fn=cmd_figure)

    p_comp = sub.add_parser(
        "compile",
        help="compile through the content-addressed artifact cache")
    _common_flags(p_comp)
    p_comp.add_argument("--cache-dir", required=True,
                        help="artifact cache directory")
    p_comp.add_argument("--verify", action="store_true",
                        help="run transval verification on cache misses "
                             "(hits reuse the stored, already-verified "
                             "program)")
    p_comp.set_defaults(fn=cmd_compile)

    p_tune = sub.add_parser(
        "tune",
        help="autotune the tile shape over the tiling cone "
             "(cost -> simulate -> measure pruning ladder)")
    _common_flags(p_tune)
    p_tune.add_argument("--extents", type=int, nargs="+",
                        default=[1, 2, 3, 4],
                        help="per-row scale multipliers swept per "
                             "direction basis")
    p_tune.add_argument("--max-candidates", type=int, default=48,
                        help="candidate cap after deduplication")
    p_tune.add_argument("--top-k", type=int, default=None,
                        help="frontier size to simulate (default: an "
                             "eighth of the costed candidates)")
    p_tune.add_argument("--stop-ratio", type=float, default=1.25,
                        help="stop costing once the best candidate is "
                             "within this factor of the Dinh & Demmel "
                             "communication lower bound")
    p_tune.add_argument("--protocol",
                        choices=["spec", "eager", "rendezvous"],
                        default="spec",
                        help="protocol analyzed by the cost certifier "
                             "and the simulator")
    p_tune.add_argument("--max-processors", type=int, default=None,
                        help="reject shapes needing more ranks "
                             "(default: max of the cluster size and "
                             "the baseline's rank count)")
    p_tune.add_argument("--measure", type=int, default=0, metavar="N",
                        help="run the N best finalists on the real "
                             "parallel backend as the oracle")
    p_tune.add_argument("--workers", type=int, default=None,
                        help="worker processes for --measure")
    p_tune.add_argument("--cache-dir", default=None,
                        help="content-address the tuning record (and "
                             "the winner's compiled artifact) under "
                             "this directory")
    p_tune.add_argument("--json", action="store_true",
                        help="emit the full tuning report as JSON")
    p_tune.set_defaults(fn=cmd_tune)

    p_srv = sub.add_parser(
        "serve",
        help="long-running compile server over the artifact cache")
    p_srv.add_argument("--cache-dir", required=True,
                       help="artifact cache directory")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 = pick a free port)")
    p_srv.add_argument("--verify", action="store_true",
                       help="run transval verification on cache misses")
    p_srv.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
