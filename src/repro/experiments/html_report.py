"""Self-contained HTML/SVG reports of experiment figures.

Renders :class:`~repro.experiments.figures.FigureResult` series as
inline-SVG line charts inside a single dependency-free HTML file —
the shareable artifact of a reproduction run.

Design notes (following the repository's data-viz conventions):

* one y-axis; 2px round-capped lines; >=8px markers with a 2px
  surface-colored ring; hairline solid gridlines;
* categorical series colors assigned in a fixed validated order
  (blue, aqua, yellow, green — worst adjacent CVD deltaE 24.2), with
  light and dark steps selected per mode via CSS custom properties;
* a legend for >=2 series plus direct labels at line ends; axis and
  label text always in text tokens, never the series color;
* two of the light-mode hues sit below 3:1 contrast on the surface, so
  every chart ships with its data table underneath (the relief rule).
"""

from __future__ import annotations

import html as _html
import math
from typing import List, Sequence

from repro.experiments.figures import FigureResult

#: Fixed categorical order — never cycled; 4 slots cover every figure.
SERIES_LIGHT = ("#2a78d6", "#1baf7a", "#eda100", "#008300")
SERIES_DARK = ("#3987e5", "#199e70", "#c98500", "#008300")

_CSS = """\
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e8e8e6;
  --series-1: #2a78d6; --series-2: #1baf7a;
  --series-3: #eda100; --series-4: #008300;
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  max-width: 860px; margin: 0 auto; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #32322f;
    --series-1: #3987e5; --series-2: #199e70;
    --series-3: #c98500; --series-4: #008300;
  }
}
h1 { font-size: 20px; }
h2 { font-size: 16px; margin: 32px 0 4px; }
p.sub { color: var(--text-secondary); margin: 0 0 12px; }
svg text { fill: var(--text-primary); font: 12px system-ui, sans-serif; }
svg text.sec { fill: var(--text-secondary); }
table { border-collapse: collapse; margin: 8px 0 24px; }
th, td { padding: 3px 12px 3px 0; text-align: right;
         font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.legend { display: flex; gap: 16px; margin: 6px 0; flex-wrap: wrap; }
.legend span { display: inline-flex; align-items: center; gap: 6px;
               color: var(--text-secondary); }
.key { width: 14px; height: 3px; border-radius: 2px; display: inline-block; }
"""


def _nice_max(v: float) -> float:
    """Round up to a clean tick ceiling (1/2/5 x 10^k)."""
    if v <= 0:
        return 1.0
    mag = 10 ** math.floor(math.log10(v))
    for mult in (1, 2, 5, 10):
        if mult * mag >= v:
            return mult * mag
    return 10 * mag


def figure_to_svg(fig: FigureResult, width: int = 640,
                  height: int = 320) -> str:
    """One figure as an inline SVG line chart (series = tilings)."""
    xs: List[object] = []
    for s in fig.series:
        for x, _ in s.points:
            if x not in xs:
                xs.append(x)
    if not xs:
        raise ValueError("figure has no points")
    maps = fig.series_map()
    ymax = _nice_max(max(v for s in fig.series for _, v in s.points))
    n_ticks = 4
    ml, mr, mt, mb = 46, 110, 12, 34
    pw, ph = width - ml - mr, height - mt - mb

    def xpos(i: int) -> float:
        if len(xs) == 1:
            return ml + pw / 2
        return ml + pw * i / (len(xs) - 1)

    def ypos(v: float) -> float:
        return mt + ph * (1 - v / ymax)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_html.escape(fig.title)}">',
    ]
    # gridlines + y ticks (clean numbers)
    for t in range(n_ticks + 1):
        v = ymax * t / n_ticks
        y = ypos(v)
        parts.append(
            f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(
            f'<text class="sec" x="{ml - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{v:g}</text>')
    # x ticks
    for i, x in enumerate(xs):
        parts.append(
            f'<text class="sec" x="{xpos(i):.1f}" y="{height - 12}" '
            f'text-anchor="middle">{_html.escape(str(x))}</text>')
    parts.append(
        f'<text class="sec" x="{ml + pw / 2:.1f}" y="{height - 0.5}" '
        f'font-size="11" text-anchor="middle">'
        f'{_html.escape(fig.xlabel)}</text>')
    # series: line, ringed markers, direct end label.  Converging series
    # (ADI's nr1/nr2) would collide at the right edge; per the direct-
    # label rule we drop the colliding label and let the legend +
    # tooltip carry it rather than stacking detached text.
    placed_label_ys: List[float] = []
    for si, s in enumerate(fig.series):
        color = f"var(--series-{si + 1})"
        pts = [(i, maps[s.label].get(x)) for i, x in enumerate(xs)
               if maps[s.label].get(x) is not None]
        path = " ".join(
            f"{'M' if k == 0 else 'L'}{xpos(i):.1f},{ypos(v):.1f}"
            for k, (i, v) in enumerate(pts))
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linecap="round" '
            f'stroke-linejoin="round"/>')
        for i, v in pts:
            parts.append(
                f'<circle cx="{xpos(i):.1f}" cy="{ypos(v):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{_html.escape(s.label)} @ '
                f'{_html.escape(str(xs[i]))}: {v:.3f}</title></circle>')
        li, lv = pts[-1]
        label_y = ypos(lv) + 4
        if all(abs(label_y - y) >= 14 for y in placed_label_ys):
            placed_label_ys.append(label_y)
            parts.append(
                f'<text x="{xpos(li) + 10:.1f}" y="{label_y:.1f}">'
                f'{_html.escape(s.label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def _table(fig: FigureResult) -> str:
    maps = fig.series_map()
    xs: List[object] = []
    for s in fig.series:
        for x, _ in s.points:
            if x not in xs:
                xs.append(x)
    head = "".join(f"<th>{_html.escape(s.label)}</th>" for s in fig.series)
    rows = []
    for x in xs:
        cells = "".join(
            f"<td>{maps[s.label].get(x, float('nan')):.3f}</td>"
            for s in fig.series)
        rows.append(f"<tr><td>{_html.escape(str(x))}</td>{cells}</tr>")
    return (f'<table><thead><tr><th>{_html.escape(fig.xlabel)}</th>'
            f"{head}</tr></thead><tbody>{''.join(rows)}</tbody></table>")


def _legend(fig: FigureResult) -> str:
    if len(fig.series) < 2:
        return ""
    keys = "".join(
        f'<span><i class="key" style="background:var(--series-{i + 1})">'
        f"</i>{_html.escape(s.label)}</span>"
        for i, s in enumerate(fig.series))
    return f'<div class="legend">{keys}</div>'


def report_html(figs: Sequence[FigureResult],
                title: str = "Tiled-cluster reproduction report") -> str:
    """A complete standalone HTML report for a list of figures."""
    body = [f"<h1>{_html.escape(title)}</h1>",
            "<p class='sub'>Simulated speedups; see EXPERIMENTS.md for "
            "the cost model and paper-vs-measured discussion.</p>"]
    for fig in figs:
        body.append(f"<h2>{_html.escape(fig.title)}</h2>")
        body.append(_legend(fig))
        body.append(figure_to_svg(fig))
        body.append(_table(fig))
    return ("<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(title)}</title>"
            f"<style>{_CSS}</style></head>"
            f"<body class='viz-root'>{''.join(body)}</body></html>")
