"""ASCII rendering of figure results (the harness's 'plots')."""

from __future__ import annotations

from typing import List

from repro.experiments.figures import FigureResult


def format_table(fig: FigureResult) -> str:
    """One row per x-value, one column per series — the figure as text."""
    xs: List[object] = []
    for s in fig.series:
        for x, _ in s.points:
            if x not in xs:
                xs.append(x)
    labels = [s.label for s in fig.series]
    maps = fig.series_map()
    widths = [max(len(str(fig.xlabel)), *(len(str(x)) for x in xs))]
    widths += [max(len(l), 8) for l in labels]
    header = [fig.xlabel] + labels
    lines = [fig.title,
             "  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    for x in xs:
        row = [str(x).ljust(widths[0])]
        for l, w in zip(labels, widths[1:]):
            v = maps[l].get(x)
            row.append(("-" if v is None else f"{v:.3f}").ljust(w))
        lines.append("  ".join(row))
    return "\n".join(lines)


def to_csv(fig: FigureResult) -> str:
    """The figure's series as CSV (x, then one column per series)."""
    xs: List[object] = []
    for s in fig.series:
        for x, _ in s.points:
            if x not in xs:
                xs.append(x)
    maps = fig.series_map()
    labels = [s.label for s in fig.series]
    lines = [",".join(["x"] + labels)]
    for x in xs:
        row = [str(x)]
        for l in labels:
            v = maps[l].get(x)
            row.append("" if v is None else f"{v:.6f}")
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def improvement_percent(fig: FigureResult, base: str, better: str) -> float:
    """Mean percentage speedup improvement of ``better`` over ``base``
    across the shared x-values — the paper's '17.3 % average' metric."""
    maps = fig.series_map()
    b, g = maps[base], maps[better]
    common = [x for x in b if x in g]
    if not common:
        raise ValueError("series share no x-values")
    gains = [(g[x] - b[x]) / b[x] * 100.0 for x in common]
    return sum(gains) / len(gains)
