"""Choosing tile extents so the processor grid matches the paper's 16.

The paper holds the tile extents on the processor dimensions constant
"such that the required number of MPI processes would be 16".  Given an
index range ``[lo, hi]`` of the (possibly skewed) iteration space, this
module finds the smallest extent ``s`` whose tiling ``floor(idx / s)``
produces exactly ``count`` tiles — which is what pins the processor
mesh to ``4 x 4``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def tile_count_extent(lo: int, hi: int, count: int) -> int:
    """Smallest ``s >= 1`` with ``floor(hi/s) - floor(lo/s) + 1 == count``.

    Raises when no extent yields exactly ``count`` tiles (possible for
    awkward ranges; callers then adjust the space, as the paper's
    authors implicitly did when picking their x, y factors).
    """
    if hi < lo:
        raise ValueError("empty index range")
    span = hi - lo + 1
    if count < 1 or count > span:
        raise ValueError(f"cannot cut [{lo},{hi}] into {count} tile rows")
    # count == 1 with lo >= 0 needs s > hi (both indices in tile 0), so
    # the search range extends past the span.
    upper = max(span + 2, abs(hi) + 2)
    for s in range(max(1, span // (count + 1)), upper):
        tiles = hi // s - lo // s + 1  # Python floor division (also lo<0)
        if tiles == count:
            return s
    raise ValueError(
        f"no extent produces exactly {count} tile rows over [{lo},{hi}]"
    )


def processor_grid_sizes(ranges: Sequence[Tuple[int, int]],
                         grid: Sequence[int]) -> List[int]:
    """Extents for each processor dimension given target grid shape.

    ``ranges[k]`` is the (lo, hi) of the iteration-space index mapped to
    processor dimension ``k``; ``grid[k]`` the desired tile-row count.
    """
    if len(ranges) != len(grid):
        raise ValueError("one grid factor per range required")
    return [tile_count_extent(lo, hi, g)
            for (lo, hi), g in zip(ranges, grid)]
