"""Drivers for the paper's Figures 5-10.

Every driver returns a :class:`FigureResult` whose series are exactly
what the figure plots: speedup per iteration space (figs 5/7/9, taking
the best tile size per space, as the paper's "maximum speedups") or
speedup per tile size (figs 6/8/10).  Parameters default to the paper's
anchored values (SOR M=100 N=200; Jacobi T=50 I=J=100; ADI T=100 N=256)
with 16 processors in a 4x4 mesh; reduced parameter sets can be passed
for quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import adi, jacobi, sor
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.spaces import tile_count_extent
from repro.runtime.machine import ClusterSpec, FAST_ETHERNET_CLUSTER


@dataclass(frozen=True)
class FigureSeries:
    label: str
    points: Tuple[Tuple[object, float], ...]  # (x-value, speedup)


@dataclass(frozen=True)
class FigureResult:
    figure: str
    title: str
    xlabel: str
    series: Tuple[FigureSeries, ...]
    details: Tuple[ExperimentResult, ...]

    def best(self, label: str) -> float:
        for s in self.series:
            if s.label == label:
                return max(v for _, v in s.points)
        raise KeyError(label)

    def series_map(self) -> Dict[str, Dict[object, float]]:
        return {s.label: dict(s.points) for s in self.series}


def _even_extent(lo: int, hi: int, count: int) -> int:
    """Smallest even extent cutting [lo, hi] into ``count`` tile rows
    (needed when P-integrality requires an even factor)."""
    s = tile_count_extent(lo, hi, count)
    while s % 2 or (hi // s - lo // s + 1) != count:
        s += 1
        if s > hi - lo + 1:
            raise ValueError("no even extent available")
    return s


# --------------------------------------------------------------------------
# SOR (figures 5 and 6) — skewed space: t' in [1,M], i' in [2,M+N],
# j' in [3,2M+N]; processors on dims (0,1); chain along dim 2.
# --------------------------------------------------------------------------

DEFAULT_SOR_SPACES: Tuple[Tuple[int, int], ...] = (
    (100, 100), (100, 200), (200, 200), (200, 400),
)
DEFAULT_SOR_Z: Tuple[int, ...] = (4, 6, 8, 12, 16, 24, 32, 48)


def sor_factors(m: int, n: int, grid: int = 4) -> Tuple[int, int]:
    """x, y giving a ``grid x grid`` processor mesh for SOR."""
    x = tile_count_extent(1, m, grid)
    y = tile_count_extent(2, m + n, grid)
    return x, y


def sor_tile_size_sweep(m: int, n: int,
                        z_values: Sequence[int],
                        spec: ClusterSpec) -> List[ExperimentResult]:
    x, y = sor_factors(m, n)
    app = sor.app(m, n)
    out = []
    for z in z_values:
        out.append(run_experiment(app, sor.h_rectangular(x, y, z),
                                  f"rect-z{z}", spec))
        out.append(run_experiment(app, sor.h_nonrectangular(x, y, z),
                                  f"nonrect-z{z}", spec))
    return out


def fig6(m: int = 100, n: int = 200,
         z_values: Sequence[int] = DEFAULT_SOR_Z,
         spec: Optional[ClusterSpec] = None) -> FigureResult:
    """SOR: speedups for various tile sizes (paper Figure 6)."""
    spec = spec or FAST_ETHERNET_CLUSTER
    results = sor_tile_size_sweep(m, n, z_values, spec)
    rect = [r for r in results if r.tiling.startswith("rect")]
    nonr = [r for r in results if r.tiling.startswith("nonrect")]
    return FigureResult(
        figure="fig6",
        title=f"SOR speedups vs tile size (M={m}, N={n})",
        xlabel="z (tile extent along the mapping dimension)",
        series=(
            FigureSeries("rectangular", tuple(
                (z, r.speedup) for z, r in zip(z_values, rect))),
            FigureSeries("non-rectangular", tuple(
                (z, r.speedup) for z, r in zip(z_values, nonr))),
        ),
        details=tuple(results),
    )


def fig5(spaces: Sequence[Tuple[int, int]] = DEFAULT_SOR_SPACES,
         z_values: Sequence[int] = DEFAULT_SOR_Z,
         spec: Optional[ClusterSpec] = None) -> FigureResult:
    """SOR: maximum speedups for different iteration spaces (Figure 5)."""
    spec = spec or FAST_ETHERNET_CLUSTER
    rect_pts, nonr_pts, details = [], [], []
    for m, n in spaces:
        results = sor_tile_size_sweep(m, n, z_values, spec)
        details.extend(results)
        label = f"{m}x{n}x{n}"
        rect_pts.append((label, max(
            r.speedup for r in results if r.tiling.startswith("rect"))))
        nonr_pts.append((label, max(
            r.speedup for r in results if r.tiling.startswith("nonrect"))))
    return FigureResult(
        figure="fig5",
        title="SOR maximum speedups for different iteration spaces",
        xlabel="iteration space (M x N x N)",
        series=(
            FigureSeries("rectangular", tuple(rect_pts)),
            FigureSeries("non-rectangular", tuple(nonr_pts)),
        ),
        details=tuple(details),
    )


# --------------------------------------------------------------------------
# Jacobi (figures 7 and 8) — skewed space: t' in [1,T], i' in [2,T+I],
# j' in [2,T+J]; processors on dims (1,2); chain along dim 0.
# --------------------------------------------------------------------------

DEFAULT_JACOBI_SPACES: Tuple[Tuple[int, int, int], ...] = (
    (50, 100, 100), (50, 200, 200), (100, 200, 200), (100, 300, 300),
)
DEFAULT_JACOBI_X: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)


def jacobi_factors(t: int, i: int, j: int, grid: int = 4) -> Tuple[int, int]:
    """y, z for a ``grid x grid`` mesh; y even for P-integrality of H_nr."""
    y = _even_extent(2, t + i, grid)
    z = tile_count_extent(2, t + j, grid)
    return y, z


def jacobi_tile_size_sweep(t: int, i: int, j: int,
                           x_values: Sequence[int],
                           spec: ClusterSpec) -> List[ExperimentResult]:
    y, z = jacobi_factors(t, i, j)
    app = jacobi.app(t, i, j)
    out = []
    for x in x_values:
        out.append(run_experiment(app, jacobi.h_rectangular(x, y, z),
                                  f"rect-x{x}", spec))
        out.append(run_experiment(app, jacobi.h_nonrectangular(x, y, z),
                                  f"nonrect-x{x}", spec))
    return out


def fig8(t: int = 50, i: int = 100, j: int = 100,
         x_values: Sequence[int] = DEFAULT_JACOBI_X,
         spec: Optional[ClusterSpec] = None) -> FigureResult:
    """Jacobi: speedups for various tile sizes (Figure 8)."""
    spec = spec or FAST_ETHERNET_CLUSTER
    results = jacobi_tile_size_sweep(t, i, j, x_values, spec)
    rect = [r for r in results if r.tiling.startswith("rect")]
    nonr = [r for r in results if r.tiling.startswith("nonrect")]
    return FigureResult(
        figure="fig8",
        title=f"Jacobi speedups vs tile size (T={t}, I=J={i})",
        xlabel="x (tile extent along the mapping dimension)",
        series=(
            FigureSeries("rectangular", tuple(
                (x, r.speedup) for x, r in zip(x_values, rect))),
            FigureSeries("non-rectangular", tuple(
                (x, r.speedup) for x, r in zip(x_values, nonr))),
        ),
        details=tuple(results),
    )


def fig7(spaces: Sequence[Tuple[int, int, int]] = DEFAULT_JACOBI_SPACES,
         x_values: Sequence[int] = DEFAULT_JACOBI_X,
         spec: Optional[ClusterSpec] = None) -> FigureResult:
    """Jacobi: maximum speedups for different iteration spaces (Figure 7)."""
    spec = spec or FAST_ETHERNET_CLUSTER
    rect_pts, nonr_pts, details = [], [], []
    for t, i, j in spaces:
        results = jacobi_tile_size_sweep(t, i, j, x_values, spec)
        details.extend(results)
        label = f"{t}x{i}x{j}"
        rect_pts.append((label, max(
            r.speedup for r in results if r.tiling.startswith("rect"))))
        nonr_pts.append((label, max(
            r.speedup for r in results if r.tiling.startswith("nonrect"))))
    return FigureResult(
        figure="fig7",
        title="Jacobi maximum speedups for different iteration spaces",
        xlabel="iteration space (T x I x J)",
        series=(
            FigureSeries("rectangular", tuple(rect_pts)),
            FigureSeries("non-rectangular", tuple(nonr_pts)),
        ),
        details=tuple(details),
    )


# --------------------------------------------------------------------------
# ADI (figures 9 and 10) — no skew: t in [1,T], i,j in [1,N]; processors
# on dims (1,2); chain along dim 0; four tilings of equal volume.
# --------------------------------------------------------------------------

DEFAULT_ADI_SPACES: Tuple[Tuple[int, int], ...] = (
    (50, 128), (100, 128), (100, 256), (200, 256),
)
DEFAULT_ADI_X: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)

ADI_TILINGS: Tuple[Tuple[str, Callable], ...] = (
    ("rect", adi.h_rectangular),
    ("nr1", adi.h_nr1),
    ("nr2", adi.h_nr2),
    ("nr3", adi.h_nr3),
)


def adi_factors(t: int, n: int, grid: int = 4) -> Tuple[int, int]:
    y = tile_count_extent(1, n, grid)
    z = tile_count_extent(1, n, grid)
    return y, z


def adi_tile_size_sweep(t: int, n: int,
                        x_values: Sequence[int],
                        spec: ClusterSpec) -> List[ExperimentResult]:
    y, z = adi_factors(t, n)
    app = adi.app(t, n)
    out = []
    for x in x_values:
        for label, hfun in ADI_TILINGS:
            out.append(run_experiment(app, hfun(x, y, z),
                                      f"{label}-x{x}", spec))
    return out


def fig10(t: int = 100, n: int = 256,
          x_values: Sequence[int] = DEFAULT_ADI_X,
          spec: Optional[ClusterSpec] = None) -> FigureResult:
    """ADI: speedups for various tile sizes (Figure 10)."""
    spec = spec or FAST_ETHERNET_CLUSTER
    results = adi_tile_size_sweep(t, n, x_values, spec)
    series = []
    for label, _ in ADI_TILINGS:
        pts = [r for r in results if r.tiling.startswith(label + "-")]
        series.append(FigureSeries(label, tuple(
            (x, r.speedup) for x, r in zip(x_values, pts))))
    return FigureResult(
        figure="fig10",
        title=f"ADI speedups vs tile size (T={t}, N={n})",
        xlabel="x (tile extent along the mapping dimension)",
        series=tuple(series),
        details=tuple(results),
    )


def fig9(spaces: Sequence[Tuple[int, int]] = DEFAULT_ADI_SPACES,
         x_values: Sequence[int] = DEFAULT_ADI_X,
         spec: Optional[ClusterSpec] = None) -> FigureResult:
    """ADI: maximum speedups for different iteration spaces (Figure 9)."""
    spec = spec or FAST_ETHERNET_CLUSTER
    per_label_pts: Dict[str, List[Tuple[str, float]]] = {
        label: [] for label, _ in ADI_TILINGS
    }
    details = []
    for t, n in spaces:
        results = adi_tile_size_sweep(t, n, x_values, spec)
        details.extend(results)
        space_label = f"{t}x{n}x{n}"
        for label, _ in ADI_TILINGS:
            best = max(r.speedup for r in results
                       if r.tiling.startswith(label + "-"))
            per_label_pts[label].append((space_label, best))
    return FigureResult(
        figure="fig9",
        title="ADI maximum speedups for different iteration spaces",
        xlabel="iteration space (T x N x N)",
        series=tuple(FigureSeries(label, tuple(per_label_pts[label]))
                     for label, _ in ADI_TILINGS),
        details=tuple(details),
    )
