"""§4.4 headline aggregation: average improvement per application.

The paper condenses its six figures into three numbers — the average
speedup improvement of non-rectangular over rectangular tiling: SOR
17.3 %, Jacobi 9.1 %, ADI 10.1 %.  This module recomputes the same
aggregation over the reproduction's sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments import figures
from repro.experiments.report import improvement_percent
from repro.runtime.machine import ClusterSpec

#: The numbers §4.4 reports for the authors' testbed.
PAPER_IMPROVEMENTS = {"sor": 17.3, "jacobi": 9.1, "adi": 10.1}


@dataclass(frozen=True)
class ImprovementSummary:
    measured: Dict[str, float]

    def table(self) -> str:
        lines = ["app     measured   paper"]
        for app in ("sor", "jacobi", "adi"):
            lines.append(
                f"{app:<7} {self.measured[app]:>7.1f}%  "
                f"{PAPER_IMPROVEMENTS[app]:>5.1f}%")
        return "\n".join(lines)


def average_improvements(
    spec: Optional[ClusterSpec] = None,
    sor_z: Sequence[int] = figures.DEFAULT_SOR_Z,
    jacobi_x: Sequence[int] = figures.DEFAULT_JACOBI_X,
    adi_x: Sequence[int] = figures.DEFAULT_ADI_X,
) -> ImprovementSummary:
    """Average nr-vs-rect improvement on the anchored iteration spaces
    (SOR M=100 N=200; Jacobi T=50 I=J=100; ADI T=100 N=256)."""
    f6 = figures.fig6(m=100, n=200, z_values=sor_z, spec=spec)
    f8 = figures.fig8(t=50, i=100, j=100, x_values=jacobi_x, spec=spec)
    f10 = figures.fig10(t=100, n=256, x_values=adi_x, spec=spec)
    return ImprovementSummary(measured={
        "sor": improvement_percent(f6, "rectangular", "non-rectangular"),
        "jacobi": improvement_percent(f8, "rectangular",
                                      "non-rectangular"),
        "adi": improvement_percent(f10, "rect", "nr3"),
    })
