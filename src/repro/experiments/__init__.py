"""Experiment harness reproducing the paper's §4 figures.

``figures`` has one driver per paper figure (5-10); each returns the
series the figure plots (speedups per iteration space / tile size), and
``report`` renders them as ASCII tables.  The shape expectations —
non-rectangular beats rectangular everywhere, ADI ordering
``nr3 > nr1 ~ nr2 > r`` — are asserted by the benchmark suite.
"""

from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.spaces import tile_count_extent, processor_grid_sizes
from repro.experiments import figures
from repro.experiments.report import format_table

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "tile_count_extent",
    "processor_grid_sizes",
    "figures",
    "format_table",
]
