"""Tuned tile shapes vs the paper's hand-picked rectangles.

The paper picks its tilings by hand: rectangular baselines and the
cone-derived non-rectangular alternatives of §4, with tile sizes swept
manually ("we then varied factor z").  The tuner searches the legal
shape space those choices live in; this experiment asks whether the
search *rediscovers or beats* the hand-picked rectangles on all three
applications, and reports what the pruning ladder paid for it.

Spaces are reduced from the paper anchors (tuning compiles tens of
candidate programs, so full 100x200-class spaces are minutes each, not
suitable for a smoke table); the tuner's winner-vs-baseline claim is
size-independent — the baseline is force-included in the simulated
frontier, so ``tuned <= rect`` by construction, and the interesting
output is *how much* better the cone shapes are and whether the
lower-bound stop rule fires.

Run via ``python -m repro.experiments.tuned`` — the EXPERIMENTS.md
autotuning table is produced by exactly this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps import adi, jacobi, sor
from repro.apps.base import TiledApp
from repro.linalg.ratmat import RatMat
from repro.runtime.machine import FAST_ETHERNET_CLUSTER, ClusterSpec
from repro.tuning import TuneConfig, tune_tile_shape


@dataclass(frozen=True)
class TunedRow:
    """One app's hand-picked rectangle vs the tuner's winner."""

    app: str
    baseline_label: str
    winner_label: str
    baseline_makespan: float            # simulated, seconds
    winner_makespan: float              # simulated, seconds
    baseline_procs: int
    winner_procs: int
    early_stop: bool
    simulator_evals: int
    candidates: int

    @property
    def gain(self) -> float:
        return self.baseline_makespan / self.winner_makespan


def default_configs() -> List[Tuple[TiledApp, RatMat, str, TuneConfig]]:
    """SOR/Jacobi/ADI at reduced paper-anchored spaces.

    Baselines are the hand-picked rectangles of §4 at mesh-matched
    factors.  SOR gets a wider extent grid: its skewed space outgrows
    the default 1-4 grid's tile volumes, which would leave only
    over-partitioned candidates.
    """
    return [
        (sor.app(16, 24), sor.h_rectangular(4, 5, 5), "rect 4x5x5",
         TuneConfig(extents=(2, 3, 4, 5, 6, 8), max_volume_scale=512)),
        (jacobi.app(10, 16, 16), jacobi.h_rectangular(3, 4, 4),
         "rect 3x4x4", TuneConfig()),
        (adi.app(12, 16), adi.h_rectangular(3, 4, 4), "rect 3x4x4",
         TuneConfig()),
    ]


def tune_one(app: TiledApp, baseline_h: RatMat, baseline_label: str,
             config: Optional[TuneConfig] = None,
             spec: Optional[ClusterSpec] = None) -> TunedRow:
    spec = spec or FAST_ETHERNET_CLUSTER
    res = tune_tile_shape(app.nest, app.mapping_dim, spec=spec,
                          config=config or TuneConfig(),
                          baseline_h=baseline_h)
    assert res.baseline is not None
    return TunedRow(
        app=app.name,
        baseline_label=baseline_label,
        winner_label=res.winner.label,
        baseline_makespan=float(res.baseline.simulated_makespan or 0.0),
        winner_makespan=float(res.winner.simulated_makespan or 0.0),
        baseline_procs=int(res.baseline.processors or 0),
        winner_procs=int(res.winner.processors or 0),
        early_stop=res.early_stop,
        simulator_evals=res.simulator_evals,
        candidates=res.candidate_count,
    )


def run(configs: Optional[Sequence[
        Tuple[TiledApp, RatMat, str, TuneConfig]]] = None,
        spec: Optional[ClusterSpec] = None) -> List[TunedRow]:
    return [tune_one(app, h, label, config, spec)
            for app, h, label, config in
            (configs if configs is not None else default_configs())]


def format_rows(rows: Sequence[TunedRow]) -> str:
    """The table as markdown (pasteable into EXPERIMENTS.md)."""
    lines = [
        "| app | hand-picked | tuned winner | procs | simulated "
        "(us) rect -> tuned | gain | sim/costed | stop |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(
            f"| {r.app} | {r.baseline_label} | `{r.winner_label}` "
            f"| {r.baseline_procs} -> {r.winner_procs} "
            f"| {r.baseline_makespan * 1e6:.1f} -> "
            f"{r.winner_makespan * 1e6:.1f} "
            f"| {r.gain:.2f}x | {r.simulator_evals}/{r.candidates} "
            f"| {'bound' if r.early_stop else 'swept'} |")
    return "\n".join(lines)


def main() -> int:
    rows = run()
    print(format_rows(rows))
    ok = all(r.winner_makespan <= r.baseline_makespan for r in rows)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
