"""Run one (app, tiling, cluster) experiment and report speedup.

Speedup is measured the way the paper measures it: simulated parallel
completion time against the sequential execution of the same iteration
count under the same per-iteration cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import TiledApp
from repro.linalg.ratmat import RatMat
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec, FAST_ETHERNET_CLUSTER


@dataclass(frozen=True)
class ExperimentResult:
    """One row of a paper figure."""

    app: str
    tiling: str
    tile_volume: int
    processors: int
    total_points: int
    t_seq: float
    t_par: float
    messages: int
    elements: int

    @property
    def speedup(self) -> float:
        return self.t_seq / self.t_par

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors

    def row(self) -> tuple:
        return (self.app, self.tiling, self.tile_volume, self.processors,
                round(self.speedup, 3))


def run_experiment(app: TiledApp, h: RatMat, label: str,
                   spec: Optional[ClusterSpec] = None) -> ExperimentResult:
    """Compile ``app`` under tiling ``h`` and simulate the parallel run."""
    spec = spec or FAST_ETHERNET_CLUSTER
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    stats = DistributedRun(prog, spec).simulate()
    total = prog.total_points()
    t_seq = spec.compute_time(total)
    return ExperimentResult(
        app=app.name,
        tiling=label,
        tile_volume=prog.tiling.tile_volume(),
        processors=prog.num_processors,
        total_points=total,
        t_seq=t_seq,
        t_par=stats.makespan,
        messages=stats.total_messages,
        elements=stats.total_elements,
    )
