"""Measured scaling curves from the real parallel backend.

The paper's figures are analytic-model speedups; PR 4's parallel
runtime finally produces *measured* wall-clock numbers on the host.
This module runs ``execute_parallel`` over a worker sweep and packages
the result as a :class:`FigureResult`, so the existing report/CSV/HTML
renderers plot measured curves next to the model's.

Series:

* ``measured``  — T_wall(1 worker) / T_wall(w workers), min-of-repeats
  makespans (max measured rank clock, excluding process spawn).
* ``ideal``     — min(w, processors): linear scaling bound.
* ``model``     — the simulator's predicted speedup for this program on
  its virtual cluster (constant in ``w``; the model assumes one CPU per
  processor, i.e. the ``workers >= processors`` regime).

On a single-core host the measured curve is flat — that is the point
of plotting it against the model rather than asserting on it here.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

from repro.apps import sor
from repro.apps.base import TiledApp
from repro.experiments.figures import FigureResult, FigureSeries
from repro.experiments.harness import run_experiment
from repro.linalg.ratmat import RatMat
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec


def measure_wall(app: TiledApp, h: RatMat, workers: int,
                 spec: Optional[ClusterSpec] = None,
                 repeats: int = 2,
                 protocol: str = "spec") -> Tuple[float, float]:
    """(best makespan, best end-to-end wall) over ``repeats`` runs.

    The makespan is the max measured rank clock — the number comparable
    to the model's ``T_par``; the end-to-end wall additionally pays
    process spawn/teardown.
    """
    spec = spec or ClusterSpec()
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    best_span = float("inf")
    best_wall = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        _, stats = DistributedRun(prog, spec).execute_parallel(
            app.init_value, workers=workers, protocol=protocol)
        best_wall = min(best_wall, time.perf_counter() - t0)
        best_span = min(best_span, stats.makespan)
    return best_span, best_wall


def measured_scaling(app: TiledApp, h: RatMat, label: str,
                     workers: Sequence[int] = (1, 2, 4),
                     spec: Optional[ClusterSpec] = None,
                     repeats: int = 2,
                     protocol: str = "spec") -> FigureResult:
    """Measured-vs-model speedup over a worker sweep (one app, one
    tiling).  Baseline is the 1-worker parallel run — same engine, same
    mailboxes, no concurrency — so the curve isolates actual overlap."""
    spec = spec or ClusterSpec()
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    nproc = prog.num_processors
    model = run_experiment(app, h, label, spec=spec)
    spans = {}
    for w in workers:
        span, _ = measure_wall(app, h, w, spec=spec, repeats=repeats,
                               protocol=protocol)
        spans[w] = span
    base = spans[min(workers)]
    series = (
        FigureSeries(label="measured", points=tuple(
            (w, base / spans[w]) for w in workers)),
        FigureSeries(label="ideal", points=tuple(
            (w, float(min(w, nproc))) for w in workers)),
        FigureSeries(label="model", points=tuple(
            (w, model.speedup) for w in workers)),
    )
    return FigureResult(
        figure="measured",
        title=f"Measured scaling: {app.name} [{label}] on "
              f"{nproc} processors",
        xlabel="workers",
        series=series,
        details=(model,),
    )


def sor_measured(m: int = 20, n: int = 30,
                 tile: Tuple[int, int, int] = (4, 8, 10),
                 workers: Sequence[int] = (1, 2, 4),
                 repeats: int = 2) -> FigureResult:
    """Convenience driver: a modest SOR config that runs in seconds."""
    return measured_scaling(sor.app(m, n), sor.h_rectangular(*tile),
                            label=f"rect {tile}", workers=workers,
                            repeats=repeats)
