"""Predicted-vs-simulated-vs-measured makespan validation (COST03).

The cost certifier claims its analytic makespan reproduces the
simulator bit for bit; this experiment puts that claim (and the model
itself) in one table per app:

* ``predicted`` — the static cost certificate's critical-path makespan
  (COST03, no execution);
* ``simulated`` — :meth:`DistributedRun.simulate` under the same
  cluster model — must equal ``predicted`` exactly;
* ``measured`` — the real parallel backend's max measured rank clock
  (host wall-clock; on a loaded or single-core host this deviates
  freely — it is the reality check, not an assertion).

Run via ``python -m repro.experiments.costval`` — the EXPERIMENTS.md
cost-validation row is produced by exactly this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps import adi, jacobi, sor
from repro.apps.base import TiledApp
from repro.linalg.ratmat import RatMat
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec


@dataclass(frozen=True)
class CostValRow:
    """One app/tiling's three makespans (seconds)."""

    app: str
    label: str
    processors: int
    predicted: float
    simulated: float
    measured: Optional[float]           # None when not measured

    @property
    def exact(self) -> bool:
        """Predicted == simulated, bitwise (the COST03 guarantee)."""
        return self.predicted == self.simulated


def validate(app: TiledApp, h: RatMat, label: str,
             spec: Optional[ClusterSpec] = None,
             measure: bool = True,
             workers: int = 2,
             repeats: int = 2) -> CostValRow:
    """One row: certify, simulate, and (optionally) run for real."""
    spec = spec or ClusterSpec()
    prog = TiledProgram(app.nest, h, mapping_dim=app.mapping_dim)
    cert = prog.cost_certificate(protocol="spec", spec=spec)
    stats = DistributedRun(prog, spec).simulate()
    measured = None
    if measure:
        best = float("inf")
        for _ in range(max(1, repeats)):
            _, mstats = DistributedRun(prog, spec).execute_parallel(
                app.init_value, workers=workers, protocol="spec")
            best = min(best, mstats.makespan)
        measured = best
    return CostValRow(
        app=app.name, label=label, processors=prog.num_processors,
        predicted=cert.makespan, simulated=stats.makespan,
        measured=measured,
    )


def default_configs() -> List[Tuple[TiledApp, RatMat, str]]:
    """The SOR/Jacobi/ADI trio of the EXPERIMENTS.md table."""
    return [
        (sor.app(10, 14), sor.h_nonrectangular(3, 4, 5),
         "nonrect 3x4x5"),
        (jacobi.app(4, 6, 6), jacobi.h_rectangular(2, 3, 3),
         "rect 2x3x3"),
        (adi.app(8, 9), adi.h_nr1(2, 3, 3),
         "nr1 2x3x3"),
    ]


def run(measure: bool = True, workers: int = 2,
        repeats: int = 2,
        configs: Optional[Sequence[Tuple[TiledApp, RatMat, str]]] = None,
        ) -> List[CostValRow]:
    rows = []
    for app, h, label in (configs if configs is not None
                          else default_configs()):
        rows.append(validate(app, h, label, measure=measure,
                             workers=workers, repeats=repeats))
    return rows


def format_rows(rows: Sequence[CostValRow]) -> str:
    """The table as markdown (pasteable into EXPERIMENTS.md)."""
    def us(x: Optional[float]) -> str:
        return "-" if x is None else f"{x * 1e6:.3f}"

    lines = [
        "| app | tiling | procs | predicted (us) | simulated (us) "
        "| exact | measured (us) |",
        "|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(
            f"| {r.app} | {r.label} | {r.processors} "
            f"| {us(r.predicted)} | {us(r.simulated)} "
            f"| {'yes' if r.exact else 'NO'} | {us(r.measured)} |")
    return "\n".join(lines)


def main() -> int:
    rows = run()
    print(format_rows(rows))
    return 0 if all(r.exact for r in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
