"""repro — reproduction of "Compiling Tiled Iteration Spaces for Clusters"
(Goumas, Drosinos, Athanasaki, Koziris; IEEE CLUSTER 2002).

An end-to-end compiler framework for general parallelepiped loop tiling
with automatic message-passing code generation, plus a deterministic
virtual-cluster runtime substituting for the paper's 16-node testbed.

Typical use::

    from repro import apps, compile_tiled, simulate
    app = apps.sor.app(m=100, n=200)
    h = apps.sor.h_nonrectangular(26, 76, 8)
    prog = compile_tiled(app.nest, h, mapping_dim=app.mapping_dim)
    stats = simulate(prog)
    print(stats.makespan)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro import apps, codegen, distribution, experiments, linalg, loops
from repro import polyhedra, runtime, schedule, tiling
from repro.runtime.executor import DistributedRun, TiledProgram
from repro.runtime.machine import ClusterSpec, FAST_ETHERNET_CLUSTER

__version__ = "1.0.0"


def compile_tiled(nest, h, mapping_dim=None) -> TiledProgram:
    """Compile a loop nest under tiling ``h`` into an SPMD program."""
    return TiledProgram(nest, h, mapping_dim=mapping_dim)


def simulate(program: TiledProgram, spec: ClusterSpec = None, trace=None):
    """Simulate the program's timing on the virtual cluster."""
    return DistributedRun(program, spec or FAST_ETHERNET_CLUSTER,
                          trace=trace).simulate()


def execute(program: TiledProgram, init_value, spec: ClusterSpec = None,
            trace=None):
    """Execute the program with real data movement; returns
    ``(global_arrays, stats)``."""
    return DistributedRun(program, spec or FAST_ETHERNET_CLUSTER,
                          trace=trace).execute(init_value)


__all__ = [
    "apps", "codegen", "distribution", "experiments", "linalg", "loops",
    "polyhedra", "runtime", "schedule", "tiling",
    "TiledProgram", "DistributedRun", "ClusterSpec",
    "FAST_ETHERNET_CLUSTER", "compile_tiled", "simulate", "execute",
]
