"""The verifier driver: run every pass, collect one report.

Two entry points:

* :func:`analyze_tiling` — the *pre-construction* checks (legality
  ``H D >= 0`` and tile-size ``max_l d'_kl <= v_kk``) that must hold
  before a :class:`TiledProgram` can even be built.  Never constructs
  the program, never raises on findings.
* :func:`analyze` / :func:`analyze_program` — the full pipeline.
  ``analyze`` starts from ``(nest, h)``: if the pre-construction checks
  fail it returns that partial report (the remaining passes are
  meaningless on an unbuildable program); otherwise it compiles the
  program and delegates to ``analyze_program``, which runs the
  deadlock, race, and bounds passes over the compiled artifact.

:func:`verify_program` is the guard form used by
``TiledProgram(..., verify=True)``: it raises :class:`VerificationError`
(carrying the report) when any error-severity diagnostic is found.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.diagnostics import (
    ERROR,
    AnalysisReport,
    Diagnostic,
)
from repro.tiling.legality import legality_violations

PASS_LEGALITY = "legality"


class VerificationError(ValueError):
    """Raised by :func:`verify_program` when the verifier finds errors.

    The full :class:`AnalysisReport` is available as ``.report``.
    """

    def __init__(self, report: AnalysisReport):
        self.report = report
        ne = len(report.errors)
        first = report.errors[0] if report.errors else None
        head = f"static verification failed: {ne} error(s)"
        if first is not None:
            head += f"; first: [{first.code}] {first.message}"
        super().__init__(head)


def _cone_suggestion(deps: Sequence[Sequence[int]]) -> str:
    from repro.tiling.cone import tiling_cone_rays
    try:
        rays = tiling_cone_rays(deps)
    except ValueError:
        return "skew the loop or pick rows from the tiling cone"
    return ("pick rows of H from the tiling cone; its extreme rays are "
            + ", ".join(str(r) for r in rays))


def check_tiling(h, deps: Sequence[Sequence[int]]) -> list:
    """LEG01/LEG02 findings for a ``(H, dependences)`` pair."""
    deps = [tuple(int(x) for x in d) for d in deps]
    diags = []
    suggestion = None
    for row, dep, value in legality_violations(h, deps):
        if suggestion is None:
            suggestion = _cone_suggestion(deps)
        diags.append(Diagnostic(
            code="LEG01", severity=ERROR, pass_name=PASS_LEGALITY,
            message=f"row {row} of H has negative inner product {value} "
                    f"with dependence {dep}: tiles along this face cut "
                    f"the dependence both ways, so no tile execution "
                    f"order exists",
            equation="H D >= 0 (§2.2, Ramanujam & Sadayappan)",
            subject=(("row", row), ("dep", dep), ("value", str(value))),
            suggestion=suggestion,
        ))
    if diags:
        return diags        # TTIS geometry is meaningless on illegal H
    # Tile-size precheck: mirror CommunicationSpec's constructor guard
    # (max_l d'_kl <= v_kk) without building the distribution.
    from repro.tiling.ttis import TTIS
    try:
        ttis = TTIS(h)
    except ValueError as exc:
        return [Diagnostic(
            code="LEG02", severity=ERROR, pass_name=PASS_LEGALITY,
            message=f"tile geometry unusable: {exc}",
            equation="c_k | v_kk (LDS condensation, §3.1)",
            subject=(("h", tuple(map(tuple, h.rows()))),),
            suggestion="choose H with strides dividing the tile extents",
        )]
    d_prime = ttis.transformed_dependences(deps)
    for k in range(ttis.n):
        reach = max((dp[k] for dp in d_prime), default=0)
        if reach > ttis.v[k]:
            worst = max(range(len(deps)), key=lambda i: d_prime[i][k])
            diags.append(Diagnostic(
                code="LEG02", severity=ERROR, pass_name=PASS_LEGALITY,
                message=f"tile too small along dimension {k}: dependence "
                        f"{deps[worst]} transforms to d' = "
                        f"{d_prime[worst]} with reach {reach} > tile "
                        f"extent v_{k} = {ttis.v[k]}; it would skip over "
                        f"a whole tile, which the one-tile halo cannot "
                        f"express",
                equation="max_l d'_kl <= v_kk (§3.2 halo/CC machinery)",
                subject=(("dim", k), ("dep", deps[worst]),
                         ("d_prime", d_prime[worst]),
                         ("reach", reach), ("v_k", ttis.v[k])),
                suggestion=f"enlarge the tile along dimension {k} to at "
                           f"least {reach}",
            ))
    return diags


def analyze_tiling(h, deps: Sequence[Sequence[int]],
                   subject: str = "") -> AnalysisReport:
    """Pre-construction report: legality + tile-size only."""
    report = AnalysisReport()
    if subject:
        report.meta["subject"] = subject
    report.meta["h"] = [[str(x) for x in row] for row in h.rows()]
    report.meta["dependences"] = [tuple(d) for d in deps]
    report.extend(check_tiling(h, deps))
    report.mark_pass(PASS_LEGALITY)
    return report


def analyze_program(program, subject: str = "", *,
                    deadlock_both: bool = True,
                    overlap: bool = False,
                    hb: bool = False,
                    cost: bool = False) -> AnalysisReport:
    """Full post-construction report over a compiled ``TiledProgram``.

    ``deadlock_both=False`` analyzes the deadlock pass under the eager
    protocol only (the runtime default).  Rendezvous-only cyclic waits
    are *warnings* under the dual-protocol policy, so skipping the
    second abstract run never changes ``report.ok`` — it is what the
    construction-time guard uses to stay cheap.

    ``overlap=True`` additionally verifies the overlapped-execution
    plans (OV01-OV03: pack-payload equality, commit-level legality,
    boundary/interior partition, lazy-unpack safety).  Opt-in because
    it builds every tile's overlap plan, which the construction-time
    guard must not pay for.

    ``hb=True`` additionally runs the happens-before certifier
    (HB01-HB03: vector-clock race freedom and wait-graph acyclicity
    of the parallel runtime's schedule under every selectable
    protocol, blocking and overlapped, plus the mailbox ring protocol
    model).  Opt-in for the same cost reason as ``overlap``.

    ``cost=True`` additionally runs the static cost certifier
    (COST01-COST04: closed-form per-edge communication volumes
    cross-checked against the frozen plans, per-rank compute volumes,
    the analytic critical-path makespan, and the Dinh & Demmel
    lower-bound verdict).  The full certificate lands in
    ``report.meta["cost"]``.
    """
    from repro.analysis.bounds import check_bounds
    from repro.analysis.deadlock import check_program_deadlock
    from repro.analysis.races import check_races
    from repro.analysis.schedule_model import ScheduleModel

    report = analyze_tiling(program.tiling.h, program.nest.dependences,
                            subject=subject)
    report.meta.update(
        mapping_dim=program.dist.m,
        processors=program.num_processors,
        tiles=len(program.dist.tiles),
        tile_volume=program.tiling.ttis.tile_volume,
        d_s=[tuple(d) for d in program.comm.d_s],
        d_m=[tuple(d) for d in program.comm.d_m],
        cc=tuple(program.comm.cc),
        offsets=tuple(program.comm.offsets),
    )
    if not report.ok:       # unbuildable geometry; program is suspect
        return report
    model = ScheduleModel(program)
    report.meta["messages"] = model.total_messages
    report.extend(check_races(program, model))
    report.mark_pass("races")
    report.extend(check_program_deadlock(
        model, synchronous=False if not deadlock_both else None))
    report.mark_pass("deadlock")
    report.extend(check_bounds(program))
    report.mark_pass("bounds")
    if overlap:
        from repro.analysis.overlap import check_overlap
        report.extend(check_overlap(program))
        report.mark_pass("overlap")
    if hb:
        from repro.analysis.hb import check_hb
        report.extend(check_hb(program))
        report.mark_pass("hb")
    if cost:
        cert = program.cost_certificate()
        report.extend(cert.diagnostics)
        report.meta["cost"] = cert.to_dict()
        report.mark_pass("cost")
    return report


def analyze(nest, h, mapping_dim: Optional[int] = None,
            subject: str = "", *, overlap: bool = False,
            hb: bool = False, cost: bool = False) -> AnalysisReport:
    """End-to-end: pre-checks, then compile and run every pass.

    When the pre-construction checks fail, the partial report is
    returned and no :class:`TiledProgram` is ever built — this is the
    verifier's whole point: the same defects the runtime would hit
    (``ValueError`` in construction, ``DeadlockError`` in execution,
    corrupted halos) become compile-time diagnostics.
    """
    pre = analyze_tiling(h, nest.dependences, subject=subject)
    if not pre.ok:
        return pre
    from repro.runtime.executor import TiledProgram
    program = TiledProgram(nest, h, mapping_dim)
    return analyze_program(program, subject=subject, overlap=overlap,
                           hb=hb, cost=cost)


def verify_program(program, subject: str = "") -> AnalysisReport:
    """Guard form: raise :class:`VerificationError` on any error.

    Runs the deadlock pass eager-only (``deadlock_both=False``): the
    rendezvous-protocol refinement can only add warnings, which never
    raise here — ``repro analyze`` gives the full dual-protocol report.
    """
    report = analyze_program(program, subject=subject,
                             deadlock_both=False)
    if not report.ok:
        raise VerificationError(report)
    return report
