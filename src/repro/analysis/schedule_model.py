"""Abstract per-rank Send/Recv/compute programs, derived statically.

The verifier must reason about exactly the message sequence each rank's
generated node program will issue — without executing it.  This module
replays :meth:`TiledProgram.receive_plan` / :meth:`send_plan` (the same
code path :class:`repro.runtime.executor.DistributedRun` drives) into
plain ordered op lists, one per rank, annotated with the compile-time
context (tile, tile dependence ``d^S``, processor dependence ``d^m``)
each op came from.

The model is the single source of truth for the deadlock and race
passes, so a schedule bug surfaces identically in both.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

Tile = Tuple[int, ...]
Pid = Tuple[int, ...]


class RecvOp(NamedTuple):
    """A blocking receive the node program will post.

    A ``NamedTuple`` rather than a dataclass: the model builds one op
    per scheduled message, so construction cost is on the verifier's
    critical path.  (The two op types can never compare equal: their
    arities differ.)
    """

    source: int                     # sender rank
    tag: int                        # message tag (index into D^m)
    nelems: Optional[int] = None    # expected element count (None: unknown)
    tile: Optional[Tile] = None     # receiving tile
    pred: Optional[Tile] = None     # predecessor tile the data comes from
    ds: Optional[Tile] = None       # tile dependence d^S carried
    step: Optional[int] = None      # chain position of `tile`


class SendOp(NamedTuple):
    """A send the node program will issue."""

    dest: int                       # receiver rank
    tag: int                        # message tag (index into D^m)
    nelems: Optional[int] = None    # element count (None: unknown)
    tile: Optional[Tile] = None     # sending tile
    dm: Optional[Pid] = None        # processor dependence d^m crossed
    step: Optional[int] = None      # chain position of `tile`


Op = object  # RecvOp | SendOp (py39-compatible alias for annotations)


class ScheduleModel:
    """Ordered abstract op lists per rank for one compiled program."""

    def __init__(self, program) -> None:
        self.program = program
        narr = len(program.arrays)
        dist = program.dist
        comm = program.comm
        rank_of = program.rank_of
        region_count = program.region_count
        prewarm = getattr(program, "prewarm_region_counts", None)
        if prewarm is not None:
            prewarm()
        m = dist.m
        tags = {dm: i for i, dm in enumerate(comm.d_m)}
        full_dirs = {dm: dm[:m] + (0,) + dm[m:] for dm in comm.d_m}
        self.ops: Dict[int, List[Op]] = {}
        for pid in program.pids:
            rank = rank_of[pid]
            seq: List[Op] = []
            for tile in dist.tiles_of(pid):
                step = dist.chain_index(tile)
                for ds, pred, src in program.receive_plan(tile):
                    nelems = region_count(pred, ds) * narr
                    if nelems == 0:
                        continue
                    dm = comm.project(ds)
                    seq.append(RecvOp(
                        source=rank_of[src], tag=tags[dm],
                        nelems=nelems, tile=tile, pred=pred, ds=ds,
                        step=step))
                for dm, dst in program.send_plan(tile):
                    nelems = region_count(tile, full_dirs[dm]) * narr
                    if nelems == 0:
                        continue
                    seq.append(SendOp(
                        dest=rank_of[dst], tag=tags[dm],
                        nelems=nelems, tile=tile, dm=dm, step=step))
            self.ops[rank] = seq

    # -- channel views -----------------------------------------------------------

    def channel_sends(self) -> Dict[Tuple[int, int, int], List[SendOp]]:
        """Sends per ``(src, dest, tag)`` FIFO channel, in issue order."""
        out: Dict[Tuple[int, int, int], List[SendOp]] = {}
        for rank, seq in self.ops.items():
            for op in seq:
                if isinstance(op, SendOp):
                    out.setdefault((rank, op.dest, op.tag), []).append(op)
        return out

    def channel_recvs(self) -> Dict[Tuple[int, int, int], List[RecvOp]]:
        """Receives per ``(src, dest, tag)`` channel, in post order."""
        out: Dict[Tuple[int, int, int], List[RecvOp]] = {}
        for rank, seq in self.ops.items():
            for op in seq:
                if isinstance(op, RecvOp):
                    out.setdefault((op.source, rank, op.tag), []).append(op)
        return out

    @property
    def total_messages(self) -> int:
        return sum(1 for seq in self.ops.values()
                   for op in seq if isinstance(op, SendOp))
