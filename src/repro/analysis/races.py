"""Race detector: every cross-processor dependence must be communicated.

Under the paper's linear schedule ``Pi = [1, ..., 1]`` and mapping
dimension ``m``, a value produced at iteration ``j'`` of tile ``j^S``
and consumed across tile dependence ``d^S`` with nonzero processor
projection ``d^m`` travels by message.  The pass re-derives, from first
principles (the nest's dependence vectors and floor arithmetic on the
TTIS lattice — *not* the ``CommunicationSpec`` under test), which
(point, dependence) pairs cross tiles, and proves each one is covered:

* the crossing class ``d^S`` must appear in ``D^S`` with its projection
  in ``D^m`` (else ``RACE01``);
* every crossing iteration must satisfy the communication-point
  criterion ``j'_k >= cc_k`` of the pack region, so the produced value
  is actually inside the message (else ``RACE02``);
* the tile dependence must be strictly positive under the schedule
  (``sum(d^S) >= 1``) so producer executes before consumer
  (else ``RACE03``);
* at tile granularity, the producing tile must issue the send and some
  tile at-or-before the consumer on the receiving processor must post
  the recv (else ``RACE01``);
* no two writers (two unpacked messages, or an unpacked message and the
  local computation) may touch the same LDS cell in an unordered way
  (else ``RACE04``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.schedule_model import RecvOp, ScheduleModel, SendOp

PASS = "races"
_EQ_CC = "communication points satisfy j'_k >= cc_k = v_kk - max_l d'_kl " \
    "(§3.2)"
_EQ_DS = "D^S = { floor(H(j+d)) - floor(H j) }, D^m its nonzero " \
    "projections (§2.2, §3.2)"
_EQ_PI = "the linear schedule Pi = [1,...,1] must be strictly positive " \
    "on every tile dependence (§2.4)"


def _encode(rows: np.ndarray) -> np.ndarray:
    """Pack small-integer displacement rows into scalar keys.

    Keys stay within ``rows.dtype`` (9^n < 2^31 for n <= 9), so int32
    inputs keep the whole pass in int32.
    """
    n = rows.shape[1]
    mult = 9 ** np.arange(n - 1, -1, -1, dtype=rows.dtype)
    return (rows + 4) @ mult               # components are in [-4, 4]


def _decode(key: int, n: int) -> Tuple[int, ...]:
    out = []
    for _ in range(n):
        out.append(int(key % 9) - 4)
        key //= 9
    return tuple(reversed(out))


def _occupied_keys(keys: np.ndarray, n: int) -> np.ndarray:
    """Distinct encoded keys, via a counting pass over the (tiny) key
    space — 9^n bins — instead of a sort-based ``np.unique``."""
    if n > 6:                       # bin table would dwarf the data
        return np.unique(keys)
    return np.nonzero(np.bincount(keys, minlength=9 ** n))[0]


def check_point_coverage(program) -> List[Diagnostic]:
    """Lattice-level checks: RACE01/RACE02/RACE03 per crossing class."""
    comm = program.comm
    ttis = program.tiling.ttis
    n = program.n
    m = program.dist.m
    lat = ttis.lattice_points_np()
    v = np.array(ttis.v, dtype=np.int64)
    deps = tuple(tuple(int(x) for x in d)
                 for d in program.nest.dependences)
    d_prime = ttis.transformed_dependences(deps)
    diags: List[Diagnostic] = []
    lat_min = lat.min(axis=0)
    lat_max = lat.max(axis=0)
    # The displacement classification runs in int32: coordinates are
    # tiny, and halving the word size roughly halves the cost of the
    # floor divisions that dominate this pass.
    lat32 = lat.astype(np.int32)
    v32 = v.astype(np.int32)
    for d, dp in zip(deps, d_prime):
        dp_arr = np.array(dp, dtype=np.int64)
        # Tile-displacement range per dim from the lattice extremes
        # (floor division is monotone per coordinate): a dependence
        # reaching beyond +-4 tiles is already a LEG02 error; don't let
        # the key encoding silently alias.
        if np.min((lat_min + dp_arr) // v) < -4 or \
                np.max((lat_max + dp_arr) // v) > 4:
            continue
        shifted = (lat32 + dp_arr.astype(np.int32)) // v32
        keys = _encode(shifted)
        for key in _occupied_keys(keys, n):
            ds = _decode(int(key), n)
            if not any(ds):
                continue                      # intra-tile, no schedule edge
            dm = comm.project(ds)
            positive = sum(ds) > 0
            if positive and not any(dm):
                continue                      # chain dependence, in order
            covered = positive and tuple(ds) in comm.ds_of_dm(dm)
            if covered:
                lbs = comm.pack_lower_bounds(ds)
                if not any(lbs[k] > 0 for k in range(n) if k != m):
                    continue                  # nothing left to check
            sel = keys == key
            if not positive:
                i = int(np.argmax(sel))
                example = tuple(int(x) for x in lat[i])
                diags.append(Diagnostic(
                    code="RACE03", severity=ERROR, pass_name=PASS,
                    message=f"tile dependence {ds} (from dependence {d}) "
                            f"is not strictly positive under "
                            f"Pi = [1,...,1]: the consumer tile executes "
                            f"no later than the producer",
                    equation=_EQ_PI,
                    subject=(("dep", d), ("ds", ds), ("point", example)),
                    suggestion="the tiling does not respect the "
                               "dependence; skew the loop or pick rows "
                               "from the tiling cone",
                ))
                continue
            if not covered:
                i = int(np.argmax(sel))
                example = tuple(int(x) for x in lat[i])
                diags.append(Diagnostic(
                    code="RACE01", severity=ERROR, pass_name=PASS,
                    message=f"cross-processor tile dependence {ds} "
                            f"(projection d^m={dm}, from dependence {d}) "
                            f"is not covered by the communication spec: "
                            f"no message carries it",
                    equation=_EQ_DS,
                    subject=(("dep", d), ("ds", ds), ("dm", dm),
                             ("point", example)),
                    suggestion="D^S/D^m derivation dropped this "
                               "dependence; regenerate the "
                               "CommunicationSpec",
                ))
                continue
            bad = np.zeros(len(lat), dtype=bool)
            for k in range(n):
                if k != m and lbs[k] > 0:
                    bad |= lat32[:, k] < lbs[k]
            bad &= sel
            if bad.any():
                j_bad = tuple(int(x) for x in lat[int(np.argmax(bad))])
                diags.append(Diagnostic(
                    code="RACE02", severity=ERROR, pass_name=PASS,
                    message=f"iteration j'={j_bad} crosses processors via "
                            f"{ds} (dependence {d}) but lies outside the "
                            f"pack region (lower bounds {lbs}): its value "
                            f"is never put into the message",
                    equation=_EQ_CC,
                    subject=(("dep", d), ("ds", ds), ("point", j_bad),
                             ("pack_lower_bounds", lbs)),
                    suggestion="the CC vector under-approximates the "
                               "communication set; recompute cc_k = "
                               "v_kk - max_l d'_kl",
                ))
    return diags


def check_tile_coverage(program,
                        model: Optional[ScheduleModel] = None
                        ) -> List[Diagnostic]:
    """Tile-level checks: every fed cross-processor successor has a send
    from its producer and a recv posted at-or-before it (RACE01)."""
    if model is None:
        model = ScheduleModel(program)
    comm, dist = program.comm, program.dist
    # Index the abstract ops once.
    sends_by: Dict[Tuple[int, int, Tuple[int, ...]], SendOp] = {}
    recv_step: Dict[Tuple[int, int, int, Tuple[int, ...]], int] = {}
    for rank, seq in model.ops.items():
        for op in seq:
            if isinstance(op, SendOp):
                sends_by[(rank, op.tag, op.tile)] = op
            else:
                recv_step[(rank, op.source, op.tag, op.pred)] = op.step
    diags: List[Diagnostic] = []
    cross = [ds for ds in comm.d_s if not comm.is_intra_processor(ds)]
    tset = dist._tile_set
    rank_of = program.rank_of
    region_count = program.region_count
    pid_of = dist.pid_of
    chain_index = dist.chain_index
    # Per-tile context and per-ds invariants, hoisted out of the
    # quadratic (tile x dependence) sweep.
    tile_ctx = [(tile, rank_of[pid_of(tile)], chain_index(tile))
                for tile in dist.tiles]
    ds_ctx = []
    for ds in cross:
        dm = comm.project(ds)
        ds_ctx.append((tuple(ds), dm, program.message_tag(dm)))
    for tile, src_rank, step in tile_ctx:
        for ds, dm, tag in ds_ctx:
            succ = tuple([a + b for a, b in zip(tile, ds)])
            if succ not in tset:
                continue
            if region_count(tile, ds) == 0:
                continue              # nothing in-domain crosses here
            dst_rank = rank_of[pid_of(succ)]
            if (src_rank, tag, tile) not in sends_by:
                diags.append(Diagnostic(
                    code="RACE01", severity=ERROR, pass_name=PASS,
                    message=f"tile {tile} (rank {src_rank}, step {step}) "
                            f"feeds tile {succ} on rank {dst_rank} via "
                            f"d^S={ds} but never sends toward "
                            f"d^m={dm}",
                    equation=_EQ_DS,
                    subject=(("tile", tile), ("ds", ds), ("step", step),
                             ("dest_rank", dst_rank)),
                    suggestion="send_plan dropped a successor processor; "
                               "check valid()/minsucc aggregation",
                ))
                continue
            got = recv_step.get((dst_rank, src_rank, tag, tile))
            succ_step = dist.chain_index(succ)
            if got is None or got > succ_step:
                where = "never posted" if got is None else \
                    f"posted only at step {got} > consumer step {succ_step}"
                diags.append(Diagnostic(
                    code="RACE01", severity=ERROR, pass_name=PASS,
                    message=f"tile {succ} (rank {dst_rank}, step "
                            f"{succ_step}) consumes data of tile {tile} "
                            f"via d^S={ds} but the matching receive is "
                            f"{where}: the halo is read before it is "
                            f"written",
                    equation="RECEIVE runs at minsucc(d^m), the first "
                             "valid successor in chain order (§3.2)",
                    subject=(("tile", succ), ("ds", ds),
                             ("step", succ_step), ("src_rank", src_rank)),
                    suggestion="receive_plan must post the recv at the "
                               "minimum valid successor tile",
                ))
    return diags


def check_lds_write_overlap(program) -> List[Diagnostic]:
    """RACE04: unpack/unpack and unpack/compute LDS cell disjointness.

    Verified on a representative chain step (the invariant is
    translation-equivariant along the mapping dimension): unpacked halo
    slots of distinct messages must be pairwise disjoint, and disjoint
    from the computation cells of the current and previous steps, which
    are still live.
    """
    comm, dist = program.comm, program.dist
    ttis = program.tiling.ttis
    n = program.n
    m = dist.m
    lat = ttis.lattice_points_np().astype(np.int32)
    c = np.array(ttis.c, dtype=np.int32)
    v = np.array(ttis.v, dtype=np.int32)
    rows = np.array(ttis.rows_per_dim, dtype=np.int32)
    off = np.array(comm.offsets, dtype=np.int32)
    cross = [ds for ds in comm.d_s if not comm.is_intra_processor(ds)]
    if not cross:
        return []
    t0 = 1                                  # generic interior step
    num_tiles = t0 + 2                      # room for blocks t0-1 .. t0+?

    def map_cells(points: np.ndarray, t: int) -> np.ndarray:
        cells = points // c + off
        cells[:, m] = (t * v[m] + points[:, m]) // c[m] + off[m]
        return cells

    raw: List[Tuple[str, object, np.ndarray]] = []
    raw.append(("compute", t0, map_cells(lat, t0)))
    if t0 > 0:
        raw.append(("compute", t0 - 1, map_cells(lat, t0 - 1)))
    for ds in cross:
        lbs = comm.pack_lower_bounds(ds)
        mask = np.ones(len(lat), dtype=bool)
        for k in range(n):
            if lbs[k] > 0:
                mask &= lat[:, k] >= lbs[k]
        if not mask.any():
            continue
        slots = map_cells(lat[mask], t0) - np.array(ds, dtype=np.int32) * rows
        raw.append(("unpack", tuple(ds), slots))

    # Encode cells as linear indices of the tight bounding box of every
    # cell seen (halo slots may be negative; the box absorbs them).
    mins = np.min([cells.min(axis=0) for _, _, cells in raw], axis=0)
    dims = np.max([cells.max(axis=0) for _, _, cells in raw],
                  axis=0) - mins + 1

    def linear(cells: np.ndarray) -> np.ndarray:
        idx = np.zeros(len(cells), dtype=np.int64)
        for k in range(n):
            idx = idx * int(dims[k]) + (cells[:, k] - mins[k])
        return idx

    writers = [(kind, who, linear(cells)) for kind, who, cells in raw]
    # Fast path: each writer's cells are internally distinct (map is
    # injective per block — HALO03 territory otherwise), so global
    # uniqueness of the concatenation proves pairwise disjointness —
    # decided by a boolean occupancy scatter over the (bounded) index
    # range, falling back to a sort when the range is too sparse.
    allcells = np.concatenate([idx for _, _, idx in writers])
    mn = int(allcells.min())
    rng = int(allcells.max()) - mn + 1
    if rng <= max(64 * len(allcells), 1 << 22):
        occ = np.zeros(rng, dtype=bool)
        occ[allcells - mn] = True
        distinct = int(np.count_nonzero(occ))
    else:
        distinct = len(np.unique(allcells))
    if distinct == len(allcells):
        return []
    diags: List[Diagnostic] = []
    for i in range(len(writers)):
        kind_i, who_i, idx_i = writers[i]
        for j in range(i + 1, len(writers)):
            kind_j, who_j, idx_j = writers[j]
            if kind_i == "compute" and kind_j == "compute":
                continue    # distinct steps write distinct blocks by map
            common = np.intersect1d(idx_i, idx_j)
            if len(common):
                diags.append(Diagnostic(
                    code="RACE04", severity=ERROR, pass_name=PASS,
                    message=f"{kind_i}({who_i}) and {kind_j}({who_j}) "
                            f"write {len(common)} common LDS cell(s) at "
                            f"the same chain step: unordered touch",
                    equation="unpack slots map(j',t) - d^S_k v_kk/c_k "
                             "must be disjoint from computation cells "
                             "and from each other (RECEIVE, §3.1-3.2)",
                    subject=(("writer_a", (kind_i, who_i)),
                             ("writer_b", (kind_j, who_j)),
                             ("overlap_cells", int(len(common)))),
                    suggestion="halo offsets off_k too small or the "
                               "unpack shift is wrong; recompute "
                               "off_k = ceil(max_l d'_kl / c_k)",
                ))
    return diags


def check_races(program,
                model: Optional[ScheduleModel] = None) -> List[Diagnostic]:
    """All race findings for one compiled program."""
    diags = check_point_coverage(program)
    diags += check_tile_coverage(program, model)
    diags += check_lds_write_overlap(program)
    return diags
