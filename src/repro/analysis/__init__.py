"""Compile-time verification of tiled programs (static analysis).

A pass-based verifier that proves, without executing anything, that a
compiled :class:`~repro.runtime.executor.TiledProgram` is well-formed:

* :mod:`repro.analysis.races` — every cross-processor tile dependence
  is covered by the communication spec, pack regions contain every
  crossing iteration, and no two writers touch an LDS cell unordered;
* :mod:`repro.analysis.deadlock` — the per-rank Send/Recv sequences
  complete under blocking MPI semantics (the runtime ``DeadlockError``
  made static);
* :mod:`repro.analysis.bounds` — every LDS address (compute, read,
  halo unpack) stays inside the allocated rectangle and the address
  maps round-trip;
* :mod:`repro.analysis.overlap` — the overlapped-execution plans are
  sound (OV01-OV03: zero-copy pack schedules reproduce the blocking
  payload bytes, sends commit after their last contributing wavefront
  level, boundary/interior splits partition each level, lazy unpacks
  never defer past the halo's first reader); opt-in via
  ``analyze_program(..., overlap=True)`` / ``repro analyze --overlap``;
* :mod:`repro.analysis.hb` — the happens-before concurrency certifier
  for the *parallel runtime*: vector-clock proofs that every halo
  write/read pair is HB-ordered (HB01) and the edge-wait graph acyclic
  (HB02) under each protocol and under the overlap schedule,
  exhaustive model checking of the SPSC mailbox ring (HB03), and a
  measured-trace sanitizer (HB04, ``repro sanitize``); opt-in via
  ``analyze_program(..., hb=True)`` / ``repro analyze --hb``;
* :mod:`repro.analysis.cost` — the static cost certifier: closed-form
  per-edge communication volumes cross-checked against the frozen
  plans (COST01), per-rank compute volumes and imbalance (COST02),
  the analytic critical-path makespan — bitwise equal to the
  simulator on matching configurations (COST03) — and Dinh & Demmel
  lower-bound certification of the tile shape (COST04); opt-in via
  ``analyze_program(..., cost=True)`` / ``repro analyze --cost``;
* :mod:`repro.analysis.verifier` — the driver: legality/tile-size
  prechecks plus the passes above, accumulated into one
  :class:`~repro.analysis.diagnostics.AnalysisReport`;
* :mod:`repro.analysis.transval` — translation validation: parses the
  *emitted* C+MPI/Python text back into a loop model and statically
  proves loop bounds, subscripts, burned-in constants and declared
  dependences consistent with the symbolic pipeline (TV01-TV04).

Entry points: ``analyze(nest, h)`` from scratch, ``analyze_program``
over a compiled program, ``verify_program`` as a raising guard (used by
``TiledProgram(..., verify=True)`` and the ``repro analyze`` CLI).
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.schedule_model import RecvOp, ScheduleModel, SendOp
from repro.analysis.deadlock import check_deadlock, check_program_deadlock
from repro.analysis.races import check_races
from repro.analysis.bounds import check_bounds
from repro.analysis.overlap import check_overlap
from repro.analysis.cost import (
    CostCertificate,
    analytic_makespan,
    certify_cost,
    check_cost,
    communication_lower_bound,
)
from repro.analysis.hb import (
    HBCertificate,
    certify_program,
    check_hb,
    check_ring_model,
    sanitize_report,
    sanitize_trace,
)
from repro.analysis.verifier import (
    VerificationError,
    analyze,
    analyze_program,
    analyze_tiling,
    check_tiling,
    verify_program,
)
from repro.analysis.transval import (
    check_declared_dependences,
    transval_report,
    validate_mpi_text,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "AnalysisReport",
    "RecvOp",
    "SendOp",
    "ScheduleModel",
    "check_deadlock",
    "check_program_deadlock",
    "check_races",
    "check_bounds",
    "check_overlap",
    "check_hb",
    "check_ring_model",
    "certify_program",
    "HBCertificate",
    "CostCertificate",
    "analytic_makespan",
    "certify_cost",
    "check_cost",
    "communication_lower_bound",
    "sanitize_trace",
    "sanitize_report",
    "check_tiling",
    "analyze",
    "analyze_tiling",
    "analyze_program",
    "verify_program",
    "VerificationError",
    "check_declared_dependences",
    "transval_report",
    "validate_mpi_text",
]
