"""Orchestration: emit every artifact, run every TV pass, one report.

:func:`transval_report` is the ``repro analyze --transval`` entry
point: starting from ``(nest, h, mapping_dim)`` it freshly emits all
four generated artifacts (C+MPI, sequential C, pyseq twin, pygen
schedule module) and statically validates each against the symbolic
pipeline objects it came from.  :func:`validate_mpi_text` is the
in-line guard ``generate_mpi_code(..., validate=True)`` uses.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.transval.kernels import PASS_KERNELS, check_native_tu
from repro.analysis.transval.passes import (
    PASS_CONSTANTS,
    PASS_DEPENDENCES,
    PASS_LOOPS,
    PASS_SUBSCRIPTS,
    TRANSVAL_PASSES,
    check_declared_dependences,
    check_mpi_text,
    check_pygen_source,
    check_pyseq_source,
    check_sequential_text,
)
from repro.loops.nest import LoopNest

__all__ = ["transval_report", "validate_mpi_text"]


def transval_report(nest: LoopNest, h: Any,
                    mapping_dim: Optional[int] = None,
                    subject: str = "") -> AnalysisReport:
    """Translation-validate freshly emitted code for ``(nest, h)``.

    Emits the C+MPI node program, the sequential tiled C text, the
    runnable Python twin, the pygen schedule module and the native
    kernel translation unit, then runs the TV01-TV05 passes.  When the
    tiling itself is illegal (LEG01/LEG02)
    the legality findings are reported and emission is skipped — there
    is no meaningful program to validate.
    """
    from repro.analysis.verifier import PASS_LEGALITY, check_tiling
    from repro.codegen.parallel import generate_mpi_code
    from repro.codegen.pygen import generate_python_node_programs
    from repro.codegen.pyseq import generate_python_sequential
    from repro.codegen.sequential import generate_sequential_tiled_code
    from repro.runtime.executor import TiledProgram

    report = AnalysisReport()
    if subject:
        report.meta["subject"] = subject
    report.meta["h"] = [[str(x) for x in row] for row in h.rows()]
    report.meta["dependences"] = [tuple(d) for d in nest.dependences]
    report.extend(check_declared_dependences(nest))
    report.mark_pass(PASS_DEPENDENCES)
    pre = check_tiling(h, nest.dependences)
    if pre:
        # Unbuildable geometry: report why and stop — the emitters
        # would raise on construction, so there is nothing to parse.
        report.extend(pre)
        report.mark_pass(PASS_LEGALITY)
        return report
    program = TiledProgram(nest, h, mapping_dim=mapping_dim)
    report.meta["mapping_dim"] = program.dist.m
    report.extend(check_mpi_text(
        program, generate_mpi_code(nest, h, mapping_dim=mapping_dim)))
    report.extend(check_sequential_text(
        nest, h, generate_sequential_tiled_code(nest, h)))
    report.extend(check_pyseq_source(
        nest, h, generate_python_sequential(nest, h)))
    report.extend(check_pygen_source(
        program, generate_python_node_programs(
            nest, h, mapping_dim=mapping_dim)))
    report.extend(check_native_tu(nest, tuple(program.arrays)))
    for name in (PASS_LOOPS, PASS_SUBSCRIPTS, PASS_CONSTANTS,
                 PASS_KERNELS):
        report.mark_pass(name)
    return report


def validate_mpi_text(program: Any, text: str,
                      subject: str = "") -> AnalysisReport:
    """Guard form for ``generate_mpi_code(..., validate=True)``.

    Validates the just-emitted MPI text (plus the declared dependence
    matrix it was compiled from) and raises
    :class:`repro.analysis.verifier.VerificationError` when any TV pass
    finds an error-severity defect.
    """
    from repro.analysis.verifier import VerificationError

    report = AnalysisReport()
    if subject:
        report.meta["subject"] = subject
    diags: List[Diagnostic] = []
    diags.extend(check_declared_dependences(program.nest))
    diags.extend(check_mpi_text(program, text))
    report.extend(diags)
    for name in TRANSVAL_PASSES:
        report.mark_pass(name)
    if not report.ok:
        raise VerificationError(report)
    return report
