"""TV05: translation validation of the native kernel translation unit.

The native backend (:mod:`repro.native`) emits one C translation unit
per program — a ``static double F_<array>(...)`` function per
statement plus the ``repro_run`` driver — and compiles it to the
cached shared object the dense and parallel engines call.  This pass
re-parses that text with its *own* grammar (independent of the
emitter) and proves, statement by statement:

* the kernel function's expression tree is **structurally identical**
  to the statement's symbolic :class:`~repro.native.kexpr.KExpr` —
  same operators, same association, same read slots, and every
  constant's hex literal round-trips to the bitwise-equal double
  (this is what makes ``-ffp-contract=off`` output bitwise equal to
  the numpy kernels);
* the driver's call wiring matches the read structure derived from
  :func:`~repro.runtime.dense.read_dependences`: dependence reads are
  guarded LDS loads ``(oob ? fix : buf[rb[i_] + shift])`` against the
  statement's read array, pure-input reads are table loads
  ``pt<k>[i_]``, slots are assigned in statement-major read order, and
  the write lands in the statement's own buffer at
  ``wbase[i_] + shift``.

Any structural drift — a reassociated sum, a decimal constant, a
swapped slot, a write into the wrong buffer — is a ``TV05`` error.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.loops.nest import LoopNest
from repro.native import kexpr
from repro.native.emit import NativeEmitError, emit_translation_unit
from repro.runtime.dense import read_dependences

PASS_KERNELS = "transval-kernels"

__all__ = ["PASS_KERNELS", "check_native_tu", "parse_c_double_expr"]


def _diag(message: str, *, severity: str = ERROR, equation: str = "",
          subject: Tuple[Tuple[str, Any], ...] = (),
          suggestion: str = "") -> Diagnostic:
    return Diagnostic(code="TV05", severity=severity,
                      pass_name=PASS_KERNELS, message=message,
                      equation=equation, subject=subject,
                      suggestion=suggestion)


# -- a tiny independent C double-expression parser ---------------------------

#: Parsed node: ("const", float) | ("read", slot) |
#: ("neg", node) | (op, lhs, rhs) with op in "+-*/".
CNode = Tuple[Any, ...]


class _ExprError(ValueError):
    pass


_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<hex>[+-]?0[xX][0-9a-fA-F]+(?:\.[0-9a-fA-F]*)?[pP][+-]?\d+)"
    r"|(?P<num>\d+(?:\.\d*)?(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[-+*/()])"
    r")")


def _tokenize(text: str) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            if text[pos:].strip():
                raise _ExprError(f"unexpected character at {text[pos:]!r}")
            break
        pos = m.end()
        for kind in ("hex", "num", "name", "op"):
            tok = m.group(kind)
            if tok is not None:
                out.append((kind, tok))
                break
    return out


class _Parser:
    """Precedence-climbing parser for ``+ - * /`` over doubles."""

    def __init__(self, tokens: List[Tuple[str, str]],
                 param_slots: Sequence[str]):
        self.toks = tokens
        self.i = 0
        self.slots = {name: q for q, name in enumerate(param_slots)}

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def take(self) -> Tuple[str, str]:
        if self.i >= len(self.toks):
            raise _ExprError("unexpected end of expression")
        tok = self.toks[self.i]
        self.i += 1
        return tok

    def parse(self) -> CNode:
        node = self.additive()
        if self.i != len(self.toks):
            raise _ExprError(
                f"trailing tokens from {self.toks[self.i]}")
        return node

    def additive(self) -> CNode:
        node = self.multiplicative()
        while True:
            nxt = self.peek()
            if nxt is None or nxt[1] not in ("+", "-"):
                return node
            op = self.take()[1]
            node = (op, node, self.multiplicative())

    def multiplicative(self) -> CNode:
        node = self.unary()
        while True:
            nxt = self.peek()
            if nxt is None or nxt[1] not in ("*", "/"):
                return node
            op = self.take()[1]
            node = (op, node, self.unary())

    def unary(self) -> CNode:
        nxt = self.peek()
        if nxt is not None and nxt[1] == "-":
            self.take()
            return ("neg", self.unary())
        return self.primary()

    def primary(self) -> CNode:
        kind, tok = self.take()
        if kind == "op" and tok == "(":
            node = self.additive()
            close = self.take()
            if close[1] != ")":
                raise _ExprError(f"expected ')', found {close[1]!r}")
            return node
        if kind == "hex":
            return ("const", float.fromhex(tok))
        if kind == "num":
            return ("const", float(tok))
        if kind == "name":
            if tok not in self.slots:
                raise _ExprError(f"unknown identifier {tok!r}")
            return ("read", self.slots[tok])
        raise _ExprError(f"unexpected token {tok!r}")


def parse_c_double_expr(text: str,
                        param_names: Sequence[str]) -> CNode:
    """Parse one C double expression over ``param_names``."""
    return _Parser(_tokenize(text), param_names).parse()


def _knode(expr: kexpr.KExpr) -> CNode:
    """The symbolic expr as the same neutral node shape."""
    if isinstance(expr, kexpr.KConst):
        return ("const", float(expr.value))
    if isinstance(expr, kexpr.KRead):
        return ("read", expr.slot)
    if isinstance(expr, kexpr.KNeg):
        return ("neg", _knode(expr.arg))
    if isinstance(expr, (kexpr.KAdd, kexpr.KSub, kexpr.KMul,
                         kexpr.KDiv)):
        ops = {kexpr.KAdd: "+", kexpr.KSub: "-", kexpr.KMul: "*",
               kexpr.KDiv: "/"}
        return (ops[type(expr)], _knode(expr.lhs), _knode(expr.rhs))
    raise _ExprError(f"unknown KExpr node {type(expr).__name__}")


def _trees_equal(a: CNode, b: CNode) -> bool:
    if a[0] != b[0]:
        return False
    if a[0] == "const":
        # bitwise: repr-level float equality (exact, both are binary64)
        av, bv = float(a[1]), float(b[1])
        return (av == bv and
                (av != 0.0 or str(av) == str(bv)))  # keep -0.0 vs 0.0
    if a[0] == "read":
        return bool(a[1] == b[1])
    return all(_trees_equal(x, y) for x, y in zip(a[1:], b[1:]))


def _tree_str(n: CNode) -> str:
    if n[0] == "const":
        return repr(n[1])
    if n[0] == "read":
        return f"v{n[1]}"
    if n[0] == "neg":
        return f"(-{_tree_str(n[1])})"
    return f"({_tree_str(n[1])} {n[0]} {_tree_str(n[2])})"


# -- TU structure ------------------------------------------------------------

_FN_RE = re.compile(
    r"static\s+double\s+(?P<name>F_\w+)\s*\((?P<params>[^)]*)\)\s*\{"
    r"\s*return\s+(?P<body>.*?);\s*\}", re.S)

_CALL_RE = re.compile(
    r"b_(?P<warr>\w+)\[wbase\[i_\]\s*\+\s*shift\]\s*=\s*"
    r"(?P<fname>F_\w+)\s*\((?P<args>.*?)\);", re.S)

_DEP_ARG_RE = re.compile(
    r"^\(\(ob(?P<k1>\d+)\s*&&\s*ob(?P<k2>\d+)\[i_\]\)\s*\?\s*"
    r"fx(?P<k3>\d+)\[i_\]\s*:\s*"
    r"b_(?P<arr>\w+)\[rb(?P<k4>\d+)\[i_\]\s*\+\s*shift\]\)$")

_PURE_ARG_RE = re.compile(r"^pt(?P<k>\d+)\[i_\]$")


def _split_args(argtext: str) -> List[str]:
    """Split a C argument list on top-level commas."""
    out: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in argtext:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _c_name(array: str) -> str:
    safe = "".join(ch if ch.isalnum() else "_" for ch in array)
    return safe if safe else "arr"


def check_native_tu(nest: LoopNest, arrays: Sequence[str],
                    text: Optional[str] = None) -> List[Diagnostic]:
    """TV05 over the native kernel translation unit of ``nest``.

    With ``text=None`` the TU is freshly emitted (the normal
    ``repro analyze --transval`` path); passing text validates an
    existing artifact (e.g. the cached ``<key>.c``) instead.
    """
    diags: List[Diagnostic] = []
    if text is None:
        try:
            text = emit_translation_unit(nest, tuple(arrays),
                                         nest.name).source
        except NativeEmitError:
            # No symbolic exprs => no native TU: the engines fall
            # back to numpy kernels, so there is nothing to prove.
            return diags

    fns = {m.group("name"): m for m in _FN_RE.finditer(text)}
    calls = _CALL_RE.findall(text)
    deps = read_dependences(nest)

    if len(calls) != len(nest.statements):
        diags.append(_diag(
            f"driver makes {len(calls)} kernel call(s) but the nest "
            f"has {len(nest.statements)} statement(s)",
            equation="one F_<array> call per statement per point",
            subject=(("artifact", "native-tu"),),
            suggestion="regenerate the translation unit"))
        return diags

    dep_slot = 0
    pure_slot = 0
    for si, stmt in enumerate(nest.statements):
        warr, fname, argtext = calls[si]
        subject = (("statement", si), ("array", stmt.write.array))
        if warr != _c_name(stmt.write.array):
            diags.append(_diag(
                f"statement {si} writes buffer b_{warr} but the "
                f"symbolic write targets {stmt.write.array!r}",
                equation="write lands in the statement's own array",
                subject=subject))
        fn = fns.get(fname)
        if fn is None:
            diags.append(_diag(
                f"driver calls {fname} but no such kernel function "
                f"is defined in the translation unit",
                subject=subject))
            continue

        params = [p.strip().split()[-1]
                  for p in fn.group("params").split(",") if p.strip()]
        nreads = len(stmt.reads)
        if len(params) != nreads:
            diags.append(_diag(
                f"{fname} takes {len(params)} argument(s) but "
                f"statement {si} has {nreads} read(s)",
                equation="one kernel parameter per read slot",
                subject=subject))
            continue

        # 1) kernel body === symbolic expr, via an independent parse.
        if stmt.expr is not None:
            try:
                got = parse_c_double_expr(fn.group("body"), params)
                want = _knode(stmt.expr)
            except _ExprError as exc:
                diags.append(_diag(
                    f"cannot parse the body of {fname}: {exc}",
                    subject=subject,
                    suggestion="the emitter and the TV05 grammar "
                               "must agree"))
                continue
            if not _trees_equal(got, want):
                diags.append(_diag(
                    f"{fname} computes {_tree_str(got)} but the "
                    f"symbolic kernel is {_tree_str(want)}",
                    equation="identical IEEE-754 operation tree "
                             "(bitwise reproducibility)",
                    subject=subject,
                    suggestion="regenerate the shared object; a "
                               "stale .so would silently change "
                               "results"))

        # 2) driver wiring: slot indices in statement-major read
        # order, dep reads guarded against the read's array, pure
        # reads from the table pointer.
        args = _split_args(argtext)
        for ri, (read, d) in enumerate(zip(stmt.reads, deps[si])):
            arg = re.sub(r"\s+", " ", args[ri]) if ri < len(args) else ""
            rsub = subject + (("read", ri),)
            if d is None:
                m = _PURE_ARG_RE.match(arg.replace(" ", ""))
                if m is None or int(m.group("k")) != pure_slot:
                    diags.append(_diag(
                        f"read {ri} of statement {si} should be the "
                        f"pure-table load pt{pure_slot}[i_], found "
                        f"{arg!r}",
                        equation="pure inputs gather from the "
                                 "InputTable slot",
                        subject=rsub))
                pure_slot += 1
            else:
                m = _DEP_ARG_RE.match(arg.replace(" ", ""))
                ok = (m is not None
                      and len({m.group("k1"), m.group("k2"),
                               m.group("k3"), m.group("k4")}) == 1
                      and int(m.group("k1")) == dep_slot
                      and m.group("arr") == _c_name(read.array))
                if not ok:
                    diags.append(_diag(
                        f"read {ri} of statement {si} should be the "
                        f"guarded LDS load of slot {dep_slot} from "
                        f"b_{_c_name(read.array)}, found {arg!r}",
                        equation="(oob ? fix : buf[rbase[i_] + "
                                 "shift]) per dependence read",
                        subject=rsub))
                dep_slot += 1
    return diags
