"""Translation-validation passes (TV01-TV04).

Each pass compares one aspect of an *emitted* artifact against the
*symbolic* pipeline objects it was generated from:

``TV01`` (pass ``transval-loops``)
    Loop structure: the TTIS loops' phases, strides ``c_k`` and extents
    ``v_k`` match the Hermite Normal Form of ``H'``; tile-loop bounds
    match the Fourier-Motzkin projection; boundary guards match the
    original domain.  Text the readers cannot parse is itself a TV01
    finding — unparseable output cannot be validated.

``TV02`` (pass ``transval-subscripts``)
    Subscripts: every LDS address stays inside the allocated box
    including the ``off_k`` halo slices (by exact interval abstract
    interpretation over the loop domain), read shifts equal the
    transformed dependences ``d'``, and sequential subscripts equal the
    statements' affine references.

``TV03`` (pass ``transval-constants``)
    Burned-in constants: the header block, ``OFF``/``LDS_CELLS``
    defines, the ``MAP`` macro, RECEIVE/SEND block metadata
    (``d^S``/``d^m``/tag/peer), pack lower bounds against ``CC``, and
    the pygen rank/schedule tables.

``TV04`` (pass ``transval-dependences``)
    Declared dependence matrices: re-derive the uniform flow
    dependences from the statement bodies and cross-check the
    hand-declared vectors (a missing real dependence is an ERROR, a
    declared-but-underivable one a WARNING).
"""

from __future__ import annotations

from fractions import Fraction
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.transval.creader import (
    parse_expr,
    read_mpi,
    read_sequential,
)
from repro.analysis.transval.loopir import (
    Atom,
    Const,
    Expr,
    Interval,
    NotAffine,
    ReaderError,
    affine,
    atom_from_affine,
    bound_atoms,
    interval,
    rounded_atom,
    substitute,
)
from repro.analysis.transval.model import (
    BodyStmt,
    InnerLoop,
    ParsedMpi,
    ParsedSequential,
)
from repro.analysis.transval.pyreader import read_pygen, read_pyseq
from repro.loops.dependence import (
    is_lexicographically_positive,
    nest_dependences,
)
from repro.loops.nest import LoopNest

PASS_LOOPS = "transval-loops"
PASS_SUBSCRIPTS = "transval-subscripts"
PASS_CONSTANTS = "transval-constants"
PASS_DEPENDENCES = "transval-dependences"

#: All transval pass names, in report order.
TRANSVAL_PASSES = (PASS_LOOPS, PASS_SUBSCRIPTS, PASS_CONSTANTS,
                   PASS_DEPENDENCES)

__all__ = [
    "PASS_LOOPS", "PASS_SUBSCRIPTS", "PASS_CONSTANTS", "PASS_DEPENDENCES",
    "TRANSVAL_PASSES", "check_mpi_text", "check_sequential_text",
    "check_pyseq_source", "check_pygen_source", "check_declared_dependences",
]

Subject = Tuple[Tuple[str, Any], ...]


def _diag(code: str, pass_name: str, message: str, *,
          severity: str = ERROR, equation: str = "",
          subject: Subject = (), suggestion: str = "") -> Diagnostic:
    return Diagnostic(code=code, severity=severity, pass_name=pass_name,
                      message=message, equation=equation, subject=subject,
                      suggestion=suggestion)


def _parse_error(artifact: str, exc: ReaderError) -> Diagnostic:
    return _diag(
        "TV01", PASS_LOOPS,
        f"emitted {artifact} does not match the expected grammar: {exc}",
        equation="emitted text must be readable back into the loop model",
        subject=(("artifact", artifact), ("line", exc.line)),
        suggestion="the emitter and the validator grammar must agree; "
                   "regenerate the code or fix the reader",
    )


def _atom_str(atom: Atom) -> str:
    rounding, coeffs, const = atom
    terms = [f"{f}*{n}" for n, f in coeffs]
    if const or not terms:
        terms.append(str(const))
    body = " + ".join(terms)
    return body if rounding == "exact" else f"{rounding}({body})"


def _check_atom(actual: Expr, expected: Atom, code: str, pass_name: str,
                what: str, equation: str, subject: Subject,
                diags: List[Diagnostic]) -> None:
    """Canonicalize ``actual`` and compare against the expected atom."""
    try:
        got = rounded_atom(actual)
    except NotAffine as exc:
        diags.append(_diag(code, pass_name,
                           f"{what} is not a rounded-affine form: {exc}",
                           equation=equation, subject=subject))
        return
    if got != expected:
        diags.append(_diag(
            code, pass_name,
            f"{what} is {_atom_str(got)}, pipeline expects "
            f"{_atom_str(expected)}",
            equation=equation, subject=subject))


def _affine_atom(coeffs: Mapping[str, int], const: int = 0) -> Atom:
    return atom_from_affine(
        {n: Fraction(c) for n, c in coeffs.items()}, Fraction(const),
        "floor")


# -- shared inner-TTIS-loop check (TV01) --------------------------------------


def _check_inner_loops(ttis: Any, loops: Sequence[InnerLoop],
                       artifact: str, use_lo_def: bool,
                       diags: List[Diagnostic]) -> None:
    """The n TTIS loops: phase from HNF, start, extent v_k, stride c_k."""
    n = ttis.n
    hnf = ttis.hnf.to_int_rows()
    if len(loops) != n:
        diags.append(_diag(
            "TV01", PASS_LOOPS,
            f"{artifact} has {len(loops)} TTIS loops, pipeline expects "
            f"{n}",
            equation="one loop per TTIS dimension (§2.3)",
            subject=(("artifact", artifact),)))
        return
    for k, loop in enumerate(loops):
        subj: Subject = (("artifact", artifact), ("dim", k),
                         ("line", loop.line))
        ck = ttis.c[k]
        if loop.limit != ttis.v[k]:
            diags.append(_diag(
                "TV01", PASS_LOOPS,
                f"TTIS loop {k} runs to {loop.limit}, tile extent is "
                f"v_{k} = {ttis.v[k]}",
                equation="0 <= j'_k < v_kk (TTIS box, §3.1)",
                subject=subj))
        if loop.step != ck:
            diags.append(_diag(
                "TV01", PASS_LOOPS,
                f"TTIS loop {k} has stride {loop.step}, HNF stride is "
                f"c_{k} = {ck}",
                equation="c_k = h̃'_kk (lattice stride, §2.3)",
                subject=subj))
        phase_expected = _affine_atom(
            {f"x{l}": hnf[k][l] for l in range(k) if hnf[k][l]})
        _check_atom(loop.phase, phase_expected, "TV01", PASS_LOOPS,
                    f"phase ph{k}",
                    "ph_k = sum_{l<k} a_kl x_l (HNF offsets, §2.3)",
                    subj, diags)
        start_expected = parse_expr(f"((ph{k} % {ck}) + {ck}) % {ck}")
        start_actual = loop.lo_def if use_lo_def else loop.start
        if start_actual != start_expected:
            diags.append(_diag(
                "TV01", PASS_LOOPS,
                f"TTIS loop {k} starts at an expression other than the "
                f"smallest admissible lattice point "
                f"((ph{k} % {ck}) + {ck}) % {ck}",
                equation="j'_k starts at ph_k mod c_k (§2.3)",
                subject=subj))
        xdef_expected = atom_from_affine(
            {f"jp{k}": Fraction(1, ck), f"ph{k}": Fraction(-1, ck)},
            Fraction(0), "floor")
        _check_atom(loop.xdef, xdef_expected, "TV01", PASS_LOOPS,
                    f"auxiliary x{k}",
                    "x_k = (j'_k - ph_k) / c_k (§2.3)", subj, diags)


# -- MPI text (TV01 + TV02 + TV03) --------------------------------------------


def _tag(dm: Sequence[int]) -> str:
    return "_".join(str(x).replace("-", "m") for x in dm)


def _lds_box(program: Any, ntiles: int) -> Tuple[Tuple[int, int], ...]:
    """Allocated LDS extent per dimension for a chain of ``ntiles``."""
    ttis = program.tiling.ttis
    comm = program.comm
    m = program.dist.m
    shape = []
    for k in range(ttis.n):
        rows = ttis.rows_per_dim[k]
        if k == m:
            shape.append((comm.offsets[k], ntiles * rows))
        else:
            shape.append((comm.offsets[k], rows))
    return tuple(shape)


def _check_lds_interval(map_params: Sequence[str],
                        map_indices: Sequence[Expr],
                        args: Sequence[Expr],
                        shift: Sequence[int],
                        box: Sequence[Tuple[int, int]],
                        env: Mapping[str, Interval], what: str,
                        subject: Subject,
                        diags: List[Diagnostic]) -> None:
    """Interval membership of one MAP use inside the allocated box."""
    if len(args) != len(map_params):
        diags.append(_diag(
            "TV02", PASS_SUBSCRIPTS,
            f"{what} passes {len(args)} MAP arguments, macro takes "
            f"{len(map_params)}",
            subject=subject))
        return
    bind = dict(zip(map_params, args))
    for k, idx in enumerate(map_indices):
        if k >= len(box):
            break
        expr = substitute(idx, bind)
        try:
            lo, hi = interval(expr, env)
        except ReaderError as exc:
            diags.append(_diag(
                "TV02", PASS_SUBSCRIPTS,
                f"{what}: LDS index {k} cannot be bounded: {exc}",
                equation="map(j', t) (Table 1)",
                subject=subject + (("dim", k),)))
            continue
        off, rows = box[k]
        lo -= shift[k]
        hi -= shift[k]
        if lo < 0 or hi > off + rows - 1:
            diags.append(_diag(
                "TV02", PASS_SUBSCRIPTS,
                f"{what}: LDS index {k} spans [{lo}, {hi}] but the "
                f"allocated extent is [0, {off + rows - 1}] "
                f"(off_{k} = {off} halo rows + {rows} tile rows)",
                equation="0 <= map(j', t) - d^S_k v_k / c_k < "
                         "off_k + v_k / c_k (§3.2, Tables 1-2)",
                subject=subject + (("dim", k), ("span", (lo, hi)))))


def check_mpi_text(program: Any, text: str) -> List[Diagnostic]:
    """Validate the emitted C+MPI node program against ``program``."""
    try:
        parsed = read_mpi(text)
    except ReaderError as exc:
        return [_parse_error("mpi", exc)]
    diags: List[Diagnostic] = []
    ttis = program.tiling.ttis
    comm = program.comm
    n = ttis.n
    m = program.dist.m
    ntiles = max((program.dist.chain_length(pid)
                  for pid in program.pids), default=1)
    ntiles = max(2, ntiles)
    box = _lds_box(program, ntiles)
    no_shift = (0,) * n
    # The macro body references the OFF defines by name; resolve them so
    # atom comparison and interval evaluation see concrete constants.
    off_env: Dict[str, Expr] = {
        f"OFF{k}": Const(v) for k, v in enumerate(parsed.offsets)}
    map_indices = tuple(substitute(e, off_env)
                        for e in parsed.map_indices)

    # ---- TV03: burned-in constants ------------------------------------------
    expected_header = {
        "H tile volume": str(ttis.tile_volume),
        "V (TTIS box)": str(ttis.v),
        "strides c_k": str(ttis.c),
        "mapping dim m": str(m),
        "CC vector": str(comm.cc),
        "LDS offsets": str(comm.offsets),
        "D^S": str(comm.d_s),
        "D^m": str(comm.d_m),
    }
    for key, want in expected_header.items():
        got = parsed.header.get(key)
        if got != want:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"header constant '{key}' is {got!r}, pipeline computed "
                f"{want!r}",
                equation="burned-in constants document the compilation "
                         "result (§3)",
                subject=(("artifact", "mpi"), ("key", key))))
    if parsed.offsets != comm.offsets:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"OFF defines are {parsed.offsets}, pipeline halo offsets "
            f"are {comm.offsets}",
            equation="off_k = ceil(max_l d'_kl / c_k); off_m = v_m / c_m "
                     "(§3.2)",
            subject=(("artifact", "mpi"),)))
    expected_rows = tuple(
        (ttis.rows_per_dim[k], k == m) for k in range(n))
    if parsed.lds_rows != expected_rows:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"LDS_CELLS terms are {parsed.lds_rows}, pipeline expects "
            f"{expected_rows} (rows v_k / c_k, NTILES on dim {m})",
            equation="LDS size = prod (off_k + v_k / c_k), chain-scaled "
                     "on the mapping dimension (§3.2)",
            subject=(("artifact", "mpi"),)))
    expected_params = tuple(f"jp{k}" for k in range(n)) + ("t",)
    if parsed.map_params != expected_params:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"MAP macro parameters are {parsed.map_params}, expected "
            f"{expected_params}",
            subject=(("artifact", "mpi"),)))
    elif len(map_indices) != n:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"MAP macro produces {len(map_indices)} indices for "
            f"{n} LDS dimensions",
            subject=(("artifact", "mpi"),)))
    else:
        for k in range(n):
            ck = ttis.c[k]
            coeffs: Dict[str, Fraction] = {f"jp{k}": Fraction(1, ck)}
            if k == m:
                coeffs["t"] = Fraction(ttis.v[k], ck)
            expected = atom_from_affine(coeffs, Fraction(comm.offsets[k]),
                                        "floor")
            _check_atom(
                map_indices[k], expected, "TV03", PASS_CONSTANTS,
                f"MAP index {k}",
                "map_k(j', t) = floor((t v_k + j'_k) / c_k) + off_k on "
                "the mapping dim, floor(j'_k / c_k) + off_k elsewhere "
                "(Table 1)",
                (("artifact", "mpi"), ("dim", k)), diags)
    if parsed.pid_dim != n - 1:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"processor mesh is pid[{parsed.pid_dim}], the distribution "
            f"uses an (n-1)-dimensional mesh = {n - 1}",
            equation="pid = (j^S_0..j^S_{m-1}, j^S_{m+1}..j^S_{n-1}) "
                     "(§3.1)",
            subject=(("artifact", "mpi"),)))
    if parsed.ts_index != m:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"chain loop runs over lS{parsed.ts_index}..uS"
            f"{parsed.ts_index}, the mapping dimension is {m}",
            equation="tiles of one rank differ only in j^S_m (§3.1)",
            subject=(("artifact", "mpi"),)))

    # ---- RECEIVE blocks -----------------------------------------------------
    expected_recv = [(ds, comm.project(ds)) for ds in comm.d_s
                     if any(comm.project(ds))]
    if len(parsed.recv_blocks) != len(expected_recv):
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"RECEIVE has {len(parsed.recv_blocks)} blocks, pipeline "
            f"expects {len(expected_recv)} (one per cross-processor "
            f"d^S)",
            equation="RECEIVE iterates the cross-processor D^S (§3.3)",
            subject=(("artifact", "mpi"),)))
    for bi, (block, (ds, dm)) in enumerate(
            zip(parsed.recv_blocks, expected_recv)):
        subj = (("artifact", "mpi"), ("block", bi), ("line", block.line))
        if block.d_s != ds or block.d_m != dm:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"RECEIVE block {bi} handles d^S = {block.d_s}, d^m = "
                f"{block.d_m}; pipeline expects d^S = {ds}, d^m = {dm}",
                subject=subj))
            continue
        if block.src != dm:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"RECEIVE block {bi} receives from pid - {block.src}, "
                f"the predecessor direction is {dm}",
                equation="source = pid - d^m (§3.3)", subject=subj))
        if block.tag != _tag(dm):
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"RECEIVE block {bi} uses TAG_{block.tag}, pipeline "
                f"expects TAG_{_tag(dm)}",
                subject=subj))
        _check_pack_loops(ttis, comm, block.loops, ds,
                          f"RECEIVE block {bi}", subj, diags)
        expected_shift = tuple(
            ds[k] * ttis.rows_per_dim[k] for k in range(n))
        if block.shift != expected_shift:
            diags.append(_diag(
                "TV02", PASS_SUBSCRIPTS,
                f"RECEIVE block {bi} stores into halo slot MAP - "
                f"{block.shift}, pipeline expects MAP - "
                f"{expected_shift} (d^S_k v_k / c_k)",
                equation="halo slot = map(j', t) - d^S_k v_k / c_k "
                         "(§3.2)",
                subject=subj))
        env = _pack_env(ttis, comm, ds, ntiles)
        _check_lds_interval(parsed.map_params, map_indices,
                            block.store_args, block.shift, box, env,
                            f"RECEIVE block {bi} halo store", subj, diags)

    # ---- SEND blocks --------------------------------------------------------
    if len(parsed.send_blocks) != len(comm.d_m):
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"SEND has {len(parsed.send_blocks)} blocks, pipeline "
            f"expects {len(comm.d_m)} (one per d^m)",
            equation="SEND iterates D^m (§3.3)",
            subject=(("artifact", "mpi"),)))
    for bi, (block, dm) in enumerate(zip(parsed.send_blocks, comm.d_m)):
        subj = (("artifact", "mpi"), ("block", bi), ("line", block.line))
        full = dm[:m] + (0,) + dm[m:]
        if block.d_m != dm:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"SEND block {bi} handles d^m = {block.d_m}, pipeline "
                f"expects {dm}",
                subject=subj))
            continue
        if block.dst != dm:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"SEND block {bi} sends to pid + {block.dst}, the "
                f"successor direction is {dm}",
                equation="destination = pid + d^m (§3.3)", subject=subj))
        if block.tag != _tag(dm):
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"SEND block {bi} uses TAG_{block.tag}, pipeline "
                f"expects TAG_{_tag(dm)}",
                subject=subj))
        _check_pack_loops(ttis, comm, block.loops, full,
                          f"SEND block {bi}", subj, diags)
        env = _pack_env(ttis, comm, full, ntiles)
        _check_lds_interval(parsed.map_params, map_indices,
                            block.pack_args, no_shift, box, env,
                            f"SEND block {bi} pack load", subj, diags)

    # ---- TV01: inner loops; TV02: compute body ------------------------------
    _check_inner_loops(ttis, parsed.inner_loops, "mpi", use_lo_def=False,
                       diags=diags)
    env = {f"jp{k}": (0, ttis.v[k] - 1) for k in range(n)}
    env["t"] = (0, ntiles - 1)
    env["tS"] = (0, ntiles - 1)
    _check_mpi_body(program, parsed, map_indices, box, env, diags)
    return diags


def _pack_env(ttis: Any, comm: Any, direction: Sequence[int],
              ntiles: int) -> Dict[str, Interval]:
    """Interval box of the §3.2 pack region loops (plus chain position)."""
    lbs = comm.pack_lower_bounds(direction)
    env = {f"jp{k}": (max(0, lbs[k]), ttis.v[k] - 1)
           for k in range(ttis.n)}
    env["tS"] = (0, ntiles - 1)
    env["t"] = (0, ntiles - 1)
    return env


def _check_pack_loops(ttis: Any, comm: Any, loops: Sequence[Any],
                      direction: Sequence[int], what: str, subj: Subject,
                      diags: List[Diagnostic]) -> None:
    """Pack loop bounds vs ``max(l_kp, d_k cc_k)`` and strides (TV03)."""
    n = ttis.n
    if len(loops) != n:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"{what} has {len(loops)} pack loops for {n} TTIS "
            f"dimensions",
            subject=subj))
        return
    lbs = comm.pack_lower_bounds(direction)
    for k, loop in enumerate(loops):
        if loop.var != f"jp{k}" or loop.upper_var != f"u{k}p":
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"{what} pack loop {k} runs {loop.var} up to "
                f"{loop.upper_var}; expected jp{k} up to u{k}p",
                subject=subj + (("dim", k),)))
            continue
        if loop.lower != lbs[k]:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"{what} pack loop {k} starts at max(l{k}p, "
                f"{loop.lower}), the communication criterion gives "
                f"max(l{k}p, {lbs[k]})",
                equation="pack from max(l'_k, d_k cc_k); "
                         "cc_k = v_k - max_l d'_kl (§3.2)",
                subject=subj + (("dim", k),)))
        if loop.step != ttis.c[k]:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"{what} pack loop {k} has stride {loop.step}, the "
                f"lattice stride is c_{k} = {ttis.c[k]}",
                subject=subj + (("dim", k),)))


def _check_mpi_body(program: Any, parsed: ParsedMpi,
                    map_indices: Sequence[Expr],
                    box: Sequence[Tuple[int, int]],
                    env: Mapping[str, Interval],
                    diags: List[Diagnostic]) -> None:
    """Compute statements: write/read MAP args vs transformed deps."""
    ttis = program.tiling.ttis
    n = ttis.n
    nest = program.nest
    no_shift = (0,) * n
    if len(parsed.body) != len(nest.statements):
        diags.append(_diag(
            "TV02", PASS_SUBSCRIPTS,
            f"compute body has {len(parsed.body)} statements, nest has "
            f"{len(nest.statements)}",
            subject=(("artifact", "mpi"),)))
        return
    plain_args = tuple(
        _affine_atom({f"jp{k}": 1}) for k in range(n)) + (
        _affine_atom({"t": 1}),)
    for si, (stmt, s) in enumerate(zip(parsed.body, nest.statements)):
        subj: Subject = (("artifact", "mpi"), ("statement", si),
                         ("line", stmt.line))
        if stmt.array != s.write.array:
            diags.append(_diag(
                "TV02", PASS_SUBSCRIPTS,
                f"statement {si} writes LA_{stmt.array}, nest writes "
                f"{s.write.array}",
                subject=subj))
            continue
        for k, (arg, want) in enumerate(zip(stmt.write_args, plain_args)):
            _check_atom(arg, want, "TV02", PASS_SUBSCRIPTS,
                        f"statement {si} write MAP argument {k}",
                        "the write lands on map(j', t) (Table 1)",
                        subj, diags)
        _check_lds_interval(parsed.map_params, map_indices,
                            stmt.write_args, no_shift, box, env,
                            f"statement {si} write", subj, diags)
        if len(stmt.reads) != len(s.reads):
            diags.append(_diag(
                "TV02", PASS_SUBSCRIPTS,
                f"statement {si} has {len(stmt.reads)} reads, nest has "
                f"{len(s.reads)}",
                subject=subj))
            continue
        for ri, read in enumerate(stmt.reads):
            d = program._read_deps[si][ri]
            rsubj = subj + (("read", ri),)
            if d is None:
                # Pure-input read: emitted in original coordinates,
                # outside the LDS; nothing to validate here.
                if read.array is not None:
                    diags.append(_diag(
                        "TV02", PASS_SUBSCRIPTS,
                        f"statement {si} read {ri} goes through the "
                        f"LDS but targets the never-written array "
                        f"{s.reads[ri].array}",
                        subject=rsubj))
                continue
            if read.array != s.reads[ri].array:
                diags.append(_diag(
                    "TV02", PASS_SUBSCRIPTS,
                    f"statement {si} read {ri} references "
                    f"LA_{read.array}, nest reads {s.reads[ri].array}",
                    subject=rsubj))
                continue
            dp = ttis.transformed_dependences([d])[0]
            want_args = tuple(
                _affine_atom({f"jp{k}": 1}, -dp[k]) for k in range(n)
            ) + (_affine_atom({"t": 1}),)
            for k, (arg, want) in enumerate(zip(read.args, want_args)):
                _check_atom(
                    arg, want, "TV02", PASS_SUBSCRIPTS,
                    f"statement {si} read {ri} MAP argument {k}",
                    "a read across dependence d resolves to "
                    "map(j' - d', t) (§3.2)",
                    rsubj, diags)
            _check_lds_interval(parsed.map_params, map_indices,
                                read.args, no_shift, box, env,
                                f"statement {si} read {ri}", rsubj, diags)


# -- sequential artifacts (TV01 + TV02 + TV03) --------------------------------


def _check_sequential(nest: LoopNest, h: Any, parsed: ParsedSequential,
                      artifact: str) -> List[Diagnostic]:
    from math import gcd

    from repro.tiling.transform import TilingTransformation

    diags: List[Diagnostic] = []
    tiling = TilingTransformation(h, nest.domain)
    ttis = tiling.ttis
    n = tiling.n
    if parsed.header_volume is not None \
            and parsed.header_volume != ttis.tile_volume:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"header tile volume is {parsed.header_volume}, pipeline "
            f"computed {ttis.tile_volume}",
            equation="|det(P')| points per tile (§2.3)",
            subject=(("artifact", artifact),)))
    if parsed.header_strides is not None \
            and parsed.header_strides != ttis.c:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"header strides are {parsed.header_strides}, HNF strides "
            f"are {ttis.c}",
            subject=(("artifact", artifact),)))

    # ---- TV01: tile loops vs Fourier-Motzkin --------------------------------
    tile_bounds = tiling.tile_space_bounds()
    if len(parsed.outer) != n:
        diags.append(_diag(
            "TV01", PASS_LOOPS,
            f"{artifact} has {len(parsed.outer)} tile loops, pipeline "
            f"expects {n}",
            subject=(("artifact", artifact),)))
        return diags
    for k, loop in enumerate(parsed.outer):
        subj: Subject = (("artifact", artifact), ("dim", k),
                         ("line", loop.line))
        names = [f"jS{l}" for l in range(k)]
        for kind, actual, side, rounding in (
                ("lower", loop.lower, tile_bounds[k].lowers, "ceil"),
                ("upper", loop.upper, tile_bounds[k].uppers, "floor")):
            expected = tuple(sorted(
                atom_from_affine(dict(zip(names, cs)), b, rounding)
                for cs, b in side))
            try:
                got = bound_atoms(actual, kind)
            except NotAffine as exc:
                diags.append(_diag(
                    "TV01", PASS_LOOPS,
                    f"tile loop jS{k} {kind} bound does not have the "
                    f"max/min-of-affine shape: {exc}",
                    equation="l_k = max(ceil(...)), u_k = "
                             "min(floor(...)) (§2.1)",
                    subject=subj))
                continue
            if got != expected:
                diags.append(_diag(
                    "TV01", PASS_LOOPS,
                    f"tile loop jS{k} {kind} bound is "
                    f"{{{', '.join(map(_atom_str, got))}}}, "
                    f"Fourier-Motzkin gives "
                    f"{{{', '.join(map(_atom_str, expected))}}}",
                    equation="tile bounds from FM elimination of the "
                             "joint (tile, point) polyhedron (§2.3)",
                    subject=subj))

    # ---- TV01: origins, inner loops, j recovery, guards ---------------------
    p = tiling.p.to_int_rows()
    if len(parsed.origins) == n:
        for i in range(n):
            expected = _affine_atom(
                {f"jS{j}": p[i][j] for j in range(n) if p[i][j]})
            _check_atom(parsed.origins[i], expected, "TV01", PASS_LOOPS,
                        f"tile origin o{i}",
                        "origin = P j^S (§2.3)",
                        (("artifact", artifact), ("dim", i)), diags)
    else:
        diags.append(_diag(
            "TV01", PASS_LOOPS,
            f"{artifact} defines {len(parsed.origins)} tile origins "
            f"for {n} dimensions",
            subject=(("artifact", artifact),)))
    _check_inner_loops(ttis, parsed.inner_loops, artifact,
                       use_lo_def=(artifact == "sequential"), diags=diags)
    pp = ttis.p_prime.rows()
    if len(parsed.jdefs) == n:
        for i in range(n):
            coeffs: Dict[str, Fraction] = {"o%d" % i: Fraction(1)}
            for j in range(n):
                if pp[i][j]:
                    coeffs[f"jp{j}"] = pp[i][j]
            expected = atom_from_affine(coeffs, Fraction(0), "floor")
            _check_atom(parsed.jdefs[i], expected, "TV01", PASS_LOOPS,
                        f"global point j{i}",
                        "j = P j^S + P' j' (§2.3)",
                        (("artifact", artifact), ("dim", i)), diags)
    else:
        diags.append(_diag(
            "TV01", PASS_LOOPS,
            f"{artifact} recovers {len(parsed.jdefs)} global "
            f"coordinates for {n} dimensions",
            subject=(("artifact", artifact),)))

    def canon_ineq(coeffs: Mapping[str, Fraction],
                   rhs: Fraction) -> Tuple[Tuple[Tuple[str, int], ...], int]:
        den = rhs.denominator
        for f in coeffs.values():
            den = den * f.denominator // gcd(den, f.denominator)
        ints = {nm: int(f * den) for nm, f in coeffs.items() if f}
        r = int(rhs * den)
        g = 0
        for v in ints.values():
            g = gcd(g, v)
        g = gcd(g, r)
        if g > 1:
            ints = {nm: v // g for nm, v in ints.items()}
            r //= g
        return tuple(sorted(ints.items())), r

    expected_guards = []
    for c in nest.domain.normalized().constraints:
        coeffs = {f"j{i}": a for i, a in enumerate(c.a) if a}
        expected_guards.append(canon_ineq(coeffs, c.b))
    actual_guards = []
    guard_bad = False
    for lhs, rhs in parsed.guards:
        try:
            gc, gk = affine(lhs)
        except NotAffine as exc:
            diags.append(_diag(
                "TV01", PASS_LOOPS,
                f"boundary guard conjunct is not affine: {exc}",
                subject=(("artifact", artifact),)))
            guard_bad = True
            continue
        actual_guards.append(canon_ineq(gc, Fraction(rhs) - gk))
    if not guard_bad and sorted(actual_guards) != sorted(expected_guards):
        diags.append(_diag(
            "TV01", PASS_LOOPS,
            f"boundary guard describes a different polyhedron than the "
            f"original domain ({len(actual_guards)} vs "
            f"{len(expected_guards)} canonical half-spaces or "
            f"different coefficients)",
            equation="guard iff j in the original iteration space "
                     "(§2.3 boundary tiles)",
            subject=(("artifact", artifact),)))

    # ---- TV02: body subscripts vs statement references ----------------------
    diags.extend(_check_sequential_body(nest, parsed.body, artifact))
    return diags


def _ref_atoms(ref: Any, n: int) -> Tuple[Atom, ...]:
    """Expected subscript atoms of ``A[F j + f]``, one per array dim."""
    fm = ref.access_matrix().to_int_rows()
    out = []
    for i in range(len(ref.offset)):
        out.append(_affine_atom(
            {f"j{j}": fm[i][j] for j in range(n) if fm[i][j]},
            int(ref.offset[i])))
    return tuple(out)


def _check_sequential_body(nest: LoopNest, body: Sequence[BodyStmt],
                           artifact: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    n = nest.depth
    if len(body) != len(nest.statements):
        diags.append(_diag(
            "TV02", PASS_SUBSCRIPTS,
            f"{artifact} body has {len(body)} statements, nest has "
            f"{len(nest.statements)}",
            subject=(("artifact", artifact),)))
        return diags
    for si, (stmt, s) in enumerate(zip(body, nest.statements)):
        subj: Subject = (("artifact", artifact), ("statement", si),
                         ("line", stmt.line))
        refs = [(f"write of {s.write.array}", stmt.array,
                 stmt.write_args, s.write)]
        if len(stmt.reads) != len(s.reads):
            diags.append(_diag(
                "TV02", PASS_SUBSCRIPTS,
                f"statement {si} has {len(stmt.reads)} reads, nest has "
                f"{len(s.reads)}",
                subject=subj))
        else:
            for ri, read in enumerate(stmt.reads):
                refs.append((f"read {ri}", read.array, read.args,
                             s.reads[ri]))
        for what, arr, args, ref in refs:
            if arr != ref.array:
                diags.append(_diag(
                    "TV02", PASS_SUBSCRIPTS,
                    f"statement {si} {what} references {arr}, nest "
                    f"references {ref.array}",
                    subject=subj))
                continue
            want = _ref_atoms(ref, n)
            if len(args) != len(want):
                diags.append(_diag(
                    "TV02", PASS_SUBSCRIPTS,
                    f"statement {si} {what} has {len(args)} subscripts "
                    f"for a {len(want)}-dimensional array",
                    subject=subj))
                continue
            for i, (arg, w) in enumerate(zip(args, want)):
                _check_atom(
                    arg, w, "TV02", PASS_SUBSCRIPTS,
                    f"statement {si} {what} subscript {i}",
                    "subscripts are the affine references F j + f of "
                    "the statement (§2.1)",
                    subj + (("subscript", i),), diags)
    return diags


def check_sequential_text(nest: LoopNest, h: Any,
                          text: str) -> List[Diagnostic]:
    """Validate the emitted sequential tiled C program."""
    try:
        parsed = read_sequential(text)
    except ReaderError as exc:
        return [_parse_error("sequential", exc)]
    diags = _check_sequential(nest, h, parsed, "sequential")
    if parsed.name != nest.name:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"header names nest {parsed.name!r}, validating against "
            f"{nest.name!r}",
            subject=(("artifact", "sequential"),)))
    return diags


def check_pyseq_source(nest: LoopNest, h: Any,
                       source: str) -> List[Diagnostic]:
    """Validate the emitted runnable Python twin."""
    try:
        parsed = read_pyseq(source)
    except ReaderError as exc:
        return [_parse_error("pyseq", exc)]
    return _check_sequential(nest, h, parsed, "pyseq")


# -- pygen schedule tables (TV03) ---------------------------------------------


def check_pygen_source(program: Any, source: str,
                       spec: Any = None) -> List[Diagnostic]:
    """Validate the emitted SPMD schedule module against ``program``."""
    try:
        parsed = read_pygen(source)
    except ReaderError as exc:
        return [_parse_error("pygen", exc)]
    diags: List[Diagnostic] = []
    if parsed.num_ranks != program.num_processors:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"RANKS covers {parsed.num_ranks} ranks, the distribution "
            f"uses {program.num_processors} processors",
            subject=(("artifact", "pygen"),)))
    expected_pids = {r: tuple(p) for p, r in program.rank_of.items()}
    if dict(parsed.pid_of_rank) != expected_pids:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            "PID_OF_RANK disagrees with the distribution's rank "
            "numbering",
            equation="pid = j^S with the mapping dimension dropped "
                     "(§3.1)",
            subject=(("artifact", "pygen"),)))
    narr = len(program.arrays)
    for pid in program.pids:
        rank = program.rank_of[pid]
        expected: List[Tuple[Any, ...]] = []
        for tile in program.dist.tiles_of(pid):
            for ds, pred, src in program.receive_plan(tile):
                nelems = program.region_count(pred, ds) * narr
                if nelems == 0:
                    continue
                dm = program.comm.project(ds)
                expected.append(("recv", program.rank_of[src],
                                 program.message_tag(dm), nelems))
                expected.append(("compute",))
            expected.append(("compute",))
            for dm, dst in program.send_plan(tile):
                full = dm[:program.dist.m] + (0,) + dm[program.dist.m:]
                nelems = program.region_count(tile, full) * narr
                if nelems == 0:
                    continue
                expected.append(("compute",))
                expected.append(("send", program.rank_of[dst],
                                 program.message_tag(dm), nelems))
        got = parsed.schedules.get(rank)
        if got is None:
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"rank {rank} has no schedule entry",
                subject=(("artifact", "pygen"), ("rank", rank))))
            continue
        if len(got) != len(expected):
            diags.append(_diag(
                "TV03", PASS_CONSTANTS,
                f"rank {rank} schedule has {len(got)} events, pipeline "
                f"expects {len(expected)}",
                equation="recv / unpack / compute / pack / send per "
                         "tile (§3.3)",
                subject=(("artifact", "pygen"), ("rank", rank))))
            continue
        for ei, (gev, eev) in enumerate(zip(got, expected)):
            if not gev or gev[0] != eev[0]:
                diags.append(_diag(
                    "TV03", PASS_CONSTANTS,
                    f"rank {rank} event {ei} is {gev!r}, pipeline "
                    f"expects a {eev[0]!r} event",
                    subject=(("artifact", "pygen"), ("rank", rank),
                             ("event", ei))))
                continue
            if eev[0] == "compute":
                continue        # timing payload is machine-dependent
            if tuple(gev[1:]) != tuple(eev[1:]):
                diags.append(_diag(
                    "TV03", PASS_CONSTANTS,
                    f"rank {rank} event {ei} is {gev!r}, pipeline "
                    f"expects {(eev[0],) + tuple(eev[1:])!r} "
                    f"(peer rank, tag, element count)",
                    equation="message size = |pack region| x #arrays "
                             "(§3.2)",
                    subject=(("artifact", "pygen"), ("rank", rank),
                             ("event", ei))))
    extra = set(parsed.schedules) - {program.rank_of[p]
                                     for p in program.pids}
    if extra:
        diags.append(_diag(
            "TV03", PASS_CONSTANTS,
            f"schedule table has entries for unknown ranks "
            f"{sorted(extra)}",
            subject=(("artifact", "pygen"),)))
    return diags


# -- declared dependence matrices (TV04) --------------------------------------


def check_declared_dependences(nest: LoopNest) -> List[Diagnostic]:
    """Cross-check ``nest.dependences`` against the statement bodies.

    The frontend pass re-derives the uniform flow dependences from the
    array references (``F d = f_w - f_r``) and compares them with the
    hand-declared matrix: a derivable-but-undeclared vector means the
    compilation pipeline ignored a real dependence (ERROR); a
    declared-but-underivable one over-constrains the schedule
    (WARNING); a non-lexicographically-positive declaration is not a
    valid sequential program (ERROR).
    """
    diags: List[Diagnostic] = []
    declared = tuple(tuple(int(x) for x in d) for d in nest.dependences)
    try:
        derived = nest_dependences(nest.statements)
    except ValueError as exc:
        return [_diag(
            "TV04", PASS_DEPENDENCES,
            f"cannot derive uniform dependences from the statement "
            f"bodies: {exc}",
            equation="F d = f_w - f_r must have an integral solution "
                     "(§2.1 uniform dependences)",
            subject=(("nest", nest.name),))]
    for d in derived:
        if d not in declared:
            diags.append(_diag(
                "TV04", PASS_DEPENDENCES,
                f"dependence {d} derived from the statement bodies is "
                f"missing from the declared matrix {declared}: the "
                f"tiling legality check never saw it",
                equation="D must contain every flow dependence (§2.1)",
                subject=(("nest", nest.name), ("dep", d)),
                suggestion="add the vector to the declared dependence "
                           "matrix"))
    for d in declared:
        if d not in derived:
            diags.append(_diag(
                "TV04", PASS_DEPENDENCES,
                f"declared dependence {d} is not derivable from any "
                f"read/write pair; it over-constrains tiling legality",
                severity=WARNING,
                equation="each column of D comes from a read "
                         "translation (§2.1)",
                subject=(("nest", nest.name), ("dep", d)),
                suggestion="drop the vector or add the read it "
                           "describes"))
        if not is_lexicographically_positive(d):
            diags.append(_diag(
                "TV04", PASS_DEPENDENCES,
                f"declared dependence {d} is not lexicographically "
                f"positive: the nest as written is not a valid "
                f"sequential program",
                equation="d >lex 0 (flow dependences, §2.1)",
                subject=(("nest", nest.name), ("dep", d))))
    return diags
