"""C-subset reader for the emitted MPI and sequential tiled programs.

The emitters (:mod:`repro.codegen.parallel`,
:mod:`repro.codegen.sequential`) produce a deterministic line grammar:
this module parses it *back* into the
:mod:`repro.analysis.transval.model` structures, with a small
recursive-descent expression parser for the arithmetic (``floord``,
``ceild``, ``max``, ``min``, ``%``, ``/``, unary minus).

The reader is deliberately strict: any structural surprise raises
:class:`~repro.analysis.transval.loopir.ReaderError` with the offending
line number.  A validator that silently skips what it cannot parse
would miss exactly the mutations it exists to catch.
"""

from __future__ import annotations

import ast as _pyast
import re
from typing import List, Match, Optional, Pattern, Sequence, Tuple

from repro.analysis.transval.loopir import (
    Add,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    MaxOf,
    MinOf,
    Mod,
    Mul,
    ReaderError,
    Var,
    add,
    affine,
    neg,
)
from repro.analysis.transval.model import (
    BodyStmt,
    InnerLoop,
    PackLoop,
    ParsedMpi,
    ParsedSequential,
    ReadRef,
    RecvBlock,
    SendBlock,
    SeqLoop,
)

__all__ = ["parse_expr", "split_top", "read_mpi", "read_sequential"]


# -- expression parsing -------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_]\w*)|(?P<op>[-+*/%(),]))")

_CALLS = {"floord", "ceild", "max", "min"}


class _ExprParser:
    """Recursive-descent parser for the emitted C arithmetic subset."""

    def __init__(self, text: str, line: int = 0):
        self.text = text
        self.line = line
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if m is None:
                if text[pos:].strip():
                    raise ReaderError(
                        f"bad token at {text[pos:]!r} in {text!r}", line)
                break
            pos = m.end()
            for kind in ("num", "name", "op"):
                val = m.group(kind)
                if val is not None:
                    self.tokens.append((kind, val))
                    break
        self.pos = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise ReaderError(f"unexpected end of {self.text!r}", self.line)
        self.pos += 1
        return tok

    def _eat(self, op: str) -> None:
        tok = self._next()
        if tok != ("op", op):
            raise ReaderError(
                f"expected {op!r}, got {tok[1]!r} in {self.text!r}",
                self.line)

    def parse(self) -> Expr:
        e = self._expr()
        if self._peek() is not None:
            raise ReaderError(
                f"trailing tokens after expression in {self.text!r}",
                self.line)
        return e

    def _expr(self) -> Expr:
        terms = [self._term()]
        while True:
            tok = self._peek()
            if tok == ("op", "+"):
                self._next()
                terms.append(self._term())
            elif tok == ("op", "-"):
                self._next()
                terms.append(neg(self._term()))
            else:
                return add(terms)

    def _term(self) -> Expr:
        e = self._unary()
        while True:
            tok = self._peek()
            if tok == ("op", "*"):
                self._next()
                e = Mul(e, self._unary())
            elif tok == ("op", "/"):
                self._next()
                e = FloorDiv(e, self._unary())
            elif tok == ("op", "%"):
                self._next()
                e = Mod(e, self._unary())
            else:
                return e

    def _unary(self) -> Expr:
        tok = self._peek()
        if tok == ("op", "-"):
            self._next()
            return neg(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        kind, val = self._next()
        if kind == "num":
            return Const(int(val))
        if kind == "op" and val == "(":
            e = self._expr()
            self._eat(")")
            return e
        if kind == "name":
            if self._peek() == ("op", "("):
                if val not in _CALLS:
                    raise ReaderError(
                        f"unknown function {val!r} in {self.text!r}",
                        self.line)
                self._next()
                args = [self._expr()]
                while self._peek() == ("op", ","):
                    self._next()
                    args.append(self._expr())
                self._eat(")")
                return self._call(val, args)
            return Var(val)
        raise ReaderError(
            f"unexpected token {val!r} in {self.text!r}", self.line)

    def _call(self, name: str, args: List[Expr]) -> Expr:
        if name in ("floord", "ceild"):
            if len(args) != 2:
                raise ReaderError(
                    f"{name} takes 2 arguments in {self.text!r}", self.line)
            cls = FloorDiv if name == "floord" else CeilDiv
            return cls(args[0], args[1])
        if len(args) < 2:
            raise ReaderError(
                f"{name} needs at least 2 arguments in {self.text!r}",
                self.line)
        return MaxOf(tuple(args)) if name == "max" else MinOf(tuple(args))


def parse_expr(text: str, line: int = 0) -> Expr:
    """Parse one emitted C arithmetic expression."""
    return _ExprParser(text, line).parse()


def split_top(text: str, sep: str) -> List[str]:
    """Split ``text`` on ``sep`` at parenthesis/bracket depth zero."""
    parts: List[str] = []
    depth = 0
    start = 0
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif depth == 0 and text.startswith(sep, i):
            parts.append(text[start:i])
            i += len(sep)
            start = i
            continue
        i += 1
    parts.append(text[start:])
    return [p.strip() for p in parts]


def _const_of(e: Expr, line: int) -> int:
    """Evaluate an expression that must be an integer constant."""
    try:
        coeffs, const = affine(e)
    except ValueError as exc:
        raise ReaderError(f"expected a constant: {exc}", line) from None
    if coeffs or const.denominator != 1:
        raise ReaderError(f"expected a constant, got {e!r}", line)
    return int(const)


def _int_tuple(text: str) -> Tuple[int, ...]:
    return tuple(int(x) for x in text.replace(" ", "").split(",") if x)


# -- line cursor --------------------------------------------------------------


class _Cursor:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.idx = 0

    @property
    def lineno(self) -> int:
        return self.idx + 1

    def at_end(self) -> bool:
        return self.idx >= len(self.lines)

    def peek(self) -> str:
        if self.at_end():
            raise ReaderError("unexpected end of text", self.lineno)
        return self.lines[self.idx].strip()

    def next(self) -> str:
        line = self.peek()
        self.idx += 1
        return line

    def expect(self, pattern: Pattern[str], what: str) -> Match[str]:
        line = self.peek()
        m = pattern.fullmatch(line)
        if m is None:
            raise ReaderError(f"expected {what}, got {line!r}", self.lineno)
        self.idx += 1
        return m

    def skip_until(self, pattern: Pattern[str], what: str) -> Match[str]:
        while not self.at_end():
            m = pattern.fullmatch(self.peek())
            if m is not None:
                self.idx += 1
                return m
            self.idx += 1
        raise ReaderError(f"never found {what}", self.lineno)

    def expect_close(self, count: int) -> None:
        for _ in range(count):
            line = self.next()
            if line != "}":
                raise ReaderError(f"expected '}}', got {line!r}",
                                  self.lineno - 1)


# -- MPI program reader -------------------------------------------------------

_RE_MPI_HEAD = re.compile(r"/\* Data-parallel MPI code for '(?P<name>.*)'")
_RE_HEADER_KV = re.compile(r"\* {3}(?P<key>.*?) *: (?P<val>.*)")
_RE_OFF = re.compile(r"#define OFF(?P<k>\d+) (?P<v>-?\d+)")
_RE_LDS = re.compile(r"#define LDS_CELLS \((?P<terms>.*)\)")
_RE_LDS_TERM = re.compile(
    r"\(OFF(?P<k>\d+) \+ (?P<nt>NTILES\*)?(?P<rows>\d+)\)")
_RE_MAP = re.compile(
    r"#define MAP\((?P<params>[^)]*)\) (?P<body>.*?) */\* one index.*")
_RE_RECV_COMMENT = re.compile(
    r"/\* tile dependence d\^S = \((?P<ds>[^)]*)\), "
    r"processor direction d\^m = \((?P<dm>[^)]*)\) \*/")
_RE_RECV_GUARD = re.compile(
    r"if \(valid_pred\(pid, tS, \(long\[\]\)\{(?P<ds>[^}]*)\}\) "
    r"&& is_minsucc\(\.\.\.\)\) \{")
_RE_MPI_RECV = re.compile(
    r"MPI_Recv\(buf, count, MPI_DOUBLE, "
    r"rank_of_pid_minus\(\(int\[\]\)\{(?P<src>[^}]*)\}\), "
    r"TAG_(?P<tag>\w+), MPI_COMM_WORLD, MPI_STATUS_IGNORE\);")
_RE_COUNT = re.compile(r"long count = 0;")
_RE_PACK_FOR = re.compile(
    r"for \(long (?P<var>jp\d+) = (?P<lo>.*?); "
    r"jp(?P<k>\d+) <= (?P<hi>u\d+p); jp\d+ \+= (?P<step>\d+)\) \{")
_RE_PACK_LO = re.compile(r"(?:max\(l(\d+)p, (?P<bound>-?\d+)\)|l(\d+)p)")
_RE_HALO_STORE = re.compile(
    r"LA\[MAP\((?P<args>.*?)\) - \((?P<shift>.*?)\)\] = "
    r"buf\[count\+\+\]; */\* halo slot \*/")
_RE_PACK_LOAD = re.compile(
    r"buf\[count\+\+\] = LA\[MAP\((?P<args>.*?)\)\];")
_RE_SEND_COMMENT = re.compile(
    r"/\* processor dependence d\^m = \((?P<dm>[^)]*)\) \*/")
_RE_SEND_GUARD = re.compile(r"if \(exists_valid_successor\(pid, tS\)\) \{")
_RE_MPI_SEND = re.compile(
    r"MPI_Send\(buf, count, MPI_DOUBLE, "
    r"rank_of_pid_plus\(\(int\[\]\)\{(?P<dst>[^}]*)\}\), "
    r"TAG_(?P<tag>\w+), MPI_COMM_WORLD\);")
_RE_PID_DECL = re.compile(r"int pid\[(?P<n>\d+)\]; pid_of_rank\(rank, pid\);.*")
_RE_TS_FOR = re.compile(
    r"for \(long tS = lS(?P<lo>\d+); tS <= uS(?P<hi>\d+); tS\+\+\) \{")
_RE_PHASE = re.compile(r"long ph(?P<k>\d+) = (?P<rhs>.*);")
_RE_INNER_FOR = re.compile(
    r"for \(long jp(?P<k>\d+) = (?P<start>.*?); "
    r"jp(?P=k) < (?P<limit>\d+); jp(?P=k) \+= (?P<step>\d+)\) \{")
_RE_XDEF = re.compile(r"long x(?P<k>\d+) = (?P<rhs>.*);")
_RE_GUARD_MAIN = re.compile(r"if \(inside_original_space\(jp, pid, tS\)\) \{")
_RE_BODY_STMT = re.compile(
    r"LA_(?P<arr>\w+)\[MAP\((?P<args>.*?)\)\] = F_(?P<fn>\w+)\((?P<reads>.*)\);")
_RE_LDS_READ = re.compile(r"LA_(?P<arr>\w+)\[MAP\((?P<args>.*?)\)\]")


def _parse_pack_loops(cur: _Cursor) -> Tuple[PackLoop, ...]:
    loops: List[PackLoop] = []
    while True:
        m = _RE_PACK_FOR.fullmatch(cur.peek())
        if m is None:
            return tuple(loops)
        line = cur.lineno
        cur.next()
        lo = _RE_PACK_LO.fullmatch(m.group("lo"))
        if lo is None:
            raise ReaderError(
                f"bad pack lower bound {m.group('lo')!r}", line)
        loops.append(PackLoop(
            var=m.group("var"),
            lower=int(lo.group("bound") or 0),
            upper_var=m.group("hi"),
            step=int(m.group("step")),
            line=line,
        ))


def _parse_map_args(text: str, line: int) -> Tuple[Expr, ...]:
    return tuple(parse_expr(a, line) for a in split_top(text, ","))


def read_mpi(text: str) -> ParsedMpi:
    """Parse the full emitted C+MPI node program."""
    cur = _Cursor(text)
    name = cur.skip_until(_RE_MPI_HEAD, "MPI header comment").group("name")
    header = {}
    while cur.peek() != "*/":
        m = _RE_HEADER_KV.fullmatch(cur.peek())
        if m is None:
            raise ReaderError(
                f"bad header line {cur.peek()!r}", cur.lineno)
        header[m.group("key")] = m.group("val")
        cur.next()
    cur.next()                                  # */
    offs = {}
    m = cur.skip_until(_RE_OFF, "#define OFF0")
    offs[int(m.group("k"))] = int(m.group("v"))
    while (m2 := _RE_OFF.fullmatch(cur.peek())) is not None:
        offs[int(m2.group("k"))] = int(m2.group("v"))
        cur.next()
    n = len(offs)
    if sorted(offs) != list(range(n)):
        raise ReaderError(f"non-contiguous OFF defines {sorted(offs)}",
                          cur.lineno)
    offsets = tuple(offs[k] for k in range(n))
    m = cur.skip_until(_RE_LDS, "#define LDS_CELLS")
    lds_line = cur.lineno - 1
    lds_rows: List[Tuple[int, bool]] = []
    terms = split_top(m.group("terms"), "*")
    # split_top cuts ``(OFF0 + 2) * (OFF1 + 3)`` at depth-0 stars only.
    for pos, term in enumerate(terms):
        tm = _RE_LDS_TERM.fullmatch(term)
        if tm is None or int(tm.group("k")) != pos:
            raise ReaderError(f"bad LDS_CELLS term {term!r}", lds_line)
        lds_rows.append((int(tm.group("rows")), tm.group("nt") is not None))
    m = cur.skip_until(_RE_MAP, "#define MAP")
    map_line = cur.lineno - 1
    map_params = tuple(p.strip() for p in m.group("params").split(","))
    map_indices = tuple(
        parse_expr(t, map_line) for t in split_top(m.group("body"), ","))

    # RECEIVE routine.
    cur.skip_until(re.compile(re.escape(
        "void RECEIVE(int *pid, long tS, double *LA, double *buf) {")),
        "RECEIVE routine")
    recv_blocks: List[RecvBlock] = []
    while _RE_RECV_COMMENT.fullmatch(cur.peek()):
        line = cur.lineno
        cm = cur.expect(_RE_RECV_COMMENT, "receive comment")
        gm = cur.expect(_RE_RECV_GUARD, "valid_pred guard")
        rm = cur.expect(_RE_MPI_RECV, "MPI_Recv call")
        cur.expect(_RE_COUNT, "count reset")
        loops = _parse_pack_loops(cur)
        sm = cur.expect(_RE_HALO_STORE, "halo store")
        store_line = cur.lineno - 1
        cur.expect_close(len(loops) + 1)
        ds = _int_tuple(cm.group("ds"))
        if _int_tuple(gm.group("ds")) != ds:
            raise ReaderError(
                f"guard d^S {gm.group('ds')!r} disagrees with comment "
                f"{ds}", line)
        shift = tuple(
            _const_of(parse_expr(t, store_line), store_line)
            for t in split_top(sm.group("shift"), ","))
        recv_blocks.append(RecvBlock(
            d_s=ds,
            d_m=_int_tuple(cm.group("dm")),
            src=_int_tuple(rm.group("src")),
            tag=rm.group("tag"),
            loops=loops,
            store_args=_parse_map_args(sm.group("args"), store_line),
            shift=shift,
            line=line,
        ))
    cur.expect_close(1)                         # end of RECEIVE

    # SEND routine.
    cur.skip_until(re.compile(re.escape(
        "void SEND(int *pid, long tS, double *LA, double *buf) {")),
        "SEND routine")
    send_blocks: List[SendBlock] = []
    while _RE_SEND_COMMENT.fullmatch(cur.peek()):
        line = cur.lineno
        cm2 = cur.expect(_RE_SEND_COMMENT, "send comment")
        cur.expect(_RE_SEND_GUARD, "successor guard")
        cur.expect(_RE_COUNT, "count reset")
        loops = _parse_pack_loops(cur)
        pm = cur.expect(_RE_PACK_LOAD, "pack load")
        pack_line = cur.lineno - 1
        cur.expect_close(len(loops))
        sm2 = cur.expect(_RE_MPI_SEND, "MPI_Send call")
        cur.expect_close(1)
        send_blocks.append(SendBlock(
            d_m=_int_tuple(cm2.group("dm")),
            dst=_int_tuple(sm2.group("dst")),
            tag=sm2.group("tag"),
            loops=loops,
            pack_args=_parse_map_args(pm.group("args"), pack_line),
            line=line,
        ))
    cur.expect_close(1)                         # end of SEND

    # Main loop.
    pid_dim = int(cur.skip_until(_RE_PID_DECL, "pid declaration").group("n"))
    tm2 = cur.skip_until(_RE_TS_FOR, "tS chain loop")
    if tm2.group("lo") != tm2.group("hi"):
        raise ReaderError(
            f"tS bounds disagree: lS{tm2.group('lo')} vs "
            f"uS{tm2.group('hi')}", cur.lineno - 1)
    ts_index = int(tm2.group("lo"))
    inner: List[InnerLoop] = []
    cur.skip_until(re.compile(re.escape("RECEIVE(pid, tS, LA, buf);")),
                   "RECEIVE call")
    while _RE_PHASE.fullmatch(cur.peek()):
        line = cur.lineno
        ph = cur.expect(_RE_PHASE, "phase definition")
        fm = cur.expect(_RE_INNER_FOR, "inner TTIS loop")
        xd = cur.expect(_RE_XDEF, "x recovery")
        k = int(ph.group("k"))
        if int(fm.group("k")) != k or int(xd.group("k")) != k:
            raise ReaderError(f"inner loop {k} indices disagree", line)
        inner.append(InnerLoop(
            k=k,
            phase=parse_expr(ph.group("rhs"), line),
            start=parse_expr(fm.group("start"), line + 1),
            limit=int(fm.group("limit")),
            step=int(fm.group("step")),
            xdef=parse_expr(xd.group("rhs"), line + 2),
            lo_def=None,
            line=line,
        ))
    cur.expect(_RE_GUARD_MAIN, "inside_original_space guard")
    body: List[BodyStmt] = []
    while (bm := _RE_BODY_STMT.fullmatch(cur.peek())) is not None:
        line = cur.lineno
        cur.next()
        reads: List[ReadRef] = []
        for raw in split_top(bm.group("reads"), ","):
            lm = _RE_LDS_READ.fullmatch(raw)
            if lm is None:
                reads.append(ReadRef(array=None, args=(), raw=raw))
            else:
                reads.append(ReadRef(
                    array=lm.group("arr"),
                    args=_parse_map_args(lm.group("args"), line),
                    raw=raw,
                ))
        if bm.group("fn") != bm.group("arr"):
            raise ReaderError(
                f"kernel F_{bm.group('fn')} does not match written array "
                f"{bm.group('arr')}", line)
        body.append(BodyStmt(
            array=bm.group("arr"),
            write_args=_parse_map_args(bm.group("args"), line),
            reads=tuple(reads),
            line=line,
        ))
    cur.expect_close(1 + len(inner))
    cur.expect(re.compile(re.escape("SEND(pid, tS, LA, buf);")),
               "SEND call")
    return ParsedMpi(
        name=name,
        header=header,
        offsets=offsets,
        lds_rows=tuple(lds_rows),
        map_params=map_params,
        map_indices=map_indices,
        recv_blocks=tuple(recv_blocks),
        send_blocks=tuple(send_blocks),
        pid_dim=pid_dim,
        ts_index=ts_index,
        inner_loops=tuple(inner),
        body=tuple(body),
    )


# -- sequential program reader ------------------------------------------------

_RE_SEQ_HEAD = re.compile(
    r"/\* Sequential tiled code for '(?P<name>.*)': "
    r"tile volume (?P<vol>\d+), strides \((?P<strides>[^)]*)\) \*/")
_RE_SEQ_FOR = re.compile(
    r"for \(long jS(?P<k>\d+) = (?P<lo>.*?); "
    r"jS(?P=k) <= (?P<hi>.*?); jS(?P=k)\+\+\) \{")
_RE_ORIGIN = re.compile(r"long o(?P<i>\d+) = (?P<rhs>.*);")
_RE_LODEF = re.compile(
    r"long lo(?P<k>\d+) = (?P<rhs>.*?); */\* smallest admissible.*")
_RE_SEQ_INNER_FOR = re.compile(
    r"for \(long jp(?P<k>\d+) = lo(?P=k); "
    r"jp(?P=k) < (?P<limit>\d+); jp(?P=k) \+= (?P<step>\d+)\) \{")
_RE_JDEF = re.compile(r"long j(?P<i>\d+) = (?P<rhs>.*);")
_RE_SEQ_GUARD = re.compile(r"if \((?P<conj>.*)\) \{")
_RE_GUARD_TERM = re.compile(r"\((?P<lhs>.*)\) <= (?P<rhs>-?\d+)")
_RE_SEQ_BODY = re.compile(
    r"(?P<arr>\w+)(?P<dims>(?:\[[^\]]*\])+) = F_(?P<fn>\w+)\((?P<reads>.*)\);")
_RE_REF = re.compile(r"(?P<arr>\w+)(?P<dims>(?:\[[^\]]*\])+)")


def _parse_ref(text: str, line: int) -> ReadRef:
    m = _RE_REF.fullmatch(text)
    if m is None:
        raise ReaderError(f"bad array reference {text!r}", line)
    dims = re.findall(r"\[([^\]]*)\]", m.group("dims"))
    return ReadRef(
        array=m.group("arr"),
        args=tuple(parse_expr(d, line) for d in dims),
        raw=text,
    )


def read_sequential(text: str) -> ParsedSequential:
    """Parse the emitted sequential tiled C program."""
    cur = _Cursor(text)
    hm = cur.skip_until(_RE_SEQ_HEAD, "sequential header comment")
    outer: List[SeqLoop] = []
    while (fm := _RE_SEQ_FOR.fullmatch(cur.peek())) is not None:
        line = cur.lineno
        cur.next()
        if int(fm.group("k")) != len(outer):
            raise ReaderError(
                f"tile loop jS{fm.group('k')} out of order", line)
        outer.append(SeqLoop(
            k=int(fm.group("k")),
            lower=parse_expr(fm.group("lo"), line),
            upper=parse_expr(fm.group("hi"), line),
            line=line,
        ))
    n = len(outer)
    if n == 0:
        raise ReaderError("no tile loops found", cur.lineno)
    origins: List[Expr] = []
    for i in range(n):
        om = cur.expect(_RE_ORIGIN, f"origin o{i}")
        if int(om.group("i")) != i:
            raise ReaderError(f"origin o{om.group('i')} out of order",
                              cur.lineno - 1)
        origins.append(parse_expr(om.group("rhs"), cur.lineno - 1))
    inner: List[InnerLoop] = []
    for k in range(n):
        line = cur.lineno
        ph = cur.expect(_RE_PHASE, f"phase ph{k}")
        lo = cur.expect(_RE_LODEF, f"lo{k} definition")
        fm2 = cur.expect(_RE_SEQ_INNER_FOR, f"inner loop jp{k}")
        xd = cur.expect(_RE_XDEF, f"x{k} recovery")
        if not (int(ph.group("k")) == int(lo.group("k"))
                == int(fm2.group("k")) == int(xd.group("k")) == k):
            raise ReaderError(f"inner loop {k} indices disagree", line)
        inner.append(InnerLoop(
            k=k,
            phase=parse_expr(ph.group("rhs"), line),
            start=Var(f"lo{k}"),
            limit=int(fm2.group("limit")),
            step=int(fm2.group("step")),
            xdef=parse_expr(xd.group("rhs"), line + 3),
            lo_def=parse_expr(lo.group("rhs"), line + 1),
            line=line,
        ))
    jdefs: List[Expr] = []
    for i in range(n):
        jm = cur.expect(_RE_JDEF, f"global point j{i}")
        if int(jm.group("i")) != i:
            raise ReaderError(f"j{jm.group('i')} out of order",
                              cur.lineno - 1)
        jdefs.append(parse_expr(jm.group("rhs"), cur.lineno - 1))
    gm2 = cur.expect(_RE_SEQ_GUARD, "boundary guard")
    guard_line = cur.lineno - 1
    guards: List[Tuple[Expr, int]] = []
    for conj in split_top(gm2.group("conj"), "&&"):
        tm = _RE_GUARD_TERM.fullmatch(conj)
        if tm is None:
            raise ReaderError(f"bad guard conjunct {conj!r}", guard_line)
        guards.append((parse_expr(tm.group("lhs"), guard_line),
                       int(tm.group("rhs"))))
    body: List[BodyStmt] = []
    while (bm := _RE_SEQ_BODY.fullmatch(cur.peek())) is not None:
        line = cur.lineno
        cur.next()
        write = _parse_ref(bm.group("arr") + bm.group("dims"), line)
        if bm.group("fn") != bm.group("arr"):
            raise ReaderError(
                f"kernel F_{bm.group('fn')} does not match written array "
                f"{bm.group('arr')}", line)
        reads = tuple(_parse_ref(r, line)
                      for r in split_top(bm.group("reads"), ","))
        assert write.array is not None
        body.append(BodyStmt(
            array=write.array,
            write_args=write.args,
            reads=reads,
            line=line,
        ))
    cur.expect_close(2 * n + 1)
    return ParsedSequential(
        name=hm.group("name"),
        header_volume=int(hm.group("vol")),
        header_strides=_int_tuple(hm.group("strides")),
        outer=tuple(outer),
        origins=tuple(origins),
        inner_loops=tuple(inner),
        jdefs=tuple(jdefs),
        guards=tuple(guards),
        body=tuple(body),
    )


def literal_header_tuple(raw: str) -> Tuple[object, ...]:
    """Parse a header value like ``(2, 3, 4)`` or ``((0, 1), (1, 0))``."""
    try:
        val = _pyast.literal_eval(raw)
    except (ValueError, SyntaxError) as exc:
        raise ReaderError(f"bad header tuple {raw!r}: {exc}") from None
    if not isinstance(val, tuple):
        raise ReaderError(f"header value {raw!r} is not a tuple")
    return val
