"""Readers for the emitted Python artifacts (pyseq twin, pygen module).

Unlike the C texts, the Python artifacts are valid Python, so the
standard :mod:`ast` module does the tokenizing.  This module lowers the
parse tree into the same neutral :mod:`~repro.analysis.transval.model`
structures the C reader produces; the passes then apply unchanged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.transval.loopir import (
    Add,
    CeilDiv,
    Const,
    Expr,
    FloorDiv,
    MaxOf,
    MinOf,
    Mod,
    Mul,
    ReaderError,
    Var,
    neg,
)
from repro.analysis.transval.model import (
    BodyStmt,
    InnerLoop,
    ParsedSchedule,
    ParsedSequential,
    ReadRef,
    SeqLoop,
)

__all__ = ["read_pyseq", "read_pygen"]


def _conv(node: ast.expr) -> Expr:
    """Lower a Python expression node to the transval expression IR."""
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, int) or isinstance(node.value, bool):
            raise ReaderError(
                f"non-integer constant {node.value!r}", node.lineno)
        return Const(node.value)
    if isinstance(node, ast.Name):
        return Var(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return neg(_conv(node.operand))
    if isinstance(node, ast.BinOp):
        lhs, rhs = _conv(node.left), _conv(node.right)
        if isinstance(node.op, ast.Add):
            return Add((lhs, rhs))
        if isinstance(node.op, ast.Sub):
            return Add((lhs, neg(rhs)))
        if isinstance(node.op, ast.Mult):
            return Mul(lhs, rhs)
        if isinstance(node.op, ast.FloorDiv):
            return FloorDiv(lhs, rhs)
        if isinstance(node.op, ast.Mod):
            return Mod(lhs, rhs)
        raise ReaderError(
            f"unsupported operator {type(node.op).__name__}", node.lineno)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        args = [_conv(a) for a in node.args]
        if name == "floord" and len(args) == 2:
            return FloorDiv(args[0], args[1])
        if name == "ceild" and len(args) == 2:
            return CeilDiv(args[0], args[1])
        if name == "max" and len(args) >= 2:
            return MaxOf(tuple(args))
        if name == "min" and len(args) >= 2:
            return MinOf(tuple(args))
        raise ReaderError(f"unsupported call {name!r}", node.lineno)
    raise ReaderError(
        f"unsupported expression {type(node).__name__}", node.lineno)


def _target_name(node: ast.stmt) -> Optional[str]:
    if (isinstance(node, ast.Assign) and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)):
        return node.targets[0].id
    return None


def _range_call(node: ast.expr, line: int) -> List[ast.expr]:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "range"):
        raise ReaderError("loop iterator is not a range() call", line)
    return list(node.args)


def _strip_plus_one(node: ast.expr, line: int) -> ast.expr:
    """The pyseq upper bound is emitted as ``(hi) + 1``; recover ``hi``."""
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
            and isinstance(node.right, ast.Constant)
            and node.right.value == 1):
        return node.left
    raise ReaderError("tile-loop upper bound is not '(hi) + 1'", line)


def _const_int(node: ast.expr, line: int, what: str) -> int:
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)):
        return -node.operand.value
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    raise ReaderError(f"{what} is not an integer literal", line)


def _subscript_tuple(node: ast.expr, line: int) -> Tuple[Expr, ...]:
    if isinstance(node, ast.Tuple):
        return tuple(_conv(e) for e in node.elts)
    return (_conv(node),)


def _parse_read(node: ast.expr) -> ReadRef:
    """Lower one ``_read('A', (j0, ...))`` call."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "_read" and len(node.args) == 2
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)):
        return ReadRef(
            array=node.args[0].value,
            args=_subscript_tuple(node.args[1], node.lineno),
            raw=ast.unparse(node),
        )
    raise ReaderError("read is not a _read(name, cell) call", node.lineno)


def _parse_body_assign(node: ast.Assign) -> BodyStmt:
    """Lower ``arrays['A'][cell] = kernels[i](_j, [reads...])``."""
    line = node.lineno
    if len(node.targets) != 1:
        raise ReaderError("body assignment has multiple targets", line)
    tgt = node.targets[0]
    if not (isinstance(tgt, ast.Subscript)
            and isinstance(tgt.value, ast.Subscript)
            and isinstance(tgt.value.value, ast.Name)
            and tgt.value.value.id == "arrays"
            and isinstance(tgt.value.slice, ast.Constant)
            and isinstance(tgt.value.slice.value, str)):
        raise ReaderError("body write is not arrays[name][cell]", line)
    call = node.value
    if not (isinstance(call, ast.Call)
            and isinstance(call.func, ast.Subscript)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "kernels"
            and len(call.args) == 2
            and isinstance(call.args[1], ast.List)):
        raise ReaderError(
            "body value is not kernels[i](_j, [reads])", line)
    reads = tuple(_parse_read(r) for r in call.args[1].elts)
    return BodyStmt(
        array=tgt.value.slice.value,
        write_args=_subscript_tuple(tgt.slice, line),
        reads=reads,
        line=line,
    )


def read_pyseq(source: str) -> ParsedSequential:
    """Parse the pyseq twin module into a :class:`ParsedSequential`."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ReaderError(f"pyseq module does not parse: {exc}",
                          exc.lineno or 0) from None
    fn = next((n for n in tree.body
               if isinstance(n, ast.FunctionDef) and n.name == "execute"),
              None)
    if fn is None:
        raise ReaderError("no 'execute' function found")

    # Skip the leading _read helper, then walk the jS loop nest.
    stmts = [s for s in fn.body if not isinstance(s, ast.FunctionDef)]
    outer: List[SeqLoop] = []
    while (len(stmts) >= 1 and isinstance(stmts[0], ast.For)
           and isinstance(stmts[0].target, ast.Name)
           and stmts[0].target.id.startswith("jS")):
        loop = stmts[0]
        assert isinstance(loop.target, ast.Name)
        k = int(loop.target.id[2:])
        if k != len(outer):
            raise ReaderError(
                f"tile loop jS{k} out of order", loop.lineno)
        args = _range_call(loop.iter, loop.lineno)
        if len(args) != 2:
            raise ReaderError(
                f"tile loop jS{k} range has {len(args)} args, expected 2",
                loop.lineno)
        outer.append(SeqLoop(
            k=k,
            lower=_conv(args[0]),
            upper=_conv(_strip_plus_one(args[1], loop.lineno)),
            line=loop.lineno,
        ))
        stmts = loop.body
    n = len(outer)
    if n == 0:
        raise ReaderError("no jS tile loops found", fn.lineno)

    origins: List[Expr] = []
    while _target_name(stmts[0]) == f"o{len(origins)}":
        assign = stmts[0]
        assert isinstance(assign, ast.Assign)
        origins.append(_conv(assign.value))
        stmts = stmts[1:]
    if len(origins) != n:
        raise ReaderError(
            f"expected {n} origin definitions, found {len(origins)}",
            stmts[0].lineno if stmts else fn.lineno)

    inner: List[InnerLoop] = []
    for k in range(n):
        if len(stmts) < 2 or _target_name(stmts[0]) != f"ph{k}":
            raise ReaderError(f"missing ph{k} definition",
                              stmts[0].lineno if stmts else fn.lineno)
        ph_assign = stmts[0]
        assert isinstance(ph_assign, ast.Assign)
        loop_stmt = stmts[1]
        if not (isinstance(loop_stmt, ast.For)
                and isinstance(loop_stmt.target, ast.Name)
                and loop_stmt.target.id == f"jp{k}"):
            raise ReaderError(f"missing jp{k} loop", loop_stmt.lineno)
        args = _range_call(loop_stmt.iter, loop_stmt.lineno)
        if len(args) != 3:
            raise ReaderError(
                f"jp{k} range has {len(args)} args, expected 3",
                loop_stmt.lineno)
        body = loop_stmt.body
        if not body or _target_name(body[0]) != f"x{k}":
            raise ReaderError(f"missing x{k} recovery", loop_stmt.lineno)
        x_assign = body[0]
        assert isinstance(x_assign, ast.Assign)
        inner.append(InnerLoop(
            k=k,
            phase=_conv(ph_assign.value),
            start=_conv(args[0]),
            limit=_const_int(args[1], loop_stmt.lineno, f"jp{k} limit"),
            step=_const_int(args[2], loop_stmt.lineno, f"jp{k} step"),
            xdef=_conv(x_assign.value),
            lo_def=None,
            line=loop_stmt.lineno,
        ))
        stmts = body[1:]

    jdefs: List[Expr] = []
    while _target_name(stmts[0]) == f"j{len(jdefs)}":
        assign = stmts[0]
        assert isinstance(assign, ast.Assign)
        jdefs.append(_conv(assign.value))
        stmts = stmts[1:]
    if len(jdefs) != n:
        raise ReaderError(
            f"expected {n} global point definitions, found {len(jdefs)}",
            stmts[0].lineno if stmts else fn.lineno)

    if not stmts or not isinstance(stmts[0], ast.If):
        raise ReaderError("missing boundary guard",
                          stmts[0].lineno if stmts else fn.lineno)
    guard = stmts[0]
    conjuncts = (guard.test.values
                 if isinstance(guard.test, ast.BoolOp)
                 and isinstance(guard.test.op, ast.And)
                 else [guard.test])
    guards: List[Tuple[Expr, int]] = []
    for c in conjuncts:
        if not (isinstance(c, ast.Compare) and len(c.ops) == 1
                and isinstance(c.ops[0], ast.LtE)):
            raise ReaderError("guard conjunct is not '<='", c.lineno)
        guards.append((
            _conv(c.left),
            _const_int(c.comparators[0], c.lineno, "guard bound"),
        ))

    body_stmts: List[BodyStmt] = []
    for s in guard.body:
        if _target_name(s) == "_j":
            continue
        if not isinstance(s, ast.Assign):
            raise ReaderError(
                f"unexpected statement {type(s).__name__} in guard body",
                s.lineno)
        body_stmts.append(_parse_body_assign(s))

    return ParsedSequential(
        name="",
        header_volume=None,
        header_strides=None,
        outer=tuple(outer),
        origins=tuple(origins),
        inner_loops=tuple(inner),
        jdefs=tuple(jdefs),
        guards=tuple(guards),
        body=tuple(body_stmts),
    )


def read_pygen(source: str) -> ParsedSchedule:
    """Parse the pygen module tables into a :class:`ParsedSchedule`."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ReaderError(f"pygen module does not parse: {exc}",
                          exc.lineno or 0) from None
    num_ranks: Optional[int] = None
    pid_of_rank: Optional[Dict[int, Tuple[int, ...]]] = None
    schedules: Optional[Dict[int, Tuple[Tuple[object, ...], ...]]] = None
    for node in tree.body:
        name = _target_name(node)
        if name is None or not isinstance(node, ast.Assign):
            continue
        if name == "RANKS":
            # Emitted as ``tuple(range(N))``.
            val = node.value
            if (isinstance(val, ast.Call) and isinstance(val.func, ast.Name)
                    and val.func.id == "tuple" and len(val.args) == 1):
                args = _range_call(val.args[0], node.lineno)
                if len(args) == 1:
                    num_ranks = _const_int(args[0], node.lineno, "RANKS")
                    continue
            raise ReaderError("RANKS is not tuple(range(N))", node.lineno)
        if name == "PID_OF_RANK":
            try:
                raw = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                raise ReaderError("PID_OF_RANK is not a literal dict",
                                  node.lineno) from None
            pid_of_rank = {int(r): tuple(p) for r, p in raw.items()}
        if name == "SCHEDULES":
            try:
                raw = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                raise ReaderError("SCHEDULES is not a literal dict",
                                  node.lineno) from None
            schedules = {int(r): tuple(tuple(ev) for ev in evs)
                         for r, evs in raw.items()}
    if num_ranks is None:
        raise ReaderError("RANKS table not found")
    if pid_of_rank is None:
        raise ReaderError("PID_OF_RANK table not found")
    if schedules is None:
        raise ReaderError("SCHEDULES table not found")
    return ParsedSchedule(
        num_ranks=num_ranks,
        pid_of_rank=pid_of_rank,
        schedules=schedules,
    )
