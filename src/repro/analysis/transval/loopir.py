"""Loop-IR for translation validation: expressions, atoms, intervals.

Both readers (:mod:`repro.analysis.transval.creader` for emitted C,
:mod:`repro.analysis.transval.pyreader` for emitted Python) lower the
generated text into this tiny expression language.  The passes then
compare the parsed structures against the symbolic pipeline using two
exact tools:

* **rounded-affine atoms** — a canonical form for the bound expressions
  polyhedral codegen emits: an affine form over loop variables, an
  optional single ``floord``/``ceild`` rounding, and an outer integer
  shift (folded into the rounding: ``floor(x) + n = floor(x + n)``).
  Coefficients are :class:`~fractions.Fraction`, so
  ``floord(2*x + 4, 2)`` and ``floord(x + 2, 1*1)`` canonicalize to the
  same atom — the gcd reduction is justified by
  ``floor((k*a)/(k*b)) = floor(a/b)``.
* **interval abstract interpretation** — exact min/max propagation over
  integer boxes.  On the emitted subscripts this is not just sound but
  *exact*: every division in a ``map()`` expansion has a constant
  positive divisor and the mapping-dimension numerator is monotone in
  both ``t`` and ``j'_m`` (``c_k | v_k``), so interval endpoints are
  attained.

Nothing in here imports the compiler pipeline; the module is shared
vocabulary between readers and passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

__all__ = [
    "Expr", "Const", "Var", "Add", "Mul", "FloorDiv", "CeilDiv", "Mod",
    "MinOf", "MaxOf", "NotAffine", "ReaderError", "Atom",
    "add", "neg", "sub", "affine", "rounded_atom", "atom_from_affine",
    "bound_atoms", "substitute", "interval", "floord", "ceild",
]


class ReaderError(ValueError):
    """Emitted text does not have the shape this validator understands.

    Raised by the readers on structural surprises (and by the interval
    evaluator on free variables).  The passes convert it into a TV01
    diagnostic: text that cannot be parsed back cannot be validated,
    which is itself a finding, never a crash.
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


class NotAffine(ValueError):
    """Expression is not affine (or not a single rounded-affine atom)."""


@dataclass(frozen=True)
class Const:
    value: int


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Add:
    terms: Tuple["Expr", ...]


@dataclass(frozen=True)
class Mul:
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class FloorDiv:
    num: "Expr"
    den: "Expr"


@dataclass(frozen=True)
class CeilDiv:
    num: "Expr"
    den: "Expr"


@dataclass(frozen=True)
class Mod:
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class MinOf:
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class MaxOf:
    args: Tuple["Expr", ...]


Expr = Union[Const, Var, Add, Mul, FloorDiv, CeilDiv, Mod, MinOf, MaxOf]

#: Canonical rounded-affine atom: (rounding, sorted coeff items, const).
#: ``rounding`` is "exact" when the form is integral (floor == ceil ==
#: identity there), else "floor"/"ceil".
Atom = Tuple[str, Tuple[Tuple[str, Fraction], ...], Fraction]


def add(terms: Iterable[Expr]) -> Expr:
    ts = tuple(terms)
    if not ts:
        return Const(0)
    if len(ts) == 1:
        return ts[0]
    return Add(ts)


def neg(e: Expr) -> Expr:
    return Mul(Const(-1), e)


def sub(a: Expr, b: Expr) -> Expr:
    return Add((a, neg(b)))


def floord(a: int, b: int) -> int:
    """Exact floor division (the C helper the prologue defines)."""
    if b == 0:
        raise ZeroDivisionError("floord by zero")
    return a // b if b > 0 else (-a) // (-b)


def ceild(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("ceild by zero")
    return -((-a) // b) if b > 0 else -(a // (-b))


# -- affine normalization -----------------------------------------------------


def affine(e: Expr) -> Tuple[Dict[str, Fraction], Fraction]:
    """``e`` as ``sum(coeffs[v] * v) + const`` or raise :class:`NotAffine`.

    ``FloorDiv``/``CeilDiv`` by a constant are treated as *exact*
    rational division — callers must only use this where exactness is
    guaranteed (or go through :func:`rounded_atom`, which keeps the
    rounding in the canonical form).
    """
    if isinstance(e, Const):
        return {}, Fraction(e.value)
    if isinstance(e, Var):
        return {e.name: Fraction(1)}, Fraction(0)
    if isinstance(e, Add):
        coeffs: Dict[str, Fraction] = {}
        const = Fraction(0)
        for t in e.terms:
            c, k = affine(t)
            const += k
            for name, f in c.items():
                coeffs[name] = coeffs.get(name, Fraction(0)) + f
        return {n: f for n, f in coeffs.items() if f}, const
    if isinstance(e, Mul):
        lc, lk = affine(e.lhs)
        rc, rk = affine(e.rhs)
        if lc and rc:
            raise NotAffine(f"product of two non-constant forms: {e}")
        if lc:
            return {n: f * rk for n, f in lc.items() if f * rk}, lk * rk
        return {n: f * lk for n, f in rc.items() if f * lk}, rk * lk
    if isinstance(e, (FloorDiv, CeilDiv)):
        dc, dk = affine(e.den)
        if dc or dk == 0:
            raise NotAffine(f"non-constant divisor: {e}")
        nc, nk = affine(e.num)
        return {n: f / dk for n, f in nc.items() if f / dk}, nk / dk
    raise NotAffine(f"not affine: {e}")


def _canon(coeffs: Mapping[str, Fraction]) -> Tuple[Tuple[str, Fraction], ...]:
    return tuple(sorted((n, f) for n, f in coeffs.items() if f))


def _is_integral(coeffs: Mapping[str, Fraction], const: Fraction) -> bool:
    return const.denominator == 1 and all(
        f.denominator == 1 for f in coeffs.values())


def _contains_rounding(e: Expr) -> bool:
    """True if ``e`` contains a floor/ceil division by anything but 1."""
    if isinstance(e, (FloorDiv, CeilDiv)):
        try:
            dc, dk = affine(e.den)
        except NotAffine:
            return True
        if dc or dk not in (1, -1):
            return True
        return _contains_rounding(e.num)
    if isinstance(e, Add):
        return any(_contains_rounding(t) for t in e.terms)
    if isinstance(e, Mul):
        return _contains_rounding(e.lhs) or _contains_rounding(e.rhs)
    if isinstance(e, (Mod, MinOf, MaxOf)):
        return True
    return False


def rounded_atom(e: Expr) -> Atom:
    """Canonicalize a bound expression into a single :data:`Atom`.

    Accepts a plain affine form, or an affine form containing exactly
    one ``floord``/``ceild`` with constant divisor plus an *integral*
    affine remainder (integer shifts commute with floor/ceil, so they
    fold inside the rounding).  Raises :class:`NotAffine` otherwise.
    """
    div: Union[FloorDiv, CeilDiv, None] = None
    out_coeffs: Dict[str, Fraction] = {}
    out_const = Fraction(0)
    flat: List[Expr] = [e]
    while flat:
        t = flat.pop()
        if isinstance(t, Add):
            flat.extend(t.terms)
            continue
        if isinstance(t, (FloorDiv, CeilDiv)):
            dc, dk = affine(t.den)
            if dc or dk.denominator != 1 or dk == 0:
                raise NotAffine(f"non-constant divisor: {t}")
            if dk != 1:
                if div is not None:
                    raise NotAffine(f"more than one rounding in {e}")
                div = t
                continue
            t = t.num      # division by one is exact: fall through
        if _contains_rounding(t):
            raise NotAffine(f"rounding nested inside a term: {t}")
        c, k = affine(t)
        out_const += k
        for name, f in c.items():
            out_coeffs[name] = out_coeffs.get(name, Fraction(0)) + f
    if div is None:
        return "exact", _canon(out_coeffs), out_const
    if not _is_integral(out_coeffs, out_const):
        raise NotAffine(f"fractional shift outside rounding in {e}")
    if _contains_rounding(div.num):
        raise NotAffine(f"rounding nested inside a divisor: {div}")
    nc, nk = affine(div.num)
    _, dk = affine(div.den)
    if dk < 0:      # floor(a / -b) == floor(-a / b); never emitted, but
        nc = {n: -f for n, f in nc.items()}
        nk, dk = -nk, -dk
    coeffs = dict(out_coeffs)
    for name, f in nc.items():
        coeffs[name] = coeffs.get(name, Fraction(0)) + f / dk
    const = out_const + nk / dk
    if _is_integral(coeffs, const):
        return "exact", _canon(coeffs), const
    rounding = "floor" if isinstance(div, FloorDiv) else "ceil"
    return rounding, _canon(coeffs), const


def atom_from_affine(coeffs: Mapping[str, Fraction], const: Fraction,
                     rounding: str) -> Atom:
    """Expected-side atom for ``rounding(coeffs . vars + const)``."""
    cd = {n: Fraction(f) for n, f in coeffs.items() if f}
    kk = Fraction(const)
    if _is_integral(cd, kk):
        return "exact", _canon(cd), kk
    return rounding, _canon(cd), kk


def bound_atoms(e: Expr, kind: str) -> Tuple[Atom, ...]:
    """Flatten a ``max(...)``/``min(...)`` bound tree into atoms.

    ``kind='lower'`` accepts ``MaxOf`` combiners, ``'upper'`` accepts
    ``MinOf`` — the §2.1 bound shape.  Returns the sorted atom tuple
    (bounds are a *set*: codegen nesting order is not semantic).
    """
    combiner = MaxOf if kind == "lower" else MinOf
    other = MinOf if kind == "lower" else MaxOf
    leaves: List[Expr] = []
    stack = [e]
    while stack:
        t = stack.pop()
        if isinstance(t, combiner):
            stack.extend(t.args)
        elif isinstance(t, other):
            raise NotAffine(f"{other.__name__} inside a {kind} bound")
        else:
            leaves.append(t)
    return tuple(sorted(rounded_atom(x) for x in leaves))


# -- substitution and interval evaluation ------------------------------------


def substitute(e: Expr, env: Mapping[str, Expr]) -> Expr:
    if isinstance(e, Const):
        return e
    if isinstance(e, Var):
        return env.get(e.name, e)
    if isinstance(e, Add):
        return Add(tuple(substitute(t, env) for t in e.terms))
    if isinstance(e, Mul):
        return Mul(substitute(e.lhs, env), substitute(e.rhs, env))
    if isinstance(e, FloorDiv):
        return FloorDiv(substitute(e.num, env), substitute(e.den, env))
    if isinstance(e, CeilDiv):
        return CeilDiv(substitute(e.num, env), substitute(e.den, env))
    if isinstance(e, Mod):
        return Mod(substitute(e.lhs, env), substitute(e.rhs, env))
    if isinstance(e, MinOf):
        return MinOf(tuple(substitute(t, env) for t in e.args))
    return MaxOf(tuple(substitute(t, env) for t in e.args))


Interval = Tuple[int, int]


def interval(e: Expr, env: Mapping[str, Interval]) -> Interval:
    """Exact interval of ``e`` over the integer box ``env``."""
    if isinstance(e, Const):
        return e.value, e.value
    if isinstance(e, Var):
        try:
            return env[e.name]
        except KeyError:
            raise ReaderError(f"free variable {e.name!r} in subscript") \
                from None
    if isinstance(e, Add):
        lo = hi = 0
        for t in e.terms:
            tl, th = interval(t, env)
            lo, hi = lo + tl, hi + th
        return lo, hi
    if isinstance(e, Mul):
        ll, lh = interval(e.lhs, env)
        rl, rh = interval(e.rhs, env)
        prods = (ll * rl, ll * rh, lh * rl, lh * rh)
        return min(prods), max(prods)
    if isinstance(e, (FloorDiv, CeilDiv)):
        nl, nh = interval(e.num, env)
        dl, dh = interval(e.den, env)
        if dl <= 0 <= dh:
            raise ReaderError(f"divisor interval [{dl}, {dh}] contains 0")
        fn = floord if isinstance(e, FloorDiv) else ceild
        cands = [fn(a, b) for a in (nl, nh) for b in (dl, dh)]
        return min(cands), max(cands)
    if isinstance(e, Mod):
        ll, lh = interval(e.lhs, env)
        rl, rh = interval(e.rhs, env)
        if rl != rh or rl <= 0:
            raise ReaderError(f"modulus interval [{rl}, {rh}] not a "
                              "positive constant")
        k = rl
        if ll // k == lh // k:      # same residue block: exact
            return ll % k, lh % k
        return 0, k - 1
    if isinstance(e, MinOf):
        its = [interval(t, env) for t in e.args]
        return min(i[0] for i in its), min(i[1] for i in its)
    if isinstance(e, MaxOf):
        its = [interval(t, env) for t in e.args]
        return max(i[0] for i in its), max(i[1] for i in its)
    raise ReaderError(f"cannot evaluate {e!r}")
