"""Parsed-program structures the readers produce and the passes check.

One neutral vocabulary for all four emitted artifacts: the C+MPI node
program and the sequential tiled C text (read by
:mod:`repro.analysis.transval.creader`), and their Python twins
(read by :mod:`repro.analysis.transval.pyreader`).  Keeping the model
reader-agnostic means every TV pass is written once and applies to both
surface syntaxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.analysis.transval.loopir import Expr


@dataclass(frozen=True)
class PackLoop:
    """One ``for (jp_k = <lo>; jp_k <= u_kp; jp_k += c_k)`` pack loop."""

    var: str                    # "jp0"
    lower: int                  # the X in ``max(l_kp, X)``; 0 when absent
    upper_var: str              # "u0p"
    step: int
    line: int


@dataclass(frozen=True)
class RecvBlock:
    """One RECEIVE block: guard, MPI_Recv, unpack loops, halo store."""

    d_s: Tuple[int, ...]
    d_m: Tuple[int, ...]
    src: Tuple[int, ...]        # vector inside rank_of_pid_minus
    tag: str
    loops: Tuple[PackLoop, ...]
    store_args: Tuple[Expr, ...]    # MAP argument expressions
    shift: Tuple[int, ...]          # evaluated halo shift per dimension
    line: int


@dataclass(frozen=True)
class SendBlock:
    """One SEND block: pack loops, packed MAP args, MPI_Send."""

    d_m: Tuple[int, ...]
    dst: Tuple[int, ...]
    tag: str
    loops: Tuple[PackLoop, ...]
    pack_args: Tuple[Expr, ...]
    line: int


@dataclass(frozen=True)
class InnerLoop:
    """One TTIS loop level: phase, start, extent, stride, x-recovery."""

    k: int
    phase: Expr                 # RHS of ``ph_k = ...``
    start: Expr                 # loop init expression
    limit: int                  # exclusive upper bound (``jp_k < limit``)
    step: int
    xdef: Expr                  # RHS of ``x_k = ...``
    lo_def: Optional[Expr]      # RHS of ``lo_k = ...`` (sequential C only)
    line: int


@dataclass(frozen=True)
class ReadRef:
    """One read in a statement body.

    For the MPI text, ``array``/``args`` are set for LDS reads
    (``LA_A[MAP(...)]``) and ``array is None`` for pure-input reads the
    emitter renders in original coordinates.  For sequential artifacts,
    ``args`` holds one affine expression per array dimension.
    """

    array: Optional[str]
    args: Tuple[Expr, ...]
    raw: str


@dataclass(frozen=True)
class BodyStmt:
    """One emitted assignment ``write = F_<arr>(reads...)``."""

    array: str
    write_args: Tuple[Expr, ...]
    reads: Tuple[ReadRef, ...]
    line: int


@dataclass(frozen=True)
class ParsedMpi:
    """The §3 SPMD node program, read back from the emitted C text."""

    name: str
    header: Mapping[str, str]           # comment block key -> raw value
    offsets: Tuple[int, ...]            # #define OFFk
    lds_rows: Tuple[Tuple[int, bool], ...]  # per dim (rows, is_mapping)
    map_params: Tuple[str, ...]
    map_indices: Tuple[Expr, ...]
    recv_blocks: Tuple[RecvBlock, ...]
    send_blocks: Tuple[SendBlock, ...]
    pid_dim: int                        # int pid[<pid_dim>]
    ts_index: int                       # m in ``for (tS = lS<m>; ...)``
    inner_loops: Tuple[InnerLoop, ...]
    body: Tuple[BodyStmt, ...]


@dataclass(frozen=True)
class SeqLoop:
    """One outer tile loop with Fourier-Motzkin bounds."""

    k: int
    lower: Expr
    upper: Expr
    line: int


@dataclass(frozen=True)
class ParsedSequential:
    """The §2.3 sequential tiled loop (C text or Python twin)."""

    name: str
    header_volume: Optional[int]
    header_strides: Optional[Tuple[int, ...]]
    outer: Tuple[SeqLoop, ...]
    origins: Tuple[Expr, ...]           # RHS of ``o_i = ...``
    inner_loops: Tuple[InnerLoop, ...]
    jdefs: Tuple[Expr, ...]             # RHS of ``j_i = ...``
    guards: Tuple[Tuple[Expr, int], ...]    # (lhs, rhs) of ``lhs <= rhs``
    body: Tuple[BodyStmt, ...]


@dataclass(frozen=True)
class ParsedSchedule:
    """The pygen module: rank tables plus per-rank event schedules."""

    num_ranks: int
    pid_of_rank: Mapping[int, Tuple[int, ...]]
    schedules: Mapping[int, Tuple[Tuple[object, ...], ...]]
