"""Translation validation of emitted code against the symbolic pipeline.

The generators in :mod:`repro.codegen` burn the compilation result
(loop bounds, strides, halo offsets, communication constants) into
program text.  This package parses that text *back* into a small loop
model and statically proves it consistent with the
:class:`~repro.runtime.executor.TiledProgram` it was generated from:

* :mod:`~repro.analysis.transval.loopir` — expression IR, rounded-affine
  atoms, exact interval evaluation;
* :mod:`~repro.analysis.transval.model` — neutral parsed-program
  structures;
* :mod:`~repro.analysis.transval.creader` /
  :mod:`~repro.analysis.transval.pyreader` — readers for the C and
  Python artifacts;
* :mod:`~repro.analysis.transval.passes` — the TV01-TV04 checks;
* :mod:`~repro.analysis.transval.kernels` — TV05, the native
  kernel translation unit against the symbolic ``KExpr`` trees;
* :mod:`~repro.analysis.transval.validate` — orchestration
  (:func:`transval_report`, the ``--transval`` CLI mode, and the
  ``generate_mpi_code(..., validate=True)`` guard).
"""

from __future__ import annotations

from repro.analysis.transval.kernels import (
    PASS_KERNELS,
    check_native_tu,
)
from repro.analysis.transval.passes import (
    PASS_CONSTANTS,
    PASS_DEPENDENCES,
    PASS_LOOPS,
    PASS_SUBSCRIPTS,
    TRANSVAL_PASSES,
    check_declared_dependences,
    check_mpi_text,
    check_pygen_source,
    check_pyseq_source,
    check_sequential_text,
)
from repro.analysis.transval.validate import (
    transval_report,
    validate_mpi_text,
)

__all__ = [
    "PASS_LOOPS", "PASS_SUBSCRIPTS", "PASS_CONSTANTS", "PASS_DEPENDENCES",
    "PASS_KERNELS",
    "TRANSVAL_PASSES", "check_mpi_text", "check_sequential_text",
    "check_pyseq_source", "check_pygen_source", "check_declared_dependences",
    "check_native_tu",
    "transval_report", "validate_mpi_text",
]
