"""(De)serialization of compile-time certificates.

The happens-before certifier (:mod:`repro.analysis.hb`) and the static
cost certifier (:mod:`repro.analysis.cost`) both cache their proof
objects on the :class:`~repro.runtime.executor.TiledProgram` they
certify.  The artifact layer (:mod:`repro.artifacts`) persists those
caches alongside the program geometry so a cache hit ships *proved*
schedules: transval/verify/certification run once at artifact-creation
time and never again for the same content key.

Certificates are pure-data dataclass trees (diagnostics, event graphs,
vector clocks, edge volumes) over builtins and numpy arrays, so a
pickle envelope is faithful; the envelope carries its own version gate
independent of the artifact format's, because certificate *shapes* can
evolve without the geometry schema moving.  A version mismatch load
returns no certificates (callers fall back to lazy re-certification) —
never an error, and never a silently wrong proof object.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import TiledProgram

#: Bump whenever HBCertificate / CostCertificate (or anything they
#: transitively contain) changes shape.
CERT_STATE_VERSION = 1


def dump_certificates(program: "TiledProgram") -> bytes:
    """Snapshot every certificate cached on ``program``.

    The snapshot is keyed exactly like the program's own caches
    (protocol, overlap, mailbox depth, spec), so restoring reproduces
    the same memoization the certifiers would have built lazily.
    """
    envelope: Dict[str, Any] = {
        "version": CERT_STATE_VERSION,
        "hb": dict(program._hb_cache),
        "cost": dict(program._cost_cache),
    }
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


def load_certificates(program: "TiledProgram", blob: bytes
                      ) -> Tuple[int, int]:
    """Seed ``program``'s certificate caches from a snapshot.

    Returns ``(hb_count, cost_count)`` — the number of certificates
    restored.  A snapshot from a different :data:`CERT_STATE_VERSION`
    (or an undecodable blob) restores nothing: the caches stay empty
    and the certifiers recompute lazily on first use.
    """
    try:
        envelope = pickle.loads(blob)
    except Exception:
        return (0, 0)
    if not isinstance(envelope, dict):
        return (0, 0)
    if envelope.get("version") != CERT_STATE_VERSION:
        return (0, 0)
    hb = envelope.get("hb") or {}
    cost = envelope.get("cost") or {}
    program._hb_cache.update(hb)
    program._cost_cache.update(cost)
    return (len(hb), len(cost))
