"""Structured diagnostics shared by every static-analysis pass.

A :class:`Diagnostic` is one verifiable finding: a stable machine code
(asserted by the golden tests), a severity, a human message, the paper
equation the violated invariant comes from, a structured ``subject``
locating the violation (tile, dependence, rank, cell, ...), and a
suggested fix.  Passes append diagnostics to an
:class:`AnalysisReport`, which renders either as human-readable text or
as JSON for tooling (the ``repro analyze`` CLI emits both).

Diagnostic codes are part of the public contract:

========  =======================================================
``LEG01``  illegal tiling — a row of ``H`` has negative inner
           product with a dependence (``H D >= 0``, §2.2)
``LEG02``  tile too small — a transformed dependence reaches
           further than one tile (``max_l d'_kl <= v_kk``, §3.2)
``RACE01`` cross-processor tile dependence not covered by the
           communication spec (no ``D^m``/``D^S`` entry or send)
``RACE02`` crossing iteration outside the pack region of its
           message (``j'_k >= cc_k`` fails, §3.2)
``RACE03`` schedule-order violation — a tile dependence is not
           strictly positive under ``Pi = [1,...,1]``
``RACE04`` two writers touch the same LDS cell unordered
           (unpack/unpack or unpack/compute overlap)
``DL01``   unmatched receive — a rank blocks forever on a
           ``(src, tag)`` channel nobody sends on
``DL02``   unmatched send — a message no receive ever consumes
``DL03``   cyclic wait — ranks block on each other in a cycle
``DL04``   FIFO size mismatch — the k-th send on a channel
           carries a different element count than the k-th recv
           expects
``HALO01`` compute/read address escapes the allocated LDS
           rectangle (``map``/``loc``, Tables 1-2)
``HALO02`` halo unpack slot escapes the LDS rectangle
           (``map(j',t) - d^S_k v_kk / c_k``, RECEIVE)
``HALO03`` ``map``/``map⁻¹`` round trip fails on a lattice point
``HALO04`` halo aliasing broken — a received value is unpacked
           into a different cell than the consumer's read
           resolves to
``TV01``   emitted loop structure diverges from the symbolic
           pipeline — bounds, strides, phase offsets or guard
           constraints do not match FM/HNF (or the text failed
           to parse back at all)
``TV02``   an emitted array subscript can escape its allocated
           LDS/array box under exact interval evaluation
           (including halo ``off_k`` slack)
``TV03``   a burned-in constant (``V``, ``CC``, ``D^S``,
           ``D^m``, offsets, tags, pid mapping, schedule) does
           not equal the ``TiledProgram`` value
``TV04``   declared dependence matrix inconsistent with the
           dependences derived from the statement bodies
``TV05``   native kernel translation unit diverges from the
           symbolic statements — an independently parsed
           ``F_<array>`` expression tree, constant bit pattern,
           read-slot wiring or write target does not match the
           ``KExpr``/dependence structure the ``.so`` must encode
``OV01``   overlap pack schedule does not reproduce the blocking
           payload bytes (positions/points vs lex-ordered region)
``OV02``   overlap commit level wrong — a send would publish
           before its last contributing wavefront level
``OV03``   overlap split is not a within-level partition, or a
           lazy unpack defers past the halo's first reader
``HB01``   happens-before race — a halo write/read pair is not
           ordered by the vector clocks of the certified parallel
           schedule (``vc(read)[rank(write)] >= tick(write)``)
``HB02``   happens-before deadlock — the edge-wait graph of the
           parallel schedule has a cycle (or stuck ranks) under
           the analyzed protocol/overlap configuration
``HB03``   ring protocol violation — the SPSC mailbox model
           breaks publication-before-consumption, slot reuse, or
           wraparound safety in some interleaving
``HB04``   trace nonconformance — a measured event is out of the
           certified happens-before order (``repro sanitize``)
``COST01`` closed-form per-edge communication volume disagrees
           with the frozen plan replay (strides, ``cc`` or the
           ``D^m`` enumeration are miscounted)
``COST02`` informational — per-rank computation volumes and the
           distribution's load-imbalance ratio
``COST03`` analytic makespan undefined or inconsistent — the
           critical-path sweep deadlocks under the analyzed
           protocol, or its compute accounting fails to
           reproduce the closed-form rank volumes
``COST04`` tile shape exceeds the Dinh & Demmel communication
           lower bound by more than the configured factor
           (warning), or the bound's AM-GM self-check fails
           (error)
========  =======================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Severity levels, ordered from worst to mildest.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    code: str                       # stable machine code, e.g. "RACE01"
    severity: str                   # ERROR / WARNING / INFO
    pass_name: str                  # "legality" / "races" / "deadlock" / "bounds"
    message: str                    # human-readable, one line preferred
    equation: str = ""              # paper invariant, e.g. "H D >= 0 (§2.2)"
    subject: Tuple[Tuple[str, Any], ...] = ()   # ordered structured locus
    suggestion: str = ""            # actionable fix, may be empty

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def subject_dict(self) -> Dict[str, Any]:
        return {k: v for k, v in self.subject}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "pass": self.pass_name,
            "message": self.message,
            "equation": self.equation,
            "subject": {k: _jsonable(v) for k, v in self.subject},
            "suggestion": self.suggestion,
        }

    def render(self) -> str:
        """One-diagnostic text rendering, compiler style."""
        parts = [f"{self.severity}[{self.code}] {self.pass_name}: "
                 f"{self.message}"]
        if self.subject:
            loc = ", ".join(f"{k}={v}" for k, v in self.subject)
            parts.append(f"    at {loc}")
        if self.equation:
            parts.append(f"    invariant: {self.equation}")
        if self.suggestion:
            parts.append(f"    fix: {self.suggestion}")
        return "\n".join(parts)


def _jsonable(value: Any) -> Any:
    """Coerce subjects (tuples of ints, numpy scalars) to JSON types."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item"):     # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class AnalysisReport:
    """Accumulated findings of a verifier run over one program."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    passes_run: List[str] = field(default_factory=list)

    # -- building -----------------------------------------------------------------

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def mark_pass(self, name: str) -> None:
        if name not in self.passes_run:
            self.passes_run.append(name)

    # -- queries ------------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error* diagnostics were found."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- renderers ----------------------------------------------------------------

    def render_text(self) -> str:
        lines: List[str] = []
        subject = self.meta.get("subject")
        head = f"analysis of {subject}" if subject else "analysis"
        lines.append(head)
        if self.passes_run:
            lines.append(f"passes: {', '.join(self.passes_run)}")
        if not self.diagnostics:
            lines.append("clean: no diagnostics")
        for d in self.diagnostics:
            lines.append(d.render())
        ne, nw = len(self.errors), len(self.warnings)
        lines.append(f"{ne} error(s), {nw} warning(s), "
                     f"{len(self.diagnostics) - ne - nw} note(s)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": {k: _jsonable(v) for k, v in self.meta.items()},
            "passes": list(self.passes_run),
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "total": len(self.diagnostics),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
