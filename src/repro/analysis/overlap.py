"""Overlap-plan verification pass (OV01-OV03).

The overlapped runtime schedule (``run_parallel(..., overlap=True)``)
leans entirely on the compile-time :class:`~repro.runtime.dense.
TileOverlapPlan`: the boundary/interior split must partition every
wavefront level, each zero-copy pack schedule must reproduce the
blocking engine's payload bytes, and every message must be complete at
its commit level.  This pass recomputes those invariants from the
program's own region masks and level batches — independently of the
plan builder — so a bug in ``build_overlap_split`` surfaces as a
compile-time diagnostic instead of a corrupted halo at runtime.

The pass is *opt-in* (``analyze_program(..., overlap=True)`` or
``repro analyze --overlap``): it touches every tile's plan, which the
default construction-time guard must not pay for.

========  =======================================================
``OV01``   pack schedule does not reproduce the blocking payload
           (count, block positions, or per-level lattice points
           disagree with the pack region in lex order)
``OV02``   a message's commit level is wrong — some region point
           becomes final only after the level that publishes it
``OV03``   boundary/interior do not partition a wavefront level,
           or a lazy-unpack level defers past the halo's first
           reader
========  =======================================================
"""

from __future__ import annotations

from typing import Any, List, Set, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic

PASS_OVERLAP = "overlap"


def _diag(code: str, message: str, equation: str,
          subject: Tuple[Tuple[str, Any], ...],
          suggestion: str) -> Diagnostic:
    return Diagnostic(code=code, severity=ERROR, pass_name=PASS_OVERLAP,
                      message=message, equation=equation,
                      subject=subject, suggestion=suggestion)


def check_overlap(program: Any) -> List[Diagnostic]:
    """OV01/OV02/OV03 findings over every tile's overlap plan."""
    diags: List[Diagnostic] = []
    lex_order = program.dense_lex_order()
    max_dp = program.comm.max_dp
    lat = program.tiling.ttis.lattice_points_np()
    seen: Set[int] = set()
    for pid in program.pids:
        for tile in program.dist.tiles_of(pid):
            plan = program.overlap_plan(tile)
            if id(plan) in seen:        # full tiles share one plan
                continue
            seen.add(id(plan))
            diags.extend(_check_tile(program, tile, plan, lat,
                                     lex_order, max_dp))
    return diags


def _check_tile(program: Any, tile: Tuple[int, ...], plan: Any,
                lat: np.ndarray, lex_order: np.ndarray,
                max_dp: Any) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    batches = program.dense_level_batches(tile)
    nlev = len(batches)
    level_of = np.full(len(lat), -1, dtype=np.int64)
    for li, b in enumerate(batches):
        level_of[b] = li
    sends, recvs = program.overlap_directions(tile)
    # OV01: the zero-copy pack schedule must reproduce the payload the
    # blocking engine builds with one gather in lex-region order.
    for direction, pack in zip(sends, plan.packs):
        region = program.region_mask(tile, direction)
        ridx = lex_order[region[lex_order]]
        ok = (pack.count == len(ridx)
              and len(pack.level_pos) == nlev
              and len(pack.level_lat) == nlev)
        if ok:
            allpos = (np.concatenate(pack.level_pos)
                      if nlev else np.empty(0, dtype=np.int64))
            ok = (len(allpos) == len(ridx)
                  and np.array_equal(np.sort(allpos),
                                     np.arange(len(ridx))))
        if ok:
            for li in range(nlev):
                if not np.array_equal(ridx[pack.level_pos[li]],
                                      pack.level_lat[li]):
                    ok = False
                    break
        if not ok:
            diags.append(_diag(
                "OV01",
                f"zero-copy pack schedule for direction {direction} "
                f"at tile {tile} does not reproduce the blocking "
                f"payload (region has {len(ridx)} points, plan covers "
                f"{pack.count})",
                "payload = concat_a(local[a][region in lex order]) "
                "(§3.2 pack regions)",
                (("tile", tile), ("direction", direction)),
                "rebuild the overlap plan; the pack positions must "
                "be a permutation of the lex-ordered region"))
    # OV02: a message publishes at commit_level; every region value
    # must be final (computed) at some level <= commit_level.
    for direction, pack in zip(sends, plan.packs):
        region = program.region_mask(tile, direction)
        ridx = lex_order[region[lex_order]]
        lv = level_of[ridx]
        want = int(lv.max()) if len(ridx) else -1
        if pack.commit_level != want or (len(lv) and lv.min() < 0):
            diags.append(_diag(
                "OV02",
                f"commit level {pack.commit_level} for direction "
                f"{direction} at tile {tile} != last contributing "
                f"wavefront level {want}: the send would publish "
                f"stale values",
                "commit after the last level L with region ∩ "
                "batch[L] != ∅ (boundary values final before send)",
                (("tile", tile), ("direction", direction),
                 ("commit_level", pack.commit_level),
                 ("expected", want)),
                "set commit_level to the max wavefront level "
                "intersecting the pack region"))
    # OV03a: boundary/interior must exactly partition each level.
    if plan.nlevels != nlev:
        diags.append(_diag(
            "OV03",
            f"overlap plan at tile {tile} has {plan.nlevels} levels, "
            f"schedule has {nlev}",
            "boundary[L] ⊎ interior[L] = batch[L] (within-level "
            "reorder only)",
            (("tile", tile),),
            "rebuild the overlap plan from the tile's level batches"))
    else:
        for li, b in enumerate(batches):
            merged = np.sort(np.concatenate(
                [plan.boundary[li], plan.interior[li]]))
            if not np.array_equal(merged, np.sort(b)):
                diags.append(_diag(
                    "OV03",
                    f"level {li} of tile {tile}: boundary ∪ interior "
                    f"!= level batch ({len(merged)} vs {len(b)} "
                    f"points)",
                    "boundary[L] ⊎ interior[L] = batch[L] "
                    "(within-level reorder only)",
                    (("tile", tile), ("level", li)),
                    "the split may only reorder within a wavefront "
                    "level"))
    # OV03b: lazy unpack must not defer past the halo's first reader.
    for i, ds in enumerate(recvs):
        readers = level_of >= 0
        for k, dk in enumerate(ds):
            if dk > 0:
                readers &= lat[:, k] < max(int(max_dp[k]), 0)
        lv = level_of[readers]
        first = int(lv.min()) if len(lv) else 0
        if i < len(plan.recv_need) and plan.recv_need[i] > first:
            diags.append(_diag(
                "OV03",
                f"receive {i} (d^S = {ds}) at tile {tile} deferred to "
                f"level {plan.recv_need[i]} but its halo is first "
                f"read at level {first}",
                "unpack before the first level with a point in the "
                "dependence reach of every crossed boundary",
                (("tile", tile), ("ds", ds),
                 ("deferred_to", plan.recv_need[i]),
                 ("first_reader", first)),
                "lower recv_need to the first reading level"))
    return diags
