"""Halo/bounds sanitizer: every LDS address stays in the rectangle.

Symbolically walks the TTIS lattice and proves that every address the
generated node program can form — computation writes ``map(j', t)``,
intra/inter-tile reads ``map(j' - d', t)``, and halo unpack slots
``map(j', t) - d^S_k v_kk / c_k`` — lands inside the allocated LDS
box ``shape_k = off_k + |t| v_kk / c_k`` (mapping dim) or
``off_k + v_kk / c_k`` (others), where ``off_k = ceil(max_l d'_kl /
c_k)`` and ``off_m = v_mm / c_m`` (paper §3.1-3.2, Figure 3).

Checks are vectorized over the full lattice (the geometric worst case;
boundary tiles touch subsets) at the extreme chain steps ``t = 0`` and
``t = |t| - 1`` — the address maps are monotone in ``t`` so the
extremes bound every step.  Additionally:

* ``HALO03`` — ``map``/``map⁻¹`` must round-trip on lattice points
  (exercises the HNF-coefficient phase reconstruction of Table 2);
* ``HALO04`` — halo aliasing: the slot where a received value is
  unpacked must be exactly the cell the consumer's read resolves to,
  for every receive-side tile dependence that could carry it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.races import _occupied_keys
from repro.distribution.data import LocalDataSpace

PASS = "bounds"
_EQ_OFF = "off_k = ceil(max_l d'_kl / c_k) for k != m, " \
    "off_m = v_mm / c_m (§3.2)"


def _map_cells(points: np.ndarray, t: int, c: np.ndarray, v: np.ndarray,
               off: np.ndarray, m: int) -> np.ndarray:
    """Vectorized mirror of :meth:`LocalDataSpace.map`."""
    cells = points // c + off
    cells[:, m] = (t * v[m] + points[:, m]) // c[m] + off[m]
    return cells


def _bounds_violations(cells: np.ndarray, shape: np.ndarray) -> np.ndarray:
    return np.any((cells < 0) | (cells >= shape), axis=1)


def _cells_in_box(pmin: np.ndarray, pmax: np.ndarray, t: int,
                  c: np.ndarray, v: np.ndarray, off: np.ndarray, m: int,
                  shape: np.ndarray, shift: np.ndarray) -> bool:
    """Exact O(n) containment check for a whole point set.

    Each cell coordinate ``map(p, t)_k`` depends only on ``p_k`` and is
    monotone in it (floor division by a positive stride), so the per-dim
    extremes of the mapped set are the images of the per-dim extremes of
    the points.  ``shift`` is subtracted from the cells (the halo-slot
    displacement; zero for plain writes/reads).
    """
    lo = _map_cells(pmin[None, :], t, c, v, off, m)[0] - shift
    hi = _map_cells(pmax[None, :], t, c, v, off, m)[0] - shift
    return bool(np.all(lo >= 0) and np.all(hi < shape))


def check_bounds(program, roundtrip_sample: int = 128) -> List[Diagnostic]:
    """All bounds findings for one compiled program."""
    comm, dist = program.comm, program.dist
    ttis = program.tiling.ttis
    n = program.n
    m = dist.m
    lat = ttis.lattice_points_np()
    c = np.array(ttis.c, dtype=np.int64)
    v = np.array(ttis.v, dtype=np.int64)
    rows = np.array(ttis.rows_per_dim, dtype=np.int64)
    off = np.array(comm.offsets, dtype=np.int64)
    deps = tuple(tuple(int(x) for x in d)
                 for d in program.nest.dependences)
    d_prime = sorted(set(ttis.transformed_dependences(deps)))
    cross = [ds for ds in comm.d_s if not comm.is_intra_processor(ds)]
    diags: List[Diagnostic] = []

    # Per-direction pack-region selections are t/length independent.
    region_pts = []
    for ds in cross:
        lbs = comm.pack_lower_bounds(ds)
        mask = np.ones(len(lat), dtype=bool)
        for k in range(n):
            if lbs[k] > 0:
                mask &= lat[:, k] >= lbs[k]
        if mask.any():
            region = lat[mask]
            region_pts.append((ds, region,
                               region.min(axis=0), region.max(axis=0)))

    lat_min = lat.min(axis=0)
    lat_max = lat.max(axis=0)
    zero = np.zeros(n, dtype=np.int64)

    # The address maps are monotone in t and the LDS box in the chain
    # length, so the extreme lengths bound every processor's chain.
    # Containment is decided from per-dim extremes (O(n) per case);
    # the full lattice is only rescanned to name an offending point.
    all_lengths = {dist.chain_length(pid) for pid in dist.processors}
    lengths = sorted({min(all_lengths), max(all_lengths)})
    for num_tiles in lengths:
        shape = off + rows
        shape = shape.copy()
        shape[m] = off[m] + num_tiles * rows[m]
        steps = sorted({0, num_tiles - 1})
        for t in steps:
            # computation writes
            if not _cells_in_box(lat_min, lat_max, t, c, v, off, m,
                                 shape, zero):
                cells = _map_cells(lat, t, c, v, off, m)
                bad = _bounds_violations(cells, shape)
                i = int(np.nonzero(bad)[0][0])
                diags.append(_escape(
                    "HALO01", "computation write",
                    tuple(int(x) for x in lat[i]),
                    tuple(int(x) for x in cells[i]),
                    tuple(int(x) for x in shape), t, num_tiles))
            # reads through each transformed dependence
            for dp in d_prime:
                dp_arr = np.array(dp, dtype=np.int64)
                if _cells_in_box(lat_min - dp_arr, lat_max - dp_arr, t,
                                 c, v, off, m, shape, zero):
                    continue
                src = lat - dp_arr
                cells = _map_cells(src, t, c, v, off, m)
                bad = _bounds_violations(cells, shape)
                i = int(np.nonzero(bad)[0][0])
                diags.append(_escape(
                    "HALO01", f"read through d'={dp}",
                    tuple(int(x) for x in lat[i]),
                    tuple(int(x) for x in cells[i]),
                    tuple(int(x) for x in shape), t, num_tiles))
                break       # one example per step is enough
            # halo unpack slots per crossing tile dependence
            for ds, region, rmin, rmax in region_pts:
                shift = np.array(ds, dtype=np.int64) * rows
                if _cells_in_box(rmin, rmax, t, c, v, off, m,
                                 shape, shift):
                    continue
                slots = _map_cells(region, t, c, v, off, m) - shift
                bad = _bounds_violations(slots, shape)
                if bad.any():
                    i = int(np.nonzero(bad)[0][0])
                    diags.append(Diagnostic(
                        code="HALO02", severity=ERROR, pass_name=PASS,
                        message=f"halo unpack slot "
                                f"{tuple(int(x) for x in slots[i])} for "
                                f"TTIS point "
                                f"{tuple(int(x) for x in region[i])} "
                                f"across d^S={tuple(ds)} at step {t} "
                                f"escapes the LDS box "
                                f"{tuple(int(x) for x in shape)}",
                        equation="slot = map(j', t) - d^S_k v_kk / c_k "
                                 "(RECEIVE); " + _EQ_OFF,
                        subject=(("ds", tuple(ds)), ("step", t),
                                 ("point", tuple(int(x) for x in region[i])),
                                 ("cell", tuple(int(x) for x in slots[i])),
                                 ("shape", tuple(int(x) for x in shape))),
                        suggestion="halo offsets too small for this "
                                   "dependence; recompute off_k",
                    ))
                    break
        if diags:
            break       # geometry is broken; deeper checks would repeat

    # map/map_inv round trip on an actual LocalDataSpace instance.
    diags += _check_roundtrip(program, lat, roundtrip_sample)
    # halo aliasing identity (geometry only, chain-length independent).
    diags += _check_halo_alias(program, lat, c, v, rows, off)
    return diags


def _escape(code: str, what: str, point, cell, shape, t: int,
            num_tiles: int) -> Diagnostic:
    return Diagnostic(
        code=code, severity=ERROR, pass_name=PASS,
        message=f"{what} at TTIS point {point}, chain step {t} "
                f"(chain length {num_tiles}) addresses LDS cell {cell} "
                f"outside the allocated box {shape}",
        equation=_EQ_OFF,
        subject=(("point", point), ("cell", cell), ("step", t),
                 ("shape", shape)),
        suggestion="LDS allocation and halo offsets disagree with the "
                   "address map; recompute off_k and the LDS shape",
    )


def _check_roundtrip(program, lat: np.ndarray,
                     sample: int) -> List[Diagnostic]:
    comm, dist = program.comm, program.dist
    num = max(dist.chain_length(pid) for pid in dist.processors)
    lds = LocalDataSpace(comm, num)
    stride = max(1, len(lat) // max(1, sample))
    diags: List[Diagnostic] = []
    for t in sorted({0, num - 1}):
        for i in range(0, len(lat), stride):
            j_prime = tuple(int(x) for x in lat[i])
            cell = lds.map(j_prime, t)
            try:
                back, t_back = lds.map_inv(cell)
            except ValueError as exc:
                diags.append(Diagnostic(
                    code="HALO03", severity=ERROR, pass_name=PASS,
                    message=f"map_inv(map({j_prime}, {t})) failed: {exc}",
                    equation="Table 2: loc⁻¹ reconstructs the stride "
                             "phase from the HNF coefficients",
                    subject=(("point", j_prime), ("step", t),
                             ("cell", cell)),
                    suggestion="HNF phase reconstruction out of sync "
                               "with map",
                ))
                break
            if back != j_prime or t_back != t:
                diags.append(Diagnostic(
                    code="HALO03", severity=ERROR, pass_name=PASS,
                    message=f"map/map⁻¹ round trip broken: ({j_prime}, "
                            f"{t}) -> cell {cell} -> ({back}, {t_back})",
                    equation="Table 2: loc⁻¹ ∘ loc = id on computation "
                             "cells",
                    subject=(("point", j_prime), ("step", t),
                             ("cell", cell)),
                    suggestion="map and map_inv disagree; check strides "
                               "c_k and offsets",
                ))
                break
    return diags


def _check_halo_alias(program, lat: np.ndarray, c: np.ndarray,
                      v: np.ndarray, rows: np.ndarray,
                      off: np.ndarray) -> List[Diagnostic]:
    """HALO04: unpack slots alias exactly the consumer's read cells.

    For a read at TTIS point ``j''`` through transformed dependence
    ``d'`` whose source falls in tile displacement ``-d^S`` (producer
    side ``d^S >= 0``), the consumer resolves ``map(j'' - d', t)``.
    The value arrived in the message from the producer tile and was
    unpacked — at the first valid successor, across some ``d^S_0`` with
    the same projection ``d^m`` — at slot ``map(j'_src, t_first) -
    d^S_0 v/c`` with ``j'_src = j'' - d' + V d^S`` and ``t_first =
    t - d^S_m + d^S_0m``.  These must coincide for every candidate
    ``d^S_0``, otherwise received data is read from the wrong cell.
    """
    comm, dist = program.comm, program.dist
    ttis = program.tiling.ttis
    n = program.n
    m = dist.m
    deps = tuple(tuple(int(x) for x in d)
                 for d in program.nest.dependences)
    d_prime = ttis.transformed_dependences(deps)
    t0 = 2      # generous interior step; t_first stays >= 0
    diags: List[Diagnostic] = []
    lat_min = lat.min(axis=0)
    lat_max = lat.max(axis=0)
    # int32 for the displacement classification: coordinates are tiny
    # and the floor divisions dominate; see check_point_coverage.
    lat32 = lat.astype(np.int32)
    v32 = v.astype(np.int32)
    for d, dp in zip(deps, d_prime):
        dp_arr = np.array(dp, dtype=np.int64)
        # O(1) displacement range from per-dim lattice extremes.
        if np.min((lat_min - dp_arr) // v) < -4 or \
                np.max((lat_max - dp_arr) // v) > 4:
            continue                # LEG02 territory, reported there
        src = lat - dp_arr
        # -d^S per point (consumer view), grouped by displacement class
        # in one vectorized pass.
        disp = (lat32 - dp_arr.astype(np.int32)) // v32
        mult = 9 ** np.arange(n - 1, -1, -1, dtype=np.int32)
        keys = (disp + 4) @ mult
        zero_key = int(sum(4 * 9 ** k for k in range(n)))
        for key in _occupied_keys(keys, n):
            if int(key) == zero_key:
                continue
            rem, t_row = int(key), []
            for _ in range(n):
                t_row.append(rem % 9 - 4)
                rem //= 9
            t_row = tuple(reversed(t_row))
            ds = tuple(-x for x in t_row)     # producer-side displacement
            dm = comm.project(ds)
            if not any(dm):
                continue
            candidates = comm.ds_of_dm(dm)
            if ds not in candidates:
                continue            # RACE01 territory, reported there
            sel = np.nonzero(keys == key)[0]
            read_cells = _map_cells(src[sel], t0, c, v, off, m)
            j_src = src[sel] + np.array(ds, dtype=np.int64) * v
            for ds0 in candidates:
                t_first = t0 - ds[m] + ds0[m]
                slots = _map_cells(j_src, t_first, c, v, off, m) \
                    - np.array(ds0, dtype=np.int64) * rows
                mismatch = np.any(read_cells != slots, axis=1)
                if mismatch.any():
                    i = int(np.nonzero(mismatch)[0][0])
                    diags.append(Diagnostic(
                        code="HALO04", severity=ERROR, pass_name=PASS,
                        message=f"halo aliasing broken for dependence "
                                f"{d} across d^S={ds} (unpacked via "
                                f"d^S_0={tuple(ds0)}): read resolves to "
                                f"{tuple(int(x) for x in read_cells[i])} "
                                f"but the value was unpacked at "
                                f"{tuple(int(x) for x in slots[i])}",
                        equation="map(j''-d', t) = map(j''-d'+V d^S, "
                                 "t-d^S_m+d^S_0m) - d^S_0 v/c "
                                 "(RECEIVE aliasing)",
                        subject=(("dep", d), ("ds", ds),
                                 ("ds0", tuple(ds0)),
                                 ("point", tuple(int(x)
                                                 for x in lat[sel][i]))),
                        suggestion="halo_slot shift and the read address "
                                   "map diverged; check v_kk / c_k "
                                   "condensation",
                    ))
                    break
    return diags
