"""Happens-before certification of the parallel runtime's schedule.

Layer 1 of the HB certifier (``repro analyze --hb``): build the
happens-before graph of a :class:`TiledProgram`'s multiprocess
execution *symbolically* and prove two theorems about it:

* **HB01 (race freedom)** — every cross-processor tile dependence
  ``d^S`` is happens-before ordered: the event that finalizes the
  packed halo values (the producing tile's compute in the blocking
  schedule; the committing send in the overlapped schedule) precedes
  the consuming tile's compute in the vector-clock order.  The proof
  is the Fidge-Mattern condition ``vc(read)[rank(write)] >=
  tick(write)`` over the certified partial order.
* **HB02 (deadlock freedom)** — the edge-wait graph is acyclic: an
  operational abstract machine executes the per-rank event sequences
  against bounded SPSC rings (the exact per-edge depths
  ``build_edges`` allocates) and either completes or reports the wait
  cycle — SOR's forced-rendezvous deadlock becomes an explicit
  ``rank a -> rank b -> rank a`` diagnostic instead of a runtime
  timeout.

The event model mirrors :func:`repro.runtime.parallel._rank_generator`
op for op:

* per-rank program order follows the tile chain; each tile contributes
  its receives, one compute event, its sends, and (protocol
  permitting) rendezvous completion waits;
* the overlapped schedule replicates the runtime's placement: receives
  sit at their first reading wavefront level (with the per-edge FIFO
  suffix-min floor), sends commit in plan order gated by their last
  contributing level, rendezvous waits move to the tile end, and a
  rank blocked on a full ring may *drain* arrived-but-deferred
  same-tile halos — exactly ``drain_ready``;
* cross-rank ``msg`` edges pair the k-th send with the k-th receive of
  each ``(src, dst, tag)`` channel (rings are FIFO).

Vector clocks propagate over program order plus ``msg`` edges only.
Backpressure and rendezvous waits constrain *when* a rank may proceed
(the HB02 machine models them) but are not certified orderings — the
simulator's eager protocol has unbounded buffering, and the overlapped
runtime may execute a deferred receive earlier than its static slot
(drains / tile-start eager unpacks), so only edges *into* receives and
orderings between compute/send events are sound to certify.  Receives
have no cross-rank out-edges in this graph, which is exactly why the
propagation stays sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.runtime.machine import FAST_ETHERNET_CLUSTER, ClusterSpec
from repro.runtime.parallel import build_edges, build_rank_plans

if TYPE_CHECKING:
    from repro.runtime.executor import TiledProgram

PASS_HB = "hb"

#: Event kinds.
RECV = "recv"
COMPUTE = "compute"
SEND = "send"
SENDWAIT = "sendwait"

Tile = Tuple[int, ...]
Chan = Tuple[int, int, int]             # (src_rank, dst_rank, tag)

_PROTOCOLS = ("eager", "rendezvous", "spec")


@dataclass(frozen=True)
class HBEvent:
    """One schedule event of one rank (static, compile-time)."""

    rank: int
    pos: int                            # index in the rank's order
    kind: str                           # RECV/COMPUTE/SEND/SENDWAIT
    tile: Tile
    tix: int                            # tile ordinal within the chain
    peer: int                           # -1 for compute
    tag: int                            # -1 for compute
    nelems: int
    chan: Optional[Chan]
    chanpos: int                        # 0-based FIFO position, -1 n/a


@dataclass(frozen=True)
class HBGraph:
    """The full happens-before graph of one (protocol, overlap) mode."""

    protocol: str
    overlap: bool
    mailbox_depth: int
    nranks: int
    events: Tuple[HBEvent, ...]         # global id = index
    rank_order: Tuple[Tuple[int, ...], ...]
    msg_edges: Tuple[Tuple[int, int], ...]      # send -> recv
    send_of_recv: Dict[int, int]
    edge_depth: Dict[Chan, int]
    compute_of: Dict[Tile, int]
    send_of: Dict[Tuple[Tile, Chan], int]
    unmatched_recvs: Tuple[int, ...]
    unmatched_sends: Tuple[int, ...]


def _rendezvous_fn(protocol: str,
                   spec: ClusterSpec) -> Callable[[int], bool]:
    """Per-message synchronous-send decision, exactly as the runtime
    (``parallel._rank_generator``) and the simulator decide it."""
    thresh = spec.rendezvous_threshold

    def rdv(nelems: int) -> bool:
        if protocol == "eager":
            return False
        if protocol == "rendezvous":
            return True
        return (thresh is not None and not spec.overlap
                and nelems * spec.bytes_per_element > thresh)

    return rdv


def build_hb_graph(program: "TiledProgram", protocol: str = "eager",
                   overlap: bool = False, mailbox_depth: int = 8,
                   spec: Optional[ClusterSpec] = None) -> HBGraph:
    """Symbolic replay of every rank's event sequence (no execution)."""
    if protocol not in _PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    if spec is None:
        spec = FAST_ETHERNET_CLUSTER
    rdv = _rendezvous_fn(protocol, spec)
    program.prewarm_region_counts()
    plans = build_rank_plans(program)
    edge_specs = build_edges(plans, mailbox_depth)
    depth = {key: es.depth for key, es in edge_specs.items()}

    events: List[HBEvent] = []
    rank_order: List[Tuple[int, ...]] = []
    chan_sends: Dict[Chan, List[int]] = {}
    chan_recvs: Dict[Chan, List[int]] = {}
    compute_of: Dict[Tile, int] = {}
    send_of: Dict[Tuple[Tile, Chan], int] = {}

    for rank in sorted(plans):
        plan = plans[rank]
        order: List[int] = []

        def emit(kind: str, tile: Tile, tix: int, peer: int = -1,
                 tag: int = -1, nelems: int = 0,
                 chan: Optional[Chan] = None,
                 chanpos: int = -1,
                 _rank: int = rank, _order: List[int] = order) -> int:
            eid = len(events)
            if chan is not None and chanpos < 0:
                fifo = chan_sends if kind == SEND else chan_recvs
                lst = fifo.setdefault(chan, [])
                chanpos = len(lst)
                lst.append(eid)
            events.append(HBEvent(
                rank=_rank, pos=len(_order), kind=kind, tile=tile,
                tix=tix, peer=peer, tag=tag, nelems=nelems, chan=chan,
                chanpos=chanpos))
            _order.append(eid)
            return eid

        for ti, tile in enumerate(plan.tiles):
            recvs = plan.recvs[ti]
            sends = plan.sends[ti]
            if not overlap:
                for r in recvs:
                    emit(RECV, tile, ti, r.src_rank, r.tag, r.nelems,
                         (r.src_rank, rank, r.tag))
                compute_of[tile] = emit(COMPUTE, tile, ti)
                for s in sends:
                    chan = (rank, s.dst_rank, s.tag)
                    eid = emit(SEND, tile, ti, s.dst_rank, s.tag,
                               s.nelems, chan)
                    send_of[(tile, chan)] = eid
                    if rdv(s.nelems):
                        emit(SENDWAIT, tile, ti, s.dst_rank, s.tag,
                             s.nelems, chan, events[eid].chanpos)
                continue
            # Overlapped schedule: replicate the runtime's placement.
            oplan = program.overlap_plan(tile)
            if len(oplan.packs) != len(sends):
                raise ValueError(
                    f"overlap plan of tile {tile} has "
                    f"{len(oplan.packs)} packs for {len(sends)} sends")
            needs = list(oplan.recv_need)
            floor: Dict[Tuple[int, int], int] = {}
            for i in reversed(range(len(needs))):
                rkey = (recvs[i].src_rank, recvs[i].tag)
                needs[i] = min(needs[i], floor.get(rkey, needs[i]))
                floor[rkey] = needs[i]
            send_ptr = 0
            sent: List[int] = []
            for li in range(oplan.nlevels):
                for i, r in enumerate(recvs):
                    if needs[i] == li:
                        emit(RECV, tile, ti, r.src_rank, r.tag,
                             r.nelems, (r.src_rank, rank, r.tag))
                while (send_ptr < len(sends)
                       and oplan.packs[send_ptr].commit_level <= li):
                    s = sends[send_ptr]
                    chan = (rank, s.dst_rank, s.tag)
                    eid = emit(SEND, tile, ti, s.dst_rank, s.tag,
                               s.nelems, chan)
                    send_of[(tile, chan)] = eid
                    sent.append(eid)
                    send_ptr += 1
            for i, r in enumerate(recvs):
                if needs[i] >= oplan.nlevels:
                    emit(RECV, tile, ti, r.src_rank, r.tag, r.nelems,
                         (r.src_rank, rank, r.tag))
            while send_ptr < len(sends):        # degenerate empty tile
                s = sends[send_ptr]
                chan = (rank, s.dst_rank, s.tag)
                eid = emit(SEND, tile, ti, s.dst_rank, s.tag, s.nelems,
                           chan)
                send_of[(tile, chan)] = eid
                sent.append(eid)
                send_ptr += 1
            compute_of[tile] = emit(COMPUTE, tile, ti)
            for eid in sent:                    # tile-end rendezvous
                e = events[eid]
                if rdv(e.nelems):
                    emit(SENDWAIT, tile, ti, e.peer, e.tag, e.nelems,
                         e.chan, e.chanpos)
        rank_order.append(tuple(order))

    msg_edges: List[Tuple[int, int]] = []
    send_of_recv: Dict[int, int] = {}
    unmatched_r: List[int] = []
    unmatched_s: List[int] = []
    for chan in sorted(set(chan_sends) | set(chan_recvs)):
        ss = chan_sends.get(chan, [])
        rr = chan_recvs.get(chan, [])
        for s_eid, r_eid in zip(ss, rr):
            msg_edges.append((s_eid, r_eid))
            send_of_recv[r_eid] = s_eid
        unmatched_s.extend(ss[len(rr):])
        unmatched_r.extend(rr[len(ss):])

    return HBGraph(
        protocol=protocol, overlap=overlap,
        mailbox_depth=mailbox_depth, nranks=len(rank_order),
        events=tuple(events), rank_order=tuple(rank_order),
        msg_edges=tuple(msg_edges), send_of_recv=send_of_recv,
        edge_depth=depth, compute_of=compute_of, send_of=send_of,
        unmatched_recvs=tuple(unmatched_r),
        unmatched_sends=tuple(unmatched_s))


# -- the HB02 wait machine -----------------------------------------------------------


@dataclass(frozen=True)
class MachineResult:
    """Outcome of one abstract execution of the event sequences."""

    completed: bool
    order: Tuple[int, ...]              # event ids in execution order
    blocked: Dict[int, int]             # rank -> blocking event id
    cycle: Tuple[int, ...]              # rank wait cycle, () if none


def run_wait_machine(g: HBGraph) -> MachineResult:
    """Execute the schedule against bounded SPSC rings.

    The machine is the *most-blocked* sound abstraction of the
    runtime: sends block while the ring holds ``depth`` unconsumed
    messages (the staged fallback; a successful zero-copy reservation
    only ever blocks less), rendezvous waits block until the matching
    receive executed, and — in overlap mode — a rank blocked on a full
    ring drains arrived-but-deferred same-tile receives first-per-edge,
    exactly like ``drain_ready``.  Completion certifies every real
    schedule completes; a stall yields the wait cycle.
    """
    published: Dict[Chan, int] = {}
    consumed: Dict[Chan, int] = {}
    ptr = [0] * g.nranks
    drained: Set[int] = set()
    ex_order: List[int] = []

    def runnable(e: HBEvent) -> bool:
        if e.kind == COMPUTE:
            return True
        assert e.chan is not None
        if e.kind == RECV:
            return published.get(e.chan, 0) > e.chanpos
        if e.kind == SEND:
            return (published.get(e.chan, 0)
                    - consumed.get(e.chan, 0)) < g.edge_depth[e.chan]
        return consumed.get(e.chan, 0) > e.chanpos      # SENDWAIT

    def execute(eid: int) -> None:
        e = g.events[eid]
        if e.chan is not None:
            if e.kind == RECV:
                consumed[e.chan] = consumed.get(e.chan, 0) + 1
            elif e.kind == SEND:
                published[e.chan] = published.get(e.chan, 0) + 1
        ex_order.append(eid)

    def drain(rank: int, pos: int) -> bool:
        """Pop arrived-but-deferred same-tile halos, first remaining
        per channel (rings are FIFO), while blocked on a send."""
        row = g.rank_order[rank]
        tix = g.events[row[pos]].tix
        did = False
        seen: Set[Chan] = set()
        for j in range(pos + 1, len(row)):
            e = g.events[row[j]]
            if e.tix != tix:
                break
            if e.kind != RECV or row[j] in drained:
                continue
            assert e.chan is not None
            if e.chan in seen:
                continue
            seen.add(e.chan)
            if published.get(e.chan, 0) > e.chanpos:
                drained.add(row[j])
                execute(row[j])
                did = True
        return did

    moved = True
    while moved:
        moved = False
        for rank in range(g.nranks):
            row = g.rank_order[rank]
            while ptr[rank] < len(row):
                eid = row[ptr[rank]]
                if eid in drained:
                    ptr[rank] += 1
                    continue
                e = g.events[eid]
                if runnable(e):
                    execute(eid)
                    ptr[rank] += 1
                    moved = True
                    continue
                if (g.overlap and e.kind == SEND
                        and drain(rank, ptr[rank])):
                    moved = True
                    continue                    # retry the send
                break

    blocked = {r: g.rank_order[r][ptr[r]] for r in range(g.nranks)
               if ptr[r] < len(g.rank_order[r])}
    cycle: Tuple[int, ...] = ()
    if blocked:
        def wait_target(e: HBEvent) -> int:
            assert e.chan is not None
            if e.kind == RECV:
                return e.chan[0]
            return e.chan[1]                    # SEND full / SENDWAIT

        for r0 in sorted(blocked):
            seen_ranks: List[int] = []
            r = r0
            while r in blocked and r not in seen_ranks:
                seen_ranks.append(r)
                r = wait_target(g.events[blocked[r]])
            if r in seen_ranks:
                cycle = tuple(seen_ranks[seen_ranks.index(r):])
                break
    return MachineResult(completed=not blocked, order=tuple(ex_order),
                         blocked=blocked, cycle=cycle)


# -- vector clocks -------------------------------------------------------------------


def vector_clocks(g: HBGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Fidge-Mattern clocks over program order + ``msg`` edges.

    Returns ``(clocks, processed)``: ``clocks[e]`` is the vector clock
    *after* event ``e`` ticked (``clocks[e][rank(e)] == pos(e) + 1``);
    ``processed[e]`` is False exactly when ``e`` sits on or behind a
    cycle or an unmatched message, in which case its clock (zeros) can
    prove nothing — the HB01 check treats those pairs as unordered.
    Unmatched receives contribute no cross edge but do tick, so one
    dropped message cannot zero out a whole rank's clocks.
    """
    nev = len(g.events)
    clocks = np.zeros((nev, g.nranks), dtype=np.int64)
    processed = np.zeros(nev, dtype=bool)
    cur = np.zeros((g.nranks, g.nranks), dtype=np.int64)
    ptr = [0] * g.nranks
    moved = True
    while moved:
        moved = False
        for r in range(g.nranks):
            row = g.rank_order[r]
            while ptr[r] < len(row):
                eid = row[ptr[r]]
                e = g.events[eid]
                src = (g.send_of_recv.get(eid)
                       if e.kind == RECV else None)
                if src is not None and not processed[src]:
                    break
                vc = cur[r]
                if src is not None:
                    np.maximum(vc, clocks[src], out=vc)
                vc[r] = e.pos + 1
                clocks[eid] = vc
                processed[eid] = True
                ptr[r] += 1
                moved = True
    return clocks, processed


def happens_before(g: HBGraph, clocks: np.ndarray,
                   processed: np.ndarray, a: int, b: int) -> bool:
    """Is ``a -> b`` provable in the certified partial order?"""
    if not (processed[a] and processed[b]):
        return False
    ea = g.events[a]
    return bool(clocks[b][ea.rank] >= ea.pos + 1)


# -- the certificate -----------------------------------------------------------------


@dataclass(frozen=True)
class HBCertificate:
    """One mode's proof object: graph + machine run + HB01/HB02
    findings.  Cached on the program via ``hb_certificate()``."""

    protocol: str
    overlap: bool
    mailbox_depth: int
    ok: bool
    diagnostics: Tuple[Diagnostic, ...]
    graph: HBGraph
    machine: MachineResult
    pairs_checked: int
    pairs_proved: int

    @property
    def cycle(self) -> Tuple[int, ...]:
        return self.machine.cycle


def _describe_blocked(g: HBGraph, eid: int) -> str:
    e = g.events[eid]
    return (f"rank {e.rank} blocked at {e.kind}(peer={e.peer}, "
            f"tag={e.tag}) in tile {e.tile}")


def _machine_diagnostics(g: HBGraph, mres: MachineResult,
                         mode: str) -> List[Diagnostic]:
    if mres.completed:
        return []
    if mres.cycle:
        chain = " -> ".join(str(r) for r in mres.cycle)
        parts = "; ".join(_describe_blocked(g, mres.blocked[r])
                          for r in mres.cycle)
        return [Diagnostic(
            code="HB02", severity=ERROR, pass_name=PASS_HB,
            message=f"cyclic wait among ranks {chain} -> "
                    f"{mres.cycle[0]} under the {mode} schedule: "
                    f"{parts}",
            equation="edge-wait graph must be acyclic (HB partial "
                     "order exists)",
            subject=(("cycle", mres.cycle), ("mode", mode)),
            suggestion="use the eager protocol (or raise the "
                       "rendezvous threshold) so sends complete "
                       "without waiting on the receiver",
        )]
    parts = "; ".join(_describe_blocked(g, mres.blocked[r])
                      for r in sorted(mres.blocked)[:4])
    more = len(mres.blocked) - min(len(mres.blocked), 4)
    if more > 0:
        parts += f"; and {more} more rank(s)"
    return [Diagnostic(
        code="HB02", severity=ERROR, pass_name=PASS_HB,
        message=f"schedule cannot complete under the {mode} mode: "
                f"{parts}",
        equation="every event must become runnable (no unmatched "
                 "message, no stuck wait)",
        subject=(("blocked_ranks", tuple(sorted(mres.blocked))),
                 ("mode", mode)),
        suggestion="a message is missing or mismatched; the DL01/DL02 "
                   "deadlock pass usually names the exact channel",
    )]


def certify_program(program: "TiledProgram", *,
                    protocol: str = "eager", overlap: bool = False,
                    mailbox_depth: int = 8,
                    spec: Optional[ClusterSpec] = None) -> HBCertificate:
    """Build and prove one mode's HB certificate (HB01 + HB02)."""
    if spec is None:
        spec = FAST_ETHERNET_CLUSTER
    g = build_hb_graph(program, protocol=protocol, overlap=overlap,
                       mailbox_depth=mailbox_depth, spec=spec)
    mres = run_wait_machine(g)
    mode = protocol + ("+overlap" if overlap else "")
    diags = _machine_diagnostics(g, mres, mode)
    clocks, processed = vector_clocks(g)

    dist, comm = program.dist, program.comm
    checked = proved = 0
    fail_count: Dict[Tile, int] = {}
    fail_example: Dict[Tile, Tuple[Tile, Tile, int, int]] = {}
    for tile in dist.tiles:
        pid = dist.pid_of(tile)
        ra = program.rank_of[pid]
        for ds_raw in comm.d_s:
            ds = tuple(int(x) for x in ds_raw)
            succ = tuple(a + b for a, b in zip(tile, ds))
            if not dist.valid(succ):
                continue
            pid2 = dist.pid_of(succ)
            if pid2 == pid:
                continue
            if program.region_count(tile, ds) == 0:
                continue
            rb = program.rank_of[pid2]
            checked += 1
            b = g.compute_of[succ]
            a: Optional[int]
            if overlap:
                tag = program.message_tag(comm.project(ds))
                a = g.send_of.get((tile, (ra, rb, tag)))
            else:
                a = g.compute_of.get(tile)
            if a is not None and happens_before(g, clocks, processed,
                                               a, b):
                proved += 1
            else:
                fail_count[ds] = fail_count.get(ds, 0) + 1
                fail_example.setdefault(ds, (tile, succ, ra, rb))
    for ds in sorted(fail_count):
        count = fail_count[ds]
        tile, succ, ra, rb = fail_example[ds]
        diags.append(Diagnostic(
            code="HB01", severity=ERROR, pass_name=PASS_HB,
            message=f"{count} tile dependence pair(s) along d^S={ds} "
                    f"are not provably happens-before ordered under "
                    f"the {mode} schedule (e.g. tile {tile} on rank "
                    f"{ra} -> tile {succ} on rank {rb}): the halo "
                    f"write/read pair may race",
            equation="vc(read)[rank(write)] >= tick(write) "
                     "(Fidge-Mattern vector clocks)",
            subject=(("ds", ds), ("example_src", tile),
                     ("example_dst", succ), ("src_rank", ra),
                     ("dst_rank", rb), ("pairs", count),
                     ("mode", mode)),
            suggestion="the communication spec does not carry this "
                       "dependence in order; RACE01/DL01 usually "
                       "pinpoint the dropped or misrouted message",
        ))
    return HBCertificate(
        protocol=protocol, overlap=overlap,
        mailbox_depth=mailbox_depth,
        ok=not any(d.severity == ERROR for d in diags),
        diagnostics=tuple(diags), graph=g, machine=mres,
        pairs_checked=checked, pairs_proved=proved)
