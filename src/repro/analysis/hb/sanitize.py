"""Dynamic trace sanitizer: replay a measured run against the HB graph.

Layer 3 of the HB certifier (HB04): ``repro sanitize`` loads an
:class:`~repro.runtime.trace.EventTrace` measured by the parallel
runtime (``repro run --parallel --trace-out ...``) and replays it
against the statically certified happens-before graph of the same
program/protocol/overlap configuration.  Any event observed out of
certified order — a missing or surplus message, a send or receive on
the wrong channel or with the wrong payload size, a receive completing
before its matching send started, an overlap tile whose commit order
diverges from the plan — is reported as an ``HB04`` diagnostic.  This
gives the concurrent runtime a ThreadSanitizer-style oracle: the
static certificate says the schedule *as compiled* is safe, the
sanitizer says the run *as executed* stayed inside it.

What "in certified order" means per mode (matching how the workers
append events — per-rank record order is program order):

* blocking — the measured per-rank sequence must equal the HB graph's
  per-rank program order exactly (receives, compute, sends per tile;
  SENDWAIT events are synchronization-only and produce no trace
  record — the wait is folded into the send interval);
* overlap — within each tile's event group the compute record comes
  last (the runtime emits one compute span per tile at tile end),
  sends appear in plan order (commits walk the plan FIFO), and
  receives are a permutation of the plan's receives that preserves
  per-channel FIFO order (rings deliver in order; the drain loop may
  interleave channels).

Cross-rank, the k-th receive on every channel must match the k-th
send's element count and must not complete before that send started.
Worker clocks are per-process (each worker zeroes its clock at its
own go-signal, so timestamps differ by the startup offset — a few
milliseconds of poll interval and scheduler latency); the
``skew_tolerance`` default absorbs that offset, making the wall-clock
check a coarse oracle for gross reordering, while the per-rank order
checks above stay exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import (
    ERROR,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.hb.graph import (
    COMPUTE,
    PASS_HB,
    RECV,
    SEND,
    SENDWAIT,
    HBEvent,
    build_hb_graph,
)
from repro.runtime.trace import EventTrace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.machine import ClusterSpec
    from repro.runtime.executor import TiledProgram

#: Default tolerance (seconds) when comparing cross-process
#: timestamps; covers the per-worker clock-zeroing offset (each
#: worker starts its clock at its own go-signal), not real
#: reordering, which shows up orders of magnitude larger.
DEFAULT_SKEW = 0.05

_MAX_DIAGS_PER_RANK = 4


def _hb04(message: str, *, rank: Optional[int] = None,
          suggestion: str = "") -> Diagnostic:
    subject: Tuple[Tuple[str, object], ...] = ()
    if rank is not None:
        subject = (("rank", rank),)
    return Diagnostic(
        code="HB04", severity=ERROR, pass_name=PASS_HB,
        message=message,
        equation="measured per-rank event order must be a linear "
                 "extension of the certified HB graph",
        subject=subject,
        suggestion=suggestion or (
            "re-measure with a matching --protocol/--overlap, or "
            "investigate the runtime if the flags already match"),
    )


def _fmt_static(ev: HBEvent) -> str:
    if ev.kind == COMPUTE:
        return f"compute(tile={ev.tile})"
    return (f"{ev.kind}(peer={ev.peer}, tag={ev.tag}, "
            f"nelems={ev.nelems})")


def _fmt_measured(ev: TraceEvent) -> str:
    if ev.kind == "compute":
        return "compute"
    return (f"{ev.kind}(peer={ev.peer}, tag={ev.tag}, "
            f"nelems={ev.nelems})")


def _match(measured: TraceEvent, expect: HBEvent) -> bool:
    if measured.kind != expect.kind:
        return False
    if expect.kind == COMPUTE:
        return True
    return (measured.peer == expect.peer
            and measured.tag == expect.tag
            and measured.nelems == expect.nelems)


def _check_rank_blocking(rank: int, measured: List[TraceEvent],
                         expected: List[HBEvent],
                         out: List[Diagnostic]) -> None:
    for i, (m, e) in enumerate(zip(measured, expected)):
        if not _match(m, e):
            out.append(_hb04(
                f"rank {rank} event {i} out of certified order: "
                f"measured {_fmt_measured(m)}, certified "
                f"{_fmt_static(e)}", rank=rank))
            if len(out) >= _MAX_DIAGS_PER_RANK:
                return


def _check_rank_overlap(rank: int, measured: List[TraceEvent],
                        expected: List[HBEvent],
                        out: List[Diagnostic]) -> None:
    """Per-tile group check: compute last, sends in plan order,
    receives per-channel FIFO."""
    # Group the static order by tile index (tix is monotone per rank).
    groups: List[List[HBEvent]] = []
    for ev in expected:
        if not groups or groups[-1][0].tix != ev.tix:
            groups.append([ev])
        else:
            groups[-1].append(ev)
    pos = 0
    for group in groups:
        chunk = measured[pos:pos + len(group)]
        pos += len(group)
        tile = group[0].tile
        if len(chunk) < len(group):
            return  # count mismatch already reported
        if chunk[-1].kind != "compute":
            out.append(_hb04(
                f"rank {rank} tile {tile}: expected the compute "
                f"record last in the tile group, found "
                f"{_fmt_measured(chunk[-1])}", rank=rank))
            return
        sends_m = [m for m in chunk if m.kind == "send"]
        sends_e = [e for e in group if e.kind == SEND]
        for k, (m, e) in enumerate(zip(sends_m, sends_e)):
            if not _match(m, e):
                out.append(_hb04(
                    f"rank {rank} tile {tile}: send {k} diverges "
                    f"from the plan commit order: measured "
                    f"{_fmt_measured(m)}, certified {_fmt_static(e)}",
                    rank=rank))
                return
        if len(sends_m) != len(sends_e):
            out.append(_hb04(
                f"rank {rank} tile {tile}: {len(sends_m)} send "
                f"record(s), certificate expects {len(sends_e)}",
                rank=rank))
            return
        # receives: any interleaving, but FIFO per channel
        recv_m: Dict[Tuple[int, int], List[TraceEvent]] = {}
        for m in chunk[:-1]:
            if m.kind == "recv":
                recv_m.setdefault(
                    (m.peer if m.peer is not None else -1,
                     m.tag if m.tag is not None else -1),
                    []).append(m)
        recv_e: Dict[Tuple[int, int], List[HBEvent]] = {}
        for e in group:
            if e.kind == RECV:
                assert e.peer is not None and e.tag is not None
                recv_e.setdefault((e.peer, e.tag), []).append(e)
        for key in sorted(set(recv_m) | set(recv_e)):
            ms = recv_m.get(key, [])
            es = recv_e.get(key, [])
            if len(ms) != len(es) or any(
                    m.nelems != e.nelems for m, e in zip(ms, es)):
                out.append(_hb04(
                    f"rank {rank} tile {tile}: receives on channel "
                    f"(src={key[0]}, tag={key[1]}) diverge from the "
                    f"certified per-channel FIFO order", rank=rank))
                return


def sanitize_trace(program: "TiledProgram", trace: EventTrace, *,
                   protocol: str = "spec", overlap: bool = False,
                   spec: Optional["ClusterSpec"] = None,
                   mailbox_depth: int = 8,
                   skew_tolerance: float = DEFAULT_SKEW,
                   ) -> List[Diagnostic]:
    """Check a measured trace against the static HB graph; returns
    the HB04 findings (empty list = the run conformed)."""
    g = build_hb_graph(program, protocol=protocol, overlap=overlap,
                       mailbox_depth=mailbox_depth, spec=spec)
    diags: List[Diagnostic] = []
    per_rank: Dict[int, List[TraceEvent]] = {}
    for ev in trace.events:  # record order IS per-rank program order
        per_rank.setdefault(ev.rank, []).append(ev)
    for rank in sorted(per_rank):
        if rank >= g.nranks or rank < 0:
            diags.append(_hb04(
                f"trace contains events for rank {rank}, but the "
                f"program has only {g.nranks} ranks", rank=rank))
    for rank in range(g.nranks):
        measured = per_rank.get(rank, [])
        expected = [g.events[i] for i in g.rank_order[rank]
                    if g.events[i].kind != SENDWAIT]
        rank_diags: List[Diagnostic] = []
        if len(measured) != len(expected):
            rank_diags.append(_hb04(
                f"rank {rank} recorded {len(measured)} event(s), "
                f"the certificate expects {len(expected)}",
                rank=rank))
        if not g.overlap:
            _check_rank_blocking(rank, measured, expected, rank_diags)
        else:
            _check_rank_overlap(rank, measured, expected, rank_diags)
        diags.extend(rank_diags[:_MAX_DIAGS_PER_RANK])
    # Cross-rank: k-th recv on a channel never completes before the
    # k-th send started, and carries the same element count.
    chan_sends: Dict[Tuple[int, int, int], List[TraceEvent]] = {}
    chan_recvs: Dict[Tuple[int, int, int], List[TraceEvent]] = {}
    for ev in trace.events:
        if ev.peer is None or ev.tag is None:
            continue
        if ev.kind == "send":
            chan_sends.setdefault((ev.rank, ev.peer, ev.tag),
                                  []).append(ev)
        elif ev.kind == "recv":
            chan_recvs.setdefault((ev.peer, ev.rank, ev.tag),
                                  []).append(ev)
    for chan in sorted(set(chan_sends) | set(chan_recvs)):
        ss = chan_sends.get(chan, [])
        rs = chan_recvs.get(chan, [])
        if len(ss) != len(rs):
            diags.append(_hb04(
                f"channel {chan[0]}->{chan[1]} tag {chan[2]}: "
                f"{len(ss)} send(s) but {len(rs)} recv(s) measured"))
            continue
        for k, (s, r) in enumerate(zip(ss, rs)):
            if r.nelems != s.nelems:
                diags.append(_hb04(
                    f"channel {chan[0]}->{chan[1]} tag {chan[2]} "
                    f"message {k}: sent {s.nelems} element(s), "
                    f"received {r.nelems}"))
                break
            if r.end < s.start - skew_tolerance:
                diags.append(_hb04(
                    f"channel {chan[0]}->{chan[1]} tag {chan[2]} "
                    f"message {k}: receive completed at {r.end:.9f}s "
                    f"before its send started at {s.start:.9f}s — "
                    f"publication-before-consumption violated"))
                break
    return diags


def sanitize_report(program: "TiledProgram", trace: EventTrace, *,
                    protocol: str = "spec", overlap: bool = False,
                    spec: Optional["ClusterSpec"] = None,
                    mailbox_depth: int = 8,
                    skew_tolerance: float = DEFAULT_SKEW,
                    subject: str = "") -> AnalysisReport:
    """CLI-facing wrapper: full :class:`AnalysisReport` with metadata."""
    report = AnalysisReport()
    if subject:
        report.meta["subject"] = subject
    report.meta["protocol"] = protocol
    report.meta["overlap"] = overlap
    report.meta["events"] = len(trace.events)
    report.mark_pass("sanitize")
    report.extend(sanitize_trace(
        program, trace, protocol=protocol, overlap=overlap,
        spec=spec, mailbox_depth=mailbox_depth,
        skew_tolerance=skew_tolerance))
    return report
