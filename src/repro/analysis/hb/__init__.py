"""Happens-before concurrency certifier for the parallel runtime.

Three layers, surfaced as ``repro analyze --hb`` and
``TiledProgram.hb_certificate()``:

* :mod:`~repro.analysis.hb.graph` — static schedule certification.
  Builds the happens-before graph of a program's parallel execution
  (per-rank program order from the tile chains, cross-rank edges from
  each ``CC_k`` send/recv pair under the eager / rendezvous / spec
  protocol and under the overlap plan's reserve/commit/drain points),
  proves via Fidge-Mattern vector clocks that every halo write/read
  pair is HB-ordered (``HB01``) and via an abstract wait machine that
  the edge-wait graph is acyclic (``HB02``).
* :mod:`~repro.analysis.hb.ringmodel` — exhaustive model checking of
  the SPSC mailbox ring protocol over small bounded configurations
  with partial-order reduction (``HB03``), plus a known-bad mutation
  corpus the checker must reject.
* :mod:`~repro.analysis.hb.sanitize` — the dynamic trace sanitizer
  (``repro sanitize``): replays a measured :class:`EventTrace`
  against the static HB graph and reports any event observed out of
  certified order (``HB04``).

:func:`check_hb` is the pass driver ``analyze --hb`` runs: certify
the blocking and overlapped schedules under the protocols the spec
can select, probe the rendezvous protocol with findings demoted to
warnings (dual-protocol policy, as ``DL03``), and fold in the ring
protocol model verdict.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.hb.graph import (
    PASS_HB,
    HBCertificate,
    HBEvent,
    HBGraph,
    build_hb_graph,
    certify_program,
    happens_before,
    run_wait_machine,
    vector_clocks,
)
from repro.analysis.hb.ringmodel import (
    MUTATIONS,
    ModelResult,
    RingConfig,
    check_ring_model,
    ring_diagnostics,
)
from repro.analysis.hb.sanitize import sanitize_report, sanitize_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.machine import ClusterSpec
    from repro.runtime.executor import TiledProgram

__all__ = [
    "MUTATIONS",
    "PASS_HB",
    "HBCertificate",
    "HBEvent",
    "HBGraph",
    "ModelResult",
    "RingConfig",
    "build_hb_graph",
    "certify_program",
    "check_hb",
    "check_ring_model",
    "happens_before",
    "ring_diagnostics",
    "run_wait_machine",
    "sanitize_report",
    "sanitize_trace",
    "vector_clocks",
]


def check_hb(program: "TiledProgram", *,
             spec: Optional["ClusterSpec"] = None,
             mailbox_depth: int = 8) -> List[Diagnostic]:
    """All HB findings for one program (the ``analyze --hb`` pass).

    Certifies the blocking and overlapped schedules under the eager
    protocol (the runtime default) at natural severity; when ``spec``
    carries a rendezvous threshold the ``spec`` protocol is certified
    too (it may force handshakes).  If everything certifies, the fully
    synchronous rendezvous protocol is probed as well, with findings
    demoted to warnings — mirroring the deadlock pass's dual-protocol
    policy: a rendezvous-only cycle is a real hazard but not one the
    default configuration can hit.  ``HB03`` ring-model findings are
    appended last (they concern the runtime's mailbox protocol, not
    this particular program).
    """
    diags: List[Diagnostic] = []
    combos = [("eager", False), ("eager", True)]
    if spec is not None and spec.rendezvous_threshold is not None:
        combos += [("spec", False), ("spec", True)]
    for protocol, overlap in combos:
        cert = program.hb_certificate(
            protocol=protocol, overlap=overlap,
            mailbox_depth=mailbox_depth, spec=spec)
        diags.extend(cert.diagnostics)
    if not any(d.severity == ERROR for d in diags):
        probe = program.hb_certificate(
            protocol="rendezvous", overlap=False,
            mailbox_depth=mailbox_depth, spec=spec)
        for d in probe.diagnostics:
            if d.severity == ERROR:
                diags.append(replace(
                    d, severity=WARNING,
                    message=d.message + " — only under the synchronous "
                            "rendezvous protocol (MPI_Ssend semantics, "
                            "a small enough "
                            "ClusterSpec.rendezvous_threshold); the "
                            "default eager/spec protocols complete",
                    suggestion="keep rendezvous_threshold above the "
                               "message sizes, enable overlap, or "
                               "reorder sends along the schedule",
                ))
            else:
                diags.append(d)
    diags.extend(ring_diagnostics())
    return diags
