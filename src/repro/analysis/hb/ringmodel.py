"""Exhaustive model checking of the SPSC mailbox ring protocol.

Layer 2 of the HB certifier (HB03): an abstract two-thread model of
:class:`repro.runtime.parallel._Edge` — producer steps ``wait_space``
/ payload store / size store / ``head`` bump (``push``), or the
split-write ``reserve``/``commit`` pair; consumer steps ``wait_msg`` /
size read / payload read / ``tail`` bump (``release``) — explored
exhaustively over small bounded configurations (every ring depth 1-3,
message counts up to depth+2, both publish modes).

Exploration is a depth-first search with state memoization and a
persistent-set partial-order reduction: when the producer's and
consumer's next atomic steps touch disjoint shared locations (no
write/write or read/write overlap on ``head``, ``tail``, a ``sizes``
cell or a ``slots`` cell), only one interleaving is explored — the
standard independence argument makes the other order reach the same
state.  The state space is acyclic (program counters and counters are
monotone), where persistent-set selective search is sound for safety
properties (assertion violations and deadlocks are all found).

The safety properties are the ring discipline itself:

* publication-before-consumption — the consumer never reads a size or
  payload the producer has not finished writing (reads of stale or
  partially-written slots are violations);
* no slot reuse before ``consumed`` advances — the producer never
  overwrites a slot the consumer still holds;
* wraparound safety — slot indices ``head % depth`` stay coherent
  across ring wraps.

A corpus of known-bad mutations (commit barrier flipped, backpressure
dropped, release reordered before the payload read, wrap misindexing,
premature commit of a half-written reservation) must each be rejected
— ``python -m repro.analysis.hb.ringmodel --selftest`` checks the
faithful model verifies clean *and* every mutation is caught, and is
wired into CI.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic

PASS_HB = "hb"

#: Shared-memory locations, as named tokens for the independence test.
Loc = Tuple[str, int]
#: One atomic step: (opcode, message number).
Step = Tuple[str, int]
#: Immutable model state:
#: (p_pc, c_pc, head, tail, sizes, slots, pending)
State = Tuple[int, int, int, int, Tuple[int, ...], Tuple[int, ...], int]

#: Known-bad mutations the checker must reject (name -> description).
MUTATIONS: Dict[str, str] = {
    "commit_before_payload": "head bump reordered before the payload "
                             "store (commit barrier flipped)",
    "commit_before_size": "head bump reordered before the size store",
    "no_backpressure": "producer skips the ring-full wait and reuses "
                       "a slot the consumer still holds",
    "early_release": "consumer releases the slot before reading the "
                     "payload (drain reordered)",
    "wrap_misindex": "producer writes slot (head+1) %% depth, breaking "
                     "wraparound coherence",
    "premature_commit": "reserve-mode commit publishes a half-written "
                        "slot",
}

_PARTIAL = -10 ** 6         # sentinel token for a half-written payload


@dataclass(frozen=True)
class RingConfig:
    """One bounded configuration of the two-thread ring model."""

    depth: int
    nmsgs: int
    mode: str                           # "push" | "reserve"
    mutation: Optional[str] = None


@dataclass
class ModelResult:
    """Outcome of exhaustively exploring one or more configurations."""

    ok: bool
    violations: List[str]
    states: int
    configs: int

    def merge(self, other: "ModelResult") -> None:
        self.ok = self.ok and other.ok
        self.violations.extend(other.violations)
        self.states += other.states
        self.configs += other.configs


def _producer_steps(cfg: RingConfig) -> List[Step]:
    """The producer's atomic-step program, msg by msg, with the
    configured mutation applied."""
    mut = cfg.mutation
    steps: List[Step] = []
    for k in range(1, cfg.nmsgs + 1):
        if cfg.mode == "push":
            ops = ["wait_space", "write_payload", "write_size",
                   "publish"]
            if mut == "commit_before_payload":
                ops = ["wait_space", "publish", "write_payload",
                       "write_size"]
            elif mut == "commit_before_size":
                ops = ["wait_space", "write_payload", "publish",
                       "write_size"]
            elif mut == "no_backpressure":
                ops = ["write_payload", "write_size", "publish"]
        else:
            # reserve/commit: the payload lands in two partial writes
            # (level-by-level zero-copy scatter), then size + head.
            ops = ["wait_space", "write_part0", "write_part1",
                   "write_size", "publish"]
            if mut == "premature_commit":
                ops = ["wait_space", "write_part0", "write_size",
                       "publish", "write_part1"]
            elif mut == "no_backpressure":
                ops = ["write_part0", "write_part1", "write_size",
                       "publish"]
        steps.extend((op, k) for op in ops)
    return steps


def _consumer_steps(cfg: RingConfig) -> List[Step]:
    steps: List[Step] = []
    for k in range(1, cfg.nmsgs + 1):
        ops = ["wait_msg", "read_size", "read_payload", "release"]
        if cfg.mutation == "early_release":
            ops = ["wait_msg", "read_size", "release", "read_payload"]
        steps.extend((op, k) for op in ops)
    return steps


def _footprint(step: Step, state: State, cfg: RingConfig,
               producer: bool) -> Tuple[FrozenSet[Loc], FrozenSet[Loc]]:
    """(reads, writes) of one atomic step over the named locations."""
    op, _k = step
    _pp, _cp, head, tail, _sizes, _slots, _pending = state
    if producer:
        slot = head % cfg.depth
        if cfg.mutation == "wrap_misindex" and op in (
                "write_payload", "write_size"):
            slot = (head + 1) % cfg.depth
        if op == "wait_space":
            return frozenset({("head", 0), ("tail", 0)}), frozenset()
        if op in ("write_payload", "write_part0", "write_part1"):
            return frozenset(), frozenset({("slots", slot)})
        if op == "write_size":
            return frozenset(), frozenset({("sizes", slot)})
        # publish
        return frozenset({("head", 0)}), frozenset({("head", 0)})
    slot = tail % cfg.depth
    if op == "wait_msg":
        return frozenset({("head", 0), ("tail", 0)}), frozenset()
    if op == "read_size":
        return frozenset({("sizes", slot)}), frozenset()
    if op == "read_payload":
        return frozenset({("slots", slot)}), frozenset()
    # release
    return frozenset({("tail", 0)}), frozenset({("tail", 0)})


def _independent(s1: Step, s2: Step, state: State,
                 cfg: RingConfig) -> bool:
    r1, w1 = _footprint(s1, state, cfg, producer=True)
    r2, w2 = _footprint(s2, state, cfg, producer=False)
    return not (w1 & (r2 | w2) or w2 & (r1 | w1))


def _enabled(step: Step, state: State, cfg: RingConfig,
             producer: bool) -> bool:
    op, _k = step
    _pp, _cp, head, tail, _sizes, _slots, _pending = state
    if producer and op == "wait_space":
        return head - tail < cfg.depth
    if not producer and op == "wait_msg":
        return head > tail
    return True


def _apply(step: Step, state: State, cfg: RingConfig,
           producer: bool) -> Tuple[State, Optional[str]]:
    """Execute one atomic step; returns (state', violation)."""
    op, k = step
    pp, cp, head, tail, sizes, slots, pending = state
    sizes_l = list(sizes)
    slots_l = list(slots)
    violation: Optional[str] = None
    if producer:
        slot = head % cfg.depth
        if cfg.mutation == "wrap_misindex" and op in (
                "write_payload", "write_size"):
            slot = (head + 1) % cfg.depth
        if op in ("wait_space", "write_part1"):
            if op == "write_part1":
                slots_l[slot] = k
        elif op == "write_payload":
            slots_l[slot] = k
        elif op == "write_part0":
            slots_l[slot] = _PARTIAL
        elif op == "write_size":
            sizes_l[slot] = k
        elif op == "publish":
            head += 1
        pp += 1
    else:
        slot = tail % cfg.depth
        if op == "read_size":
            if sizes_l[slot] != k:
                violation = (f"consumer read size {sizes_l[slot]} for "
                             f"message {k} (slot {slot}): size store "
                             f"not published before consumption")
        elif op == "read_payload":
            if slots_l[slot] != k:
                got = slots_l[slot]
                what = ("a half-written payload" if got == _PARTIAL
                        else f"payload of message {got}")
                violation = (f"consumer read {what} for message {k} "
                             f"(slot {slot}): slot reused or "
                             f"published before the payload store")
        elif op == "release":
            tail += 1
        cp += 1
    new = (pp, cp, head, tail, tuple(sizes_l), tuple(slots_l), pending)
    return new, violation


def explore(cfg: RingConfig, max_states: int = 200_000) -> ModelResult:
    """DFS over every reachable interleaving of one configuration,
    with state memoization and persistent-set reduction."""
    prod = _producer_steps(cfg)
    cons = _consumer_steps(cfg)
    init: State = (0, 0, 0, 0, (0,) * cfg.depth, (0,) * cfg.depth, 0)
    seen = set()
    violations: List[str] = []
    stack: List[State] = [init]
    states = 0
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        states += 1
        if states > max_states:
            violations.append(
                f"state-space bound exceeded on {cfg}")
            break
        pp, cp, *_rest = state
        p_step = prod[pp] if pp < len(prod) else None
        c_step = cons[cp] if cp < len(cons) else None
        p_ok = (p_step is not None
                and _enabled(p_step, state, cfg, producer=True))
        c_ok = (c_step is not None
                and _enabled(c_step, state, cfg, producer=False))
        if not p_ok and not c_ok:
            if p_step is not None or c_step is not None:
                violations.append(
                    f"deadlock in {cfg}: producer at "
                    f"{p_step}, consumer at {c_step}")
            continue
        branches: List[bool] = []          # True = producer moves
        if p_ok and c_ok:
            assert p_step is not None and c_step is not None
            if _independent(p_step, c_step, state, cfg):
                branches = [True]          # one order suffices
            else:
                branches = [True, False]
        elif p_ok:
            branches = [True]
        else:
            branches = [False]
        for producer in branches:
            step = p_step if producer else c_step
            assert step is not None
            new, violation = _apply(step, state, cfg, producer)
            if violation is not None:
                violations.append(f"{cfg}: {violation}")
                continue                   # do not explore past a bug
            stack.append(new)
    return ModelResult(ok=not violations, violations=violations,
                       states=states, configs=1)


def _configs(mutation: Optional[str],
             depths: Sequence[int] = (1, 2, 3),
             extra_msgs: int = 2) -> List[RingConfig]:
    """Every bounded configuration a mutation applies to."""
    modes = ("push", "reserve")
    if mutation in ("commit_before_payload", "commit_before_size"):
        modes = ("push",)
    elif mutation == "premature_commit":
        modes = ("reserve",)
    out: List[RingConfig] = []
    for mode in modes:
        for depth in depths:
            if mutation == "wrap_misindex" and depth < 2:
                continue                  # needs a second slot to miss
            for nmsgs in range(1, depth + extra_msgs + 1):
                out.append(RingConfig(depth=depth, nmsgs=nmsgs,
                                      mode=mode, mutation=mutation))
    return out


def check_ring_model(mutation: Optional[str] = None) -> ModelResult:
    """Explore every bounded configuration of the (possibly mutated)
    ring protocol; ``ok`` means no interleaving violates the
    discipline."""
    if mutation is not None and mutation not in MUTATIONS:
        raise ValueError(f"unknown mutation {mutation!r}; known: "
                         f"{sorted(MUTATIONS)}")
    total = ModelResult(ok=True, violations=[], states=0, configs=0)
    for cfg in _configs(mutation):
        total.merge(explore(cfg))
    return total


_FAITHFUL_CACHE: List[ModelResult] = []


def ring_diagnostics() -> List[Diagnostic]:
    """HB03 findings for the *faithful* protocol model (cached — the
    model is a property of the runtime code, not of any program)."""
    if not _FAITHFUL_CACHE:
        _FAITHFUL_CACHE.append(check_ring_model(None))
    res = _FAITHFUL_CACHE[0]
    if res.ok:
        return []
    return [Diagnostic(
        code="HB03", severity=ERROR, pass_name=PASS_HB,
        message=f"ring protocol model violates the SPSC discipline: "
                f"{res.violations[0]}"
                + (f" (+{len(res.violations) - 1} more)"
                   if len(res.violations) > 1 else ""),
        equation="payload/size stores precede the head bump; tail "
                 "advances only after the payload read",
        subject=(("violations", len(res.violations)),
                 ("states", res.states)),
        suggestion="the mailbox ring in runtime/parallel.py no longer "
                   "matches the verified store order",
    )]


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.hb.ringmodel --selftest``: verify
    the faithful model clean and every known-bad mutation rejected."""
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] != "--selftest":
        print(f"usage: ringmodel [--selftest]; got {args!r}",
              file=sys.stderr)
        return 2
    rc = 0
    clean = check_ring_model(None)
    status = "ok" if clean.ok else "VIOLATED"
    print(f"faithful ring protocol: {status} "
          f"({clean.configs} configs, {clean.states} states)")
    if not clean.ok:
        for v in clean.violations[:5]:
            print(f"  {v}")
        rc = 1
    for name in sorted(MUTATIONS):
        res = check_ring_model(name)
        caught = not res.ok
        print(f"mutation {name}: "
              f"{'rejected' if caught else 'NOT CAUGHT'} "
              f"({res.configs} configs, {res.states} states)")
        if not caught:
            rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
