"""COST04: Dinh & Demmel communication lower-bound certification.

For projective nested loops ("Communication-Optimal Tilings for
Projective Nested Loops with Arbitrary Dimension", Dinh & Demmel),
any execution that partitions ``V`` iteration points per processor
step must move ``Omega(V^{(q-1)/q})`` words per tile, where ``q`` is
the number of dimensions that carry flow across the partition.  In
this pipeline the per-tile picture is explicit: a full tile of volume
``V`` communicates a slab of reach ``r_k = max_l d'_kl`` across every
non-mapping face ``k`` with ``r_k > 0``, i.e. ``face_k = r_k * V /
v_k`` elements.  The tightest shape-independent bound with the same
dependence reaches is the AM-GM floor of those faces:

    q_lb = |K| * (prod_k face_k)^(1/|K|)
         = |K| * (prod_k r_k)^(1/|K|) * V^((|K|-1)/|K|)
           / (prod_k v_k / V)^(1/|K|) ... evaluated per shape as the
           geometric mean of the faces,

with ``K = {k != m : r_k > 0}``.  Equality holds exactly when the
faces are balanced (``r_k / v_k`` equal) — the communication-optimal
aspect ratio.  A shape whose actual per-tile communication exceeds
``factor * q_lb`` earns a COST04 warning naming the dominating
dimension and the rescaling direction that shrinks it.

The bound carries a built-in self-check (AM-GM: the floor can never
exceed the face sum it floors).  A miscomputed constant — the
``bad_lower_bound_constant`` mutation doubles it — breaks that
inequality on balanced shapes and is rejected with a COST04 error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from repro.runtime.executor import TiledProgram


@dataclass(frozen=True)
class LowerBound:
    """The closed-form bound evaluation for one tile shape."""

    applicable: bool                    # some non-mapping dim communicates
    dims: Tuple[int, ...]               # K: communicating dims (k != m)
    faces: Tuple[float, ...]            # face_k = r_k * V / v_k, k in K
    bound_elements: float               # q_lb (per tile, per array)
    face_sum: float                     # sum of faces (AM >= GM check)
    actual_elements: int                # interior-tile comm (per array)
    worst_dim: int                      # argmax face_k, -1 if n/a
    selfcheck_ok: bool                  # q_lb <= face_sum (+eps)


def communication_lower_bound(program: "TiledProgram",
                              mutation: Optional[str] = None,
                              ) -> LowerBound:
    """Evaluate the per-tile lower bound and the shape's actual comm.

    ``actual_elements`` counts one interior tile's outgoing pack
    regions over every processor direction (per array — multiply by
    the array count for bytes), the same quantity the per-edge COST01
    totals aggregate.
    """
    comm = program.comm
    ttis = program.tiling.ttis
    m = comm.m
    vol = float(ttis.tile_volume)
    dims = tuple(k for k in range(program.n)
                 if k != m and comm.max_dp[k] > 0)
    if not dims or vol <= 0:
        return LowerBound(applicable=False, dims=dims, faces=(),
                          bound_elements=0.0, face_sum=0.0,
                          actual_elements=0, worst_dim=-1,
                          selfcheck_ok=True)
    faces = tuple(comm.max_dp[k] * vol / ttis.v[k] for k in dims)
    q = len(dims)
    gm = 1.0
    for f in faces:
        gm *= f
    gm **= 1.0 / q
    bound = q * gm
    if mutation == "bad_lower_bound_constant":
        # Seeded bug: an inflated constant is no longer a floor.
        bound *= 2.0
    face_sum = float(sum(faces))
    actual = 0
    for dm in comm.d_m:
        full_dir = dm[:m] + (0,) + dm[m:]
        actual += program.full_region_count(full_dir)
    worst = dims[max(range(q), key=lambda i: faces[i])]
    selfcheck_ok = bound <= face_sum * (1.0 + 1e-12)
    return LowerBound(applicable=True, dims=dims, faces=faces,
                      bound_elements=bound, face_sum=face_sum,
                      actual_elements=actual, worst_dim=worst,
                      selfcheck_ok=selfcheck_ok)
