"""COST03: critical-path makespan by a longest-path sweep of the HB
graph.

The sweep replays the happens-before graph of the *blocking* schedule
(the one :meth:`DistributedRun.simulate` executes) with the simulator's
exact per-event clock arithmetic — same Hockney model, same protocol
decisions, same floating-point operation order per rank — so on any
configuration the simulator can run, the analytic makespan is bitwise
equal to the simulated one.  That is the property the exactness tests
pin; the documented tolerance (``1e-12`` relative) only covers future
re-orderings of the per-rank accumulation.

Event weights:

* ``COMPUTE`` — ``compute_time(points) * f`` (per-rank speed factor);
* ``RECV`` — wait for the matched send (eager: arrival; rendezvous:
  ``max(clock, ready) + transfer``), then unpack at ``pack_time``;
* ``SEND`` — pack at ``pack_time``, then eager (blocking transfer or
  latency-only under ``spec.overlap``) or park for rendezvous;
* ``SENDWAIT`` — jump to the rendezvous completion computed at the
  matching receive.

A schedule the HB certifier would flag (HB02 cycle) makes the sweep
stick; the result is then an infinite makespan plus a ``stuck`` flag —
``certify_cost`` turns that into a COST03 diagnostic instead of
raising, mirroring the simulator's :class:`DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.analysis.hb.graph import (
    COMPUTE,
    RECV,
    SEND,
    SENDWAIT,
    HBGraph,
    _rendezvous_fn,
    build_hb_graph,
)
from repro.runtime.machine import FAST_ETHERNET_CLUSTER, ClusterSpec

if TYPE_CHECKING:
    from repro.runtime.executor import TiledProgram


@dataclass(frozen=True)
class SweepResult:
    """Per-rank clocks of the analytic critical-path sweep."""

    makespan: float
    clocks: Tuple[float, ...]
    compute_time: Tuple[float, ...]     # incl. pack, as the simulator
    comm_time: Tuple[float, ...]
    tile_compute_time: Tuple[float, ...]  # COMPUTE events only
    stuck: bool                         # sweep deadlocked (HB02 cycle)
    stuck_ranks: Tuple[int, ...]


def analytic_makespan(program: "TiledProgram",
                      spec: Optional[ClusterSpec] = None,
                      protocol: str = "eager",
                      mailbox_depth: int = 8,
                      mutation: Optional[str] = None,
                      graph: Optional[HBGraph] = None) -> SweepResult:
    """Longest-path sweep of the blocking-schedule HB graph."""
    if spec is None:
        spec = FAST_ETHERNET_CLUSTER
    if graph is None:
        graph = build_hb_graph(program, protocol=protocol,
                               overlap=False,
                               mailbox_depth=mailbox_depth, spec=spec)
    rdv = _rendezvous_fn(protocol, spec)
    swap = mutation == "swapped_edge_weight"

    def w_compute(points: int) -> float:
        # Seeded bug: compute edges weighted with the network model.
        return (spec.message_time(points) if swap
                else spec.compute_time(points))

    def w_transfer(nelems: int) -> float:
        return (spec.compute_time(nelems) if swap
                else spec.message_time(nelems))

    nranks = graph.nranks
    events = graph.events
    order = graph.rank_order
    send_of_recv = graph.send_of_recv
    send_by_chanpos: Dict[Tuple[Tuple[int, int, int], int], int] = {}
    for i, ev in enumerate(events):
        if ev.kind == SEND and ev.chan is not None:
            send_by_chanpos[(ev.chan, ev.chanpos)] = i

    speed = [spec.node_speed_factor(r) for r in range(nranks)]
    ptr = [0] * nranks
    clock = [0.0] * nranks
    compute = [0.0] * nranks
    comm = [0.0] * nranks
    tile_compute = [0.0] * nranks
    arrival: Dict[int, float] = {}      # eager send -> arrival time
    ready: Dict[int, float] = {}        # rendezvous send -> park time
    completion: Dict[int, float] = {}   # rendezvous send -> match end

    def step(rank: int) -> bool:
        """Process the rank's next event; False if it must wait."""
        eid = order[rank][ptr[rank]]
        ev = events[eid]
        f = speed[rank]
        if ev.kind == COMPUTE:
            pts = program.tile_point_count(ev.tile)
            w = w_compute(pts) * f
            clock[rank] += w
            compute[rank] += w
            tile_compute[rank] += w
        elif ev.kind == SEND:
            pack = spec.pack_time(ev.nelems) * f
            clock[rank] += pack
            compute[rank] += pack
            if rdv(ev.nelems):
                ready[eid] = clock[rank]
            elif spec.overlap:
                start = clock[rank]
                clock[rank] += spec.net_latency
                arrival[eid] = start + w_transfer(ev.nelems)
                comm[rank] += spec.net_latency
            else:
                clock[rank] += w_transfer(ev.nelems)
                arrival[eid] = clock[rank]
                comm[rank] += w_transfer(ev.nelems)
        elif ev.kind == SENDWAIT:
            assert ev.chan is not None
            sid = send_by_chanpos[(ev.chan, ev.chanpos)]
            end = completion.get(sid)
            if end is None:
                return False
            comm[rank] += end - clock[rank]
            clock[rank] = end
        elif ev.kind == RECV:
            sid = send_of_recv.get(eid)
            if sid is None:
                return False                # unmatched: never ready
            if rdv(events[sid].nelems):
                park = ready.get(sid)
                if park is None:
                    return False
                end = max(clock[rank], park) + w_transfer(ev.nelems)
                comm[rank] += end - clock[rank]
                clock[rank] = end
                completion[sid] = end
            else:
                arr = arrival.get(sid)
                if arr is None:
                    return False
                wait = max(clock[rank], arr) - clock[rank]
                comm[rank] += wait
                clock[rank] = max(clock[rank], arr)
            pack = spec.pack_time(ev.nelems) * f
            clock[rank] += pack
            compute[rank] += pack
        else:                               # pragma: no cover
            raise AssertionError(f"unknown event kind {ev.kind!r}")
        ptr[rank] += 1
        return True

    live = {r for r in range(nranks) if ptr[r] < len(order[r])}
    while live:
        progressed = False
        for rank in sorted(live):
            while ptr[rank] < len(order[rank]) and step(rank):
                progressed = True
            if ptr[rank] >= len(order[rank]):
                live.discard(rank)
        if live and not progressed:
            return SweepResult(
                makespan=float("inf"),
                clocks=tuple(clock),
                compute_time=tuple(compute),
                comm_time=tuple(comm),
                tile_compute_time=tuple(tile_compute),
                stuck=True,
                stuck_ranks=tuple(sorted(live)),
            )
    return SweepResult(
        makespan=max(clock) if clock else 0.0,
        clocks=tuple(clock),
        compute_time=tuple(compute),
        comm_time=tuple(comm),
        tile_compute_time=tuple(tile_compute),
        stuck=False,
        stuck_ranks=(),
    )
