"""The ``analyze --cost`` driver: certify and collect diagnostics.

Thin like :func:`repro.analysis.hb.check_hb` — the heavy lifting lives
in :func:`repro.analysis.cost.certify.certify_cost`; this entry point
just routes through the program's certificate cache and, when the
cluster model carries a rendezvous threshold, certifies the ``spec``
protocol too (a threshold can turn eager sends into handshakes, which
changes the critical path and can even deadlock — COST03 reports
that).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:
    from repro.runtime.executor import TiledProgram
    from repro.runtime.machine import ClusterSpec


def check_cost(program: "TiledProgram", *,
               spec: Optional["ClusterSpec"] = None,
               mailbox_depth: int = 8,
               bound_factor: float = 2.0) -> List[Diagnostic]:
    """All COST findings for one program (the ``analyze --cost`` pass).

    Certifies under the eager protocol (the runtime default); when
    ``spec`` carries a rendezvous threshold the ``spec`` protocol is
    certified too.  Duplicate findings (same code on the same subject
    under both protocols) are kept — each names its protocol.
    """
    diags: List[Diagnostic] = []
    protocols = ["eager"]
    if spec is not None and spec.rendezvous_threshold is not None:
        protocols.append("spec")
    for protocol in protocols:
        cert = program.cost_certificate(
            protocol=protocol, mailbox_depth=mailbox_depth, spec=spec,
            bound_factor=bound_factor)
        diags.extend(cert.diagnostics)
    return diags
