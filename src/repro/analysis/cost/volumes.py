"""Closed-form communication/computation volumes (COST01 / COST02).

The per-edge element counts are derived from the TTIS geometry alone:
a pack region toward direction ``d`` is the set of lattice points with
``j'_k >= d_k * cc_k`` (paper §3.2), and the HNF strides/offsets give
the lattice structure, so the region size is a product of per-row
counts — no mask, no execution.  Partial boundary tiles are clipped by
the domain and fall back to the program's exact mask counts (their
geometry is not expressible in closed form).

Two independent paths compute every edge total:

* **path A** (this module): closed-form counting from ``(v, c, HNF,
  CC)`` plus the schedule structure;
* **path B** (the oracle): the frozen :func:`build_rank_plans` lists,
  whose sizes come from the program's region masks.

``certify_cost`` compares them edge by edge and emits a ``COST01``
error on any disagreement — that is what catches the seeded
miscomputations of the known-bad corpus (wrong stride, off-by-one
halo, dropped CC edge).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.runtime.executor import TiledProgram
    from repro.tiling.ttis import TTIS

Chan = Tuple[int, int, int]             # (src_rank, dst_rank, tag)


def closed_form_region_count(ttis: "TTIS",
                             lower_bounds: Sequence[int],
                             mutation: Optional[str] = None) -> int:
    """Lattice points of the TTIS rectangle with ``j'_k >= lb_k``.

    Exact closed form over the HNF lattice: dimension ``k`` contributes
    the rows ``start_k, start_k + c_k, ...`` (``v_k / c_k`` of them)
    where the phase ``start_k`` is fixed by the outer coordinates
    through the HNF subdiagonal offsets.  When a deeper dimension's
    phase depends on ``x_k`` the recursion enumerates the admissible
    rows; otherwise the per-row count multiplies straight through —
    ``O(n)`` for unimodular ``H'`` (all strides 1).
    """
    n = ttis.n
    hnf = ttis.hnf.to_int_rows()
    if mutation == "wrong_stride":
        # Seeded bug: ignore the HNF strides — count the full integer
        # box as if H' were unimodular.
        c: Tuple[int, ...] = (1,) * n
        rows = tuple(ttis.v)
    else:
        c = ttis.c
        rows = ttis.rows_per_dim
    lbs = tuple(int(x) for x in lower_bounds)
    if all(ck == 1 for ck in c):
        count = 1
        for k in range(n):
            count *= max(0, ttis.v[k] - max(0, lbs[k]))
        return count

    def rec(k: int, coeffs: Tuple[int, ...]) -> int:
        if k == n:
            return 1
        phase = sum(hnf[k][z] * coeffs[z] for z in range(k))
        ck = c[k]
        start = phase % ck
        x_start = (start - phase) // ck
        lb = max(0, lbs[k])
        idx0 = 0 if lb <= start else -(-(lb - start) // ck)
        if idx0 >= rows[k]:
            return 0
        if all(hnf[d][k] == 0 for d in range(k + 1, n)):
            return (rows[k] - idx0) * rec(k + 1, coeffs + (x_start,))
        return sum(rec(k + 1, coeffs + (x_start + idx,))
                   for idx in range(idx0, rows[k]))

    return rec(0, ())


def _pack_lower_bounds(program: "TiledProgram",
                       direction: Sequence[int],
                       mutation: Optional[str]) -> Tuple[int, ...]:
    """Path A's own ``max(0, d_k * cc_k)`` (paper SEND/RECEIVE bounds).

    Recomputed from ``cc`` rather than delegated to
    ``CommunicationSpec.pack_lower_bounds`` so the ``off_by_one_halo``
    mutation can seed the classic halo bug (``cc_k - 1``).
    """
    comm = program.comm
    off = 1 if mutation == "off_by_one_halo" else 0
    lbs: List[int] = []
    for k in range(program.n):
        if k == comm.m or direction[k] <= 0:
            lbs.append(0)
        else:
            lbs.append(max(0, direction[k] * (comm.cc[k] - off)))
    return tuple(lbs)


def edge_volumes(program: "TiledProgram",
                 mutation: Optional[str] = None,
                 ) -> Tuple[Dict[Chan, int], Dict[Chan, int]]:
    """Path A: closed-form per-edge ``(messages, elements)`` totals.

    Walks the schedule structure (which tiles send along which ``d^m``)
    and sizes every message analytically: interior tiles through
    :func:`closed_form_region_count`, boundary tiles through the exact
    masks (cached on the program).
    """
    narr = len(program.arrays)
    dist, comm, tiling = program.dist, program.comm, program.tiling
    ttis = tiling.ttis
    messages: Dict[Chan, int] = {}
    elements: Dict[Chan, int] = {}
    d_m = comm.d_m
    if mutation == "dropped_cc_edge" and len(d_m) > 0:
        # Seeded bug: forget the last processor dependence entirely.
        d_m = d_m[:-1]
    full_counts: Dict[Tuple[int, ...], int] = {}
    for pid in program.pids:
        rank = program.rank_of[pid]
        for tile in dist.tiles_of(pid):
            for dm, dst in program.send_plan(tile):
                if dm not in d_m:
                    continue
                full_dir = dm[:dist.m] + (0,) + dm[dist.m:]
                if tiling.classify_tile(tile) == "full":
                    count = full_counts.get(full_dir)
                    if count is None:
                        count = closed_form_region_count(
                            ttis,
                            _pack_lower_bounds(program, full_dir,
                                               mutation),
                            mutation=mutation)
                        full_counts[full_dir] = count
                else:
                    count = program.region_count(tile, full_dir)
                nelems = count * narr
                if nelems == 0:
                    continue
                chan = (rank, program.rank_of[dst],
                        program.message_tag(dm))
                messages[chan] = messages.get(chan, 0) + 1
                elements[chan] = elements.get(chan, 0) + nelems
    return messages, elements


def plan_edge_volumes(program: "TiledProgram",
                      ) -> Tuple[Dict[Chan, int], Dict[Chan, int]]:
    """Path B (oracle): totals replayed from the frozen rank plans —
    exactly the messages the simulator and the parallel runtime move."""
    from repro.runtime.parallel import build_rank_plans

    messages: Dict[Chan, int] = {}
    elements: Dict[Chan, int] = {}
    for rank, plan in build_rank_plans(program).items():
        for sends in plan.sends:
            for s in sends:
                chan = (rank, s.dst_rank, s.tag)
                messages[chan] = messages.get(chan, 0) + 1
                elements[chan] = elements.get(chan, 0) + s.nelems
    return messages, elements


def rank_volumes(program: "TiledProgram") -> Dict[int, int]:
    """COST02: iteration points owned by each rank (closed form for
    interior tiles — every full tile computes ``|det P|`` points)."""
    tiling = program.tiling
    vol = tiling.tile_volume()
    points: Dict[int, int] = {}
    for pid in program.pids:
        rank = program.rank_of[pid]
        total = 0
        for tile in program.dist.tiles_of(pid):
            if tiling.classify_tile(tile) == "full":
                total += vol
            else:
                total += program.tile_point_count(tile)
        points[rank] = total
    return points
