"""Static cost certification of a :class:`TiledProgram` (COST01-04).

The cost certifier computes, without executing anything, the exact
communication and computation volumes of the frozen schedule and the
machine-model makespan of its critical path, then certifies the tile
shape against the Dinh & Demmel communication lower bound:

* **COST01** — per-edge message counts and element/byte volumes, from
  the TTIS geometry (``H'``, HNF strides, ``CC``) in closed form,
  cross-checked against an independent replay of the frozen plans;
* **COST02** — per-rank computation volumes and the load-imbalance
  ratio of the distribution;
* **COST03** — the critical-path makespan under the cluster model: a
  longest-path sweep of the happens-before graph with the simulator's
  exact per-event clock arithmetic (bitwise equal to
  ``DistributedRun.simulate()`` on matching configurations);
* **COST04** — lower-bound certification: a warning naming the
  violating dimension and a rescaling direction when the shape's
  per-tile communication exceeds the closed-form lower bound by more
  than a configurable factor.

Entry points: :func:`certify_cost` /
:meth:`repro.runtime.executor.TiledProgram.cost_certificate` and the
CLI ``repro analyze --cost``.
"""

from repro.analysis.cost.bound import communication_lower_bound
from repro.analysis.cost.certify import (
    MUTATIONS,
    PASS_COST,
    BoundCheck,
    CostCertificate,
    EdgeCost,
    RankCost,
    certify_cost,
)
from repro.analysis.cost.driver import check_cost
from repro.analysis.cost.makespan import analytic_makespan
from repro.analysis.cost.volumes import (
    closed_form_region_count,
    edge_volumes,
    rank_volumes,
)

__all__ = [
    "MUTATIONS",
    "PASS_COST",
    "BoundCheck",
    "CostCertificate",
    "EdgeCost",
    "RankCost",
    "analytic_makespan",
    "certify_cost",
    "check_cost",
    "closed_form_region_count",
    "communication_lower_bound",
    "edge_volumes",
    "rank_volumes",
]
