"""The cost certificate: COST01-04 assembled, self-checked, JSON-able.

``certify_cost`` computes every closed-form quantity (per-edge volumes,
per-rank compute, analytic makespan, lower bound), cross-checks each
against an independent path, and returns a :class:`CostCertificate`
carrying the numbers plus any diagnostics:

========  =========================================================
``COST01``  closed-form per-edge volume disagrees with the frozen
            plan replay (or an edge is missing/spurious)
``COST02``  informational: per-rank compute volumes / imbalance
``COST03``  makespan sweep inconsistent (compute accounting does not
            reproduce the closed-form rank volumes) or stuck
            (schedule deadlocks under the analyzed protocol)
``COST04``  tile shape exceeds the communication lower bound by more
            than the configured factor (warning), or the bound's
            AM-GM self-check fails (error)
========  =========================================================

``mutation=`` seeds one of :data:`MUTATIONS` into the computation —
the known-bad corpus proves every seeded miscomputation is caught by
one of the cross-checks above (same idiom as the ring model checker's
mutation corpus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.analysis.cost.bound import communication_lower_bound
from repro.analysis.cost.makespan import SweepResult, analytic_makespan
from repro.analysis.cost.volumes import (
    edge_volumes,
    plan_edge_volumes,
    rank_volumes,
)
from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.runtime.machine import FAST_ETHERNET_CLUSTER, ClusterSpec

if TYPE_CHECKING:
    from repro.runtime.executor import TiledProgram

PASS_COST = "cost"

#: Seeded miscomputations of the known-bad corpus.  Each one is a
#: classic cost-model bug; the certifier's built-in cross-checks must
#: reject every one of them with the named diagnostic.
MUTATIONS: Dict[str, str] = {
    "wrong_stride":
        "ignore the HNF strides when counting pack-region lattice "
        "points (COST01: closed form disagrees with the plan replay)",
    "off_by_one_halo":
        "size pack regions with cc_k - 1 instead of cc_k "
        "(COST01: every full-tile message is one slab too large)",
    "dropped_cc_edge":
        "forget the last processor dependence d^m entirely "
        "(COST01: the oracle sees edges the closed form lost)",
    "swapped_edge_weight":
        "swap the compute and transfer weights in the makespan sweep "
        "(COST03: compute accounting stops matching the closed-form "
        "rank volumes)",
    "bad_lower_bound_constant":
        "double the lower-bound constant (COST04: the AM-GM "
        "self-check rejects a floor that exceeds the face sum)",
}

#: Relative tolerance of the COST03 compute-accounting self-check:
#: the sweep accumulates per-tile, the closed form multiplies totals,
#: so the two differ only by float summation order.
_COMPUTE_RTOL = 1e-9


@dataclass(frozen=True)
class EdgeCost:
    """COST01: one directed channel's closed-form totals."""

    src_rank: int
    dst_rank: int
    tag: int
    messages: int
    elements: int
    nbytes: int


@dataclass(frozen=True)
class RankCost:
    """COST02: one rank's computation volume."""

    rank: int
    points: int
    compute_seconds: float


@dataclass(frozen=True)
class BoundCheck:
    """COST04: the lower-bound certification verdict."""

    applicable: bool
    bound_elements: float               # q_lb per interior tile, per array
    actual_elements: int                # interior tile comm, per array
    ratio: float                        # actual / bound (0 if n/a)
    factor: float                       # configured warning threshold
    worst_dim: int
    suggestion: str


@dataclass(frozen=True)
class CostCertificate:
    """Everything the static cost pass proved about one program."""

    protocol: str
    overlap: bool                       # spec.overlap (the model's)
    mailbox_depth: int
    edges: Tuple[EdgeCost, ...]
    total_messages: int
    total_elements: int
    total_bytes: int
    ranks: Tuple[RankCost, ...]
    imbalance: float                    # max/mean rank points (1.0 = flat)
    makespan: float                     # inf if the sweep stuck
    rank_clocks: Tuple[float, ...]
    bound: BoundCheck
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not any(d.severity == ERROR for d in self.diagnostics)

    def channel_messages(self) -> Dict[Tuple[int, int, int], int]:
        """COST01 totals keyed like ``RunStats.channel_messages``."""
        return {(e.src_rank, e.dst_rank, e.tag): e.messages
                for e in self.edges}

    def channel_elements(self) -> Dict[Tuple[int, int, int], int]:
        return {(e.src_rank, e.dst_rank, e.tag): e.elements
                for e in self.edges}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pass": PASS_COST,
            "protocol": self.protocol,
            "overlap": self.overlap,
            "mailbox_depth": self.mailbox_depth,
            "edges": [
                {"src": e.src_rank, "dst": e.dst_rank, "tag": e.tag,
                 "messages": e.messages, "elements": e.elements,
                 "bytes": e.nbytes}
                for e in self.edges
            ],
            "totals": {"messages": self.total_messages,
                       "elements": self.total_elements,
                       "bytes": self.total_bytes},
            "ranks": [
                {"rank": r.rank, "points": r.points,
                 "compute_seconds": r.compute_seconds}
                for r in self.ranks
            ],
            "imbalance": self.imbalance,
            "makespan": (None if self.makespan == float("inf")
                         else self.makespan),
            "rank_clocks": [None if c == float("inf") else c
                            for c in self.rank_clocks],
            "bound": {
                "applicable": self.bound.applicable,
                "bound_elements": self.bound.bound_elements,
                "actual_elements": self.bound.actual_elements,
                "ratio": self.bound.ratio,
                "factor": self.bound.factor,
                "worst_dim": self.bound.worst_dim,
                "suggestion": self.bound.suggestion,
            },
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def certify_cost(program: "TiledProgram",
                 spec: Optional[ClusterSpec] = None,
                 protocol: str = "eager",
                 mailbox_depth: int = 8,
                 bound_factor: float = 2.0,
                 mutation: Optional[str] = None) -> CostCertificate:
    """Run the full static cost analysis over one program."""
    if mutation is not None and mutation not in MUTATIONS:
        raise ValueError(f"unknown mutation {mutation!r}; "
                         f"known: {sorted(MUTATIONS)}")
    if spec is None:
        spec = FAST_ETHERNET_CLUSTER
    program.prewarm_region_counts()
    diags: List[Diagnostic] = []

    # -- COST01: closed form vs the frozen plan replay -------------------------
    a_msgs, a_elems = edge_volumes(program, mutation=mutation)
    b_msgs, b_elems = plan_edge_volumes(program)
    for chan in sorted(set(a_msgs) | set(b_msgs)):
        am, ae = a_msgs.get(chan, 0), a_elems.get(chan, 0)
        bm, be = b_msgs.get(chan, 0), b_elems.get(chan, 0)
        if (am, ae) != (bm, be):
            diags.append(Diagnostic(
                code="COST01", severity=ERROR, pass_name=PASS_COST,
                message=(
                    f"closed-form edge volume disagrees with the plan "
                    f"replay on channel {chan}: analytic "
                    f"{am} msgs / {ae} elems, replay "
                    f"{bm} msgs / {be} elems"),
                equation=("pack region = {j' : j'_k >= d_k cc_k} "
                          "(§3.2 SEND)"),
                subject=(("channel", chan),
                         ("analytic", (am, ae)),
                         ("replay", (bm, be))),
                suggestion=("the closed-form lattice counting and the "
                            "region masks must agree; check strides, "
                            "cc and the D^m enumeration"),
            ))
    edges = tuple(
        EdgeCost(src_rank=chan[0], dst_rank=chan[1], tag=chan[2],
                 messages=a_msgs[chan], elements=a_elems[chan],
                 nbytes=a_elems[chan] * spec.bytes_per_element)
        for chan in sorted(a_msgs))
    total_messages = sum(e.messages for e in edges)
    total_elements = sum(e.elements for e in edges)

    # -- COST02: rank volumes and imbalance ------------------------------------
    points = rank_volumes(program)
    ranks = tuple(
        RankCost(rank=r, points=points[r],
                 compute_seconds=(spec.compute_time(points[r])
                                  * spec.node_speed_factor(r)))
        for r in sorted(points))
    mean_pts = (sum(points.values()) / len(points)) if points else 0.0
    imbalance = (max(points.values()) / mean_pts
                 if mean_pts > 0 else 1.0)

    # -- COST03: critical-path makespan ----------------------------------------
    sweep = analytic_makespan(program, spec=spec, protocol=protocol,
                              mailbox_depth=mailbox_depth,
                              mutation=mutation)
    if sweep.stuck:
        diags.append(Diagnostic(
            code="COST03", severity=ERROR, pass_name=PASS_COST,
            message=(
                f"critical-path sweep deadlocked under protocol "
                f"{protocol!r} (ranks {list(sweep.stuck_ranks)} can "
                f"never progress); the makespan is undefined"),
            equation="longest path over the HB graph (Hockney a+n/b)",
            subject=(("protocol", protocol),
                     ("stuck_ranks", sweep.stuck_ranks)),
            suggestion=("run the HB certifier (repro analyze --hb) "
                        "for the wait cycle; eager protocols or "
                        "deeper mailboxes usually break it"),
        ))
    else:
        _check_compute_accounting(sweep, ranks, diags)

    # -- COST04: lower-bound certification -------------------------------------
    lb = communication_lower_bound(program, mutation=mutation)
    ratio = (lb.actual_elements / lb.bound_elements
             if lb.applicable and lb.bound_elements > 0 else 0.0)
    suggestion = ""
    if lb.applicable and lb.worst_dim >= 0:
        suggestion = (
            f"dimension {lb.worst_dim} dominates the tile surface; "
            f"grow v_{lb.worst_dim} (and shrink the cheap dimensions "
            f"to keep the volume) toward balanced r_k/v_k")
    if not lb.selfcheck_ok:
        diags.append(Diagnostic(
            code="COST04", severity=ERROR, pass_name=PASS_COST,
            message=(
                f"lower-bound self-check failed: the computed floor "
                f"{lb.bound_elements:.6g} exceeds the face sum "
                f"{lb.face_sum:.6g} it is supposed to bound from "
                f"below (AM-GM violated)"),
            equation="|K| (prod face_k)^(1/|K|) <= sum face_k (AM-GM)",
            subject=(("bound", lb.bound_elements),
                     ("face_sum", lb.face_sum),
                     ("dims", lb.dims)),
            suggestion="the bound constant is miscomputed",
        ))
    elif lb.applicable and ratio > bound_factor:
        diags.append(Diagnostic(
            code="COST04", severity=WARNING, pass_name=PASS_COST,
            message=(
                f"tile shape moves {ratio:.2f}x the communication "
                f"lower bound ({lb.actual_elements} vs "
                f"{lb.bound_elements:.1f} elements per interior tile; "
                f"threshold {bound_factor:.2f}x); dimension "
                f"{lb.worst_dim} dominates"),
            equation=("Q >= |K| (prod_k r_k V / v_k)^(1/|K|) "
                      "(Dinh & Demmel)"),
            subject=(("ratio", ratio),
                     ("actual_elements", lb.actual_elements),
                     ("bound_elements", lb.bound_elements),
                     ("worst_dim", lb.worst_dim)),
            suggestion=suggestion,
        ))

    return CostCertificate(
        protocol=protocol,
        overlap=spec.overlap,
        mailbox_depth=mailbox_depth,
        edges=edges,
        total_messages=total_messages,
        total_elements=total_elements,
        total_bytes=total_elements * spec.bytes_per_element,
        ranks=ranks,
        imbalance=imbalance,
        makespan=sweep.makespan,
        rank_clocks=sweep.clocks,
        bound=BoundCheck(
            applicable=lb.applicable,
            bound_elements=lb.bound_elements,
            actual_elements=lb.actual_elements,
            ratio=ratio,
            factor=bound_factor,
            worst_dim=lb.worst_dim,
            suggestion=suggestion,
        ),
        diagnostics=tuple(diags),
    )


def _check_compute_accounting(sweep: SweepResult,
                              ranks: Tuple[RankCost, ...],
                              diags: List[Diagnostic]) -> None:
    """COST03 self-check: the sweep's accumulated COMPUTE time must
    reproduce the closed-form rank volumes (COST02) — a swapped or
    misscaled edge weight cannot survive this."""
    for rc in ranks:
        got = sweep.tile_compute_time[rc.rank]
        want = rc.compute_seconds
        tol = _COMPUTE_RTOL * max(1.0, abs(want))
        if abs(got - want) > tol:
            diags.append(Diagnostic(
                code="COST03", severity=ERROR, pass_name=PASS_COST,
                message=(
                    f"makespan sweep compute accounting broken on rank "
                    f"{rc.rank}: accumulated {got:.9g}s of COMPUTE "
                    f"weight but the closed-form volume predicts "
                    f"{want:.9g}s"),
                equation="sum_t w_compute(points_t) = t_c * points(rank)",
                subject=(("rank", rc.rank), ("swept", got),
                         ("closed_form", want)),
                suggestion=("an edge weight in the sweep does not use "
                            "the compute model it claims to"),
            ))
