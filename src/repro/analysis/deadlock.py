"""Static deadlock checker over abstract rank programs.

The vMPI engine (:mod:`repro.runtime.vmpi`) raises ``DeadlockError`` at
*runtime* when no rank can progress.  This pass proves the same
property at *compile time* by abstractly executing the per-rank
Send/Recv sequences of a :class:`~repro.analysis.schedule_model.ScheduleModel`
(or any hand-written op lists) under MPI point-to-point semantics:
FIFO per ``(src, dest, tag)`` channel, blocking receives, and —
conservatively — fully synchronous sends (the rendezvous protocol of
``ClusterSpec.rendezvous_threshold``; any program deadlock-free under
synchronous sends is deadlock-free under the eager protocol too).

Three families of findings:

* ``DL01``/``DL02`` — per-channel multiset mismatches (a receive with
  no send, a send with no receive);
* ``DL04`` — FIFO position size mismatches (the executor's runtime
  ``assert got == nelems`` made static);
* ``DL03`` — order-induced cyclic waits even when every multiset
  matches (the classic crossed recv/recv or sync send/send cycle).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.schedule_model import RecvOp, ScheduleModel, SendOp

PASS = "deadlock"
_EQ_CHANNEL = "each (src, dest, tag) FIFO channel must carry equal " \
    "send/recv multisets (SEND/RECEIVE, §3.2)"


def _normalize(ops_by_rank: Dict[int, Sequence[object]]
               ) -> Dict[int, List[object]]:
    """Accept ``RecvOp``/``SendOp`` or raw ``vmpi.Send``/``vmpi.Recv``."""
    from repro.runtime.vmpi import Recv as VRecv, Send as VSend
    out: Dict[int, List[object]] = {}
    for rank, seq in ops_by_rank.items():
        norm: List[object] = []
        for op in seq:
            if isinstance(op, (RecvOp, SendOp)):
                norm.append(op)
            elif isinstance(op, VRecv):
                norm.append(RecvOp(source=op.source, tag=op.tag))
            elif isinstance(op, VSend):
                norm.append(SendOp(dest=op.dest, tag=op.tag,
                                   nelems=op.nelems))
            else:
                raise TypeError(f"rank {rank}: unknown op {op!r}")
        out[rank] = norm
    return out


def _subject(rank: int, op: object) -> Tuple[Tuple[str, object], ...]:
    items: List[Tuple[str, object]] = [("rank", rank)]
    if isinstance(op, RecvOp):
        items += [("source", op.source), ("tag", op.tag)]
    elif isinstance(op, SendOp):
        items += [("dest", op.dest), ("tag", op.tag)]
    for name in ("tile", "step"):
        val = getattr(op, name, None)
        if val is not None:
            items.append((name, val))
    return tuple(items)


def _check_channels(ops: Dict[int, List[object]]) -> List[Diagnostic]:
    """Multiset + FIFO-size agreement per channel (DL01/DL02/DL04)."""
    sends: Dict[Tuple[int, int, int], List[SendOp]] = {}
    recvs: Dict[Tuple[int, int, int], List[Tuple[int, RecvOp]]] = {}
    for rank, seq in ops.items():
        for op in seq:
            if isinstance(op, SendOp):
                sends.setdefault((rank, op.dest, op.tag), []).append(op)
            else:
                recvs.setdefault((op.source, rank, op.tag), []) \
                    .append((rank, op))
    diags: List[Diagnostic] = []
    for key in sorted(set(sends) | set(recvs)):
        src, dst, tag = key
        ss = sends.get(key, [])
        rr = recvs.get(key, [])
        if len(rr) > len(ss):
            rank, op = rr[len(ss)]
            diags.append(Diagnostic(
                code="DL01", severity=ERROR, pass_name=PASS,
                message=f"rank {dst} posts {len(rr)} receive(s) on channel "
                        f"(src={src}, tag={tag}) but only {len(ss)} "
                        f"send(s) are ever issued; the extra receive "
                        f"blocks forever",
                equation=_EQ_CHANNEL,
                subject=_subject(rank, op),
                suggestion="emit the missing SEND (check send_plan / "
                           "minsucc aggregation for this d^m)",
            ))
        elif len(ss) > len(rr):
            op = ss[len(rr)]
            diags.append(Diagnostic(
                code="DL02", severity=WARNING, pass_name=PASS,
                message=f"rank {src} issues {len(ss)} send(s) on channel "
                        f"(dest={dst}, tag={tag}) but only {len(rr)} "
                        f"receive(s) are posted; the message is never "
                        f"consumed",
                equation=_EQ_CHANNEL,
                subject=_subject(src, op),
                suggestion="drop the send or post the matching RECEIVE",
            ))
        for pos, (s_op, (r_rank, r_op)) in enumerate(zip(ss, rr)):
            if (s_op.nelems is not None and r_op.nelems is not None
                    and s_op.nelems != r_op.nelems):
                diags.append(Diagnostic(
                    code="DL04", severity=ERROR, pass_name=PASS,
                    message=f"FIFO position {pos} of channel (src={src}, "
                            f"dest={dst}, tag={tag}): send carries "
                            f"{s_op.nelems} elements but the receive "
                            f"expects {r_op.nelems}",
                    equation="pack and unpack regions must agree: "
                             "|region(pred, d^S)| x |arrays| (SEND/RECEIVE)",
                    subject=_subject(r_rank, r_op),
                    suggestion="pack region and unpack region diverged; "
                               "check pack_lower_bounds / region_count",
                ))
                break
    return diags


class _RankState:
    __slots__ = ("rank", "seq", "pc", "parked")

    def __init__(self, rank: int, seq: List[object]):
        self.rank = rank
        self.seq = seq
        self.pc = 0
        self.parked = False     # blocked in a synchronous send handshake

    @property
    def done(self) -> bool:
        return self.pc >= len(self.seq)

    @property
    def current(self) -> Optional[object]:
        return None if self.done else self.seq[self.pc]


def _abstract_run(ops: Dict[int, List[object]],
                  synchronous: bool) -> Tuple[bool, Dict[int, _RankState],
                                              Dict[Tuple[int, int, int],
                                                   List[int]]]:
    """Run the channel machine to completion or a stuck state.

    Returns ``(completed, states, leftover_channels)`` where
    ``leftover_channels`` maps channels to sender ranks of messages
    enqueued but never received (eager mode only).
    """
    states = {r: _RankState(r, seq) for r, seq in sorted(ops.items())}
    # channel -> list of sender ranks with an outstanding (un-received)
    # message, FIFO order; in synchronous mode the sender is parked on it.
    channels: Dict[Tuple[int, int, int], List[int]] = {}
    progressed = True
    while progressed:
        progressed = False
        for rank in sorted(states):
            st = states[rank]
            if st.parked:
                continue    # waiting for a receiver to complete the handshake
            while not st.done:
                op = st.current
                if isinstance(op, SendOp):
                    key = (rank, op.dest, op.tag)
                    channels.setdefault(key, []).append(rank)
                    if synchronous:
                        # Park until the receiver consumes this message;
                        # the matcher below advances our pc.
                        st.parked = True
                        progressed = True
                        break
                    st.pc += 1
                    progressed = True
                    continue
                # RecvOp: consume the oldest outstanding send, if any.
                key = (op.source, rank, op.tag)
                queue = channels.get(key)
                if not queue:
                    break       # truly blocked
                sender = queue.pop(0)
                s_st = states[sender]
                if synchronous and s_st.parked and not s_st.done and \
                        isinstance(s_st.current, SendOp) and \
                        (sender, s_st.current.dest, s_st.current.tag) == key:
                    s_st.parked = False
                    s_st.pc += 1
                st.pc += 1
                progressed = True
    completed = all(st.done and not st.parked for st in states.values())
    leftover = {k: v for k, v in channels.items() if v}
    return completed, states, leftover


def _wait_edges(states: Dict[int, _RankState]) -> Dict[int, int]:
    """Who each stuck rank is waiting for (one edge per rank)."""
    edges: Dict[int, int] = {}
    for rank, st in states.items():
        if st.done and not st.parked:
            continue
        op = st.current
        if isinstance(op, RecvOp):
            edges[rank] = op.source
        elif isinstance(op, SendOp):
            edges[rank] = op.dest
    return edges


def _find_cycle(edges: Dict[int, int]) -> Optional[List[int]]:
    for start in sorted(edges):
        seen: List[int] = []
        cur = start
        while cur in edges and cur not in seen:
            seen.append(cur)
            cur = edges[cur]
        if cur in seen:
            return seen[seen.index(cur):]
    return None


def check_deadlock(ops_by_rank: Dict[int, Sequence[object]],
                   synchronous: bool = True) -> List[Diagnostic]:
    """All deadlock findings for a set of per-rank op sequences."""
    ops = _normalize(ops_by_rank)
    diags = _check_channels(ops)
    completed, states, leftover = _abstract_run(ops, synchronous)
    if not completed:
        edges = _wait_edges(states)
        cycle = _find_cycle(edges)
        channel_errors = {d.code for d in diags} & {"DL01"}
        if cycle:
            waits = []
            for r in cycle:
                op = states[r].current
                kind = "recv" if isinstance(op, RecvOp) else "send"
                peer = op.source if isinstance(op, RecvOp) else op.dest
                waits.append(f"rank {r} blocked on {kind}"
                             f"(peer={peer}, tag={op.tag})")
            diags.append(Diagnostic(
                code="DL03", severity=ERROR, pass_name=PASS,
                message="cyclic wait among ranks "
                        f"{' -> '.join(str(r) for r in cycle)} -> "
                        f"{cycle[0]}: " + "; ".join(waits),
                equation="the wait-for graph of blocked ranks must be "
                         "acyclic (vMPI blocking semantics)",
                subject=(("cycle", tuple(cycle)),),
                suggestion="reorder the receives to match the senders' "
                           "issue order, or break the send/send cycle "
                           "with buffering",
            ))
        elif not channel_errors:
            stuck = sorted(r for r, st in states.items()
                           if not st.done or st.parked)
            rank = stuck[0]
            diags.append(Diagnostic(
                code="DL01", severity=ERROR, pass_name=PASS,
                message=f"ranks {stuck} cannot progress: blocked on "
                        "operations whose peers have already finished",
                equation=_EQ_CHANNEL,
                subject=_subject(rank, states[rank].current),
                suggestion="check the send/recv pairing of the stuck "
                           "channels",
            ))
    return diags


def check_program_deadlock(model: ScheduleModel,
                           synchronous: Optional[bool] = None
                           ) -> List[Diagnostic]:
    """Deadlock findings for a compiled program's schedule model.

    With ``synchronous=None`` (default) both protocols are analyzed:
    findings under the *eager* protocol — the default
    ``ClusterSpec(rendezvous_threshold=None)`` — are reported at their
    natural severity (the runtime would raise ``DeadlockError``), while
    cyclic waits that appear only under fully *synchronous* sends are
    demoted to warnings: they manifest only when a rendezvous threshold
    forces the handshake (a real hazard — several of the paper's own
    tilings deadlock under ``rendezvous_threshold=0`` — but not under
    the default configuration).
    """
    if synchronous is not None:
        return check_deadlock(model.ops, synchronous=synchronous)
    diags = check_deadlock(model.ops, synchronous=False)
    if any(d.severity == ERROR for d in diags):
        return diags
    from dataclasses import replace
    for d in check_deadlock(model.ops, synchronous=True):
        if d.code == "DL03":
            diags.append(replace(
                d, severity=WARNING,
                message=d.message + " — only under the synchronous "
                        "rendezvous protocol (a small enough "
                        "ClusterSpec.rendezvous_threshold); the default "
                        "eager protocol completes",
                suggestion="keep rendezvous_threshold above the message "
                           "sizes, enable overlap, or reorder sends "
                           "along the schedule",
            ))
    return diags
