"""Hermite Normal Form of integer matrices.

The paper needs the *column-style* HNF: for a nonsingular integer matrix
``A`` there is a unimodular ``U`` such that ``B = A @ U`` is lower
triangular with ``b_kk > 0`` and ``0 <= b_kl < b_kk`` for ``l < k``.
The TTIS loop strides are ``c_k = b_kk`` and the incremental offsets are
``a_kl = b_kl`` (paper §2.3, Fig. 2).

We implement HNF by exact integer column operations (extended-gcd
pivoting), track ``U``, and also provide the row-style variant (``B = U
@ A`` upper triangular) used for lattice membership tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.linalg.ratmat import RatMat

IntRows = Tuple[Tuple[int, ...], ...]


def _to_int_rows(a) -> List[List[int]]:
    if isinstance(a, RatMat):
        rows = a.to_int_rows()
    else:
        rows = tuple(tuple(int(x) for x in row) for row in a)
    return [list(r) for r in rows]


def _ext_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return (g, s, t) with g = gcd(a, b) = s*a + t*b, g >= 0."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def column_hnf(a) -> Tuple[RatMat, RatMat]:
    """Column-style Hermite Normal Form.

    Returns ``(B, U)`` with ``B = A @ U`` lower triangular, ``U``
    unimodular, diagonal positive, off-diagonals in each row reduced to
    ``0 <= b_kl < b_kk`` (for columns left of the diagonal).

    ``A`` must be a square nonsingular integer matrix (``RatMat`` with
    integer entries or nested int sequences).
    """
    rows = _to_int_rows(a)
    n = len(rows)
    if any(len(r) != n for r in rows):
        raise ValueError("column_hnf requires a square matrix")
    b = [list(r) for r in rows]
    u = [[int(i == j) for j in range(n)] for i in range(n)]

    def col_combine(j1: int, j2: int, m11: int, m12: int, m21: int, m22: int):
        """Replace cols (j1, j2) by (m11*c1 + m21*c2, m12*c1 + m22*c2)."""
        for mat in (b, u):
            for r in mat:
                c1, c2 = r[j1], r[j2]
                r[j1] = m11 * c1 + m21 * c2
                r[j2] = m12 * c1 + m22 * c2

    for k in range(n):
        # Zero out entries to the right of the diagonal in row k using
        # extended-gcd column combinations on columns (k, j).
        for j in range(k + 1, n):
            akk, akj = b[k][k], b[k][j]
            if akj == 0:
                continue
            g, s, t = _ext_gcd(akk, akj)
            # New col k  = s*col_k + t*col_j        (entry becomes g)
            # New col j  = -(akj/g)*col_k + (akk/g)*col_j  (entry becomes 0)
            col_combine(k, j, s, -(akj // g), t, akk // g)
        if b[k][k] == 0:
            raise ZeroDivisionError("matrix is singular; HNF pivot vanished")
        if b[k][k] < 0:
            for mat in (b, u):
                for r in mat:
                    r[k] = -r[k]
        # Reduce columns to the left of the diagonal: 0 <= b[k][l] < b[k][k]
        for l in range(k):
            q = b[k][l] // b[k][k]  # floor division keeps remainder in [0, c_k)
            if q != 0:
                for mat in (b, u):
                    for r in mat:
                        r[l] -= q * r[k]
    return RatMat(b), RatMat(u)


def row_hnf(a) -> Tuple[RatMat, RatMat]:
    """Row-style HNF: returns ``(B, U)`` with ``B = U @ A`` upper triangular.

    Derived from the column form via transposition.  ``B`` has a positive
    diagonal and, within each column, entries above the diagonal reduced
    modulo the diagonal.
    """
    rows = _to_int_rows(a)
    at = RatMat(rows).transpose()
    bt, ut = column_hnf(at)
    return bt.transpose(), ut.transpose()


def is_column_hnf(b) -> bool:
    """Check the structural invariants of a column-style HNF matrix."""
    rows = _to_int_rows(b)
    n = len(rows)
    for k in range(n):
        if rows[k][k] <= 0:
            return False
        for j in range(k + 1, n):
            if rows[k][j] != 0:
                return False
        for l in range(k):
            if not (0 <= rows[k][l] < rows[k][k]):
                return False
    return True
