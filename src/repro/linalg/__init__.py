"""Exact integer and rational linear algebra.

This package is the arithmetic substrate for the whole compiler: tiling
matrices ``H`` have rational entries, their inverses ``P`` must be exact,
and loop strides/offsets come from the Hermite Normal Form of integer
matrices.  Floating point is never acceptable here — a stride that is off
by one produces wrong code — so everything below is built on
:class:`fractions.Fraction` and Python integers.
"""

from repro.linalg.ratmat import (
    RatMat,
    rat,
    identity,
    diag,
    from_rows,
    lcm,
)
from repro.linalg.hermite import (
    column_hnf,
    row_hnf,
    is_column_hnf,
)
from repro.linalg.smith import smith_normal_form
from repro.linalg.unimodular import is_unimodular, integer_inverse
from repro.linalg.lattice import (
    lattice_contains,
    lattice_points_in_box,
    fundamental_volume,
)

__all__ = [
    "RatMat",
    "rat",
    "identity",
    "diag",
    "from_rows",
    "lcm",
    "column_hnf",
    "row_hnf",
    "is_column_hnf",
    "smith_normal_form",
    "is_unimodular",
    "integer_inverse",
    "lattice_contains",
    "lattice_points_in_box",
    "fundamental_volume",
]
