"""Smith Normal Form of integer matrices.

Used for lattice structure queries: the Smith form ``S = U @ A @ V``
(``U``, ``V`` unimodular, ``S`` diagonal with ``s_1 | s_2 | ...``)
gives the group structure of ``Z^n / A Z^n``, whose order
``s_1 * ... * s_n = |det A|`` is the number of TTIS lattice classes —
a cross-check on tile volume used by the property tests.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.linalg.ratmat import RatMat
from repro.linalg.hermite import _to_int_rows, _ext_gcd


def smith_normal_form(a) -> Tuple[RatMat, RatMat, RatMat]:
    """Return ``(S, U, V)`` with ``S = U @ A @ V`` in Smith Normal Form.

    ``A`` may be any square integer matrix (``RatMat`` or nested ints).
    ``S`` is diagonal with non-negative entries and each diagonal entry
    divides the next.
    """
    s = _to_int_rows(a)
    n = len(s)
    if any(len(r) != n for r in s):
        raise ValueError("smith_normal_form requires a square matrix")
    u = [[int(i == j) for j in range(n)] for i in range(n)]
    v = [[int(i == j) for j in range(n)] for i in range(n)]

    def row_combine(i1: int, i2: int, m11: int, m12: int, m21: int, m22: int):
        for mat in (s, u):
            r1 = mat[i1][:]
            r2 = mat[i2][:]
            mat[i1] = [m11 * x + m12 * y for x, y in zip(r1, r2)]
            mat[i2] = [m21 * x + m22 * y for x, y in zip(r1, r2)]

    def col_combine(j1: int, j2: int, m11: int, m21: int, m12: int, m22: int):
        for mat in (s, v):
            for r in mat:
                c1, c2 = r[j1], r[j2]
                r[j1] = m11 * c1 + m21 * c2
                r[j2] = m12 * c1 + m22 * c2

    for k in range(n):
        while True:
            # Move a nonzero pivot into (k, k) if one exists.
            pivot = None
            for i in range(k, n):
                for j in range(k, n):
                    if s[i][j] != 0:
                        pivot = (i, j)
                        break
                if pivot:
                    break
            if pivot is None:
                break  # remaining block is all zero
            pi, pj = pivot
            if pi != k:
                s[k], s[pi] = s[pi], s[k]
                u[k], u[pi] = u[pi], u[k]
            if pj != k:
                for mat in (s, v):
                    for r in mat:
                        r[k], r[pj] = r[pj], r[k]
            # Clear row k and column k.  When the pivot divides the
            # element use plain elimination — a general Bezout
            # combination there can *swap* rows/columns (ext_gcd(1,1)
            # returns (1,0,1)) and oscillate forever between the row
            # and column passes.
            dirty = False
            for i in range(k + 1, n):
                if s[i][k] != 0:
                    akk, aik = s[k][k], s[i][k]
                    if aik % akk == 0:
                        q = aik // akk
                        row_combine(k, i, 1, 0, -q, 1)
                    else:
                        g, x, y = _ext_gcd(akk, aik)
                        row_combine(k, i, x, y, -(aik // g), akk // g)
                    dirty = True
            for j in range(k + 1, n):
                if s[k][j] != 0:
                    akk, akj = s[k][k], s[k][j]
                    if akj % akk == 0:
                        q = akj // akk
                        # col_j -= q col_k; col_k unchanged
                        col_combine(k, j, 1, 0, -q, 1)
                    else:
                        g, x, y = _ext_gcd(akk, akj)
                        col_combine(k, j, x, y, -(akj // g), akk // g)
                    dirty = True
            if not dirty:
                # Pivot must divide every remaining entry; if not, fold the
                # offending row in and repeat.
                bad = None
                for i in range(k + 1, n):
                    for j in range(k + 1, n):
                        if s[k][k] != 0 and s[i][j] % s[k][k] != 0:
                            bad = i
                            break
                    if bad is not None:
                        break
                if bad is None:
                    break
                row_combine(k, bad, 1, 1, 0, 1)  # add row `bad` to row k
        if s[k][k] < 0:
            s[k] = [-x for x in s[k]]
            u[k] = [-x for x in u[k]]
    return RatMat(s), RatMat(u), RatMat(v)
