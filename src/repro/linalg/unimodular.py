"""Unimodularity checks and exact integer inverses.

Skewing matrices (paper §4) must be unimodular so that the skewed
iteration space is a bijective relabelling of the original one; the HNF
transform matrices ``U`` must be unimodular so no lattice points are
created or destroyed.
"""

from __future__ import annotations

from typing import Sequence

from repro.linalg.ratmat import RatMat


def _as_ratmat(a) -> RatMat:
    return a if isinstance(a, RatMat) else RatMat(a)


def is_unimodular(a) -> bool:
    """True iff ``a`` is a square integer matrix with determinant ±1."""
    m = _as_ratmat(a)
    if not m.is_square() or not m.is_integer():
        return False
    return abs(m.det()) == 1


def integer_inverse(a) -> RatMat:
    """Inverse of an integer matrix, asserting the result is integral.

    Valid exactly when ``a`` is unimodular; used to invert skewing
    matrices and HNF column-operation accumulators.
    """
    m = _as_ratmat(a)
    inv = m.inverse()
    if not inv.is_integer():
        raise ValueError(
            "integer_inverse: matrix is not unimodular, inverse has "
            f"fractional entries (det = {m.det()})"
        )
    return inv
