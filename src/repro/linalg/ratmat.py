"""Exact rational matrices built on :class:`fractions.Fraction`.

``RatMat`` is a small, immutable, dependency-free exact matrix type.  It
is deliberately *not* numpy-backed: the matrices in this compiler are at
most a handful of rows (the loop depth ``n`` is 2-4 in practice) and the
cost of exactness is irrelevant next to the cost of a wrong stride.

The public constructors accept ints, :class:`fractions.Fraction`, or
strings like ``"1/3"`` so that tiling matrices can be written the way the
paper writes them::

    H = from_rows([["1/8", 0, 0], [0, "1/8", 0], ["-1/8", 0, "1/8"]])
"""

from __future__ import annotations

import operator
from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence, Tuple, Union

Scalar = Union[int, Fraction, str]


def rat(x: Scalar) -> Fraction:
    """Coerce ``x`` into an exact :class:`Fraction`.

    Floats are rejected on purpose: a float that *looks* like ``1/3``
    is not ``1/3``, and silently accepting it would poison every exact
    computation downstream.
    """
    if isinstance(x, Fraction):
        return x
    if isinstance(x, bool):  # bool is an int subclass; be strict anyway
        return Fraction(int(x))
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, str):
        return Fraction(x)
    try:
        # Integer-likes (numpy int64, ...) via the index protocol —
        # floats don't implement it, so exactness is preserved.
        return Fraction(operator.index(x))
    except TypeError:
        pass
    raise TypeError(f"cannot build an exact rational from {type(x).__name__}: {x!r}")


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // gcd(a, b)


class RatMat:
    """An immutable exact rational matrix.

    Supports the operations the tiling framework needs: multiplication,
    inverse, determinant, transpose, row/column access, integer checks
    and conversion to nested-int form.  Instances hash and compare by
    value.
    """

    __slots__ = ("_rows", "_shape")

    def __init__(self, rows: Iterable[Iterable[Scalar]]):
        data: Tuple[Tuple[Fraction, ...], ...] = tuple(
            tuple(rat(x) for x in row) for row in rows
        )
        if not data:
            raise ValueError("RatMat must have at least one row")
        width = len(data[0])
        if width == 0:
            raise ValueError("RatMat must have at least one column")
        for row in data:
            if len(row) != width:
                raise ValueError("ragged rows in RatMat")
        self._rows = data
        self._shape = (len(data), width)

    # -- basic introspection ------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def __getitem__(self, idx: Tuple[int, int]) -> Fraction:
        i, j = idx
        return self._rows[i][j]

    def row(self, i: int) -> Tuple[Fraction, ...]:
        return self._rows[i]

    def col(self, j: int) -> Tuple[Fraction, ...]:
        return tuple(row[j] for row in self._rows)

    def rows(self) -> Tuple[Tuple[Fraction, ...], ...]:
        return self._rows

    # -- equality / hashing / repr -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RatMat):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = ", ".join(
            "[" + ", ".join(str(x) for x in row) + "]" for row in self._rows
        )
        return f"RatMat([{body}])"

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "RatMat") -> "RatMat":
        self._check_same_shape(other)
        return RatMat(
            tuple(a + b for a, b in zip(ra, rb))
            for ra, rb in zip(self._rows, other._rows)
        )

    def __sub__(self, other: "RatMat") -> "RatMat":
        self._check_same_shape(other)
        return RatMat(
            tuple(a - b for a, b in zip(ra, rb))
            for ra, rb in zip(self._rows, other._rows)
        )

    def __neg__(self) -> "RatMat":
        return RatMat(tuple(-a for a in row) for row in self._rows)

    def scale(self, k: Scalar) -> "RatMat":
        kk = rat(k)
        return RatMat(tuple(kk * a for a in row) for row in self._rows)

    def __matmul__(self, other: "RatMat") -> "RatMat":
        if self.ncols != other.nrows:
            raise ValueError(
                f"shape mismatch for matmul: {self.shape} @ {other.shape}"
            )
        ocols = other.ncols
        out: List[Tuple[Fraction, ...]] = []
        for row in self._rows:
            out.append(
                tuple(
                    sum((row[k] * other._rows[k][j] for k in range(self.ncols)),
                        Fraction(0))
                    for j in range(ocols)
                )
            )
        return RatMat(out)

    def matvec(self, v: Sequence[Scalar]) -> Tuple[Fraction, ...]:
        """Matrix-vector product with an exact result tuple."""
        if len(v) != self.ncols:
            raise ValueError(f"vector length {len(v)} != ncols {self.ncols}")
        vv = [rat(x) for x in v]
        return tuple(
            sum((row[k] * vv[k] for k in range(self.ncols)), Fraction(0))
            for row in self._rows
        )

    def transpose(self) -> "RatMat":
        return RatMat(
            tuple(self._rows[i][j] for i in range(self.nrows))
            for j in range(self.ncols)
        )

    # -- solving / inverse ------------------------------------------------------

    def det(self) -> Fraction:
        """Determinant via fraction-exact Gaussian elimination."""
        if not self.is_square():
            raise ValueError("determinant of a non-square matrix")
        n = self.nrows
        a = [list(row) for row in self._rows]
        detv = Fraction(1)
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if a[r][col] != 0), None
            )
            if pivot_row is None:
                return Fraction(0)
            if pivot_row != col:
                a[col], a[pivot_row] = a[pivot_row], a[col]
                detv = -detv
            pivot = a[col][col]
            detv *= pivot
            for r in range(col + 1, n):
                if a[r][col] != 0:
                    factor = a[r][col] / pivot
                    for c in range(col, n):
                        a[r][c] -= factor * a[col][c]
        return detv

    def inverse(self) -> "RatMat":
        """Exact inverse via Gauss-Jordan; raises if singular."""
        if not self.is_square():
            raise ValueError("inverse of a non-square matrix")
        n = self.nrows
        a = [list(row) + [Fraction(int(i == j)) for j in range(n)]
             for i, row in enumerate(self._rows)]
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if a[r][col] != 0), None
            )
            if pivot_row is None:
                raise ZeroDivisionError("matrix is singular")
            if pivot_row != col:
                a[col], a[pivot_row] = a[pivot_row], a[col]
            pivot = a[col][col]
            a[col] = [x / pivot for x in a[col]]
            for r in range(n):
                if r != col and a[r][col] != 0:
                    factor = a[r][col]
                    a[r] = [x - factor * y for x, y in zip(a[r], a[col])]
        return RatMat(tuple(row[n:]) for row in a)

    def solve(self, b: Sequence[Scalar]) -> Tuple[Fraction, ...]:
        """Solve ``A x = b`` exactly (square, nonsingular ``A``)."""
        return self.inverse().matvec(b)

    # -- integrality ----------------------------------------------------------

    def is_integer(self) -> bool:
        return all(x.denominator == 1 for row in self._rows for x in row)

    def to_int_rows(self) -> Tuple[Tuple[int, ...], ...]:
        """Return nested-int form; raises if any entry is fractional."""
        if not self.is_integer():
            raise ValueError(f"matrix has non-integer entries: {self!r}")
        return tuple(tuple(int(x) for x in row) for row in self._rows)

    def denominator_lcm_per_row(self) -> Tuple[int, ...]:
        """For each row, the lcm of entry denominators.

        This is exactly the diagonal of the paper's matrix ``V``: the
        smallest positive integer ``v_kk`` such that ``v_kk * h_k`` is an
        integer vector.
        """
        out = []
        for row in self._rows:
            m = 1
            for x in row:
                m = lcm(m, x.denominator)
            out.append(m)
        return tuple(out)

    # -- helpers ---------------------------------------------------------------

    def _check_same_shape(self, other: "RatMat") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    def with_row(self, i: int, new_row: Sequence[Scalar]) -> "RatMat":
        rows = list(self._rows)
        rows[i] = tuple(rat(x) for x in new_row)
        return RatMat(rows)

    def hstack(self, other: "RatMat") -> "RatMat":
        if self.nrows != other.nrows:
            raise ValueError("hstack requires equal row counts")
        return RatMat(ra + rb for ra, rb in zip(self._rows, other._rows))

    def vstack(self, other: "RatMat") -> "RatMat":
        if self.ncols != other.ncols:
            raise ValueError("vstack requires equal column counts")
        return RatMat(self._rows + other._rows)


def from_rows(rows: Iterable[Iterable[Scalar]]) -> RatMat:
    """Public constructor mirroring the paper's row-wise matrix notation."""
    return RatMat(rows)


def identity(n: int) -> RatMat:
    return RatMat(
        tuple(Fraction(int(i == j)) for j in range(n)) for i in range(n)
    )


def diag(entries: Sequence[Scalar]) -> RatMat:
    es = [rat(x) for x in entries]
    n = len(es)
    return RatMat(
        tuple(es[i] if i == j else Fraction(0) for j in range(n))
        for i in range(n)
    )
