"""Native compiled tile-kernel backend.

Turns each app's symbolic kernel expressions (``Statement.expr``) into
a per-program C translation unit, compiles it to a shared object, and
executes tile wavefront levels through ``ctypes`` instead of per-level
numpy dispatch.  Results are bitwise identical (tol=0.0) to the dense
engine; when anything prevents native execution (no C compiler, a
statement without an ``expr``, a non-float64 dtype, a tiling whose
strides don't divide the box) the engines fall back to numpy and record
why.

Modules:

* ``kexpr``   — the kernel expression IR and its C renderer;
* ``emit``    — per-program C translation unit emitter;
* ``compile`` — compiler discovery, fingerprinting, ``cc`` wrapper and
  the content-addressed ``.so`` cache hook;
* ``engine``  — build pipeline plus the per-rank runtime objects the
  dense and parallel engines call.

The package root deliberately avoids importing ``engine`` eagerly: apps
import :mod:`repro.native.kexpr` to declare their statement exprs, and
pulling the full build pipeline (which reaches into ``repro.artifacts``
and thus the executor) into every app import would be both heavy and a
cycle hazard.  ``build_native_library`` and friends resolve lazily.
"""

from typing import Any

_ENGINE_EXPORTS = (
    "NativeKernelLibrary", "RankKernels", "build_native_library",
)

__all__ = list(_ENGINE_EXPORTS)


def __getattr__(name: str) -> Any:  # PEP 562 lazy re-export
    if name in _ENGINE_EXPORTS:
        from repro.native import engine
        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
