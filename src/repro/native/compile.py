"""C compiler discovery, fingerprinting and the ``cc`` wrapper.

The backend must never make a run *fail* for lack of a toolchain: every
entry point here reports absence or breakage through return values /
:class:`NativeCompileError`, and the engine maps those to the numpy
fallback.  Flags are chosen for bitwise reproducibility first and speed
second:

* ``-ffp-contract=off`` — no fused multiply-add: the emitted kernels
  must perform exactly the multiplies and adds numpy performs;
* ``-fno-fast-math`` (explicit even though it is the default) — no
  reassociation, no reciprocal tricks;
* ``-O2 -fPIC -shared`` — the usual shared-object build.

The compiler fingerprint (path + first ``--version`` line, hashed) is
part of the ``.so`` cache key, so upgrading the system compiler — which
may legitimately change generated code — invalidates cached objects
instead of silently serving stale ones.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import List, Optional

#: Candidate driver names probed on PATH, in order, when $CC is unset.
COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: Reproducibility-first flag set (see module docstring).
COMPILE_FLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off",
                 "-fno-fast-math")


class NativeCompileError(RuntimeError):
    """Compiler present but the build failed; carries the diagnostics."""


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler to use, or ``None``.

    ``$CC`` wins when set (even if bogus — pointing ``CC`` at
    ``/bin/false`` is the supported way to force-test the fallback);
    otherwise the first of ``cc``/``gcc``/``clang`` found on PATH.
    """
    env = os.environ.get("CC", "").strip()
    if env:
        parts = env.split()
        path = shutil.which(parts[0])
        return path if path is not None else None
    for cand in COMPILER_CANDIDATES:
        path = shutil.which(cand)
        if path is not None:
            return path
    return None


def compiler_fingerprint(cc: str) -> str:
    """Stable identity of one compiler install: path + version line."""
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True,
            timeout=30, check=False)
        first = (out.stdout or out.stderr).splitlines()
        version = first[0].strip() if first else f"rc={out.returncode}"
    except (OSError, subprocess.TimeoutExpired) as exc:
        version = f"unqueryable:{type(exc).__name__}"
    digest = hashlib.sha256(
        f"{cc}\n{version}".encode()).hexdigest()[:16]
    return f"{digest}"


def compile_shared_object(cc: str, source: str, out_path: str,
                          extra_flags: Optional[List[str]] = None,
                          ) -> None:
    """Compile ``source`` to ``out_path`` atomically.

    The ``.c`` file and a temporary ``.so`` live in a scratch
    directory; only a successful build is ``os.replace``d into place,
    so a concurrent builder of the same key at worst does the work
    twice and the winner's object is always complete.
    """
    out_dir = os.path.dirname(os.path.abspath(out_path)) or "."
    os.makedirs(out_dir, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=out_dir,
                                     prefix=".nativebuild-") as tmp:
        c_path = os.path.join(tmp, "kernels.c")
        so_tmp = os.path.join(tmp, "kernels.so")
        with open(c_path, "w") as fh:
            fh.write(source)
        cmd = [cc, *COMPILE_FLAGS, *(extra_flags or []),
               c_path, "-o", so_tmp]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=300, check=False)
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise NativeCompileError(
                f"{cc} failed to run: {exc}") from exc
        if proc.returncode != 0 or not os.path.exists(so_tmp):
            detail = (proc.stderr or proc.stdout or "").strip()
            raise NativeCompileError(
                f"{cc} exited {proc.returncode}: {detail[:2000]}")
        os.replace(so_tmp, out_path)
