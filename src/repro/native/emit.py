"""Per-program C translation unit for the native tile-kernel backend.

One compiled shared object executes any run of wavefront-level segments
of one program through a single entry point::

    void repro_run(long nseg, const long *seg_off, const long *sel,
                   long shift, double **bufs, const long *wbase,
                   const long **rbase, const double **pure,
                   const unsigned char **oob, const double **fix);

The caller (``repro.native.engine``) owns all index algebra that needs
floor semantics — C integer division truncates, numpy ``//`` floors, so
every flat LDS index is decomposed as ``base[i] + shift`` where the
``base`` arrays are precomputed with numpy over the tile lattice once
per rank and ``shift = t * (v_m / c_m) * strides[m]`` is the only
per-tile term (exact because the engine only goes native when
``c_m | v_m``).  Argument layout:

* ``sel``/``seg_off`` — lattice indices grouped into wavefront levels:
  segment ``s`` is ``sel[seg_off[s] : seg_off[s+1]]``.  Points within a
  segment are mutually independent; segments execute in order.
* ``bufs`` — one flat LDS buffer per written array, in ``arrays``
  order (the very same shared-memory/numpy buffers the dense and
  parallel engines address).
* ``wbase`` — write base per lattice point (shared by all statements:
  every write is ``A[j]`` in LDS space).
* ``rbase[k]`` — per dep-read-slot base (``((lat - d')//c + off) @
  strides``); slots with equal ``d'`` receive the same pointer.
* ``pure[k]`` — per pure-read-slot value table over the lattice,
  gathered per tile from the dense engine's :class:`InputTable`.
* ``oob[k]``/``fix[k]`` — per dep-slot out-of-domain mask and
  replacement values, or NULL for a tile whose every source iteration
  is in-domain (the common interior case).  The read expression
  short-circuits on ``oob[k] == NULL``, so the OOB load is never
  executed — unlike the numpy path there is no clip-then-overwrite.

Each statement body is rendered as its own ``static double F_<array>``
function over the read slots, in the exact parenthesization of the
statement's :class:`~repro.native.kexpr.KExpr` — these are the units
the TV05 translation-validation pass re-parses and proves against the
symbolic exprs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.loops.nest import LoopNest
from repro.native import kexpr
from repro.runtime.dense import read_dependences

#: Bump when the repro_run signature or calling convention changes;
#: part of the ``.so`` cache key so stale ABIs can never be loaded.
NATIVE_ABI_VERSION = 1


@dataclass(frozen=True)
class ReadSlot:
    """One read of one statement, assigned to an argument slot."""

    stmt_index: int
    read_index: int
    kind: str              # "dep" | "pure"
    slot: int              # index into rbase/oob/fix or pure


@dataclass(frozen=True)
class KernelPlan:
    """Emitted source plus the slot tables the engine marshals by."""

    arrays: Tuple[str, ...]           # bufs order == program order
    slots: Tuple[ReadSlot, ...]       # statement-major, read order
    n_dep_slots: int
    n_pure_slots: int
    source: str
    source_hash: str                  # sha256 of ``source``

    def slot_for(self, stmt_index: int, read_index: int) -> ReadSlot:
        for s in self.slots:
            if (s.stmt_index, s.read_index) == (stmt_index, read_index):
                return s
        raise KeyError((stmt_index, read_index))


class NativeEmitError(ValueError):
    """The nest cannot be rendered natively (engine falls back)."""


def _c_name(array: str) -> str:
    safe = "".join(ch if ch.isalnum() else "_" for ch in array)
    return safe if safe else "arr"


def emit_translation_unit(nest: LoopNest,
                          arrays: Sequence[str],
                          program_name: Optional[str] = None,
                          ) -> KernelPlan:
    """Render the nest's statements into the ``repro_run`` TU.

    ``arrays`` fixes the ``bufs`` indexing and must list every written
    array (the engines pass ``program.arrays``).  Raises
    :class:`NativeEmitError` when any statement lacks a symbolic
    ``expr`` — the caller turns that into a numpy fallback, never a
    crash.
    """
    arrays = tuple(arrays)
    array_id = {a: i for i, a in enumerate(arrays)}
    deps = read_dependences(nest)

    slots: List[ReadSlot] = []
    n_dep = 0
    n_pure = 0
    fn_defs: List[str] = []
    body: List[str] = []

    for si, stmt in enumerate(nest.statements):
        if stmt.expr is None:
            raise NativeEmitError(
                f"statement {si} ({stmt.write.array}) has no symbolic "
                f"expr")
        nreads = len(stmt.reads)
        if kexpr.max_slot(stmt.expr) >= nreads:
            raise NativeEmitError(
                f"statement {si} expr reads slot "
                f"{kexpr.max_slot(stmt.expr)} but has {nreads} reads")
        if stmt.write.array not in array_id:
            raise NativeEmitError(
                f"write array {stmt.write.array!r} not in program "
                f"arrays {arrays}")

        fname = f"F_{_c_name(stmt.write.array)}"
        params = ", ".join(f"double v{q}" for q in range(nreads))
        rendered = kexpr.to_c(
            stmt.expr, {q: f"v{q}" for q in range(nreads)})
        fn_defs.append(
            f"static double {fname}({params}) {{\n"
            f"    return {rendered};\n"
            f"}}\n")

        args: List[str] = []
        for ri, read in enumerate(stmt.reads):
            if deps[si][ri] is None:
                k = n_pure
                slots.append(ReadSlot(si, ri, "pure", k))
                n_pure += 1
                args.append(f"pt{k}[i_]")
            else:
                if read.array not in array_id:
                    raise NativeEmitError(
                        f"dep read of unwritten array {read.array!r}")
                k = n_dep
                slots.append(ReadSlot(si, ri, "dep", k))
                n_dep += 1
                src = f"b_{_c_name(read.array)}[rb{k}[i_] + shift]"
                args.append(
                    f"((ob{k} && ob{k}[i_]) ? fx{k}[i_] : {src})")
        wname = f"b_{_c_name(stmt.write.array)}"
        call = ",\n                ".join(args)
        body.append(
            f"            {wname}[wbase[i_] + shift] = {fname}(\n"
            f"                {call});")

    hoist: List[str] = []
    for a in arrays:
        hoist.append(
            f"    double *b_{_c_name(a)} = bufs[{array_id[a]}];")
    for k in range(n_dep):
        hoist.append(f"    const long *rb{k} = rbase[{k}];")
        hoist.append(f"    const unsigned char *ob{k} = oob[{k}];")
        hoist.append(f"    const double *fx{k} = fix[{k}];")
    for k in range(n_pure):
        hoist.append(f"    const double *pt{k} = pure[{k}];")

    title = program_name if program_name is not None else nest.name
    lines: List[str] = [
        f"/* repro native tile kernels: {title}",
        " *",
        " * Generated translation unit — do not edit.  Each F_<array>",
        " * is the statement's kernel in exact IEEE-754 order (hex",
        " * double literals, full parenthesization); repro_run walks",
        " * wavefront-level segments of one tile lattice.  Compiled",
        " * with -ffp-contract=off so a*b+c never fuses into fma.",
        f" * abi={NATIVE_ABI_VERSION}",
        " */",
        "",
    ]
    lines.extend(fn_defs)
    lines.append(
        "void repro_run(long nseg, const long *seg_off, const long "
        "*sel,\n"
        "               long shift, double **bufs, const long *wbase,\n"
        "               const long **rbase, const double **pure,\n"
        "               const unsigned char **oob, const double "
        "**fix)\n"
        "{")
    lines.extend(hoist)
    lines.append("    (void)pure; (void)rbase; (void)oob; (void)fix;")
    lines.append("    for (long s_ = 0; s_ < nseg; ++s_) {")
    lines.append("        for (long p_ = seg_off[s_]; "
                 "p_ < seg_off[s_ + 1]; ++p_) {")
    lines.append("            const long i_ = sel[p_];")
    lines.extend(body)
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    source = "\n".join(lines) + "\n"

    return KernelPlan(
        arrays=arrays,
        slots=tuple(slots),
        n_dep_slots=n_dep,
        n_pure_slots=n_pure,
        source=source,
        source_hash=hashlib.sha256(source.encode()).hexdigest(),
    )
