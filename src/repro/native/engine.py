"""Build pipeline and runtime objects for the native kernel backend.

``build_native_library`` runs once per program (at program-build /
CLI-startup time): it renders the translation unit, resolves a C
compiler, and obtains the shared object from the content-addressed
:class:`~repro.artifacts.cache.ArtifactCache` — compiling only on a
cold key.  The resulting :class:`NativeKernelLibrary` is a small
picklable value object (workers receive it through the spawn/fork
pickle path and ``dlopen`` the cached ``.so`` themselves); every
condition that prevents native execution is recorded as a
``fallback_reason`` instead of raised, so the engines degrade to the
numpy path without ceremony.

The runtime side mirrors the dense engine's index algebra exactly:

* the LDS flat address of lattice point ``i`` of the tile with chain
  index ``t`` is ``base[i] + t * (V_m/c_m) * strides[m]`` — ``base``
  precomputed with numpy floor division per LDS geometry, the shift
  exact because the backend only engages when ``c_m | V_m``;
* a read slot's source is in-domain iff ``A @ (g - dep) <= b``;
  rewritten per tile as ``A_tis[:, i] <= b - A @ (origin - dep)`` with
  ``A_tis = A @ tis.T`` precomputed (all int64, so the rearrangement
  is exact).  A per-dependence row-max of ``A_tis`` decides "whole
  tile in-domain" in O(rows) — the common interior-tile case passes
  NULL masks to C and skips all boundary work;
* out-of-domain reads are replaced by the *same scalar*
  ``init_value(array, ref.index(g))`` calls the dense engine's
  ``fix_out_of_domain`` makes, precomputed per tile into ``fix``
  arrays the C conditional selects from;
* pure-input reads (ADI's coefficient array) gather per tile from the
  dense engine's :class:`~repro.runtime.dense.InputTable` into flat
  per-lattice tables.

Bitwise identity with the dense engine follows: same values flow into
the same IEEE-754 operations in the same order, only the loop driver
changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.native.compile import (
    NativeCompileError,
    compile_shared_object,
    compiler_fingerprint,
    find_compiler,
)
from repro.native.emit import (
    NATIVE_ABI_VERSION,
    KernelPlan,
    NativeEmitError,
    emit_translation_unit,
)

InitFn = Callable[[str, Tuple[int, ...]], float]


def default_cache_root() -> str:
    """Per-user scratch cache used when no explicit cache is given."""
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def native_key(content: str, source_hash: str,
               compiler_fp: str) -> str:
    """Cache key of one shared object.

    Folds the program content key (geometry), the emitted C source
    hash (kernel arithmetic — deliberately outside the content key),
    the compiler fingerprint and the ABI version, so editing a kernel,
    upgrading the compiler or changing the calling convention each
    miss cleanly instead of loading a stale object.
    """
    doc = (f"repro-native\x00{content}\x00{source_hash}\x00"
           f"{compiler_fp}\x00abi={NATIVE_ABI_VERSION}")
    return hashlib.sha256(doc.encode()).hexdigest()


# Per-process dlopen memo: CDLL handles are not picklable, so workers
# re-open the cached .so by path (cheap, and the OS shares the pages).
_FN_CACHE: Dict[str, Any] = {}


def _load_fn(so_path: str) -> Any:
    fn = _FN_CACHE.get(so_path)
    if fn is None:
        lib = ctypes.CDLL(so_path)
        fn = lib.repro_run
        fn.restype = None
        fn.argtypes = [
            ctypes.c_long,    # nseg
            ctypes.c_void_p,  # seg_off
            ctypes.c_void_p,  # sel
            ctypes.c_long,    # shift
            ctypes.c_void_p,  # bufs
            ctypes.c_void_p,  # wbase
            ctypes.c_void_p,  # rbase
            ctypes.c_void_p,  # pure
            ctypes.c_void_p,  # oob
            ctypes.c_void_p,  # fix
        ]
        _FN_CACHE[so_path] = fn
    return fn


@dataclass
class NativeKernelLibrary:
    """Outcome of one native build: a loadable ``.so`` or a reason.

    Picklable (the lazy per-process state is dropped on pickle), so
    the parallel engine ships it to workers inside ``_RunConfig``.
    """

    status: str                       # "hit" | "miss" | "fallback"
    fallback_reason: Optional[str] = None
    key: Optional[str] = None
    so_path: Optional[str] = None
    source: Optional[str] = None
    source_hash: Optional[str] = None
    compiler: Optional[str] = None
    compiler_fp: Optional[str] = None
    plan: Optional[KernelPlan] = None
    _runtimes: Dict[Tuple[int, str], "NativeRuntime"] = field(
        default_factory=dict, repr=False, compare=False)

    @property
    def available(self) -> bool:
        return self.so_path is not None

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_runtimes"] = {}
        return state

    def runtime(self, program: Any, init_value: InitFn,
                dtype: Any = np.float64) -> Optional["NativeRuntime"]:
        """Per-process :class:`NativeRuntime`, or ``None``.

        ``None`` means "use the numpy path": the library fell back at
        build time, or this run's dtype is not float64 (the emitted
        kernels compute in double).
        """
        if not self.available:
            return None
        if np.dtype(dtype) != np.float64:
            return None
        memo_key = (id(program), np.dtype(dtype).str)
        rt = self._runtimes.get(memo_key)
        if rt is None:
            rt = NativeRuntime(program, self, init_value)
            self._runtimes[memo_key] = rt
        return rt


def build_native_library(program: Any,
                         cache: Optional[Any] = None,
                         cache_root: Optional[str] = None,
                         ) -> NativeKernelLibrary:
    """Emit + compile (or cache-hit) the program's kernel ``.so``.

    Never raises for an unusable toolchain or nest — every such
    condition returns a ``status="fallback"`` library whose
    ``fallback_reason`` the CLI and tests surface.  ``cache`` is an
    :class:`~repro.artifacts.cache.ArtifactCache` (or anything with
    its native methods); by default ``$REPRO_CACHE_DIR`` and then a
    per-user temp directory are used.
    """
    from repro.artifacts.cache import ArtifactCache, cache_from_env
    from repro.artifacts.hashing import content_key

    def fallback(reason: str) -> NativeKernelLibrary:
        return NativeKernelLibrary(status="fallback",
                                   fallback_reason=reason)

    if ctypes.sizeof(ctypes.c_long) != 8:
        return fallback("C long is not 64-bit on this platform")

    ttis = program.tiling.ttis
    m = program.dist.m
    v_m, c_m = int(ttis.v[m]), int(ttis.c[m])
    if c_m == 0 or v_m % c_m != 0:
        return fallback(
            f"stride c[{m}]={c_m} does not divide box V[{m}]={v_m}; "
            f"per-tile flat shifts would be inexact")

    try:
        plan = emit_translation_unit(
            program.nest, tuple(program.arrays), program.nest.name)
    except NativeEmitError as exc:
        return fallback(str(exc))

    cc = find_compiler()
    if cc is None:
        return fallback("no C compiler found ($CC, cc, gcc, clang)")
    cc_fp = compiler_fingerprint(cc)
    key = native_key(
        content_key(program.nest, program.tiling.h, m),
        plan.source_hash, cc_fp)

    if cache is None:
        cache = cache_from_env(cache_root)
    if cache is None:
        cache = ArtifactCache(default_cache_root())

    so_path = cache.native_lookup(key)
    status = "hit"
    if so_path is None:
        status = "miss"
        so_path = cache.native_path(key)
        try:
            compile_shared_object(cc, plan.source, so_path)
        except NativeCompileError as exc:
            return fallback(f"compile failed: {exc}")
        cache.native_store_source(key, plan.source)

    return NativeKernelLibrary(
        status=status,
        key=key,
        so_path=so_path,
        source=plan.source,
        source_hash=plan.source_hash,
        compiler=cc,
        compiler_fp=cc_fp,
        plan=plan,
    )


# -- runtime ------------------------------------------------------------------


@dataclass
class _DepSlot:
    slot: int                 # C-side dep-slot index
    ref: Any                  # ArrayRef
    indexer: Any              # RefIndexer (int64 twin of ref.index)
    dep: np.ndarray           # original dependence (int64, n)
    dep_key: Tuple[int, ...]
    dp_key: Tuple[int, ...]   # TTIS-transformed dependence


@dataclass
class _PureSlot:
    slot: int
    table: Any                # InputTable
    indexer: Any              # RefIndexer
    group: int                # shared-gather group id


@dataclass
class _Bases:
    strides: np.ndarray
    wbase: np.ndarray
    rbase: Dict[Tuple[int, ...], np.ndarray]
    shift_unit: int


class NativeRuntime:
    """Program-level precompute shared by every rank in one process."""

    def __init__(self, program: Any, library: NativeKernelLibrary,
                 init_value: InitFn):
        from repro.runtime.dense import build_statement_plans

        assert library.so_path is not None
        assert library.plan is not None
        self.program = program
        self.plan = library.plan
        self.fn = _load_fn(library.so_path)
        self.init_value = init_value

        ttis = program.tiling.ttis
        self.arrays: Tuple[str, ...] = tuple(program.arrays)
        assert self.arrays == self.plan.arrays, \
            "library built for a different array layout"
        self.m = int(program.dist.m)
        self.lat = np.ascontiguousarray(
            ttis.lattice_points_np(), dtype=np.int64)
        self.tis = np.ascontiguousarray(
            ttis.tis_points_np(), dtype=np.int64)
        self.nlat = len(self.lat)
        self.c_np = np.asarray(ttis.c, dtype=np.int64)
        self.v_np = np.asarray(ttis.v, dtype=np.int64)
        self.amat = program.tiling._amat
        self.bvec = program.tiling._bvec

        splans = build_statement_plans(program.nest, init_value,
                                       np.float64)
        self.dep_slots: List[_DepSlot] = []
        self.pure_slots: List[_PureSlot] = []
        pure_groups: Dict[Tuple[Any, ...], int] = {}
        for slot in self.plan.slots:
            rp = splans[slot.stmt_index].reads[slot.read_index]
            if slot.kind == "dep":
                assert rp.dep is not None
                dep = np.asarray(rp.dep, dtype=np.int64)
                dp = ttis.transformed_dependences(
                    [tuple(int(x) for x in dep)])[0]
                self.dep_slots.append(_DepSlot(
                    slot=slot.slot, ref=rp.ref, indexer=rp.indexer,
                    dep=dep,
                    dep_key=tuple(int(x) for x in dep),
                    dp_key=tuple(int(x) for x in dp)))
            else:
                assert rp.table is not None
                gkey = (id(rp.table),
                        tuple(rp.indexer.offset.tolist()),
                        None if rp.indexer.f_int is None
                        else tuple(map(tuple,
                                       rp.indexer.f_int.tolist())))
                group = pure_groups.setdefault(gkey, len(pure_groups))
                self.pure_slots.append(_PureSlot(
                    slot=slot.slot, table=rp.table,
                    indexer=rp.indexer, group=group))
        self.n_pure_groups = len(pure_groups)
        self.distinct_deps: List[Tuple[Tuple[int, ...], np.ndarray]] = []
        seen: Dict[Tuple[int, ...], None] = {}
        for ds in self.dep_slots:
            if ds.dep_key not in seen:
                seen[ds.dep_key] = None
                self.distinct_deps.append((ds.dep_key, ds.dep))

        # In-domain fast path: A_tis[:, i] = A @ tis_i, with row maxima
        # (all int64 → the per-tile threshold comparison is exact).
        self.a_tis = np.ascontiguousarray(self.amat @ self.tis.T)
        self.a_tis_rowmax = (self.a_tis.max(axis=1)
                             if self.a_tis.size
                             else np.zeros(len(self.bvec),
                                           dtype=np.int64))

        self._bases_cache: Dict[Tuple[Any, ...], _Bases] = {}
        self._full_segments: Optional[
            Tuple[np.ndarray, np.ndarray]] = None

    # -- segments (sel + per-level prefix offsets) ------------------------

    def segments(self, tile: Tuple[int, ...]
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated wavefront-level batches of one tile."""
        full = self.program.tiling.classify_tile(tile) == "full"
        if full and self._full_segments is not None:
            return self._full_segments
        batches = self.program.dense_level_batches(tile)
        if batches:
            sel = np.ascontiguousarray(
                np.concatenate(batches), dtype=np.int64)
        else:
            sel = np.zeros(0, dtype=np.int64)
        seg = np.zeros(len(batches) + 1, dtype=np.int64)
        np.cumsum([len(b) for b in batches], out=seg[1:])
        out = (sel, seg)
        if full:
            self._full_segments = out
        return out

    # -- per-LDS-geometry base arrays -------------------------------------

    def bases_for(self, lds: Any) -> _Bases:
        key = (tuple(int(x) for x in lds.shape),
               tuple(int(x) for x in lds.offsets))
        bases = self._bases_cache.get(key)
        if bases is not None:
            return bases
        n = self.lat.shape[1]
        shape = np.asarray(lds.shape, dtype=np.int64)
        strides = np.ones(n, dtype=np.int64)
        for k in reversed(range(n - 1)):
            strides[k] = strides[k + 1] * shape[k + 1]
        off = np.asarray(lds.offsets, dtype=np.int64)
        wbase = np.ascontiguousarray(
            (self.lat // self.c_np + off) @ strides)
        rbase: Dict[Tuple[int, ...], np.ndarray] = {}
        for ds in self.dep_slots:
            if ds.dp_key not in rbase:
                dp = np.asarray(ds.dp_key, dtype=np.int64)
                rbase[ds.dp_key] = np.ascontiguousarray(
                    ((self.lat - dp) // self.c_np + off) @ strides)
        shift_unit = int(self.v_np[self.m] // self.c_np[self.m]) \
            * int(strides[self.m])
        bases = _Bases(strides=strides, wbase=wbase, rbase=rbase,
                       shift_unit=shift_unit)
        self._bases_cache[key] = bases
        return bases

    def for_rank(self, lds: Any,
                 local: Dict[str, np.ndarray]) -> "RankKernels":
        return RankKernels(self, lds, local)


class _TileCtx:
    """Per-(rank, tile) marshalled arguments, built once per tile."""

    __slots__ = ("shift", "oob_addr", "fix_addr", "pure_addr", "keep")

    def __init__(self, shift: int, oob_addr: Any, fix_addr: Any,
                 pure_addr: Any, keep: List[np.ndarray]):
        self.shift = shift
        self.oob_addr = oob_addr
        self.fix_addr = fix_addr
        self.pure_addr = pure_addr
        self.keep = keep


class RankKernels:
    """One rank's native executor over its LDS buffers.

    ``run_tile`` executes a whole tile (all wavefront levels, one C
    call); ``run_segment`` executes one (sub-)batch — the overlap
    schedule's boundary/interior slices — reusing the tile context.
    """

    def __init__(self, rt: NativeRuntime, lds: Any,
                 local: Dict[str, np.ndarray]):
        self.rt = rt
        bases = rt.bases_for(lds)
        self.bases = bases
        self.local = local
        for a in rt.arrays:
            buf = local[a]
            assert buf.dtype == np.float64 and buf.flags["C_CONTIGUOUS"]
        self._bufs = (ctypes.c_void_p * len(rt.arrays))(
            *[local[a].ctypes.data for a in rt.arrays])
        n_dep = max(rt.plan.n_dep_slots, 1)
        self._rb = (ctypes.c_void_p * n_dep)()
        for ds in rt.dep_slots:
            self._rb[ds.slot] = bases.rbase[ds.dp_key].ctypes.data
        self._ctx_key: Optional[Tuple[Tuple[int, ...], int]] = None
        self._ctx: Optional[_TileCtx] = None

    # -- per-tile context -------------------------------------------------

    def _tile_ctx(self, tile: Tuple[int, ...], t: int,
                  origin: np.ndarray) -> _TileCtx:
        key = (tuple(int(x) for x in tile), int(t))
        if self._ctx_key == key and self._ctx is not None:
            return self._ctx
        rt = self.rt
        shift = int(t) * self.bases.shift_unit
        keep: List[np.ndarray] = []
        n_dep = max(rt.plan.n_dep_slots, 1)
        n_pure = max(rt.plan.n_pure_slots, 1)
        oob_ptrs = (ctypes.c_void_p * n_dep)()
        fix_ptrs = (ctypes.c_void_p * n_dep)()
        pure_ptrs = (ctypes.c_void_p * n_pure)()

        origin64 = np.asarray(origin, dtype=np.int64)
        masks: Dict[Tuple[int, ...], Optional[np.ndarray]] = {}
        sel_all: Optional[np.ndarray] = None
        for dep_key, dep in rt.distinct_deps:
            thr = rt.bvec - rt.amat @ (origin64 - dep)
            if np.all(rt.a_tis_rowmax <= thr):
                masks[dep_key] = None        # whole tile in-domain
                continue
            in_dom = np.all(rt.a_tis <= thr[:, None], axis=0)
            if sel_all is None:
                sel_all = rt.segments(tile)[0]
            if bool(in_dom[sel_all].all()):
                masks[dep_key] = None        # executed points all in
                continue
            oob = np.ascontiguousarray(
                (~in_dom).astype(np.uint8))
            masks[dep_key] = oob
            keep.append(oob)

        for ds in rt.dep_slots:
            oob = masks[ds.dep_key]
            if oob is None:
                continue
            oob_ptrs[ds.slot] = oob.ctypes.data
            # Same scalar boundary values as fix_out_of_domain, filled
            # only at executed out-of-domain points (the cells come
            # from the vectorized int64 indexer — identical integers
            # to ref.index, without the per-point rational matvec).
            assert sel_all is not None
            fix = np.zeros(rt.nlat, dtype=np.float64)
            ood = sel_all[oob[sel_all].view(np.bool_)]
            arr_name = ds.ref.array
            init_value = rt.init_value
            cells = ds.indexer.cells(rt.tis[ood] + origin64)
            for i, cell in zip(ood.tolist(), cells.tolist()):
                fix[i] = init_value(arr_name, tuple(cell))
            fix_ptrs[ds.slot] = fix.ctypes.data
            keep.append(fix)

        if rt.pure_slots:
            # Gather only at executed points: a partial tile's clipped
            # lattice points can map outside the input-table box.
            if sel_all is None:
                sel_all = rt.segments(tile)[0]
            gsel = rt.tis[sel_all] + origin64
            group_vals: Dict[int, np.ndarray] = {}
            for ps in rt.pure_slots:
                vals = group_vals.get(ps.group)
                if vals is None:
                    vals = np.zeros(rt.nlat, dtype=np.float64)
                    vals[sel_all] = ps.table.gather(
                        ps.indexer.cells(gsel))
                    group_vals[ps.group] = vals
                    keep.append(vals)
                pure_ptrs[ps.slot] = vals.ctypes.data

        ctx = _TileCtx(shift=shift,
                       oob_addr=oob_ptrs,
                       fix_addr=fix_ptrs,
                       pure_addr=pure_ptrs,
                       keep=keep)
        self._ctx_key = key
        self._ctx = ctx
        return ctx

    # -- execution --------------------------------------------------------

    def _call(self, ctx: _TileCtx, sel: np.ndarray,
              seg: np.ndarray) -> None:
        self.rt.fn(
            len(seg) - 1,
            seg.ctypes.data,
            sel.ctypes.data,
            ctx.shift,
            ctypes.addressof(self._bufs),
            self.bases.wbase.ctypes.data,
            ctypes.addressof(self._rb),
            ctypes.addressof(ctx.pure_addr),
            ctypes.addressof(ctx.oob_addr),
            ctypes.addressof(ctx.fix_addr),
        )

    def run_tile(self, tile: Tuple[int, ...], t: int,
                 origin: np.ndarray) -> None:
        """All wavefront levels of one tile in one native call."""
        sel, seg = self.rt.segments(tile)
        if not len(sel):
            return
        self._call(self._tile_ctx(tile, t, origin), sel, seg)

    def run_segment(self, tile: Tuple[int, ...], t: int,
                    origin: np.ndarray, batch: np.ndarray) -> None:
        """One wavefront (sub-)batch — the overlap engine's unit."""
        if not len(batch):
            return
        ctx = self._tile_ctx(tile, t, origin)
        sel = np.ascontiguousarray(batch, dtype=np.int64)
        seg = np.array([0, len(sel)], dtype=np.int64)
        self._call(ctx, sel, seg)
