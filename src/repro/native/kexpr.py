"""Kernel expression IR: the statically-compilable subset of kernels.

``Statement.kernel_np`` is an opaque Python callable, which is fine for
the numpy engines but useless for native code generation — there is
nothing to render to C.  This module defines a tiny arithmetic IR
(:class:`KExpr`) over read slots and float constants.  Apps attach one
per statement (``Statement.expr``); the same tree then serves three
masters that must agree bitwise:

* :func:`eval_np` evaluates the tree over numpy read batches in the
  exact left-to-right operation order the ``kernel_np`` twins use, so a
  statement whose ``expr`` disagrees with its ``kernel_np`` is caught by
  the tol=0.0 suites immediately;
* :meth:`KExpr.to_c` renders the tree as a fully parenthesized C
  expression whose every constant is a C99 hex-float literal
  (``float.hex()``), so the C compiler performs the identical IEEE-754
  double operations in the identical order (the build uses
  ``-ffp-contract=off``, see ``repro.native.compile``);
* the transval TV05 pass re-parses the rendered C back into a tree and
  proves it structurally equal to the symbolic one.

Only ``+ - * /`` and unary negation are provided: every kernel in the
paper's benchmarks (§4) is an affine combination of its reads, and
keeping the IR closed under exactly the operators whose evaluation
order C and numpy agree on is what makes the bitwise claim provable
rather than hopeful.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.loops.nest import LoopNest

Operand = Union["KExpr", float, int]


def _wrap(x: Operand) -> "KExpr":
    if isinstance(x, KExpr):
        return x
    if isinstance(x, (float, int)):
        return KConst(float(x))
    raise TypeError(f"cannot use {type(x).__name__} in a kernel expr")


@dataclass(frozen=True)
class KExpr:
    """Base node.  Subclasses are frozen dataclasses, so trees hash and
    compare structurally for free (TV05 leans on that)."""

    def __add__(self, other: Operand) -> "KExpr":
        return KAdd(self, _wrap(other))

    def __radd__(self, other: Operand) -> "KExpr":
        return KAdd(_wrap(other), self)

    def __sub__(self, other: Operand) -> "KExpr":
        return KSub(self, _wrap(other))

    def __rsub__(self, other: Operand) -> "KExpr":
        return KSub(_wrap(other), self)

    def __mul__(self, other: Operand) -> "KExpr":
        return KMul(self, _wrap(other))

    def __rmul__(self, other: Operand) -> "KExpr":
        return KMul(_wrap(other), self)

    def __truediv__(self, other: Operand) -> "KExpr":
        return KDiv(self, _wrap(other))

    def __rtruediv__(self, other: Operand) -> "KExpr":
        return KDiv(_wrap(other), self)

    def __neg__(self) -> "KExpr":
        return KNeg(self)


@dataclass(frozen=True)
class KConst(KExpr):
    value: float


@dataclass(frozen=True)
class KRead(KExpr):
    """Value of read slot ``i`` — ``Statement.reads[i]`` at this point."""

    slot: int


@dataclass(frozen=True)
class KAdd(KExpr):
    lhs: KExpr
    rhs: KExpr


@dataclass(frozen=True)
class KSub(KExpr):
    lhs: KExpr
    rhs: KExpr


@dataclass(frozen=True)
class KMul(KExpr):
    lhs: KExpr
    rhs: KExpr


@dataclass(frozen=True)
class KDiv(KExpr):
    lhs: KExpr
    rhs: KExpr


@dataclass(frozen=True)
class KNeg(KExpr):
    arg: KExpr


def reads(n: int) -> List[KRead]:
    """Convenience: ``v0..v{n-1}`` slot readers for an app's DSL."""
    return [KRead(i) for i in range(n)]


def max_slot(expr: KExpr) -> int:
    """Highest read slot mentioned, or -1 for a constant tree."""
    if isinstance(expr, KRead):
        return expr.slot
    if isinstance(expr, KConst):
        return -1
    if isinstance(expr, KNeg):
        return max_slot(expr.arg)
    if isinstance(expr, (KAdd, KSub, KMul, KDiv)):
        return max(max_slot(expr.lhs), max_slot(expr.rhs))
    raise TypeError(f"unknown expr node {type(expr).__name__}")


def eval_np(expr: KExpr, read_arrays: Tuple[np.ndarray, ...]) -> np.ndarray:
    """Evaluate over numpy batches in the tree's operation order.

    The recursion performs one numpy ufunc per interior node, left
    operand first — the same order :meth:`KExpr.to_c` parenthesizes, so
    a tree that matches ``kernel_np`` here matches the compiled C too.
    """
    if isinstance(expr, KConst):
        return np.float64(expr.value)  # type: ignore[return-value]
    if isinstance(expr, KRead):
        return read_arrays[expr.slot]
    if isinstance(expr, KNeg):
        return -eval_np(expr.arg, read_arrays)
    if isinstance(expr, (KAdd, KSub, KMul, KDiv)):
        a = eval_np(expr.lhs, read_arrays)
        b = eval_np(expr.rhs, read_arrays)
        if isinstance(expr, KAdd):
            return a + b
        if isinstance(expr, KSub):
            return a - b
        if isinstance(expr, KMul):
            return a * b
        return a / b
    raise TypeError(f"unknown expr node {type(expr).__name__}")


def const_to_c(value: float) -> str:
    """Exact C literal for a double: C99 hex float (no rounding)."""
    if value != value:  # NaN has no portable literal; apps never use it
        raise ValueError("NaN constants are not supported")
    if value in (float("inf"), float("-inf")):
        raise ValueError("infinite constants are not supported")
    return float(value).hex()


def to_c(expr: KExpr, slot_names: Dict[int, str]) -> str:
    """Render as a fully parenthesized C expression over ``slot_names``.

    Full parenthesization means C operator precedence never reorders
    anything: the printed tree IS the evaluation order.
    """
    if isinstance(expr, KConst):
        return const_to_c(expr.value)
    if isinstance(expr, KRead):
        return slot_names[expr.slot]
    if isinstance(expr, KNeg):
        return f"(-{to_c(expr.arg, slot_names)})"
    if isinstance(expr, (KAdd, KSub, KMul, KDiv)):
        op = {KAdd: "+", KSub: "-", KMul: "*", KDiv: "/"}[type(expr)]
        return (f"({to_c(expr.lhs, slot_names)} {op} "
                f"{to_c(expr.rhs, slot_names)})")
    raise TypeError(f"unknown expr node {type(expr).__name__}")


def expr_signature(expr: KExpr) -> str:
    """Canonical text form used for hashing (slot names ``v<i>``)."""
    nslots = max_slot(expr) + 1
    return to_c(expr, {i: f"v{i}" for i in range(nslots)})


def kernel_fingerprint(nest: "LoopNest") -> str:
    """sha256 over every statement's kernel content, in statement order.

    Artifact metadata records this so a cached program (or cached
    ``.so``) can never be served for an app whose kernels changed even
    though the nest geometry — which is all ``content_key`` hashes, by
    design — stayed identical.  Statements with a symbolic ``expr``
    hash its exact C rendering; opaque Python kernels fall back to
    hashing their compiled bytecode and constants, which is enough to
    catch any edit to the kernel function body.
    """
    h = hashlib.sha256()
    for s in nest.statements:
        h.update(b"\x00stmt\x00")
        h.update(s.write.array.encode())
        expr = getattr(s, "expr", None)
        if expr is not None:
            h.update(b"expr:")
            h.update(expr_signature(expr).encode())
            continue
        fn = s.kernel_np if s.kernel_np is not None else s.kernel
        if fn is None:
            h.update(b"none")
            continue
        h.update(b"code:")
        code = getattr(fn, "__code__", None)
        if code is None:
            h.update(repr(fn).encode())
        else:
            h.update(code.co_code)
            h.update(repr(code.co_consts).encode())
            h.update(repr(code.co_names).encode())
    return h.hexdigest()
